#!/usr/bin/env python
"""Documentation drift checks (registered as a tier-1 test).

Three invariants keep the docs honest:

1. ``docs/cli.md`` must name **every** subcommand registered on the
   ``union-sim`` argparse parser (introspected, not hard-coded), plus
   every subcommand it documents must actually exist.
2. Every fenced ``toml``/``json`` snippet in ``docs/scenarios.md`` must
   parse *and* validate through :func:`repro.scenario.parse_scenario` --
   the format reference cannot show a spec the parser would reject.
3. ``docs/registry.md`` must name every registered component
   (topologies, routings, placements, scenario generators), so the
   roster tables cannot silently drift from :mod:`repro.registry`.
4. ``docs/telemetry.md`` must name every registered telemetry sink and
   instrument kind (from :data:`repro.telemetry.SINK_KINDS` /
   :data:`repro.telemetry.INSTRUMENT_KINDS`) *and* their classes, so
   the pipeline reference cannot drift from :mod:`repro.telemetry`.
5. ``docs/engines.md`` must name every registered execution engine,
   every parameter it declares and every enumerated parameter choice,
   so the engine reference cannot drift from
   :mod:`repro.registry.engines`.
6. ``docs/env.md`` must name every registered control policy (with its
   declared parameters) and every field of the session
   :class:`~repro.union.session.Observation` snapshot, so the control
   surface reference cannot drift from :mod:`repro.registry.policies`
   or the observation schema.
7. ``docs/faults.md`` must name every fault kind
   (:data:`repro.scenario.FAULT_KINDS`), every scenario generator and
   every fuzz invariant (:data:`repro.fuzz.INVARIANTS`), so the
   fault/fuzz reference cannot drift from the code.
8. ``docs/service.md`` must name every job lifecycle state, every
   checkpoint-file key (and the exact format tag), the cache entry's
   file names and the cache telemetry counters, so the service
   reference cannot drift from :mod:`repro.service`.

Run directly (``python scripts/check_docs.py``) or via pytest
(``tests/test_docs.py`` wraps the same functions).
"""

from __future__ import annotations

import json
import re
import sys
import tomllib
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

_FENCE_RE = re.compile(r"^```(\w+)\n(.*?)^```", re.MULTILINE | re.DOTALL)


def registered_subcommands() -> set[str]:
    """The subcommand names argparse actually registers, introspected."""
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._subparsers._group_actions:  # noqa: SLF001
        return set(action.choices)
    raise AssertionError("union-sim parser has no subparsers")  # pragma: no cover


def documented_subcommands(cli_md: str) -> set[str]:
    """Subcommands docs/cli.md documents, via its ``## `union-sim X``` headings."""
    return set(re.findall(r"^## `union-sim (\w+)`", cli_md, re.MULTILINE))


def check_cli_doc(path: Path = DOCS / "cli.md") -> None:
    """docs/cli.md and the argparse parser must agree exactly."""
    text = path.read_text()
    actual = registered_subcommands()
    documented = documented_subcommands(text)
    missing = actual - documented
    assert not missing, (
        f"{path} is missing a section for subcommand(s) {sorted(missing)}; "
        "add an '## `union-sim <name>`' heading with usage and example output"
    )
    stale = documented - actual
    assert not stale, (
        f"{path} documents subcommand(s) {sorted(stale)} that no longer exist "
        "in repro/cli.py; delete or update those sections"
    )


def scenario_snippets(path: Path = DOCS / "scenarios.md") -> list[tuple[str, str]]:
    """All fenced (language, body) blocks with toml/json language tags."""
    return [
        (lang, body)
        for lang, body in _FENCE_RE.findall(path.read_text())
        if lang in ("toml", "json")
    ]


def check_scenario_snippets(path: Path = DOCS / "scenarios.md") -> int:
    """Every toml/json snippet in docs/scenarios.md must validate.

    Returns the number of snippets checked (the caller asserts > 0 so an
    accidental fence-syntax change cannot silently skip everything).
    """
    from repro.scenario import parse_scenario

    snippets = scenario_snippets(path)
    assert snippets, f"{path} contains no toml/json snippets -- fence regex broken?"
    for i, (lang, body) in enumerate(snippets):
        where = f"{path} snippet #{i + 1} ({lang})"
        try:
            data = tomllib.loads(body) if lang == "toml" else json.loads(body)
        except (tomllib.TOMLDecodeError, json.JSONDecodeError) as exc:
            raise AssertionError(f"{where} is not well-formed {lang}: {exc}") from None
        try:
            parse_scenario(data, name=f"snippet-{i + 1}", base_dir=path.parent)
        except Exception as exc:
            raise AssertionError(f"{where} fails validation: {exc}") from None
    return len(snippets)


def check_registry_doc(path: Path = DOCS / "registry.md") -> int:
    """docs/registry.md must name every registered component.

    Names must appear backtick-quoted (as in the roster tables).
    Returns the number of component names checked.
    """
    from repro.registry import (
        all_routing_names,
        available_generators,
        placement_registry,
        topology_registry,
    )

    text = path.read_text()
    names = (
        list(topology_registry.names())
        + list(all_routing_names())
        + list(placement_registry.names())
        + list(available_generators())
    )
    missing = [n for n in names if f"`{n}`" not in text]
    assert not missing, (
        f"{path} does not mention registered component(s) {missing}; "
        "update the roster tables (names must be backtick-quoted)"
    )
    return len(names)


def check_telemetry_doc(path: Path = DOCS / "telemetry.md") -> int:
    """docs/telemetry.md must name every sink and instrument kind.

    Kind names and class names must appear backtick-quoted (as in the
    taxonomy tables).  Returns the number of names checked.
    """
    from repro.telemetry import INSTRUMENT_KINDS, SINK_KINDS

    text = path.read_text()
    names = list(INSTRUMENT_KINDS) + [c.__name__ for c in INSTRUMENT_KINDS.values()]
    names += list(SINK_KINDS) + [c.__name__ for c in SINK_KINDS.values()]
    missing = [n for n in names if f"`{n}`" not in text]
    assert not missing, (
        f"{path} does not mention telemetry sink/instrument name(s) {missing}; "
        "update the taxonomy tables (names must be backtick-quoted)"
    )
    return len(names)


def check_engines_doc(path: Path = DOCS / "engines.md") -> int:
    """docs/engines.md must name every engine, alias, param and choice.

    Names must appear backtick-quoted (as in the roster and parameter
    listings); enumerated parameters (``Param.choices``) must document
    every accepted value, and every registered alias must be named so
    the shorthand a scenario may use is discoverable.  Returns the
    number of names checked.
    """
    from repro.registry import engine_registry

    text = path.read_text()
    names: list[str] = []
    for spec in engine_registry:
        names.append(spec.name)
        for p in spec.params:
            names.append(p.name)
            if p.choices:
                names.extend(str(c) for c in p.choices)
    names.extend(engine_registry.aliases())
    missing = [n for n in names if f"`{n}`" not in text]
    assert not missing, (
        f"{path} does not mention registered engine(s)/parameter(s) {missing}; "
        "update the engine reference (names must be backtick-quoted)"
    )
    return len(names)


def check_env_doc(path: Path = DOCS / "env.md") -> int:
    """docs/env.md must name every policy and every Observation field.

    Policy names, their declared parameters, and the fields of the
    session's ``Observation`` snapshot must appear backtick-quoted.
    Returns the number of names checked.
    """
    import dataclasses

    from repro.registry import policy_registry
    from repro.union.session import Observation

    text = path.read_text()
    names: list[str] = []
    for spec in policy_registry:
        names.append(spec.name)
        names.extend(p.name for p in spec.params)
    names.extend(f.name for f in dataclasses.fields(Observation))
    missing = [n for n in names if f"`{n}`" not in text]
    assert not missing, (
        f"{path} does not mention policy/observation name(s) {missing}; "
        "update the rosters (names must be backtick-quoted)"
    )
    return len(names)


def check_faults_doc(path: Path = DOCS / "faults.md") -> int:
    """docs/faults.md must name every fault kind, generator, invariant.

    Names must appear backtick-quoted (as in the kind/generator/
    invariant tables).  Returns the number of names checked.
    """
    from repro.fuzz import INVARIANTS
    from repro.registry import available_generators
    from repro.scenario import FAULT_KINDS

    text = path.read_text()
    names = list(FAULT_KINDS) + list(available_generators()) + list(INVARIANTS)
    missing = [n for n in names if f"`{n}`" not in text]
    assert not missing, (
        f"{path} does not mention fault kind/generator/invariant name(s) "
        f"{missing}; update the reference tables (names must be "
        "backtick-quoted)"
    )
    return len(names)


def check_service_doc(path: Path = DOCS / "service.md") -> int:
    """docs/service.md must name the service's durable surface.

    Every job lifecycle state, every checkpoint-file key plus the exact
    format tag, the cache entry's three file names and the cache
    telemetry counters must appear backtick-quoted.  Returns the number
    of names checked.
    """
    from repro.service import CHECKPOINT_FORMAT, JobState
    from repro.service.checkpoint import CHECKPOINT_KEYS

    text = path.read_text()
    names = [state.value for state in JobState]
    names += list(CHECKPOINT_KEYS) + [CHECKPOINT_FORMAT]
    names += ["spec.toml", "result.json", "telemetry.jsonl",
              "cache.hit", "cache.miss"]
    missing = [n for n in names if f"`{n}`" not in text]
    assert not missing, (
        f"{path} does not mention service state/key/file name(s) {missing}; "
        "update the service reference (names must be backtick-quoted)"
    )
    return len(names)


def main() -> int:
    check_cli_doc()
    n = check_scenario_snippets()
    m = check_registry_doc()
    k = check_telemetry_doc()
    e = check_engines_doc()
    v = check_env_doc()
    f = check_faults_doc()
    s = check_service_doc()
    print(f"docs OK: cli.md covers all {len(registered_subcommands())} subcommands; "
          f"{n} scenarios.md snippets validate; "
          f"registry.md names all {m} components; "
          f"telemetry.md names all {k} sinks/instrument kinds; "
          f"engines.md names all {e} engines/parameters; "
          f"env.md names all {v} policies/observation fields; "
          f"faults.md names all {f} fault kinds/generators/invariants; "
          f"service.md names all {s} states/checkpoint keys/cache files")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO / "src"))
    sys.exit(main())
