#!/usr/bin/env python
"""End-to-end durability drill for the simulation service (CI smoke).

Boots a real :class:`~repro.service.server.SimulationServer` (spawned
worker pool, mid-run checkpointing on) with the HTTP transport in
front, then drives the whole stack through a
:class:`~repro.service.client.ServiceClient` -- the same path
``union-sim submit`` rides:

1. submit a tiny scenario and wait: a cold run on the pool;
2. resubmit the identical spec: must answer instantly from the
   content-addressed result cache (``cached = true``, zero attempts);
3. submit a long scenario, wait for its worker to commit a checkpoint
   cursor, then SIGKILL the worker mid-run: the monitor must respawn
   the slot and resume the job from the cursor;
4. assert the resumed result document equals an uncached in-process
   ``run_scenario`` baseline **bit for bit** -- the durability claim
   of docs/service.md.

Prints one ``PASS`` line per stage and a final summary; any violated
stage exits non-zero.  Stdlib + the repo only.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

TINY = {
    "name": "smoke-tiny",
    "seed": 17,
    "horizon": 0.005,
    "placement": "rn",
    "topology": {"network": "1d"},
    "jobs": [{"app": "nn", "params": {"iters": 2}}],
}

#: Endless uniform traffic over a long horizon: slow enough (~1s wall)
#: that the monitor can observe it running and kill its worker mid-run.
LONG = {
    "name": "smoke-long",
    "seed": 5,
    "horizon": 0.3,
    "jobs": [{"app": "ur", "name": "ur0"}],
}


def wait_for(predicate, timeout: float = 60.0, poll: float = 0.05,
             what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise SystemExit(f"FAIL: {what} not reached within {timeout:g}s")


def main(argv=None) -> int:
    from repro.scenario import parse_scenario
    from repro.scenario.runner import run_scenario
    from repro.service import SimulationServer
    from repro.service.client import ServiceClient
    from repro.service.http import ServiceHTTPServer

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--state", default=None,
                        help="service state directory (default: a fresh "
                             "temporary directory)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker pool size (default: 2)")
    args = parser.parse_args(argv)
    state = Path(args.state) if args.state else \
        Path(tempfile.mkdtemp(prefix="service-smoke-"))

    # The uncached baseline for stage 4, computed before the service
    # ever sees the spec.
    baseline = run_scenario(
        parse_scenario(dict(LONG), name=LONG["name"])).to_json_dict()

    with SimulationServer(state, workers=args.workers,
                          checkpoint_interval=0.01) as server:
        http = ServiceHTTPServer(server).start()
        try:
            client = ServiceClient(http.url)

            t0 = time.monotonic()
            cold = client.wait(client.submit(TINY)["job_id"], timeout=120.0)
            assert cold["state"] == "done" and not cold["cached"], cold
            print(f"PASS cold submit: {cold['job_id']} done "
                  f"(attempts={cold['attempts']}, "
                  f"{time.monotonic() - t0:.2f}s)")

            hit = client.submit(TINY)
            assert hit["state"] == "done" and hit["cached"], hit
            assert hit["attempts"] == 0, hit
            print(f"PASS cache hit: {hit['job_id']} answered from the "
                  "cache without touching a worker")

            job_id = client.submit(LONG)["job_id"]
            pid = wait_for(lambda: client.status(job_id).get("pid"),
                           what="long job running on a worker")
            wait_for(server.checkpoint_path(job_id).is_file,
                     what="checkpoint cursor on disk")
            os.kill(pid, signal.SIGKILL)
            done = client.wait(job_id, timeout=180.0)
            assert done["state"] == "done", done
            assert done["attempts"] == 2, done
            assert "resuming from checkpoint" in (done["error"] or ""), done
            print(f"PASS kill/resume: worker {pid} SIGKILLed mid-run; "
                  f"{job_id} resumed and finished "
                  f"(attempts={done['attempts']})")

            resumed = client.result(job_id)
            assert resumed == baseline, \
                "FAIL: resumed result differs from the uncached baseline"
            print("PASS bit-identical: resumed result == uncached "
                  "in-process baseline")

            stats = client.stats()
            print(f"service smoke OK: {stats['jobs']['done']} jobs done, "
                  f"cache {stats['cache']['hits']} hits / "
                  f"{stats['cache']['misses']} misses, "
                  f"workers {stats['workers']['alive']}/"
                  f"{stats['workers']['configured']} alive")
        finally:
            http.stop()
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO / "src"))
    sys.exit(main())
