#!/usr/bin/env python
"""CI smoke drill for multi-process partitioned execution.

Runs one all-static storm scenario (4 partitions' worth of cross-group
traffic on the mini dragonfly) twice -- sequential, then on the
``mp-conservative`` engine's spawn backend, with one real worker
process per partition -- and asserts:

1. the mp run actually distributed (``engine.mode == "distributed"``;
   a silent fallback would make the comparison vacuous);
2. the scenario result JSON is bit-identical modulo the ``engine`` key
   (the docs/engines.md determinism guarantee, end to end through the
   scenario layer).

Exit 0 on success; any assertion or worker failure is fatal.  Run
directly: ``python scripts/mp_smoke.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SCENARIO = {
    "name": "mp-smoke-storm",
    "topology": {"network": "1d", "scale": "mini"},
    "seed": 11,
    "horizon": 0.004,
    "placement": "rn",
    "jobs": [
        {"app": "milc", "nranks": 16},
        {"app": "nn", "nranks": 8, "params": {"dims": [2, 2, 2]}},
    ],
    "traffic": [
        {"pattern": "uniform", "nranks": 16, "msg_bytes": 8192,
         "interval_s": 5e-5},
    ],
}


def main() -> int:
    from repro.scenario import parse_scenario
    from repro.scenario.runner import run_scenario

    seq = run_scenario(parse_scenario(dict(SCENARIO))).to_json_dict()

    mp_spec = dict(SCENARIO)
    mp_spec["engine"] = {"type": "mp-conservative", "partitions": 4,
                         "backend": "mp"}
    mp = run_scenario(parse_scenario(mp_spec)).to_json_dict()

    engine = mp.pop("engine")
    assert engine["mode"] == "distributed", (
        f"mp run fell back to single-process: {engine['fallback']!r}"
    )
    assert engine["fallback"] is None
    assert engine["partitions"] == 4
    assert engine["windows"] > 1

    if mp != seq:
        a = json.dumps(seq, indent=2, sort_keys=True).splitlines()
        b = json.dumps(mp, indent=2, sort_keys=True).splitlines()
        import difflib

        sys.stderr.write("\n".join(difflib.unified_diff(
            a, b, "sequential", "mp-conservative", lineterm="", n=3)))
        sys.stderr.write("\n")
        raise AssertionError(
            "mp-conservative scenario JSON diverged from sequential"
        )

    print(f"mp smoke OK: 4 spawned workers, {engine['windows']} windows, "
          f"scenario JSON bit-identical to sequential "
          f"(lookahead {engine['lookahead']:g}s, scheme {engine['scheme']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
