#!/usr/bin/env bash
# Measure engine/network event throughput and append an entry to the
# tracked trajectory in BENCH_engine.json.
#
#   scripts/bench.sh [label] [extra throughput.py args...]
#
# The first entry in BENCH_engine.json is the baseline every later entry
# is compared against (the v0 seed model, measured with this same
# harness).
set -euo pipefail
cd "$(dirname "$0")/.."
LABEL="${1:-dev}"
shift || true
PYTHONPATH="src:.${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/throughput.py --label "$LABEL" "$@"
