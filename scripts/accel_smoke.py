#!/usr/bin/env python
"""CI smoke drill for the compiled accel event kernel.

Runs one hybrid storm scenario (apps plus background traffic on the
mini dragonfly) twice -- on the pure-Python ``sequential`` engine, then
on ``accel-sequential`` -- and asserts:

1. the accel run used the backend this host is expected to provide
   (``--expect compiled`` on a compiler host, ``--expect python`` on a
   compiler-less host; without the flag either backend passes, which
   would make a CI check vacuous -- always pass it in CI);
2. a python fallback recorded a user-facing ``backend_reason``;
3. the scenario result JSON is bit-identical modulo the ``engine`` key
   (the docs/engines.md determinism guarantee, end to end through the
   scenario layer).

Exit 0 on success; any assertion is fatal.  Run directly:
``python scripts/accel_smoke.py --expect compiled``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SCENARIO = {
    "name": "accel-smoke-storm",
    "topology": {"network": "1d", "scale": "mini"},
    "seed": 11,
    "horizon": 0.004,
    "placement": "rn",
    "jobs": [
        {"app": "milc", "nranks": 16},
        {"app": "nn", "nranks": 8, "params": {"dims": [2, 2, 2]}},
    ],
    "traffic": [
        {"pattern": "uniform", "nranks": 16, "msg_bytes": 8192,
         "interval_s": 5e-5},
    ],
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--expect", choices=("compiled", "python"), default=None,
        help="assert the accel run used this backend (keeps the check "
             "non-vacuous in CI)")
    args = parser.parse_args()

    from repro.scenario import parse_scenario
    from repro.scenario.runner import run_scenario

    seq = run_scenario(parse_scenario(dict(SCENARIO))).to_json_dict()

    accel_spec = dict(SCENARIO)
    accel_spec["engine"] = {"type": "accel-sequential"}
    accel = run_scenario(parse_scenario(accel_spec)).to_json_dict()

    engine = accel.pop("engine")
    backend = engine["backend"]
    reason = engine["backend_reason"]
    if args.expect is not None:
        assert backend == args.expect, (
            f"expected the {args.expect!r} backend but the run used "
            f"{backend!r} (backend_reason={reason!r})"
        )
    if backend == "python":
        assert reason, "python fallback must record a backend_reason"
    else:
        assert reason is None, f"compiled backend recorded reason {reason!r}"

    if accel != seq:
        a = json.dumps(seq, indent=2, sort_keys=True).splitlines()
        b = json.dumps(accel, indent=2, sort_keys=True).splitlines()
        import difflib

        sys.stderr.write("\n".join(difflib.unified_diff(
            a, b, "sequential", "accel-sequential", lineterm="", n=3)))
        sys.stderr.write("\n")
        raise AssertionError(
            "accel-sequential scenario JSON diverged from sequential"
        )

    detail = f"fallback: {reason}" if backend == "python" else "no fallback"
    print(f"accel smoke OK: backend {backend} ({detail}), "
          f"scenario JSON bit-identical to sequential")
    return 0


if __name__ == "__main__":
    sys.exit(main())
