"""Collective algorithms: completion, message counts, synchronization."""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric


def run_collective(nranks, body, until=2.0, seed=1):
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=seed), routing="min")
    mpi = SimMPI(fabric)
    mpi.add_job(JobSpec("coll", nranks, body, list(range(nranks))))
    mpi.run(until=until)
    return mpi.results()[0], fabric


SIZES = [1, 2, 3, 4, 5, 7, 8, 13, 16]


@pytest.mark.parametrize("n", SIZES)
def test_barrier_completes(n):
    def prog(ctx):
        yield from ctx.barrier()

    res, _ = run_collective(n, prog)
    assert res.finished


def test_barrier_synchronizes():
    """No rank may leave the barrier before the last rank has entered."""
    enter, leave = {}, {}

    def prog(ctx):
        yield ctx.compute(0.001 * (ctx.rank + 1))  # staggered arrival
        enter[ctx.rank] = ctx.now
        yield from ctx.barrier()
        leave[ctx.rank] = ctx.now

    res, _ = run_collective(6, prog)
    assert res.finished
    assert min(leave.values()) >= max(enter.values())


@pytest.mark.parametrize("n", SIZES)
def test_bcast_completes(n):
    def prog(ctx):
        yield from ctx.bcast(4096, root=0)

    res, _ = run_collective(n, prog)
    assert res.finished


def test_bcast_message_count_is_n_minus_1():
    """A binomial broadcast delivers exactly n-1 point-to-point messages."""
    n = 16

    def prog(ctx):
        yield from ctx.bcast(1024, root=3)

    res, fabric = run_collective(n, prog)
    assert res.finished
    assert fabric.messages_sent == n - 1


@pytest.mark.parametrize("root", [0, 1, 5])
def test_bcast_nonzero_root(root):
    def prog(ctx):
        yield from ctx.bcast(2048, root=root)

    res, _ = run_collective(6, prog)
    assert res.finished


@pytest.mark.parametrize("n", SIZES)
def test_reduce_completes(n):
    def prog(ctx):
        yield from ctx.reduce(4096, root=0)

    res, fabric = run_collective(n, prog)
    assert res.finished
    assert fabric.messages_sent == n - 1


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algorithm", ["rd", "ring"])
def test_allreduce_completes(n, algorithm):
    def prog(ctx):
        yield from ctx.allreduce(8192, algorithm=algorithm)

    res, _ = run_collective(n, prog)
    assert res.finished


def test_allreduce_auto_switches_to_ring():
    """Large payloads use the ring: 2(n-1) steps of size/n chunks, so the
    per-rank transmitted volume is ~2*size*(n-1)/n instead of ~size*log n."""
    n = 8
    size = 1 << 20

    def prog(ctx):
        yield from ctx.allreduce(size)  # auto -> ring

    res, _ = run_collective(n, prog)
    per_rank = res.rank_stats[0].bytes_sent
    expected_ring = 2 * (n - 1) * ((size + n - 1) // n)
    assert per_rank == expected_ring


def test_allreduce_small_uses_recursive_doubling():
    n = 8
    size = 64

    def prog(ctx):
        yield from ctx.allreduce(size)  # auto -> rd

    res, _ = run_collective(n, prog)
    # log2(8)=3 rounds of full-size exchange
    assert res.rank_stats[0].bytes_sent == 3 * size


def test_allreduce_rd_non_power_of_two():
    def prog(ctx):
        yield from ctx.allreduce(1024, algorithm="rd")

    res, _ = run_collective(6, prog)
    assert res.finished


def test_allreduce_rejects_unknown_algorithm():
    def prog(ctx):
        yield from ctx.allreduce(8, algorithm="magic")

    with pytest.raises(ValueError, match="unknown allreduce"):
        run_collective(4, prog)


@pytest.mark.parametrize("n", [2, 3, 5, 8])
def test_allgather_completes(n):
    def prog(ctx):
        yield from ctx.allgather(256)

    res, _ = run_collective(n, prog)
    assert res.finished
    assert res.rank_stats[0].bytes_sent == (n - 1) * 256


@pytest.mark.parametrize("n", [2, 4, 5])
def test_alltoall_completes(n):
    def prog(ctx):
        yield from ctx.alltoall(128)

    res, _ = run_collective(n, prog)
    assert res.finished
    assert res.rank_stats[0].bytes_sent == (n - 1) * 128


def test_gather_and_scatter():
    n = 7

    def prog(ctx):
        yield from ctx.gather(512, root=2)
        yield from ctx.scatter(256, root=2)

    res, fabric = run_collective(n, prog)
    assert res.finished
    assert fabric.messages_sent == 2 * (n - 1)


def test_collectives_single_rank_are_noops():
    def prog(ctx):
        yield from ctx.barrier()
        yield from ctx.bcast(100)
        yield from ctx.allreduce(100)
        yield from ctx.reduce(100)
        yield from ctx.allgather(100)
        yield from ctx.alltoall(100)

    res, fabric = run_collective(1, prog)
    assert res.finished
    assert fabric.messages_sent == 0


def test_back_to_back_collectives_do_not_cross_match():
    """Sequence numbers isolate consecutive collectives' tags."""

    def prog(ctx):
        for _ in range(5):
            yield from ctx.allreduce(64, algorithm="rd")
            yield from ctx.barrier()
            yield from ctx.bcast(64, root=0)

    res, _ = run_collective(5, prog)
    assert res.finished


def test_collective_counters():
    def prog(ctx):
        yield from ctx.allreduce(64)
        yield from ctx.bcast(64)
        yield from ctx.barrier()

    res, _ = run_collective(4, prog)
    counts = res.event_counts()
    assert counts["MPI_Allreduce"] == 4
    assert counts["MPI_Bcast"] == 4
    assert counts["MPI_Barrier"] == 4
    # internal point-to-point traffic is not double counted
    assert "MPI_Isend" not in counts
