"""Point-to-point semantics of the simulated MPI runtime."""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.mpi.types import ANY_SOURCE, ANY_TAG
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric


def make_mpi(routing="min", seed=1):
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=seed), routing=routing)
    return SimMPI(fabric), fabric


def run_job(program, nranks, nodes=None, params=None, until=1.0, routing="min"):
    mpi, fabric = make_mpi(routing)
    nodes = nodes or list(range(nranks))
    mpi.add_job(JobSpec("job", nranks, program, nodes, params or {}))
    mpi.run(until=until)
    return mpi.results()[0], fabric


def test_blocking_send_recv_roundtrip():
    got = {}

    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 1024, tag=5)
        else:
            msg = yield from ctx.recv(0, tag=5)
            got["msg"] = msg

    res, _ = run_job(prog, 2, nodes=[0, 100])
    assert res.finished
    assert got["msg"].src == 0
    assert got["msg"].nbytes == 1024
    assert got["msg"].latency > 0


def test_isend_wait_returns_request():
    def prog(ctx):
        if ctx.rank == 0:
            req = yield ctx.isend(1, 64)
            yield ctx.wait(req)
        else:
            req = yield ctx.irecv(0)
            msg = yield ctx.wait(req)
            assert msg.nbytes == 64

    res, _ = run_job(prog, 2)
    assert res.finished


def test_waitall_multiple_requests():
    def prog(ctx):
        if ctx.rank == 0:
            reqs = []
            for dst in (1, 2, 3):
                reqs.append((yield ctx.isend(dst, 512, tag=dst)))
            yield ctx.waitall(reqs)
        else:
            msg = yield from ctx.recv(0, tag=ctx.rank)
            assert msg.src == 0

    res, _ = run_job(prog, 4, nodes=[0, 40, 80, 120])
    assert res.finished


def test_wildcard_source_and_tag():
    order = []

    def prog(ctx):
        if ctx.rank in (0, 1):
            yield from ctx.send(2, 128, tag=ctx.rank + 10)
        else:
            for _ in range(2):
                msg = yield from ctx.recv(ANY_SOURCE, ANY_TAG)
                order.append((msg.src, msg.tag))

    res, _ = run_job(prog, 3, nodes=[0, 1, 130])
    assert res.finished
    assert sorted(order) == [(0, 10), (1, 11)]


def test_unexpected_message_queue():
    """Message arriving before the recv is posted still matches."""

    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 256)
        else:
            yield ctx.compute(1e-3)  # arrive late to the party
            msg = yield from ctx.recv(0)
            assert msg.nbytes == 256

    res, _ = run_job(prog, 2)
    assert res.finished


def test_tag_matching_is_selective():
    seen = []

    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 100, tag=1)
            yield from ctx.send(1, 200, tag=2)
        else:
            m2 = yield from ctx.recv(0, tag=2)
            m1 = yield from ctx.recv(0, tag=1)
            seen.extend([m2.nbytes, m1.nbytes])

    res, _ = run_job(prog, 2)
    assert res.finished
    assert seen == [200, 100]


def test_latency_recorded_at_receiver():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 4096)
        else:
            yield from ctx.recv(0)

    res, _ = run_job(prog, 2, nodes=[0, 143])
    assert len(res.rank_stats[1].latencies) == 1
    assert len(res.rank_stats[0].latencies) == 0
    assert res.rank_stats[1].latencies[0] > 0


def test_comm_time_counts_blocked_wait_only():
    def prog(ctx):
        if ctx.rank == 0:
            yield ctx.compute(5e-3)
            yield from ctx.send(1, 64)
        else:
            yield from ctx.recv(0)  # blocks ~5 ms waiting

    res, _ = run_job(prog, 2)
    assert res.rank_stats[1].comm_time == pytest.approx(5e-3, rel=0.05)
    assert res.rank_stats[0].comm_time < 1e-4
    assert res.rank_stats[0].compute_time == pytest.approx(5e-3)


def test_blocking_send_stalls_on_injection():
    """A blocking send of a huge message takes ~size/terminal_bw."""

    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 1 << 24)  # 16 MiB

    res, fabric = run_job(prog, 2)
    expected = (1 << 24) / fabric.config.terminal_bw
    assert res.rank_stats[0].comm_time == pytest.approx(expected, rel=0.05)


def test_self_send():
    def prog(ctx):
        req = yield ctx.irecv(0)
        yield ctx.isend(0, 128)
        msg = yield ctx.wait(req)
        assert msg.src == 0

    res, _ = run_job(prog, 1)
    assert res.finished


def test_send_to_invalid_rank_raises():
    def prog(ctx):
        yield ctx.isend(5, 10)

    with pytest.raises(ValueError, match="invalid rank"):
        run_job(prog, 2)


def test_counters_track_calls():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 10)
            req = yield ctx.isend(1, 10)
            yield ctx.wait(req)
        else:
            yield from ctx.recv(0)
            yield from ctx.recv(0)

    res, _ = run_job(prog, 2)
    c0 = res.rank_stats[0].counters
    assert c0["MPI_Send"] == 1
    assert c0["MPI_Isend"] == 1
    assert res.rank_stats[1].counters["MPI_Recv"] == 2


def test_bytes_sent_accounting():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 1000)
            yield from ctx.send(1, 500)

    res, _ = run_job(prog, 2)
    assert res.rank_stats[0].bytes_sent == 1500
    assert res.total_bytes_sent() == 1500


def test_sendrecv_exchange():
    def prog(ctx):
        peer = 1 - ctx.rank
        msg = yield from ctx.sendrecv(peer, peer, 2048, tag=9)
        assert msg.src == peer

    res, _ = run_job(prog, 2, nodes=[0, 80])
    assert res.finished
