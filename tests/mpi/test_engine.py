"""SimMPI job management and multi-job isolation."""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric


def make_mpi():
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=1), routing="min")
    return SimMPI(fabric)


def exchange(ctx):
    peer = ctx.size - 1 - ctx.rank
    if peer == ctx.rank:
        return
    yield from ctx.sendrecv(peer, peer, 1024, tag=1)


def test_jobspec_validation():
    with pytest.raises(ValueError, match="at least 1 rank"):
        JobSpec("x", 0, exchange, [])
    with pytest.raises(ValueError, match="rank_to_node"):
        JobSpec("x", 2, exchange, [0])


def test_add_job_checks_nodes():
    mpi = make_mpi()
    with pytest.raises(ValueError, match="outside system"):
        mpi.add_job(JobSpec("x", 1, exchange, [9999]))


def test_run_without_jobs():
    mpi = make_mpi()
    with pytest.raises(RuntimeError, match="no jobs"):
        mpi.run()


def test_cannot_add_job_after_start():
    mpi = make_mpi()
    mpi.add_job(JobSpec("a", 2, exchange, [0, 1]))
    mpi.run(until=0.1)
    with pytest.raises(RuntimeError, match="after the simulation started"):
        mpi.add_job(JobSpec("b", 2, exchange, [2, 3]))


def test_two_jobs_do_not_cross_talk():
    """Same tags, same pattern, different jobs: messages must not mix."""
    mpi = make_mpi()
    mpi.add_job(JobSpec("a", 4, exchange, [0, 1, 2, 3]))
    mpi.add_job(JobSpec("b", 4, exchange, [4, 5, 6, 7]))
    mpi.run(until=1.0)
    ra, rb = mpi.results()
    assert ra.finished and rb.finished
    assert all(s.msgs_recvd == 1 for s in ra.rank_stats)
    assert all(s.msgs_recvd == 1 for s in rb.rank_stats)


def test_results_metadata():
    mpi = make_mpi()
    mpi.add_job(JobSpec("alpha", 2, exchange, [0, 99], {"p": 3}))
    mpi.run(until=1.0)
    (res,) = mpi.results()
    assert res.name == "alpha"
    assert res.app_id == 0
    assert res.nranks == 2
    assert res.finished
    assert all(s.finished_at > 0 for s in res.rank_stats)


def test_params_visible_to_program():
    seen = {}

    def prog(ctx):
        seen["params"] = ctx.params
        seen["job"] = ctx.job_name
        return
        yield  # pragma: no cover

    mpi = make_mpi()
    mpi.add_job(JobSpec("pjob", 1, prog, [0], {"k": 42}))
    mpi.run(until=0.1)
    assert seen["params"] == {"k": 42}
    assert seen["job"] == "pjob"


def test_unfinished_job_reported():
    def forever(ctx):
        while True:
            yield ctx.compute(1e-3)

    mpi = make_mpi()
    mpi.add_job(JobSpec("inf", 1, forever, [0]))
    mpi.run(until=0.01)
    (res,) = mpi.results()
    assert not res.finished
    assert not mpi.all_finished()


def test_unsupported_yield_rejected():
    def bad(ctx):
        yield "nonsense"

    mpi = make_mpi()
    mpi.add_job(JobSpec("bad", 1, bad, [0]))
    with pytest.raises(TypeError, match="unsupported object"):
        mpi.run(until=0.1)


def test_compute_accumulates_compute_time():
    def prog(ctx):
        yield ctx.compute(1e-3)
        yield ctx.sleep(2e-3)

    mpi = make_mpi()
    mpi.add_job(JobSpec("c", 1, prog, [0]))
    mpi.run(until=1.0)
    (res,) = mpi.results()
    assert res.rank_stats[0].compute_time == pytest.approx(3e-3)
    assert res.rank_stats[0].finished_at == pytest.approx(3e-3)


def test_negative_compute_rejected():
    from repro.mpi.types import Compute

    with pytest.raises(ValueError):
        Compute(-1.0)


def test_log_rows_and_reset():
    def prog(ctx):
        ctx.reset_counters()
        yield ctx.compute(1e-3)
        ctx.log("elapsed", ctx.elapsed_usecs)

    mpi = make_mpi()
    mpi.add_job(JobSpec("log", 1, prog, [0]))
    mpi.run(until=1.0)
    (res,) = mpi.results()
    rows = res.rank_stats[0].log_rows
    assert len(rows) == 1
    assert rows[0][0] == "elapsed"
    assert rows[0][1] == pytest.approx(1000.0, rel=0.01)


def test_latency_summary():
    from repro.mpi.engine import RankStats

    s = RankStats()
    assert s.latency_summary() == (0.0, 0.0, 0.0)
    s.latencies.extend([1.0, 3.0, 2.0])
    assert s.latency_summary() == (1.0, 2.0, 3.0)
