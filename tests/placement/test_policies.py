"""Placement policies: structure, disjointness, determinism, capacity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.dragonfly import Dragonfly1D
from repro.network.dragonfly2d import Dragonfly2D
from repro.placement.policies import (
    PlacementError,
    make_placement,
    random_groups,
    random_nodes,
    random_routers,
)


@pytest.fixture(scope="module")
def topo():
    return Dragonfly1D.mini()  # 144 nodes, 2/router, 16/group


ALL_POLICIES = [random_nodes, random_routers, random_groups]


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_sizes_and_disjointness(policy, topo):
    sizes = [10, 20, 5]
    placements = policy(topo, sizes, seed=1)
    assert [len(p) for p in placements] == sizes
    flat = [n for p in placements for n in p]
    assert len(flat) == len(set(flat))
    assert all(0 <= n < topo.n_nodes for n in flat)


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_deterministic_per_seed(policy, topo):
    a = policy(topo, [8, 8], seed=42)
    b = policy(topo, [8, 8], seed=42)
    c = policy(topo, [8, 8], seed=43)
    assert a == b
    assert a != c


def test_random_routers_allocates_whole_routers(topo):
    placements = random_routers(topo, [7, 9], seed=2)
    for nodes in placements:
        routers = {topo.router_of_node(n) for n in nodes}
        # No router is shared with the other job.
        for other in placements:
            if other is nodes:
                continue
            other_routers = {topo.router_of_node(n) for n in other}
            assert not (routers & other_routers)


def test_random_groups_allocates_whole_groups(topo):
    placements = random_groups(topo, [20, 30], seed=3)
    group_sets = [
        {topo.group_of_node(n) for n in nodes} for nodes in placements
    ]
    assert not (group_sets[0] & group_sets[1])
    # 20 nodes need 2 groups of 16; 30 need 2.
    assert len(group_sets[0]) == 2
    assert len(group_sets[1]) == 2


def test_random_groups_nodes_consecutive_within_groups(topo):
    (nodes,) = random_groups(topo, [16], seed=4)
    g = topo.group_of_node(nodes[0])
    assert nodes == list(topo.nodes_of_group(g))


def test_capacity_errors(topo):
    with pytest.raises(PlacementError, match="only"):
        random_nodes(topo, [topo.n_nodes + 1], seed=0)
    with pytest.raises(PlacementError, match="whole routers"):
        # 100 jobs of 1 rank each need 100 routers > 72.
        random_routers(topo, [1] * 100, seed=0)
    with pytest.raises(PlacementError, match="whole groups"):
        random_groups(topo, [1] * 10, seed=0)  # 10 groups > 9
    with pytest.raises(PlacementError, match="non-positive"):
        random_nodes(topo, [0], seed=0)


def test_make_placement_dispatch(topo):
    for name in ("rn", "rr", "rg", "RN"):
        out = make_placement(name, topo, [4], seed=0)
        assert len(out[0]) == 4
    with pytest.raises(PlacementError, match="unknown placement"):
        make_placement("best-fit", topo, [4], seed=0)


def test_random_nodes_scatter_across_routers(topo):
    """RN should usually split router-mates across jobs (the property
    the paper blames for its worst-case interference)."""
    placements = random_nodes(topo, [72, 72], seed=7)
    routers_a = {topo.router_of_node(n) for n in placements[0]}
    routers_b = {topo.router_of_node(n) for n in placements[1]}
    assert routers_a & routers_b  # plenty of shared routers


@given(st.lists(st.integers(1, 30), min_size=1, max_size=4), st.integers(0, 100))
@settings(max_examples=50, deadline=None)
def test_property_disjoint_any_policy(sizes, seed):
    topo = Dragonfly1D.mini()
    if sum(sizes) > topo.n_nodes:
        return
    for name in ("rn", "rr", "rg"):
        try:
            placements = make_placement(name, topo, sizes, seed)
        except PlacementError:
            continue  # rr/rg may legitimately run out of routers/groups
        flat = [n for p in placements for n in p]
        assert len(flat) == len(set(flat))
        assert [len(p) for p in placements] == sizes


def test_policies_work_on_2d():
    topo = Dragonfly2D.mini()
    for name in ("rn", "rr", "rg"):
        placements = make_placement(name, topo, [12, 12], seed=1)
        flat = [n for p in placements for n in p]
        assert len(set(flat)) == 24


def test_rr_rejects_non_uniform_node_attachment():
    from repro.network.fattree import FatTreeTopology

    topo = FatTreeTopology(k=4)  # only edge switches host nodes
    with pytest.raises(PlacementError, match="uniform node attachment"):
        make_placement("rr", topo, [4], seed=1)
    # RN has no structural requirement and still works.
    flat = [n for p in make_placement("rn", topo, [4, 4], seed=1) for n in p]
    assert len(set(flat)) == 8


def test_rg_rejects_group_less_fabrics():
    from repro.network.torus import TorusTopology

    topo = TorusTopology((4, 4), nodes_per_router=2)
    with pytest.raises(PlacementError, match="group structure"):
        make_placement("rg", topo, [4], seed=1)
    # RR is fine on a torus: every router hosts nodes uniformly.
    nodes = make_placement("rr", topo, [5], seed=1)[0]
    assert len(nodes) == 5
