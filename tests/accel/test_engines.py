"""The accel engines end to end: registry, parity goldens, surfacing.

The headline guarantee (the tentpole's oracle): an ``accel-*`` engine
commits the *identical* event sequence as its pure-Python counterpart
-- scenario result JSON bit-identical modulo the ``engine`` stanza --
on both backends, with the backend that actually ran surfaced
non-vacuously in that stanza.  Compiled-backend cases are gated on this
host being able to build the kernel; the forced-``python`` cases run
unconditionally, so fallback parity can never go vacuous.
"""

import json
import os
import shutil

import pytest

from repro.accel import kernel_status
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.registry import RegistryError, build_engine, engine_registry
from repro.scenario import parse_scenario, run_scenario

COMPILED = kernel_status()["available"]
needs_kernel = pytest.mark.skipif(
    not COMPILED, reason=f"no compiled kernel: {kernel_status()['reason']}")


# -- registry integration ----------------------------------------------------

def test_registry_entries_and_aliases():
    seq = engine_registry.get("accel-sequential")
    con = engine_registry.get("accel-conservative")
    assert engine_registry.get("fast") is seq
    assert engine_registry.get("fast-yawns") is con
    backend = {p.name: p for p in seq.params}["backend"]
    assert backend.choices == ("compiled", "python")
    assert backend.default == "compiled"
    con_params = {p.name for p in con.params}
    assert con_params == {"partitions", "lookahead", "backend"}
    assert con.partitioned and not seq.partitioned


def test_bogus_backend_rejected_with_choices():
    with pytest.raises(RegistryError, match="compiled"):
        build_engine({"type": "accel-sequential", "backend": "bogus"},
                     Dragonfly1D.mini(), NetworkConfig())


def test_compiler_host_actually_compiles():
    """Non-vacuity guard for this whole file: a host with a C compiler
    and no disable switch must report the kernel available -- otherwise
    every compiled-gated parity case above would silently skip."""
    if os.environ.get("UNION_ACCEL_DISABLE"):
        pytest.skip("UNION_ACCEL_DISABLE set")
    if shutil.which("cc") is None and shutil.which("gcc") is None:
        pytest.skip("no C compiler on this host")
    assert COMPILED, kernel_status()["reason"]


# -- scenario parity goldens -------------------------------------------------

def _scenario(engine_table):
    return parse_scenario({
        "name": "accel-golden", "seed": 11, "horizon": 2.0,
        "topology": {"network": "1d", "scale": "mini"},
        "routing": "adp",
        "engine": engine_table,
        "jobs": [
            {"name": "nn", "app": "nn", "nranks": 8,
             "params": {"iters": 3, "msg_bytes": 32768, "dims": (2, 2, 2)}},
            {"name": "ur", "app": "ur", "nranks": 8,
             "params": {"iters": 4, "msg_bytes": 8192}},
        ],
    })


def _result_json(engine_table):
    doc = run_scenario(_scenario(engine_table)).to_json_dict()
    return doc.pop("engine"), json.dumps(doc, sort_keys=True)


def test_python_backend_bit_identical_to_sequential():
    _, base = _result_json({"type": "sequential"})
    eng, doc = _result_json({"type": "accel-sequential", "backend": "python"})
    assert doc == base
    assert eng["backend"] == "python"
    assert eng["backend_reason"] == "backend 'python' requested"


@needs_kernel
def test_compiled_sequential_bit_identical_to_sequential():
    _, base = _result_json({"type": "sequential"})
    eng, doc = _result_json({"type": "accel-sequential"})
    assert doc == base
    # Non-vacuous: the compiled kernel actually ran.
    assert eng["backend"] == "compiled"
    assert eng["backend_reason"] is None


@needs_kernel
def test_compiled_conservative_bit_identical_to_sequential():
    _, base = _result_json({"type": "sequential"})
    eng, doc = _result_json({"type": "accel-conservative", "partitions": 3})
    assert doc == base
    assert eng["backend"] == "compiled"
    assert eng["scheme"] == "group"
    assert eng["windows"] > 0


def test_python_conservative_bit_identical_to_sequential():
    _, base = _result_json({"type": "sequential"})
    eng, doc = _result_json({"type": "accel-conservative", "partitions": 3,
                             "backend": "python"})
    assert doc == base
    assert eng["backend"] == "python"


# -- stepping parity ---------------------------------------------------------

@needs_kernel
def test_stepping_commits_identical_sequence():
    """step(t1); step(t2) == run(t2) on the compiled kernel -- the
    session-lifecycle contract the stepwise drivers build on."""
    from repro.accel import AccelSequentialEngine
    from tests.pdes.phold import build_phold, fingerprint

    ref = AccelSequentialEngine()
    ref_lps = build_phold(ref, n_lps=10, seed=23, initial=3)
    ref.run(until=60.0)

    eng = AccelSequentialEngine()
    lps = build_phold(eng, n_lps=10, seed=23, initial=3)
    for k in range(1, 13):
        eng.step(until=5.0 * k)
    assert eng.now == ref.now
    assert eng.events_processed == ref.events_processed
    assert fingerprint(lps) == fingerprint(ref_lps)


# -- engine surface details --------------------------------------------------

@needs_kernel
def test_compiled_engine_counters_and_budget():
    from repro.accel import AccelSequentialEngine
    from repro.pdes.sequential import SequentialEngine
    from tests.pdes.phold import build_phold

    ref = SequentialEngine()
    build_phold(ref, n_lps=8, seed=5, initial=2)
    ref.run(until=30.0, max_events=100)

    eng = AccelSequentialEngine()
    build_phold(eng, n_lps=8, seed=5, initial=2)
    eng.run(until=30.0, max_events=100)
    assert eng.events_processed == ref.events_processed == 100
    assert eng.now == ref.now
    assert eng.peek_time() == ref.peek_time()
    # Resumable after a budget stop, like the Python engine.
    eng.run(until=30.0)
    ref.run(until=30.0)
    assert eng.events_processed == ref.events_processed
    assert eng.now == ref.now


@needs_kernel
def test_compiled_conservative_rejects_lookahead_violation():
    from repro.accel import AccelConservativeEngine
    from repro.pdes.lp import LP

    class Fwd(LP):
        def handle(self, event):
            # Cross-partition hop closer than the lookahead: illegal.
            self.engine.schedule(1e-9, dst=1, kind="tick")

    eng = AccelConservativeEngine(lookahead=0.5, n_partitions=2)
    a, b = Fwd(), Fwd()
    eng.register(a, partition=0)
    eng.register(b, partition=1)
    eng.schedule_at(1.0, a.lp_id, "tick")
    with pytest.raises(RuntimeError, match="lookahead violation"):
        eng.run(until=5.0)
    # The finally-path bookkeeping survived the raise.
    assert eng.events_processed == 0
