"""Build machinery of the compiled kernel: lazy compile, cache, fallback.

The contract under test: ``load_kernel`` builds the C extension on
first use into a source-hash-keyed cache, *anything* that prevents a
native kernel raises :exc:`AccelUnavailable` with a human-readable
reason, and the engine factories turn that reason into a recorded
``backend: python`` fallback instead of an error.  ``pip install`` and
import must never require a compiler.
"""

import shutil

import pytest

from repro.accel import (
    AccelUnavailable,
    accel_sequential_engine,
    kernel_status,
    load_kernel,
)
from repro.accel import build as accel_build


@pytest.fixture()
def reset_memo():
    """Run with a dropped memo and drop it again afterwards, so this
    test's cache/compiler monkeypatching cannot leak into other tests."""
    accel_build._reset_for_tests()
    yield
    accel_build._reset_for_tests()


def test_kernel_status_shape():
    st = kernel_status()
    assert set(st) == {"available", "reason", "compiler"}
    assert isinstance(st["available"], bool)
    # Exactly one of available / reason, never both.
    assert st["available"] == (st["reason"] == "")


def test_disable_env_forces_fallback_with_reason(monkeypatch):
    monkeypatch.setenv("UNION_ACCEL_DISABLE", "1")
    with pytest.raises(AccelUnavailable, match="UNION_ACCEL_DISABLE"):
        load_kernel()
    assert kernel_status()["available"] is False
    eng = accel_sequential_engine()
    assert eng.backend == "python"
    assert "UNION_ACCEL_DISABLE" in eng.backend_reason
    # The env check precedes the memo: the same process recovers as
    # soon as the switch is lifted (to the compiled kernel when this
    # host can build one, else to the memoized real reason).
    monkeypatch.delenv("UNION_ACCEL_DISABLE")
    assert "UNION_ACCEL_DISABLE" not in kernel_status()["reason"]


def test_no_compiler_records_clean_fallback(tmp_path, monkeypatch, reset_memo):
    """A host with no compiler and no cached artifact: factories fall
    back, nothing raises, the reason names the probe that failed."""
    monkeypatch.delenv("UNION_ACCEL_DISABLE", raising=False)
    monkeypatch.setenv("UNION_ACCEL_CACHE", str(tmp_path / "empty"))
    monkeypatch.setattr(accel_build, "_find_compiler", lambda: None)
    with pytest.raises(AccelUnavailable, match="no C compiler"):
        load_kernel()
    eng = accel_sequential_engine()
    assert eng.backend == "python"
    assert "no C compiler" in eng.backend_reason
    # The failure is memoized too -- no repeated compiler probing.
    assert accel_build._memo == (None, eng.backend_reason)


def test_backend_python_is_always_available():
    eng = accel_sequential_engine(backend="python")
    assert eng.backend == "python"
    assert eng.backend_reason == "backend 'python' requested"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown accel backend"):
        accel_sequential_engine(backend="rust")


@pytest.mark.skipif(shutil.which("cc") is None and shutil.which("gcc") is None,
                    reason="no C compiler on this host")
def test_fresh_build_into_cache_dir(tmp_path, monkeypatch, reset_memo):
    """End-to-end compile into an empty cache: the one-time build leaves
    a keyed artifact and the loaded module exports the kernel ABI."""
    monkeypatch.delenv("UNION_ACCEL_DISABLE", raising=False)
    monkeypatch.setenv("UNION_ACCEL_CACHE", str(tmp_path))
    mod = load_kernel()
    assert mod.SEQ_ORIGIN_SHIFT == 40
    assert callable(mod.Kernel)
    artifacts = list(tmp_path.glob("_union_accel.*"))
    assert len(artifacts) == 1
    # Second call is memoized -- same module object, no rebuild.
    assert load_kernel() is mod
