"""Component registry: rosters, parameter validation, capability errors."""

import pytest

from repro.network.dragonfly import Dragonfly1D
from repro.network.routing import AdaptiveRouting, MinimalRouting
from repro.network.torus import TorusTopology
from repro.registry import (
    Param,
    RegistryError,
    RoutingSpec,
    TopologySpec,
    all_routing_names,
    available_placements,
    available_routings,
    build_topology,
    capabilities_of,
    check_placement,
    placement_registry,
    register_routing,
    register_topology,
    resolve_routing,
    topology_registry,
)


def test_builtin_roster_and_aliases():
    assert topology_registry.names() == (
        "dragonfly1d", "dragonfly2d", "fattree", "torus", "slimfly"
    )
    assert topology_registry.get("1d").name == "dragonfly1d"
    assert topology_registry.get("2D").name == "dragonfly2d"
    assert placement_registry.names() == ("rg", "rr", "rn")
    assert set(all_routing_names()) == {"min", "adp", "dmodk", "random", "adaptive", "dor"}


def test_build_topology_presets_match_legacy_classmethods():
    mini = build_topology({"type": "1d", "scale": "mini"})
    assert isinstance(mini, Dragonfly1D)
    assert mini.describe() == Dragonfly1D.mini().describe()
    paper = build_topology({"type": "dragonfly1d", "scale": "paper"})
    assert paper.describe() == Dragonfly1D.paper().describe()
    assert build_topology({"type": "fattree"}).n_nodes == 128  # mini default


def test_build_topology_param_overlay():
    t = build_topology({"type": "dragonfly1d", "scale": "mini", "n_groups": 4})
    assert t.n_groups == 4 and t.routers_per_group == 8  # preset kept
    t2 = build_topology({"type": "torus", "dims": [2, 2], "nodes_per_router": 3})
    assert t2.n_routers == 4 and t2.n_nodes == 12


@pytest.mark.parametrize("table,match", [
    ({"dims": [4]}, "missing 'type' key"),
    ({"type": "mobius"}, "unknown topology 'mobius'"),
    ({"type": "fattree", "k": "wide"}, "topology.k: expected an integer"),
    ({"type": "fattree", "kk": 8}, "unknown parameter 'kk'"),
    ({"type": "torus", "dims": [4, "x"]}, "array of integers"),
    ({"type": "torus", "dims": [4, 1]}, "must be >= 2"),
    ({"type": "torus", "scale": "huge"}, "unknown scale 'huge'"),
])
def test_build_topology_errors(table, match):
    with pytest.raises(RegistryError, match=match):
        build_topology(table)


def test_resolve_routing_dispatches_per_topology():
    df = build_topology({"type": "1d"})
    torus = build_topology({"type": "torus"})
    probe = lambda r, p: 0
    from repro.network.config import NetworkConfig

    cfg = NetworkConfig()
    assert isinstance(resolve_routing("min", df)(df, cfg, probe, 1), MinimalRouting)
    assert isinstance(resolve_routing("adp", df)(df, cfg, probe, 1), AdaptiveRouting)
    # 'min' means something different on a slim fly than on a dragonfly.
    sf = build_topology({"type": "slimfly"})
    assert resolve_routing("min", sf)(sf, cfg, probe, 1).name == "slimfly-min"
    with pytest.raises(RegistryError,
                       match=r"routing 'adp' is not available on topology 'torus'; "
                             r"choose from \['dor'\]"):
        resolve_routing("adp", torus)
    with pytest.raises(RegistryError, match=r"'turbo' is not one of \['dor'\]"):
        resolve_routing("turbo", torus)


def test_available_components_per_topology():
    assert available_routings("fattree") == ("dmodk", "random", "adaptive")
    assert available_routings("1d") == ("min", "adp")
    assert available_placements("torus") == ("rr", "rn")
    assert available_placements("fattree") == ("rn",)
    assert available_placements("dragonfly2d") == ("rg", "rr", "rn")


def test_check_placement_capability_errors():
    torus = build_topology({"type": "torus"})
    fattree = build_topology({"type": "fattree"})
    check_placement("rn", torus)
    check_placement("rr", torus)
    with pytest.raises(RegistryError, match="requires dragonfly-style group structure"):
        check_placement("rg", torus)
    with pytest.raises(RegistryError, match="uniform node attachment"):
        check_placement("rr", fattree)
    with pytest.raises(RegistryError, match="'best' is not one of"):
        check_placement("best", torus)


def test_capabilities_structural_fallback_for_unregistered_topologies():
    class Duck:
        name = "duck"
        n_routers = 4
        nodes_per_router = 2
        n_nodes = 8

    caps = capabilities_of(Duck())
    assert caps.uniform_nodes and not caps.has_groups and caps.label == "duck"
    # A registered instance answers from its spec, not structurally.
    caps = capabilities_of(build_topology({"type": "fattree"}))
    assert not caps.uniform_nodes and not caps.has_groups


def test_register_topology_validates_presets_and_defaults():
    with pytest.raises(ValueError, match="lacks presets"):
        register_topology(TopologySpec(
            name="halfbaked", summary="", cls=TorusTopology,
            presets={"mini": {}}, routings=("dor",), default_routing="dor",
        ))
    with pytest.raises(ValueError, match="default_routing"):
        register_topology(TopologySpec(
            name="halfbaked", summary="", cls=TorusTopology,
            presets={"mini": {}, "paper": {}},
            routings=("dor",), default_routing="warp",
        ))


def test_register_custom_component_reaches_every_surface():
    """The docs/registry.md story: one registration, usable everywhere."""

    class RingTopology(TorusTopology):
        name = "ring"

        def __init__(self, length: int = 8, nodes_per_router: int = 1) -> None:
            super().__init__((length,), nodes_per_router)

    try:
        register_topology(TopologySpec(
            name="ring",
            summary="1-D torus",
            params=(Param("length", "int", "ring size", minimum=2),
                    Param("nodes_per_router", "int", minimum=1)),
            cls=RingTopology,
            presets={"mini": dict(length=8, nodes_per_router=1),
                     "paper": dict(length=64, nodes_per_router=2)},
            routings=("dor",),
            default_routing="dor",
        ))
        register_routing("ring", RoutingSpec(
            "dor", "dimension-order", factory=lambda t, c, p, stream_id=0:
            __import__("repro.network.torus", fromlist=["TorusDORRouting"])
            .TorusDORRouting(t, c, p, stream_id)))
        ring = build_topology({"type": "ring", "length": 6})
        assert ring.n_routers == 6
        assert available_routings("ring") == ("dor",)
        assert available_placements("ring") == ("rr", "rn")

        from repro.scenario import parse_scenario, run_scenario

        spec = parse_scenario({
            "topology": {"type": "ring", "length": 6, "nodes_per_router": 2},
            "placement": "rr",
            "horizon": 0.005,
            "jobs": [{"app": "ur", "nranks": 8, "params": {"iters": 1}}],
        }, name="ring-demo")
        assert spec.routing == "dor"  # topology's registry default
        result = run_scenario(spec)
        assert result.job("ur").started
    finally:
        topology_registry._specs.pop("ring", None)
        from repro.registry.routings import _ROUTINGS

        _ROUTINGS.pop(("ring", "dor"), None)


def test_workload_manager_rejects_capability_mismatches():
    from repro.registry import RegistryError
    from repro.union.manager import WorkloadManager
    from repro.workloads.uniform_random import uniform_random

    mgr = WorkloadManager(build_topology({"type": "torus"}), routing="adp",
                          placement="rn")
    mgr.add_program_job("ur", 4, uniform_random, {"iters": 1})
    with pytest.raises(RegistryError, match="routing 'adp' is not available"):
        mgr.run(until=0.01)

    mgr = WorkloadManager(build_topology({"type": "fattree"}), routing="dmodk",
                          placement="rr")
    mgr.add_program_job("ur", 4, uniform_random, {"iters": 1})
    with pytest.raises(RegistryError, match="placement 'rr' is not available"):
        mgr.run(until=0.01)


def test_routing_spec_lookup_uses_canonical_errors():
    from repro.registry import routing_spec

    assert routing_spec("torus", "dor").name == "dor"
    with pytest.raises(RegistryError, match="routing 'adp' is not available"):
        routing_spec("torus", "adp")


def test_register_topology_rejects_unsupported_default_placement():
    with pytest.raises(ValueError, match="default_placement 'rg'"):
        register_topology(TopologySpec(
            name="groupless", summary="", cls=TorusTopology,
            presets={"mini": {}, "paper": {}},
            routings=("dor",), default_routing="dor",
            default_placement="rg", has_groups=False,
        ))
    assert "groupless" not in topology_registry


def test_registered_custom_placement_reaches_the_manager():
    """register_placement once -> scenario parse + manager run both see it."""
    from repro.registry import PlacementSpec, placement_registry, register_placement
    from repro.scenario import parse_scenario, run_scenario

    def packed(topo, job_sizes, seed=0, allowed_nodes=None):
        pool = sorted(allowed_nodes) if allowed_nodes is not None else list(range(topo.n_nodes))
        out, cursor = [], 0
        for size in job_sizes:
            out.append(pool[cursor:cursor + size])
            cursor += size
        return out

    try:
        register_placement(PlacementSpec("pack", "first-fit packing", func=packed))
        spec = parse_scenario({
            "topology": {"type": "torus", "dims": [2, 2, 2]},
            "placement": "pack",
            "horizon": 0.005,
            "jobs": [{"app": "ur", "nranks": 4, "params": {"iters": 1}},
                     {"app": "ur", "nranks": 4, "params": {"iters": 1},
                      "name": "late", "arrival": 0.001}],
        }, name="packed")
        result = run_scenario(spec)
        app = result.outcome.app("ur")
        assert app.nodes == [0, 1, 2, 3]  # packed, not shuffled
        assert result.job("late").started
    finally:
        placement_registry._specs.pop("pack", None)


# -- engine registry ---------------------------------------------------------

def test_engine_registry_roster():
    from repro.registry import available_engines, engine_registry

    assert available_engines() == ("sequential", "conservative",
                                   "mp-conservative", "timewarp",
                                   "accel-sequential", "accel-conservative")
    assert engine_registry.canonical("seq") == "sequential"
    assert engine_registry.canonical("yawns") == "conservative"
    assert engine_registry.canonical("mp") == "mp-conservative"
    assert engine_registry.canonical("tw") == "timewarp"
    assert engine_registry.canonical("fast") == "accel-sequential"
    assert engine_registry.canonical("fast-yawns") == "accel-conservative"
    spec = engine_registry.get("conservative")
    assert spec.partitioned
    assert spec.param_names() == ("partitions", "lookahead")
    mp = engine_registry.get("mp-conservative")
    assert mp.partitioned
    assert mp.param_names() == ("partitions", "lookahead", "backend")
    tw = engine_registry.get("timewarp")
    assert not tw.partitioned
    assert tw.param_names() == ("gvt_interval",)
    acc = engine_registry.get("accel-sequential")
    assert not acc.partitioned
    assert acc.param_names() == ("backend",)
    acc_con = engine_registry.get("accel-conservative")
    assert acc_con.partitioned
    assert acc_con.param_names() == ("partitions", "lookahead", "backend")


def test_build_engine_dispatches_and_validates():
    from repro.pdes.conservative import ConservativeEngine
    from repro.pdes.sequential import SequentialEngine
    from repro.registry import RegistryError, build_engine

    topo = Dragonfly1D.mini()
    assert isinstance(build_engine({"type": "sequential"}, topo), SequentialEngine)
    eng = build_engine({"type": "conservative", "partitions": 3}, topo)
    assert isinstance(eng, ConservativeEngine)
    assert eng.n_partitions == 3
    with pytest.raises(RegistryError, match="unknown engine"):
        build_engine({"type": "warp"}, topo)
    with pytest.raises(RegistryError, match="missing 'type'"):
        build_engine({"partitions": 2}, topo)
    with pytest.raises(RegistryError, match="must be >= 1"):
        build_engine({"type": "conservative", "partitions": 0}, topo)
    # Structural mismatches carry the registry key path.
    with pytest.raises(RegistryError, match="engine: cannot split"):
        build_engine({"type": "conservative", "partitions": 12}, topo)


def test_register_custom_engine_reaches_cli_and_scenarios():
    from repro.pdes.sequential import SequentialEngine
    from repro.registry import EngineSpec, engine_registry, register_engine
    from repro.scenario import parse_scenario

    register_engine(EngineSpec(
        name="turbo",
        summary="test engine",
        factory=lambda topo, config: SequentialEngine(),
    ))
    try:
        data = {"jobs": [{"app": "nn"}], "engine": {"type": "turbo"}}
        assert parse_scenario(data).engine == {"type": "turbo"}
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "--engine", "turbo"])
        assert args.engine == "turbo"
    finally:
        engine_registry._specs.pop("turbo", None)
