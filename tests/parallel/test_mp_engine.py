"""``repro.parallel.mp``: true multi-process partitioned execution.

The headline guarantee is the same as the in-process conservative
engine's, but across real OS processes: an ``mp-conservative`` run
commits the identical event sequence as a sequential run -- same
per-job metrics, same link loads, same event counts, bit for bit --
with cross-partition events exchanged only at YAWNS window boundaries.
Models that cannot be distributed fall back to single-process
execution with a user-facing reason, and the fallback path is held to
the same parity bar.

Parity tests here go through :class:`~repro.union.manager.
WorkloadManager` on purpose: only a session build extracts the model
recipe that lets the engine distribute, and every distributed test
asserts ``execution_mode == "distributed"`` so a silent fallback can
never make the parity check vacuous.
"""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.parallel import mp_conservative_engine
from repro.parallel.partition import PartitionError
from repro.registry import RegistryError, build_engine
from repro.scenario import parse_scenario, run_scenario
from repro.union.manager import Job, WorkloadManager
from repro.workloads.nearest_neighbor import nearest_neighbor
from repro.workloads.uniform_random import uniform_random

# Random-node placement scatters ranks across dragonfly groups, so the
# workload genuinely crosses partitions (rg would pack one group).
def _manager(engine):
    mgr = WorkloadManager(
        Dragonfly1D.mini(), routing="adp", placement="rn", seed=4,
        engine=engine,
    )
    mgr.add_job(Job("nn", 8, program=nearest_neighbor,
                    params={"dims": (2, 2, 2), "iters": 2, "msg_bytes": 8192}))
    mgr.add_job(Job("ur", 8, program=uniform_random,
                    params={"iters": 3, "msg_bytes": 4096}))
    return mgr


def _fingerprint(out):
    jobs = []
    for name in ("nn", "ur"):
        res = out.app(name).result
        jobs.append((name, res.max_comm_time(), res.avg_latency(),
                     sorted(res.all_latencies()), res.event_counts()))
    f = out.fabric
    return (tuple(jobs), f.engine.events_processed, f.messages_delivered,
            f.bytes_sent, f.link_loads.summary())


@pytest.fixture(scope="module")
def sequential_ref():
    return _fingerprint(_manager(None).run(until=1.0))


@pytest.mark.parametrize("partitions", [2, 3])
def test_inline_backend_bit_identical(sequential_ref, partitions):
    mgr = _manager({"type": "mp-conservative", "partitions": partitions,
                    "backend": "inline"})
    out = mgr.run(until=1.0)
    eng = out.fabric.engine
    assert eng.execution_mode == "distributed"
    assert eng.fallback_reason is None
    assert eng.windows_executed > 1
    assert _fingerprint(out) == sequential_ref


def test_inline_backend_spreads_commits_across_partitions():
    mgr = _manager({"type": "mp-conservative", "partitions": 3,
                    "backend": "inline"})
    out = mgr.run(until=1.0)
    eng = out.fabric.engine
    assert eng.execution_mode == "distributed"
    assert sum(eng.committed_by_partition) == eng.events_processed
    assert all(c > 0 for c in eng.committed_by_partition)


def test_spawn_backend_bit_identical(sequential_ref):
    """The real thing: one spawned worker process per partition."""
    mgr = _manager({"type": "mp-conservative", "partitions": 3,
                    "backend": "mp"})
    out = mgr.run(until=1.0)
    eng = out.fabric.engine
    assert eng.execution_mode == "distributed"
    assert eng.fallback_reason is None
    assert all(c > 0 for c in eng.committed_by_partition)
    assert _fingerprint(out) == sequential_ref


def test_stepping_parity(sequential_ref):
    """step(t1); step(t2); step(horizon) commits the identical sequence
    as one run -- window exchange state survives across steps."""
    mgr = _manager({"type": "mp-conservative", "partitions": 3,
                    "backend": "inline"})
    session = mgr.session()
    session.build()
    for t in (0.0001, 0.0004, 1.0):
        session.step(t)
    out = session.finalize()
    assert out.fabric.engine.execution_mode == "distributed"
    assert _fingerprint(out) == sequential_ref


# -- fallback: ineligible models keep the single-process path ----------------

def test_fallback_without_session_still_matches():
    """Driving the engine through bare fabric + SimMPI (no session, so
    no recipe) falls back cleanly and stays bit-identical."""
    def run(engine):
        fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=9),
                               routing="adp", engine=engine)
        mpi = SimMPI(fabric)
        mpi.add_job(JobSpec("nn", 8, nearest_neighbor, list(range(8)),
                            {"dims": (2, 2, 2), "iters": 2, "msg_bytes": 8192}))
        mpi.run(until=1.0)
        res = mpi.results()[0]
        return (res.avg_latency(), res.max_comm_time(),
                fabric.engine.events_processed)

    ref = run(None)
    eng = mp_conservative_engine(Dragonfly1D.mini(), NetworkConfig(seed=9),
                                 partitions=3, backend="inline")
    assert run(eng) == ref
    assert eng.execution_mode == "local"
    assert "no model recipe bound" in eng.fallback_reason


def test_fallback_on_late_arrival_still_matches():
    def run(engine):
        mgr = WorkloadManager(Dragonfly1D.mini(), routing="adp",
                              placement="rn", seed=4, engine=engine)
        mgr.add_job(Job("nn", 8, program=nearest_neighbor,
                        params={"dims": (2, 2, 2), "iters": 2,
                                "msg_bytes": 8192}))
        mgr.add_job(Job("late", 8, program=uniform_random, arrival=0.0005,
                        params={"iters": 2, "msg_bytes": 4096}))
        return mgr.run(until=1.0)

    ref = run(None)
    out = run({"type": "mp-conservative", "partitions": 3,
               "backend": "inline"})
    eng = out.fabric.engine
    assert eng.execution_mode == "local"
    assert "arrives at t=0.0005" in eng.fallback_reason
    for name in ("nn", "late"):
        assert (out.app(name).result.avg_latency()
                == ref.app(name).result.avg_latency())
    assert eng.events_processed == ref.fabric.engine.events_processed


def test_fallback_on_intervening_policy():
    from repro.scenario.spec import FaultEntry

    mgr = _manager({"type": "mp-conservative", "partitions": 3,
                    "backend": "inline"})
    out = mgr.session(policy="admission").run(until=1.0)
    eng = out.fabric.engine
    assert eng.execution_mode == "local"
    assert "policy 'admission'" in eng.fallback_reason

    faulted = WorkloadManager(
        Dragonfly1D.mini(), routing="adp", placement="rn", seed=4,
        engine={"type": "mp-conservative", "partitions": 3,
                "backend": "inline"},
        faults=[FaultEntry(name="f0", kind="link-degrade", start=0.0001,
                           duration=0.001, router=0, router_b=1, factor=0.5)],
    )
    faulted.add_job(Job("nn", 8, program=nearest_neighbor,
                        params={"dims": (2, 2, 2), "iters": 1,
                                "msg_bytes": 4096}))
    fout = faulted.run(until=1.0)
    feng = fout.fabric.engine
    assert feng.execution_mode == "local"
    assert "fault plans" in feng.fallback_reason


# -- registry + factory validation -------------------------------------------

def test_registry_rejects_unknown_backend():
    with pytest.raises(RegistryError, match="is not one of"):
        build_engine({"type": "mp-conservative", "backend": "bogus"},
                     Dragonfly1D.mini())


def test_mpi_backend_requires_mpi4py():
    from repro.parallel import have_mpi4py

    if have_mpi4py():  # pragma: no cover - image has no mpi4py
        pytest.skip("mpi4py installed; gating path not reachable")
    with pytest.raises(RegistryError, match="requires mpi4py"):
        build_engine({"type": "mp-conservative", "backend": "mpi"},
                     Dragonfly1D.mini())
    with pytest.raises(PartitionError, match="requires mpi4py"):
        mp_conservative_engine(Dragonfly1D.mini(), backend="mpi")


def test_registry_resolves_mp_alias_and_params():
    from repro.parallel.mp import MpConservativeEngine

    eng = build_engine({"type": "mp", "partitions": 3, "backend": "inline"},
                       Dragonfly1D.mini())
    assert isinstance(eng, MpConservativeEngine)
    assert eng.n_partitions == 3
    assert eng.backend_name == "inline"
    assert eng.execution_mode == "undecided"


def test_registry_builds_timewarp():
    from repro.pdes.timewarp import TimeWarpEngine

    eng = build_engine({"type": "timewarp"}, Dragonfly1D.mini())
    assert isinstance(eng, TimeWarpEngine)
    assert eng.gvt_interval == 64
    tw = build_engine({"type": "tw", "gvt_interval": 8}, Dragonfly1D.mini())
    assert tw.gvt_interval == 8
    with pytest.raises(RegistryError, match="gvt_interval"):
        build_engine({"type": "timewarp", "gvt_interval": 0},
                     Dragonfly1D.mini())


# -- scenario goldens ---------------------------------------------------------

# Program-kind apps only: skeleton apps (alexnet, cosmoflow) carry
# exec-compiled generators that cannot pickle, so they cannot ship to
# worker processes (covered by the fallback golden below).
_SCENARIO = {
    "name": "golden-mp",
    "topology": {"network": "1d", "scale": "mini"},
    "seed": 7,
    "horizon": 0.004,
    "jobs": [
        {"app": "milc", "nranks": 16},
        {"app": "nn", "nranks": 8, "params": {"dims": (2, 2, 2)}},
    ],
    "traffic": [
        {"pattern": "uniform", "nranks": 8, "msg_bytes": 4096,
         "interval_s": 1e-4},
    ],
}


def test_scenario_golden_mp_identical_modulo_engine_key():
    """The PR's acceptance golden: an all-static scenario under
    ``mp-conservative`` distributes for real and produces scenario JSON
    bit-identical to the sequential run, modulo the ``engine`` key."""
    seq = run_scenario(parse_scenario(dict(_SCENARIO))).to_json_dict()
    mp_spec = dict(_SCENARIO)
    mp_spec["engine"] = {"type": "mp-conservative", "partitions": 3,
                         "backend": "inline"}
    con = run_scenario(parse_scenario(mp_spec)).to_json_dict()
    engine = con.pop("engine")
    assert con == seq
    assert engine["type"] == "mp-conservative"
    assert engine["mode"] == "distributed"
    assert engine["fallback"] is None
    assert engine["partitions"] == 3
    assert engine["scheme"] == "group"
    assert engine["windows"] > 1
    assert engine["lookahead"] > 0


@pytest.mark.parametrize("jobs, reason", [
    ([{"app": "milc", "nranks": 16},
      {"app": "milc", "name": "milc2", "nranks": 16, "arrival": 0.001}],
     "arrives at t=0.001"),
    ([{"app": "alexnet", "nranks": 16}], "does not pickle"),
])
def test_scenario_golden_mp_fallback_identical(jobs, reason):
    """Scenarios that cannot distribute (staggered arrival, unpicklable
    skeleton app) fall back, say why in the report, and still match
    sequential bit for bit."""
    spec = dict(_SCENARIO)
    spec["jobs"] = jobs
    seq = run_scenario(parse_scenario(dict(spec))).to_json_dict()
    mp_spec = dict(spec)
    mp_spec["engine"] = {"type": "mp-conservative", "partitions": 3,
                         "backend": "inline"}
    con = run_scenario(parse_scenario(mp_spec)).to_json_dict()
    engine = con.pop("engine")
    assert con == seq
    assert engine["mode"] == "local"
    assert reason in engine["fallback"]
