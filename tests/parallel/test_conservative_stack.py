"""The full network/MPI stack on the partitioned conservative engine.

The headline guarantee: a partitioned conservative run commits the
identical event sequence as a sequential run -- same per-job metrics,
same link loads, same event counts, bit for bit -- while the lookahead
contract is *enforced* (not assumed) on every cross-partition event.
These tests drive the real stack (fabric + SimMPI + manager + scenario)
on topology-aware plans across every fabric family.
"""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.parallel import conservative_engine
from repro.pdes.sequential import SequentialEngine
from repro.scenario import parse_scenario, run_scenario
from repro.union.manager import Job, WorkloadManager
from repro.workloads.nearest_neighbor import nearest_neighbor
from repro.workloads.uniform_random import uniform_random


def _run_stack(engine):
    fabric = NetworkFabric(
        Dragonfly1D.mini(), NetworkConfig(seed=9), routing="adp", engine=engine
    )
    mpi = SimMPI(fabric)
    mpi.add_job(JobSpec(
        "nn", 8, nearest_neighbor, list(range(8)),
        {"dims": (2, 2, 2), "iters": 3, "msg_bytes": 32768},
    ))
    mpi.add_job(JobSpec(
        "ur", 8, uniform_random, list(range(64, 72)),
        {"iters": 5, "msg_bytes": 10240, "interval_s": 1e-5},
    ))
    mpi.run(until=5.0)
    return fabric, mpi


def _fingerprint(fabric, mpi):
    out = {
        "events": fabric.engine.events_processed,
        "msgs": fabric.messages_delivered,
        "bytes": fabric.bytes_sent,
        "link_summary": fabric.link_loads.summary(),
    }
    for res in mpi.results():
        assert res.finished
        out[res.name] = (
            res.max_comm_time(),
            res.avg_latency(),
            sorted(res.all_latencies()),
            res.event_counts(),
        )
    return out


@pytest.mark.parametrize("partitions", [1, 3, 9])
def test_partitioned_stack_bit_identical_to_sequential(partitions):
    ref = _fingerprint(*_run_stack(SequentialEngine()))
    eng = conservative_engine(
        Dragonfly1D.mini(), NetworkConfig(seed=9), partitions=partitions
    )
    got = _fingerprint(*_run_stack(eng))
    assert got == ref
    assert eng.windows_executed > 1
    assert sum(eng.committed_by_partition) == eng.events_processed


def test_partitioned_stack_spreads_commits_across_partitions():
    eng = conservative_engine(
        Dragonfly1D.mini(), NetworkConfig(seed=9), partitions=3
    )
    fabric = NetworkFabric(
        Dragonfly1D.mini(), NetworkConfig(seed=9), routing="adp", engine=eng
    )
    # A permutation storm touches every node, so every partition commits.
    n = fabric.topo.n_nodes
    for node in range(n):
        fabric.send_message(0, node, (node + n // 2) % n, 1 << 14)
    fabric.engine.run(until=1.0)
    assert fabric.in_flight() == 0
    assert all(c > 0 for c in eng.committed_by_partition)


def test_manager_resolves_engine_names_and_tables():
    def outcome(engine):
        mgr = WorkloadManager(
            Dragonfly1D.mini(), routing="adp", placement="rg", seed=4,
            engine=engine,
        )
        mgr.add_job(Job("nn", 8, program=nearest_neighbor,
                        params={"dims": (2, 2, 2), "iters": 2, "msg_bytes": 8192}))
        out = mgr.run(until=1.0)
        res = out.app("nn").result
        return res.avg_latency(), res.max_comm_time(), out.fabric.engine.events_processed

    ref = outcome(None)
    assert outcome("sequential") == ref
    assert outcome({"type": "conservative", "partitions": 3}) == ref
    assert outcome("conservative") == ref  # default partitions


def test_manager_rejects_bad_engine_config_before_simulating():
    from repro.registry import RegistryError

    mgr = WorkloadManager(
        Dragonfly1D.mini(), routing="adp", placement="rg",
        engine={"type": "conservative", "partitions": 12},
    )
    mgr.add_job(Job("nn", 8, program=nearest_neighbor,
                    params={"dims": (2, 2, 2), "iters": 1, "msg_bytes": 1024}))
    with pytest.raises(RegistryError, match="only 9 groups"):
        mgr.run(until=1.0)
    assert mgr.fabric is None  # failed before any LP existed


def test_conservative_telemetry_instruments_published():
    mgr = WorkloadManager(
        Dragonfly1D.mini(), routing="adp", placement="rg", seed=4,
        engine={"type": "conservative", "partitions": 3},
    )
    mgr.add_job(Job("nn", 8, program=nearest_neighbor,
                    params={"dims": (2, 2, 2), "iters": 2, "msg_bytes": 8192}))
    mgr.run(until=1.0)
    t = mgr.telemetry
    eng = mgr.fabric.engine
    assert t.value("pdes.conservative.partitions") == 3
    assert t.value("pdes.conservative.window_width") == pytest.approx(eng.lookahead)
    assert t.value("pdes.conservative.windows") == eng.windows_executed > 0
    assert t.value("pdes.conservative.max_window_events") == eng.max_window_events
    committed = [
        t.value(f"pdes.conservative.partition.{p}.committed") for p in range(3)
    ]
    assert committed == eng.committed_by_partition
    assert sum(committed) == eng.events_processed


def test_storage_servers_co_locate_with_their_node_partition():
    from repro.mpi.types import Wait
    from repro.storage import IORead, IOWrite, StorageSystem

    def run(engine):
        fabric = NetworkFabric(
            Dragonfly1D.mini(), NetworkConfig(seed=5), routing="min", engine=engine
        )
        mpi = SimMPI(fabric)
        topo = fabric.topo
        storage = StorageSystem(mpi, [topo.n_nodes - 1, topo.n_nodes - 2])

        def prog(ctx):
            for k in range(3):
                req = yield IOWrite(storage, server=k % 2, nbytes=1 << 16)
                yield Wait(req)
                req = yield IORead(storage, server=k % 2, nbytes=1 << 15)
                yield Wait(req)

        mpi.add_job(JobSpec("io", 4, prog, [0, 1, 2, 3]))
        mpi.run(until=5.0)
        st = storage.app_stats(0)
        return st.ops, st.bytes_read, st.bytes_written, st.mean_latency()

    ref = run(SequentialEngine())
    eng = conservative_engine(Dragonfly1D.mini(), NetworkConfig(seed=5), partitions=9)
    assert run(eng) == ref


def test_scenario_golden_identical_modulo_engine_key():
    """The acceptance-criterion golden test: a dragonfly scenario under
    ``engine = "conservative"`` produces scenario JSON bit-identical to
    the sequential run, modulo the new ``engine`` key."""
    base = {
        "name": "golden",
        "topology": {"network": "1d", "scale": "mini"},
        "seed": 7,
        "horizon": 0.004,
        "jobs": [
            {"app": "milc", "nranks": 16},
            {"app": "alexnet", "nranks": 16, "arrival": 0.001},
        ],
        "traffic": [
            {"pattern": "uniform", "nranks": 8, "msg_bytes": 4096,
             "interval_s": 1e-4},
        ],
    }
    seq = run_scenario(parse_scenario(dict(base))).to_json_dict()
    con_spec = dict(base)
    con_spec["engine"] = {"type": "conservative", "partitions": 3}
    con = run_scenario(parse_scenario(con_spec)).to_json_dict()
    engine = con.pop("engine")
    assert con == seq
    assert engine["type"] == "conservative"
    assert engine["partitions"] == 3
    assert engine["scheme"] == "group"
    assert engine["windows"] > 1
    assert engine["lookahead"] > 0
