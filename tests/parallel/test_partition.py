"""Partition plans: topology-aware grouping, lookahead, clear errors."""

import pytest

from repro.network.config import LinkClass, NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fattree import FatTreeTopology
from repro.network.slimfly import SlimFlyTopology
from repro.network.torus import TorusTopology
from repro.parallel import (
    PartitionError,
    conservative_engine,
    min_cross_partition_latency,
    plan_partitions,
)


def _no_split(topo, plan, same_pred):
    """No two routers satisfying ``same_pred`` land in different partitions."""
    for r1 in range(topo.n_routers):
        for r2 in range(r1 + 1, topo.n_routers):
            if same_pred(r1, r2):
                assert plan.part_of_router[r1] == plan.part_of_router[r2]


def test_dragonfly_partitions_keep_groups_whole():
    topo = Dragonfly1D.mini()  # 9 groups x 8 routers
    plan = plan_partitions(topo, 3)
    assert plan.scheme == "group"
    _no_split(topo, plan, lambda a, b: topo.group_of(a) == topo.group_of(b))
    assert sorted(set(plan.part_of_router)) == [0, 1, 2]
    # Terminals follow their router.
    for node in range(topo.n_nodes):
        assert plan.part_of_node[node] == plan.part_of_router[topo.router_of_node(node)]


def test_dragonfly_cross_partition_links_are_global_only():
    topo = Dragonfly1D.mini()
    config = NetworkConfig()
    plan = plan_partitions(topo, 3)
    part = plan.part_of_router
    crossing = {
        p.link_class
        for r, ports in enumerate(topo.router_ports)
        for p in ports
        if p.peer_router >= 0 and part[p.peer_router] != part[r]
    }
    assert crossing == {LinkClass.GLOBAL}
    assert min_cross_partition_latency(topo, config, plan) == pytest.approx(
        config.global_latency + config.router_delay
    )


def test_fattree_partitions_keep_pods_whole():
    topo = FatTreeTopology(k=4)
    plan = plan_partitions(topo, 2)
    assert plan.scheme == "pod"
    _no_split(
        topo, plan,
        lambda a, b: (not topo.is_core(a) and not topo.is_core(b)
                      and topo.pod_of(a) == topo.pod_of(b)),
    )
    # Only aggregation<->core (GLOBAL) links may cross.
    part = plan.part_of_router
    config = NetworkConfig()
    for r, ports in enumerate(topo.router_ports):
        for p in ports:
            if p.peer_router >= 0 and part[p.peer_router] != part[r]:
                assert p.link_class == LinkClass.GLOBAL
    assert min_cross_partition_latency(topo, config, plan) == pytest.approx(
        config.global_latency + config.router_delay
    )


def test_torus_partitions_are_slabs_along_longest_dimension():
    topo = TorusTopology(dims=(2, 6, 3), nodes_per_router=1)
    plan = plan_partitions(topo, 3)
    assert plan.scheme == "slab"
    for r in range(topo.n_routers):
        assert plan.part_of_router[r] == topo.coords(r)[1] * 3 // 6
    config = NetworkConfig()
    assert min_cross_partition_latency(topo, config, plan) == pytest.approx(
        config.local_latency + config.router_delay
    )


def test_slimfly_falls_back_to_contiguous_blocks():
    topo = SlimFlyTopology(q=5)
    plan = plan_partitions(topo, 4)
    assert plan.scheme == "block"
    assert plan.part_of_router == tuple(
        r * 4 // topo.n_routers for r in range(topo.n_routers)
    )


def test_single_partition_plan_has_no_crossing_links():
    topo = Dragonfly1D.mini()
    plan = plan_partitions(topo, 1)
    assert min_cross_partition_latency(topo, NetworkConfig(), plan) is None


def test_plan_is_a_partition_fn_for_fabric_lp_ids():
    topo = Dragonfly1D.mini()
    plan = plan_partitions(topo, 3)
    assert plan(0) == plan.part_of_router[0]
    assert plan(topo.n_routers) == plan.part_of_node[0]
    with pytest.raises(LookupError, match="explicit partition"):
        plan(topo.n_routers + topo.n_nodes)  # not a fabric LP


def test_describe_reports_partition_sizes():
    plan = plan_partitions(Dragonfly1D.mini(), 3)
    d = plan.describe()
    assert d["scheme"] == "group"
    assert sum(d["routers_per_partition"]) == Dragonfly1D.mini().n_routers


# -- error paths -------------------------------------------------------------

def test_too_many_partitions_for_groups_is_a_clear_error():
    with pytest.raises(PartitionError, match="only 9 groups"):
        plan_partitions(Dragonfly1D.mini(), 10)


def test_too_many_partitions_for_pods_is_a_clear_error():
    with pytest.raises(PartitionError, match="only 4 pods"):
        plan_partitions(FatTreeTopology(k=4), 5)


def test_too_many_slabs_is_a_clear_error():
    with pytest.raises(PartitionError, match="only 4 rings"):
        plan_partitions(TorusTopology(dims=(4, 4, 4)), 5)


def test_partitions_below_one_is_a_clear_error():
    with pytest.raises(PartitionError, match=">= 1"):
        plan_partitions(Dragonfly1D.mini(), 0)


def test_explicit_lookahead_above_topology_minimum_is_refused():
    topo = Dragonfly1D.mini()
    config = NetworkConfig()
    ceiling = config.global_latency + config.router_delay
    with pytest.raises(PartitionError, match="exceeds the minimum cross-partition"):
        conservative_engine(topo, config, partitions=3, lookahead=ceiling * 2)
    # At or below the ceiling it is accepted verbatim.
    eng = conservative_engine(topo, config, partitions=3, lookahead=ceiling / 2)
    assert eng.lookahead == pytest.approx(ceiling / 2)


def test_nonpositive_explicit_lookahead_is_refused():
    with pytest.raises(PartitionError, match="positive"):
        conservative_engine(Dragonfly1D.mini(), partitions=2, lookahead=0.0)


def test_derived_lookahead_matches_cross_partition_minimum():
    topo = Dragonfly1D.mini()
    config = NetworkConfig()
    eng = conservative_engine(topo, config, partitions=9)
    assert eng.lookahead == pytest.approx(config.global_latency + config.router_delay)
    assert eng.n_partitions == 9
    assert eng.plan.scheme == "group"


def test_single_partition_engine_gets_finite_lookahead():
    eng = conservative_engine(Dragonfly1D.mini(), NetworkConfig(), partitions=1)
    assert 0 < eng.lookahead < float("inf")
