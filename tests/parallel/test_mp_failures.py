"""Failure modes of multi-process execution.

Distribution must never trade determinism for silence: a worker that
dies mid-run fails the whole simulation loudly (naming the partition,
never hanging on a dead pipe), and event budgets keep single-process
semantics rather than approximating them across processes.
"""

import os
import signal

import pytest

from repro.network.dragonfly import Dragonfly1D
from repro.parallel.mp import WorkerFailure
from repro.union.manager import Job, WorkloadManager
from repro.workloads.nearest_neighbor import nearest_neighbor
from repro.workloads.uniform_random import uniform_random


def _manager(engine):
    mgr = WorkloadManager(
        Dragonfly1D.mini(), routing="adp", placement="rn", seed=4,
        engine=engine,
    )
    mgr.add_job(Job("nn", 8, program=nearest_neighbor,
                    params={"dims": (2, 2, 2), "iters": 2, "msg_bytes": 8192}))
    mgr.add_job(Job("ur", 8, program=uniform_random,
                    params={"iters": 3, "msg_bytes": 4096}))
    return mgr


def test_sigkilled_worker_fails_loudly_naming_partition():
    """SIGKILL a worker mid-run: the next window exchange raises a
    WorkerFailure naming the dead partition instead of hanging."""
    mgr = _manager({"type": "mp-conservative", "partitions": 3,
                    "backend": "mp"})
    session = mgr.session()
    session.build()
    session.step(0.0002)
    eng = session.engine
    assert eng.execution_mode == "distributed"
    victim = eng._backend.processes[1]
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=30)
    assert not victim.is_alive()
    with pytest.raises(WorkerFailure, match="partition 1"):
        session.step(1.0)
    # WorkerFailure is a RuntimeError, so generic engine-failure
    # handling upstream catches it too.
    assert issubclass(WorkerFailure, RuntimeError)
    # The backend is torn down; resuming reports that cleanly.
    with pytest.raises(RuntimeError, match="shut down"):
        session.step(1.0)
    # finalize() after the failure must not hang either (shutdown is
    # idempotent and the workers are already gone).
    eng.shutdown_workers()


def test_max_events_budget_matches_single_process():
    """A budgeted first run stays local and stops on the identical
    event count and clock as the plain conservative engine."""
    ref_mgr = _manager({"type": "conservative", "partitions": 3})
    ref_session = ref_mgr.session()
    ref_session.build()
    ref_end = ref_session.engine.run(until=1.0, max_events=300)

    mgr = _manager({"type": "mp-conservative", "partitions": 3,
                    "backend": "inline"})
    session = mgr.session()
    session.build()
    eng = session.engine
    end = eng.run(until=1.0, max_events=300)
    assert eng.execution_mode == "local"
    assert "max_events budget" in eng.fallback_reason
    assert eng.events_processed == ref_session.engine.events_processed == 300
    assert end == ref_end
    # The budget decision is sticky: later unbudgeted runs continue on
    # the same single-process heap.
    eng.run(until=1.0)
    assert eng.execution_mode == "local"
    ref_session.engine.run(until=1.0)
    assert eng.events_processed == ref_session.engine.events_processed
    assert eng.now == ref_session.engine.now


def test_max_events_after_distributed_start_raises():
    mgr = _manager({"type": "mp-conservative", "partitions": 3,
                    "backend": "inline"})
    session = mgr.session()
    session.build()
    session.step(0.0002)
    eng = session.engine
    assert eng.execution_mode == "distributed"
    with pytest.raises(RuntimeError, match="max_events budget cannot be "
                                           "applied after distributed"):
        eng.run(until=1.0, max_events=10)
    # The failed call must not have corrupted the run: stepping on to
    # the horizon still works.
    session.step(1.0)
    out = session.finalize()
    assert out.app("nn").result.finished


def test_mid_horizon_step_budget_semantics_match():
    """step(t1) then step(horizon) commits the same totals as one run,
    for the distributed path (stop-at-until is a window-exchange
    boundary condition, not an approximation)."""
    whole = _manager({"type": "mp-conservative", "partitions": 3,
                      "backend": "inline"}).run(until=1.0)
    stepped_mgr = _manager({"type": "mp-conservative", "partitions": 3,
                            "backend": "inline"})
    session = stepped_mgr.session()
    session.build()
    reached = session.step(0.00025)
    assert reached <= 0.00025
    assert session.engine.now <= 0.00025
    session.step(1.0)
    out = session.finalize()
    assert (out.fabric.engine.events_processed
            == whole.fabric.engine.events_processed)
    assert out.fabric.engine.now == whole.fabric.engine.now
    for name in ("nn", "ur"):
        assert (out.app(name).result.avg_latency()
                == whole.app(name).result.avg_latency())
