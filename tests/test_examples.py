"""Every shipped example must run to completion (smoke level).

``placement_study`` is exercised via a trimmed variant because its full
sweep belongs in benchmarks, not the unit suite.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart",
        "hybrid_workload",
        "placement_study",
        "validate_skeleton",
        "topology_explorer",
        "write_your_own",
        "trace_vs_union",
        "io_interference",
        "whatif_topologies",
        "conceptual_io",
    } <= names


def test_quickstart(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "Generated Union skeleton" in out
    assert "message latency" in out


def test_validate_skeleton(capsys):
    load_example("validate_skeleton").main()
    out = capsys.readouterr().out
    assert "Validation PASSED" in out
    assert "identical" in out


def test_write_your_own(capsys):
    load_example("write_your_own").main()
    out = capsys.readouterr().out
    assert "halo2d" in out
    assert "PASSED" in out


def test_topology_explorer(capsys):
    load_example("topology_explorer").main()
    out = capsys.readouterr().out
    assert "8448" in out
    assert "minimal-path hops" in out


def test_trace_vs_union(capsys):
    load_example("trace_vs_union").main()
    out = capsys.readouterr().out
    assert "TraceScalingError" in out
    assert "finished: True" in out


@pytest.mark.slow
def test_hybrid_workload(capsys):
    load_example("hybrid_workload").main()
    out = capsys.readouterr().out
    assert "Workload3 on mini 1D dragonfly" in out
    assert "Workload3 on mini 2D dragonfly" in out
    assert "Figure 8 style" in out


def test_io_interference(capsys):
    load_example("io_interference").main()
    out = capsys.readouterr().out
    assert "inside the solver's groups" in out
    assert "in an idle group" in out
    assert "utilization" in out


def test_conceptual_io(capsys):
    load_example("conceptual_io").main()
    out = capsys.readouterr().out
    assert "Validation PASSED" in out
    assert "IO_Read" in out


@pytest.mark.slow
def test_whatif_topologies(capsys):
    load_example("whatif_topologies").main()
    out = capsys.readouterr().out
    assert "slim fly q=5" in out
    assert "fat-tree" in out


def test_faulty_fabric_scenario_rerouted_and_slower():
    from repro.scenario import load_scenario
    from repro.scenario.runner import run_scenario

    spec = load_scenario(EXAMPLES / "scenarios" / "faulty_fabric.toml")
    assert [f.kind for f in spec.faults] == ["link-down", "link-degrade"]
    result = run_scenario(spec)
    assert result.faults["transitions"] == 4
    assert result.faults["avoided_paths"] > 0
    assert result.faults["unavoidable_paths"] == 0
    # The faults target the job's own group, so the loaded latency must
    # strictly exceed the fault-free baseline under the same placement.
    baseline_spec = load_scenario(EXAMPLES / "scenarios" / "faulty_fabric.toml")
    baseline_spec.faults.clear()
    baseline = run_scenario(baseline_spec)
    assert (result.outcome.app("nn0").nodes == baseline.outcome.app("nn0").nodes)
    assert result.job("nn0").avg_latency > baseline.job("nn0").avg_latency


def test_day_in_the_life_scenario_is_pinned_to_its_generator():
    from repro.generate import generate_mapping
    from repro.scenario import dump_toml, load_scenario
    from repro.scenario.runner import run_scenario

    path = EXAMPLES / "scenarios" / "day_in_the_life.toml"
    body = dump_toml(generate_mapping(
        {"type": "diurnal", "arrivals": 120, "period": 0.015, "horizon": 0.03},
        42))
    assert path.read_text().endswith(body), \
        "day_in_the_life.toml drifted from its generator; regenerate it"
    spec = load_scenario(path)
    assert len(spec.traffic) == 120
    result = run_scenario(spec)
    assert result.job("anchor").finished


def test_placement_study_single_combo(capsys, monkeypatch):
    mod = load_example("placement_study")
    monkeypatch.setattr(mod, "COMBOS", ("rg-adp",))
    monkeypatch.setattr(mod, "APPS", ("lammps",))
    mod.main()
    out = capsys.readouterr().out
    assert "lammps: baseline vs Workload2" in out
    assert "rg-adp" in out
