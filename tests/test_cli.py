"""CLI smoke tests via main(argv)."""

import pytest

from repro.cli import main
from repro.workloads.sources import PINGPONG_SOURCE


@pytest.fixture()
def pingpong_file(tmp_path):
    p = tmp_path / "pingpong.ncptl"
    p.write_text(PINGPONG_SOURCE)
    return str(p)


def test_systems(capsys):
    assert main(["systems", "--scale", "paper"]) == 0
    out = capsys.readouterr().out
    assert "8448" in out
    assert "1D dragonfly" in out and "2D dragonfly" in out


def test_translate(capsys, pingpong_file):
    assert main(["translate", pingpong_file, "--name", "pp"]) == 0
    out = capsys.readouterr().out
    assert "union_main" in out
    assert "UNION_MPI_Send" in out


def test_validate_passes(capsys, pingpong_file):
    assert main(["validate", pingpong_file, "--ntasks", "4", "--name", "pp"]) == 0
    out = capsys.readouterr().out
    assert "PASSED" in out
    assert "MPI_Send" in out


def test_run(capsys):
    assert main([
        "run", "--network", "1d", "--workload", "baseline:nn",
        "--placement", "rr", "--routing", "min",
    ]) == 0
    out = capsys.readouterr().out
    assert "nn" in out
    assert "link loads" in out


def test_run_workload(capsys):
    assert main(["run", "--workload", "workload2", "--placement", "rg", "--routing", "adp"]) == 0
    out = capsys.readouterr().out
    for app in ("cosmoflow", "alexnet", "lammps", "milc", "nn"):
        assert app in out


def test_simulate(capsys, pingpong_file):
    assert main(["simulate", pingpong_file, "--ntasks", "2", "--name", "pp"]) == 0
    out = capsys.readouterr().out
    assert "finished" in out and "yes" in out
    assert "max comm time" in out


def test_simulate_with_storage(capsys, tmp_path):
    p = tmp_path / "io.ncptl"
    p.write_text(
        'Require language version "1.5".\n'
        "For 2 repetitions { all tasks t reads a 65536 byte file from server t }\n"
    )
    assert main(["simulate", str(p), "--ntasks", "4", "--storage-servers", "2"]) == 0
    out = capsys.readouterr().out
    assert "I/O: 8 ops" in out
    assert "read 512.00 KB" in out


def test_simulate_io_without_storage_fails(tmp_path):
    p = tmp_path / "io.ncptl"
    p.write_text(
        'Require language version "1.5".\n'
        "task 0 writes a 1 megabyte file\n"
    )
    with pytest.raises(RuntimeError, match="no storage"):
        main(["simulate", str(p), "--ntasks", "2"])


def test_topologies(capsys):
    assert main(["topologies"]) == 0
    out = capsys.readouterr().out
    for name in ("dragonfly", "torus", "fat-tree", "slim fly"):
        assert name in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
