"""CLI smoke tests via main(argv)."""

import pytest

from repro.cli import main
from repro.workloads.sources import PINGPONG_SOURCE


@pytest.fixture()
def pingpong_file(tmp_path):
    p = tmp_path / "pingpong.ncptl"
    p.write_text(PINGPONG_SOURCE)
    return str(p)


def test_systems(capsys):
    assert main(["systems", "--scale", "paper"]) == 0
    out = capsys.readouterr().out
    assert "8448" in out
    assert "1D dragonfly" in out and "2D dragonfly" in out


def test_translate(capsys, pingpong_file):
    assert main(["translate", pingpong_file, "--name", "pp"]) == 0
    out = capsys.readouterr().out
    assert "union_main" in out
    assert "UNION_MPI_Send" in out


def test_validate_passes(capsys, pingpong_file):
    assert main(["validate", pingpong_file, "--ntasks", "4", "--name", "pp"]) == 0
    out = capsys.readouterr().out
    assert "PASSED" in out
    assert "MPI_Send" in out


def test_run(capsys):
    assert main([
        "run", "--network", "1d", "--workload", "baseline:nn",
        "--placement", "rr", "--routing", "min",
    ]) == 0
    out = capsys.readouterr().out
    assert "nn" in out
    assert "link loads" in out


def test_run_workload(capsys):
    assert main(["run", "--workload", "workload2", "--placement", "rg", "--routing", "adp"]) == 0
    out = capsys.readouterr().out
    for app in ("cosmoflow", "alexnet", "lammps", "milc", "nn"):
        assert app in out


def test_simulate(capsys, pingpong_file):
    assert main(["simulate", pingpong_file, "--ntasks", "2", "--name", "pp"]) == 0
    out = capsys.readouterr().out
    assert "finished" in out and "yes" in out
    assert "max comm time" in out


def test_simulate_with_storage(capsys, tmp_path):
    p = tmp_path / "io.ncptl"
    p.write_text(
        'Require language version "1.5".\n'
        "For 2 repetitions { all tasks t reads a 65536 byte file from server t }\n"
    )
    assert main(["simulate", str(p), "--ntasks", "4", "--storage-servers", "2"]) == 0
    out = capsys.readouterr().out
    assert "I/O: 8 ops" in out
    assert "read 512.00 KB" in out


def test_simulate_io_without_storage_fails(tmp_path):
    p = tmp_path / "io.ncptl"
    p.write_text(
        'Require language version "1.5".\n'
        "task 0 writes a 1 megabyte file\n"
    )
    with pytest.raises(RuntimeError, match="no storage"):
        main(["simulate", str(p), "--ntasks", "2"])


SCENARIO_TOML = """\
name = "cli-demo"
horizon = 0.01
placement = "rn"
[topology]
network = "1d"
[[jobs]]
app = "nn"
[jobs.params]
iters = 2
[[jobs]]
name = "late"
app = "lammps"
arrival = 0.002
[jobs.params]
iters = 2
[[traffic]]
name = "bg"
nranks = 4
interval_s = 0.001
"""


@pytest.fixture()
def scenario_file(tmp_path):
    p = tmp_path / "demo.toml"
    p.write_text(SCENARIO_TOML)
    return p


def test_scenario(capsys, scenario_file, tmp_path):
    out_json = tmp_path / "out.json"
    assert main(["scenario", str(scenario_file), "--json", str(out_json)]) == 0
    out = capsys.readouterr().out
    assert "cli-demo" in out
    for token in ("nn", "late", "bg", "traffic", "2.000 ms", "link loads"):
        assert token in out
    import json
    data = json.loads(out_json.read_text())
    assert {j["name"] for j in data["jobs"]} == {"nn", "late", "bg"}
    # Downstream consumers detect the document format by this stamp.
    from repro.telemetry import RESULT_SCHEMA_VERSION
    assert data["schema_version"] == RESULT_SCHEMA_VERSION == 1


def test_scenario_metrics_flags(capsys, scenario_file, tmp_path):
    import json
    out = tmp_path / "m.jsonl"
    assert main(["scenario", str(scenario_file),
                 "--metrics", str(out), "--metrics-filter", "mpi.job.*",
                 "--metrics-filter", "net.fabric.*"]) == 0
    lines = out.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["schema"] == "union-sim.telemetry/v1"
    assert header["scenario"] == "cli-demo"
    keys = [json.loads(l)["key"] for l in lines[1:]]
    assert any(k.startswith("mpi.job.nn.") for k in keys)
    assert "net.fabric.messages_sent" in keys
    assert all(k.startswith(("mpi.job.", "net.fabric.")) for k in keys)
    assert f"wrote {out}" in capsys.readouterr().err


def test_run_metrics_flags(capsys, tmp_path):
    import json
    out = tmp_path / "run.jsonl"
    assert main(["run", "--workload", "baseline:nn", "--placement", "rn",
                 "--routing", "min", "--metrics", str(out),
                 "--metrics-filter", "mpi.job.*"]) == 0
    lines = out.read_text().splitlines()
    assert json.loads(lines[0])["workload"] == "baseline:nn"
    keys = [json.loads(l)["key"] for l in lines[1:]]
    assert keys and all(k.startswith("mpi.job.nn.") for k in keys)


def test_batch_metrics_dir_flag(capsys, scenario_file, tmp_path):
    mdir = tmp_path / "metrics-out"
    assert main(["batch", str(tmp_path), "--metrics", str(mdir)]) == 0
    assert sorted(p.name for p in mdir.iterdir()) == ["demo.toml.metrics.jsonl"]


def test_run_metrics_filter_without_metrics_is_an_error(capsys):
    assert main(["run", "--workload", "baseline:nn",
                 "--metrics-filter", "mpi.job.*"]) == 2
    assert "requires --metrics" in capsys.readouterr().err


def test_metrics_path_in_missing_directory_fails_before_simulating(
        capsys, scenario_file, tmp_path):
    bad = str(tmp_path / "no-such-dir" / "out.jsonl")
    assert main(["run", "--workload", "baseline:nn", "--metrics", bad]) == 2
    assert "does not exist" in capsys.readouterr().err
    assert main(["scenario", str(scenario_file), "--metrics", bad]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_scenario_metrics_filter_without_any_sink_is_an_error(capsys, scenario_file):
    assert main(["scenario", str(scenario_file),
                 "--metrics-filter", "mpi.job.*"]) == 2
    assert "needs a sink" in capsys.readouterr().err


def test_batch_metrics_filter_without_metrics_warns(capsys, scenario_file, tmp_path):
    assert main(["batch", str(tmp_path), "--metrics-filter", "mpi.job.*"]) == 0
    assert "only affects specs" in capsys.readouterr().err


def test_batch_metrics_dir_colliding_with_file_is_a_clean_error(
        capsys, scenario_file, tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory\n")
    assert main(["batch", str(tmp_path), "--metrics", str(blocker)]) == 2
    assert "collides with an existing file" in capsys.readouterr().err


def test_scenario_horizon_override(capsys, scenario_file):
    # A 1us horizon cuts the apps off -> nonzero exit, "cut off" status.
    assert main(["scenario", str(scenario_file), "--horizon", "1e-6"]) == 1
    assert "cut off" in capsys.readouterr().out


def test_scenario_nonpositive_horizon_override_is_rejected(capsys, scenario_file):
    assert main(["scenario", str(scenario_file), "--horizon", "0"]) == 2
    assert "must be > 0" in capsys.readouterr().err


def test_scenario_bad_spec_is_a_clean_error(capsys, tmp_path):
    p = tmp_path / "bad.toml"
    p.write_text("[[jobs]]\nbanana = 1\n")
    assert main(["scenario", str(p)]) == 2
    assert "unknown key 'banana'" in capsys.readouterr().err


def test_scenario_missing_source_file_is_a_clean_error(capsys, tmp_path):
    # Parses fine, fails at build time -> must still be a friendly error.
    p = tmp_path / "spec.toml"
    p.write_text('[[jobs]]\nname = "x"\nsource = "nope.ncptl"\nnranks = 2\n')
    assert main(["scenario", str(p)]) == 2
    assert "source file not found" in capsys.readouterr().err


def test_scenario_untranslatable_source_is_a_clean_error(capsys, tmp_path):
    (tmp_path / "bad.ncptl").write_text("this is not coNCePTuaL !!\n")
    p = tmp_path / "spec.toml"
    p.write_text('[[jobs]]\nname = "x"\nsource = "bad.ncptl"\nnranks = 2\n')
    assert main(["scenario", str(p)]) == 2
    assert "error:" in capsys.readouterr().err


def test_scenario_oversized_job_is_a_clean_error(capsys, tmp_path):
    # Parses fine, fails at placement time (500 > 144 nodes) -> exit 2.
    p = tmp_path / "spec.toml"
    p.write_text('[[jobs]]\napp = "ur"\nnranks = 500\n')
    assert main(["scenario", str(p)]) == 2
    assert "500 nodes" in capsys.readouterr().err


def test_batch(capsys, scenario_file, tmp_path):
    other = tmp_path / "second.toml"
    other.write_text(SCENARIO_TOML.replace('"cli-demo"', '"cli-demo-2"'))
    assert main(["batch", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "cli-demo" in out and "cli-demo-2" in out
    assert "2 scenario(s), 0 failure(s)" in out


def test_batch_missing_directory(capsys, tmp_path):
    assert main(["batch", str(tmp_path / "nope")]) == 2
    assert "not a directory" in capsys.readouterr().err


def test_topologies(capsys):
    assert main(["topologies"]) == 0
    out = capsys.readouterr().out
    for name in ("dragonfly", "torus", "fat-tree", "slim fly"):
        assert name in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_engines_lists_registry(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "sequential" in out and "conservative" in out
    assert "partitions" in out and "lookahead" in out
    assert "yawns -> conservative" in out


def test_run_with_conservative_engine_matches_sequential(capsys):
    from repro.harness.experiment import clear_cache

    clear_cache()
    assert main(["run", "--workload", "baseline:nn", "--placement", "rr",
                 "--routing", "min"]) == 0
    seq_out = capsys.readouterr().out
    assert main(["run", "--workload", "baseline:nn", "--placement", "rr",
                 "--routing", "min", "--engine", "conservative",
                 "--partitions", "3"]) == 0
    con_out = capsys.readouterr().out
    assert con_out == seq_out  # identical metrics, event for event


def test_partitions_flag_alone_implies_conservative(capsys):
    assert main(["run", "--workload", "baseline:nn", "--placement", "rr",
                 "--routing", "min", "--partitions", "3"]) == 0
    assert "link loads" in capsys.readouterr().out


def test_run_bad_partition_count_is_a_clean_error(capsys):
    assert main(["run", "--workload", "baseline:nn", "--placement", "rr",
                 "--routing", "min", "--engine", "conservative",
                 "--partitions", "12"]) == 2
    err = capsys.readouterr().err
    assert "only 9 groups" in err


def test_scenario_engine_override(capsys, scenario_file):
    assert main(["scenario", str(scenario_file)]) == 0
    seq_out = capsys.readouterr().out
    assert main(["scenario", str(scenario_file), "--engine", "conservative",
                 "--partitions", "3"]) == 0
    con_out = capsys.readouterr().out
    assert "engine: conservative, 3 partitions (group-partitioned)" in con_out
    # Everything above the engine line is the sequential report verbatim.
    assert con_out.startswith(seq_out)


def test_batch_engine_override(capsys, scenario_file, tmp_path):
    out_json = tmp_path / "batch.json"
    assert main(["batch", str(scenario_file.parent), "--engine", "conservative",
                 "--json", str(out_json)]) == 0
    import json

    doc = json.loads(out_json.read_text())
    assert doc["scenarios"][0]["engine"]["type"] == "conservative"
    assert doc["scenarios"][0]["engine"]["windows"] > 0


def test_sweep_accepts_jobs_flag():
    # The full sweep is exercised in tests/harness; just pin the flag.
    from repro.cli import build_parser

    args = build_parser().parse_args(["sweep", "--jobs", "3"])
    assert args.jobs == 3


def test_env_roster(capsys):
    assert main(["env"]) == 0
    out = capsys.readouterr().out
    assert "Control-policy registry" in out
    for name in ("scripted", "load-aware", "admission", "min_free"):
        assert name in out
    assert "keep, scripted, load-aware, defer" in out
    assert "docs/env.md" in out


def test_env_episode(capsys, scenario_file, tmp_path):
    import json
    import math
    out_json = tmp_path / "ep.json"
    assert main(["env", str(scenario_file), "--json", str(out_json)]) == 0
    out = capsys.readouterr().out
    assert "episode: 'cli-demo'" in out
    assert "policy 'scripted'" in out
    assert "return " in out and "avg_latency" in out
    data = json.loads(out_json.read_text())
    assert math.isfinite(data["total_reward"])
    assert data["result"]["env"]["steps"] == data["steps"]


def test_env_episode_policy_and_actions(capsys, scenario_file):
    assert main(["env", str(scenario_file), "--policy", "load-aware",
                 "--seed", "3", "--window", "0.0005",
                 "--action", "defer"]) in (0, 1)
    out = capsys.readouterr().out
    assert "policy 'load-aware'" in out
    assert "seed 3" in out
    assert "defer" in out


def test_env_bad_arguments(capsys, scenario_file):
    assert main(["env", str(scenario_file), "--policy", "warp9"]) == 2
    assert "unknown policy" in capsys.readouterr().err
    assert main(["env", str(scenario_file), "--window", "-1"]) == 2
    assert "--window must be > 0" in capsys.readouterr().err
    assert main(["env", str(scenario_file), "--action", "bogus"]) == 2
    assert "unknown action" in capsys.readouterr().err


def test_fuzz_smoke(capsys, tmp_path):
    out_json = tmp_path / "fuzz.json"
    assert main(["fuzz", "--seeds", "2", "--parity-stride", "0",
                 "--repro-dir", str(tmp_path / "repros"),
                 "--json", str(out_json)]) == 0
    out = capsys.readouterr().out
    assert "2/2 cases clean" in out
    assert "conservation" in out and "determinism" in out
    import json
    data = json.loads(out_json.read_text())
    assert data["failures"] == 0
    assert data["invariants"] == ["conservation", "no_stuck_jobs",
                                  "determinism", "parity",
                                  "checkpoint_resume", "monotone_clocks"]


def test_fuzz_unknown_generator_is_a_clean_error(capsys):
    assert main(["fuzz", "--generator", "chaos", "--seeds", "1"]) == 2
    assert "unknown generator" in capsys.readouterr().err


def test_serve_submit_jobs_flags_parse():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--state", "st", "--workers", "4", "--port", "7399",
         "--checkpoint-interval", "0.01"])
    assert (args.state, args.workers, args.port) == ("st", 4, 7399)
    args = build_parser().parse_args(["submit", "spec.toml", "--wait"])
    assert args.server.startswith("http://127.0.0.1")
    args = build_parser().parse_args(["jobs", "job-000001", "--cancel"])
    assert args.job_id == "job-000001" and args.cancel


def test_submit_rejects_a_broken_spec_before_any_network(tmp_path, capsys):
    p = tmp_path / "bad.toml"
    p.write_text("[[jobs]]\nbanana = 1\n")
    assert main(["submit", str(p)]) == 2
    assert "error:" in capsys.readouterr().err


def test_submit_and_jobs_report_an_unreachable_service(tmp_path, capsys):
    spec = tmp_path / "ok.toml"
    spec.write_text('name = "t"\nhorizon = 0.001\n[[jobs]]\napp = "nn"\n')
    dead = "http://127.0.0.1:9"
    assert main(["submit", str(spec), "--server", dead]) == 2
    assert "union-sim serve" in capsys.readouterr().err
    assert main(["jobs", "--server", dead]) == 2
    assert "cannot reach service" in capsys.readouterr().err


def test_jobs_flags_without_an_id_are_an_error(capsys):
    assert main(["jobs", "--cancel"]) == 2
    assert "need a JOB id" in capsys.readouterr().err


def test_serve_rejects_bad_flag_values(capsys, tmp_path):
    assert main(["serve", "--state", str(tmp_path / "st"),
                 "--checkpoint-interval", "0"]) == 2
    assert "checkpoint-interval" in capsys.readouterr().err
    assert main(["serve", "--state", str(tmp_path / "st2"),
                 "--workers", "0"]) == 2
    assert "workers" in capsys.readouterr().err


# -- bench / --profile -------------------------------------------------------

def _tiny_benches(monkeypatch):
    """Shrink the bench roster to one instant fake so the CLI plumbing
    (roster handling, output shape, --json) is tested without paying
    for a real measurement."""
    import time

    from benchmarks import throughput

    def fake():
        time.sleep(0.01)
        return 1000

    monkeypatch.setattr(throughput, "BENCHES", {"network_throughput": fake})
    monkeypatch.setattr(throughput, "REFERENCE_EVENTS",
                        {"network_throughput": 500})


def test_bench_list(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("network_throughput", "network_storm_accel",
                 "phold_sequential", "phold_accel"):
        assert name in out


def test_bench_runs_and_writes_json(capsys, tmp_path, monkeypatch):
    import json
    _tiny_benches(monkeypatch)
    out_json = tmp_path / "bench.json"
    assert main(["bench", "--repeat", "1", "--json", str(out_json)]) == 0
    out = capsys.readouterr().out
    assert "network_throughput" in out and "ref-ev/s" in out
    doc = json.loads(out_json.read_text())
    r = doc["benches"]["network_throughput"]
    assert r["events"] == 1000
    # Normalized to the reference count, not the raw one: half the
    # committed events, half the rate.
    assert r["ref_events_per_sec"] == pytest.approx(
        r["events_per_sec"] / 2, rel=1e-3)


def test_bench_unknown_name_is_a_clean_error(capsys, monkeypatch):
    _tiny_benches(monkeypatch)
    assert main(["bench", "--only", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown bench" in err and "network_throughput" in err


def test_bench_engine_substitution(capsys, monkeypatch):
    """--engine re-runs the parameterizable benches on a registry
    engine; the python backend keeps this host-independent."""
    from benchmarks import throughput

    seen = []

    def fake_storm(telemetry=None, engine=None):
        seen.append(engine)
        return 42

    monkeypatch.setattr(throughput, "run_network_throughput", fake_storm)
    assert main(["bench", "--engine", "accel-sequential",
                 "--only", "network_throughput", "--repeat", "1"]) == 0
    (eng,) = seen
    assert eng.backend in ("compiled", "python")
    assert "network_throughput" in capsys.readouterr().out


def test_profile_flag_writes_pstats(capsys, scenario_file, tmp_path):
    import pstats
    prof = tmp_path / "run.pstats"
    assert main(["scenario", str(scenario_file),
                 "--profile", str(prof)]) == 0
    assert f"wrote profile to {prof}" in capsys.readouterr().err
    stats = pstats.Stats(str(prof))
    calls = {f"{path.rsplit('/', 1)[-1]}:{name}"
             for (path, _line, name) in stats.stats}
    # The simulation core is in the profile, not just CLI plumbing.
    assert any(name == "run_scenario" for (_p, _l, name) in stats.stats)
    assert calls
