"""Deterministic random streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdes.rng import SplitMix, lp_stream


def test_lp_stream_deterministic():
    a = lp_stream(5, 3).random(10)
    b = lp_stream(5, 3).random(10)
    assert np.array_equal(a, b)


def test_lp_stream_independent_by_stream_id():
    a = lp_stream(5, 3).random(10)
    b = lp_stream(5, 4).random(10)
    assert not np.array_equal(a, b)


def test_lp_stream_independent_by_seed():
    a = lp_stream(5, 3).random(10)
    b = lp_stream(6, 3).random(10)
    assert not np.array_equal(a, b)


def test_lp_stream_rejects_negative_stream():
    with pytest.raises(ValueError):
        lp_stream(1, -1)


def test_splitmix_deterministic():
    a = SplitMix(1, 2)
    b = SplitMix(1, 2)
    assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]


def test_splitmix_streams_differ():
    a = SplitMix(1, 2)
    b = SplitMix(1, 3)
    assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]


@given(st.integers(min_value=1, max_value=10_000), st.integers(min_value=0, max_value=2**32))
@settings(max_examples=200)
def test_splitmix_randint_in_range(n, seed):
    rng = SplitMix(seed, 0)
    for _ in range(5):
        assert 0 <= rng.randint(n) < n


@given(st.integers(min_value=0, max_value=2**32))
@settings(max_examples=100)
def test_splitmix_random_unit_interval(seed):
    rng = SplitMix(seed, 1)
    for _ in range(5):
        x = rng.random()
        assert 0.0 <= x < 1.0


def test_splitmix_randint_rejects_nonpositive():
    rng = SplitMix(0, 0)
    with pytest.raises(ValueError):
        rng.randint(0)


def test_splitmix_choice():
    rng = SplitMix(9, 0)
    seq = ["a", "b", "c"]
    picks = {rng.choice(seq) for _ in range(100)}
    assert picks <= set(seq)
    assert len(picks) > 1  # not stuck


def test_splitmix_roughly_uniform():
    rng = SplitMix(123, 0)
    counts = [0] * 8
    for _ in range(8000):
        counts[rng.randint(8)] += 1
    for c in counts:
        assert 800 < c < 1200
