"""``max_events`` budget edge cases shared by all three engines.

Regression: ``max_events=0`` used to be silently treated as *unlimited*
(the ``budget > 0`` decrement guard never fired), so a caller asking for
zero events got the whole simulation instead.  It must commit nothing
and leave the clock untouched.
"""

import pytest

from repro.pdes.conservative import ConservativeEngine
from repro.pdes.sequential import SequentialEngine
from repro.pdes.timewarp import TimeWarpEngine

from tests.pdes.phold import build_phold, fingerprint


ENGINES = [
    pytest.param(SequentialEngine, id="sequential"),
    pytest.param(lambda: ConservativeEngine(lookahead=0.5, n_partitions=2), id="conservative"),
    pytest.param(lambda: TimeWarpEngine(gvt_interval=8), id="timewarp"),
]


@pytest.mark.parametrize("engine_factory", ENGINES)
def test_max_events_zero_commits_nothing(engine_factory):
    eng = engine_factory()
    lps = build_phold(eng, n_lps=4, seed=3)
    before = fingerprint(lps)
    t = eng.run(until=50.0, max_events=0)
    assert eng.events_processed == 0
    assert t == 0.0
    assert eng.now == 0.0
    assert fingerprint(lps) == before  # no handler ran


@pytest.mark.parametrize("engine_factory", ENGINES)
def test_max_events_zero_then_full_run_is_clean(engine_factory):
    """A zero-budget call must not perturb a subsequent real run."""
    eng = engine_factory()
    lps = build_phold(eng, n_lps=4, seed=3)
    eng.run(until=30.0, max_events=0)
    eng.run(until=30.0)

    ref = SequentialEngine()
    ref_lps = build_phold(ref, n_lps=4, seed=3)
    ref.run(until=30.0)
    assert fingerprint(lps) == fingerprint(ref_lps)


def test_conservative_budget_stop_resets_window_state():
    """A ``max_events`` stop returns from mid-window; the engine must
    not carry executing-window state (``_current_partition`` gates the
    lookahead check in ``_push``) into a later ``run()``, and no stale
    window attribute may survive (the write-only ``_window_end`` the
    seed kept across budget stops is gone entirely)."""
    eng = ConservativeEngine(lookahead=0.5, n_partitions=2)
    lps = build_phold(eng, n_lps=4, seed=7)
    eng.run(until=50.0, max_events=5)
    assert eng.events_processed == 5
    assert eng._current_partition == -1
    assert not hasattr(eng, "_window_end")

    # Resuming after the budget stop must converge to the sequential
    # trajectory (a stale window boundary would misorder the resume).
    eng.run(until=50.0)
    ref = SequentialEngine()
    ref_lps = build_phold(ref, n_lps=4, seed=7)
    ref.run(until=50.0)
    assert fingerprint(lps) == fingerprint(ref_lps)


def test_sequential_budget_stop_keeps_clock_at_last_event():
    eng = SequentialEngine()
    build_phold(eng, n_lps=4, seed=5)
    t = eng.run(until=50.0, max_events=3)
    assert eng.events_processed == 3
    assert 0.0 < t < 50.0  # not advanced to the horizon
