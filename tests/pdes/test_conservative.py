"""ConservativeEngine: equivalence with sequential, lookahead enforcement."""

import pytest

from repro.pdes.conservative import ConservativeEngine
from repro.pdes.event import Event
from repro.pdes.lp import LP
from repro.pdes.sequential import SequentialEngine

from tests.pdes.phold import build_phold, fingerprint


def run_phold(engine, **kw):
    lps = build_phold(engine, **kw)
    engine.run(until=50.0)
    return fingerprint(lps)


@pytest.mark.parametrize("n_partitions", [1, 2, 4, 7])
def test_matches_sequential_on_phold(n_partitions):
    seq = SequentialEngine()
    ref = run_phold(seq, n_lps=8, seed=3)
    con = ConservativeEngine(lookahead=0.5, n_partitions=n_partitions)
    got = run_phold(con, n_lps=8, seed=3)
    assert got == ref
    assert con.events_processed == seq.events_processed


def test_windows_counted():
    con = ConservativeEngine(lookahead=0.5, n_partitions=2)
    run_phold(con, n_lps=4, seed=9)
    assert con.windows_executed > 1


def test_lookahead_violation_detected():
    class Cheater(LP):
        def handle(self, event):
            # Cross-partition event with delay below the lookahead.
            other = (self.lp_id + 1) % 2
            self.engine.schedule(0.01, other, "bad")

    eng = ConservativeEngine(lookahead=1.0, n_partitions=2)
    a, b = Cheater(), Cheater()
    eng.register(a)
    eng.register(b)
    eng.schedule_at(1.0, a.lp_id, "go")
    with pytest.raises(RuntimeError, match="lookahead violation"):
        eng.run()


def test_same_partition_short_delays_allowed():
    class SelfChainer(LP):
        def __init__(self):
            super().__init__()
            self.count = 0

        def handle(self, event):
            self.count += 1
            if self.count < 10:
                self.engine.schedule(0.01, self.lp_id, "tick")

    eng = ConservativeEngine(lookahead=1.0, n_partitions=2)
    lp = SelfChainer()
    eng.register(lp)
    eng.register(SelfChainer())  # occupy the other partition
    eng.schedule_at(0.5, lp.lp_id, "tick")
    eng.run()
    assert lp.count == 10


def test_invalid_construction():
    with pytest.raises(ValueError, match="lookahead"):
        ConservativeEngine(lookahead=0.0)
    with pytest.raises(ValueError, match="partition"):
        ConservativeEngine(lookahead=1.0, n_partitions=0)


def test_horizon_respected():
    eng = ConservativeEngine(lookahead=0.5, n_partitions=2)
    lps = build_phold(eng, n_lps=4, seed=5)
    eng.run(until=10.0)
    assert eng.now == pytest.approx(10.0)
    # nothing beyond the horizon was handled
    seq = SequentialEngine()
    ref_lps = build_phold(seq, n_lps=4, seed=5)
    seq.run(until=10.0)
    assert fingerprint(lps) == fingerprint(ref_lps)


def test_max_events_budget():
    eng = ConservativeEngine(lookahead=0.5, n_partitions=2)
    build_phold(eng, n_lps=4, seed=5)
    eng.run(until=50.0, max_events=7)
    assert eng.events_processed == 7


def test_custom_partition_fn():
    eng = ConservativeEngine(lookahead=0.5, n_partitions=2, partition_fn=lambda lp: 0)
    ref = SequentialEngine()
    a = run_phold(eng, n_lps=6, seed=11)
    b = run_phold(ref, n_lps=6, seed=11)
    assert a == b
