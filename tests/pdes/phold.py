"""PHOLD: the standard PDES benchmark model, used to cross-validate engines.

Each LP holds a counter; on every event it increments the counter,
records the event's timestamp and (with its own deterministic stream)
schedules a new event at a random future time on a random LP.  Event
timestamps are continuous, so (time, priority) keys are unique and all
three engines must produce identical trajectories.
"""

from __future__ import annotations

from repro.pdes.event import Event
from repro.pdes.lp import LP
from repro.pdes.rng import SplitMix


class PholdLP(LP):
    """One PHOLD logical process."""

    __slots__ = ("n_lps", "min_delay", "mean_delay", "seed", "count", "checksum", "hops_left")

    def __init__(self, n_lps: int, min_delay: float, mean_delay: float, seed: int) -> None:
        super().__init__()
        self.n_lps = n_lps
        self.min_delay = min_delay
        self.mean_delay = mean_delay
        self.seed = seed
        self.count = 0
        self.checksum = 0.0

    def start(self, initial_events: int = 1) -> None:
        rng = self._rng()
        for k in range(initial_events):
            delay = self.min_delay + rng.random() * self.mean_delay
            self.engine.schedule(delay, self.lp_id, "ball", k)

    def _rng(self) -> SplitMix:
        # Keyed by (seed, lp, count) so replays after rollback redraw the
        # same values: the stream position is part of the restored state.
        return SplitMix(self.seed * 1_000_003 + self.lp_id, self.count)

    def handle(self, event: Event) -> None:
        self.count += 1
        self.checksum += event.time
        rng = self._rng()
        dst = rng.randint(self.n_lps)
        delay = self.min_delay + rng.random() * self.mean_delay
        self.engine.schedule(delay, dst, "ball", None)

    # -- Time Warp support ------------------------------------------------
    def save_state(self):
        return (self.count, self.checksum)

    def load_state(self, state) -> None:
        self.count, self.checksum = state


def build_phold(engine, n_lps: int = 8, seed: int = 42, min_delay: float = 0.5, mean_delay: float = 1.0, initial: int = 2):
    """Register ``n_lps`` PHOLD LPs on ``engine`` and seed initial events."""
    lps = [PholdLP(n_lps, min_delay, mean_delay, seed) for _ in range(n_lps)]
    for lp in lps:
        engine.register(lp)
    for lp in lps:
        lp.start(initial)
    return lps


def fingerprint(lps) -> tuple:
    """Deterministic digest of the model state."""
    return tuple((lp.count, round(lp.checksum, 9)) for lp in lps)
