"""SequentialEngine semantics."""

import pytest

from repro.pdes.event import Event, Priority
from repro.pdes.lp import LP
from repro.pdes.sequential import SequentialEngine


class Recorder(LP):
    """Records (time, kind, data) of every event it handles."""

    __slots__ = ("seen",)

    def __init__(self):
        super().__init__()
        self.seen = []

    def handle(self, event: Event) -> None:
        self.seen.append((event.time, event.kind, event.data))


class Chainer(LP):
    """Schedules a follow-up event to itself until a count is exhausted."""

    __slots__ = ("remaining", "times")

    def __init__(self, remaining: int):
        super().__init__()
        self.remaining = remaining
        self.times = []

    def handle(self, event: Event) -> None:
        self.times.append(event.time)
        if self.remaining > 0:
            self.remaining -= 1
            self.engine.schedule(0.5, self.lp_id, "tick")


def test_events_processed_in_time_order():
    eng = SequentialEngine()
    rec = Recorder()
    eng.register(rec)
    for t in (3.0, 1.0, 2.0):
        eng.schedule_at(t, rec.lp_id, "e", t)
    eng.run()
    assert [s[0] for s in rec.seen] == [1.0, 2.0, 3.0]


def test_priority_breaks_simultaneous_events():
    eng = SequentialEngine()
    rec = Recorder()
    eng.register(rec)
    eng.schedule_at(1.0, rec.lp_id, "late", None, priority=Priority.WAKEUP)
    eng.schedule_at(1.0, rec.lp_id, "early", None, priority=Priority.CONTROL)
    eng.run()
    assert [s[1] for s in rec.seen] == ["early", "late"]


def test_fifo_within_same_time_and_priority():
    eng = SequentialEngine()
    rec = Recorder()
    eng.register(rec)
    for i in range(5):
        eng.schedule_at(1.0, rec.lp_id, "e", i)
    eng.run()
    assert [s[2] for s in rec.seen] == [0, 1, 2, 3, 4]


def test_run_until_horizon_leaves_future_events():
    eng = SequentialEngine()
    ch = Chainer(100)
    eng.register(ch)
    eng.schedule_at(0.1, ch.lp_id, "tick")
    eng.run(until=2.0)
    assert eng.now == pytest.approx(2.0)
    assert all(t <= 2.0 for t in ch.times)
    assert not eng.empty()


def test_run_drained_advances_clock_to_horizon():
    eng = SequentialEngine()
    rec = Recorder()
    eng.register(rec)
    eng.schedule_at(0.5, rec.lp_id, "e")
    eng.run(until=10.0)
    assert eng.now == pytest.approx(10.0)
    assert eng.empty()


def test_max_events_budget():
    eng = SequentialEngine()
    ch = Chainer(1000)
    eng.register(ch)
    eng.schedule_at(0.1, ch.lp_id, "tick")
    eng.run(max_events=10)
    assert eng.events_processed == 10


def test_cannot_schedule_into_the_past():
    eng = SequentialEngine()
    rec = Recorder()
    eng.register(rec)

    class Bad(LP):
        def handle(self, event):
            self.engine.schedule_at(event.time - 1.0, self.lp_id, "x")

    bad = Bad()
    eng.register(bad)
    eng.schedule_at(5.0, bad.lp_id, "go")
    with pytest.raises(ValueError, match="past"):
        eng.run()


def test_unknown_destination_rejected():
    eng = SequentialEngine()
    with pytest.raises(ValueError, match="unknown destination"):
        eng.schedule_at(1.0, 0, "x")


def test_end_hooks_called_once_per_run():
    eng = SequentialEngine()
    rec = Recorder()
    eng.register(rec)
    calls = []
    eng.add_end_hook(lambda: calls.append(1))
    eng.schedule_at(1.0, rec.lp_id, "e")
    eng.run()
    assert calls == [1]


def test_peek_time():
    eng = SequentialEngine()
    rec = Recorder()
    eng.register(rec)
    assert eng.peek_time() == float("inf")
    eng.schedule_at(3.0, rec.lp_id, "e")
    eng.schedule_at(1.5, rec.lp_id, "e")
    assert eng.peek_time() == 1.5


def test_now_tracks_current_event_time():
    eng = SequentialEngine()
    times = []

    class Probe(LP):
        def handle(self, event):
            times.append(self.engine.now)

    p = Probe()
    eng.register(p)
    eng.schedule_at(1.0, p.lp_id, "a")
    eng.schedule_at(2.5, p.lp_id, "b")
    eng.run()
    assert times == [1.0, 2.5]


def test_schedule_fast_orders_like_schedule_at():
    """The hot-path scheduler interleaves correctly with the checked one."""
    eng = SequentialEngine()
    rec = Recorder()
    eng.register(rec)
    eng.schedule_at(2.0, rec.lp_id, "b")
    eng.schedule_fast(1.0, rec.lp_id, "a")
    eng.schedule_fast(3.0, rec.lp_id, "c")
    eng.run()
    assert [s[1] for s in rec.seen] == ["a", "b", "c"]
    assert eng.events_processed == 3


def test_schedule_fast_skips_validation():
    """Documented contract: no destination or past-time re-checks."""
    eng = SequentialEngine()
    rec = Recorder()
    eng.register(rec)
    # An invalid destination is NOT rejected at scheduling time.
    eng.schedule_fast(1.0, 99, "x")
    with pytest.raises(IndexError):
        eng.run()


def test_register_all():
    eng = SequentialEngine()
    ids = eng.register_all([Recorder(), Recorder(), Recorder()])
    assert ids == [0, 1, 2]
    assert [lp.lp_id for lp in eng.lps] == ids
