"""Event ordering and identity."""

import pytest

from repro.pdes.event import Event, Priority


def test_key_orders_by_time_first():
    a = Event(1.0, 0, "x")
    b = Event(2.0, 0, "x")
    a.seq, b.seq = 5, 1
    assert a.key() < b.key()


def test_key_breaks_time_ties_by_priority():
    a = Event(1.0, 0, "x", priority=Priority.CONTROL)
    b = Event(1.0, 0, "x", priority=Priority.NETWORK)
    a.seq, b.seq = 9, 1
    assert a.key() < b.key()


def test_key_breaks_full_ties_by_seq():
    a = Event(1.0, 0, "x")
    b = Event(1.0, 0, "x")
    a.seq, b.seq = 1, 2
    assert a.key() < b.key()


def test_priority_control_precedes_all():
    assert Priority.CONTROL < Priority.NETWORK < Priority.MPI < Priority.WAKEUP < Priority.LOW


def test_lt_matches_key_ordering():
    """Events are directly comparable with the same total order as key()."""
    a = Event(1.0, 0, "x")
    b = Event(2.0, 0, "x")
    c = Event(1.0, 0, "x", priority=Priority.CONTROL)
    d = Event(1.0, 0, "x")
    a.seq, b.seq, c.seq, d.seq = 1, 2, 3, 4
    events = [b, d, a, c]
    assert sorted(events) == sorted(events, key=lambda e: e.key())
    assert c < a < d < b


def test_uid_includes_destination():
    a = Event(1.0, 3, "x")
    b = Event(1.0, 4, "x")
    a.seq = b.seq = 7
    assert a.uid() != b.uid()
    assert a.uid()[:3] == b.uid()[:3]


def test_event_defaults():
    e = Event(0.5, 2, "kind", data={"k": 1})
    assert e.seq == -1
    assert e.src == -1
    assert e.send_time == 0.0
    assert e.data == {"k": 1}


@pytest.mark.parametrize("prio", list(Priority))
def test_priorities_are_ints(prio):
    assert isinstance(int(prio), int)
