"""The shared event-heap entry layout (repro.pdes.eventheap).

Every scheduler -- and the compiled kernel's C entry struct -- depends
on this exact layout and ``(time, priority, seq)`` ordering, so the
module gets its own pin beyond the cross-engine parity tests.
"""

import math

from repro.pdes import eventheap
from repro.pdes.event import Event, Priority


def _ev(time, priority=Priority.NETWORK, seq=0, dst=0):
    ev = Event(time, dst, "tick", priority=priority)
    ev.seq = seq
    return ev


def test_entry_layout_is_key_triple_plus_event():
    ev = _ev(1.5, Priority.MPI, seq=7)
    assert eventheap.entry(ev) == (1.5, Priority.MPI, 7, ev)
    assert eventheap.ENTRY_FIELDS == ("time", "priority", "seq")
    # The declared layout and entry() cannot drift apart.
    assert eventheap.entry(ev)[:3] == tuple(
        getattr(ev, f) for f in eventheap.ENTRY_FIELDS)


def test_pop_orders_by_time_then_priority_then_seq():
    q = []
    late = _ev(2.0, seq=1)
    control = _ev(1.0, Priority.CONTROL, seq=3)
    first_seq = _ev(1.0, Priority.NETWORK, seq=2)
    second_seq = _ev(1.0, Priority.NETWORK, seq=5)
    for ev in (late, second_seq, control, first_seq):
        eventheap.push(q, ev)
    drained = [eventheap.pop_event(q) for _ in range(4)]
    assert drained == [control, first_seq, second_seq, late]


def test_peek_time():
    q = []
    assert eventheap.peek_time(q) == math.inf
    eventheap.push(q, _ev(3.25, seq=1))
    eventheap.push(q, _ev(0.5, seq=2))
    assert eventheap.peek_time(q) == 0.5
    eventheap.pop_event(q)
    assert eventheap.peek_time(q) == 3.25
    eventheap.pop_event(q)
    assert eventheap.peek_time(q) == math.inf


def test_engines_store_the_shared_layout():
    """The sequential engine's live queue holds exactly these entries
    (its inlined hot-path pushes are pinned to the same layout)."""
    from repro.pdes.sequential import SequentialEngine
    from repro.pdes.lp import LP

    class Sink(LP):
        def handle(self, event):
            pass

    eng = SequentialEngine()
    lp = Sink()
    eng.register(lp)
    eng.schedule_at(0.25, lp.lp_id, "tick")
    eng.schedule_at(0.75, lp.lp_id, "tick")
    assert eng.peek_time() == 0.25
    for ent in eng._queue:
        ev = ent[3]
        assert ent == eventheap.entry(ev)
