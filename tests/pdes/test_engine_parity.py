"""Cross-engine parity: all three schedulers commit the identical events.

PHOLD (continuous timestamps, per-LP RNG) is the canonical
cross-validation model: under a fixed seed the sequential, conservative
and Time Warp engines must commit exactly the same event set -- same
per-LP counts, same timestamp checksums, same totals.  The second half
pins the conservative engine's budget-stop and ``until`` semantics when
the horizon lands *mid-window*: events at or before the horizon commit,
later ones stay pending, and the engine stays resumable.
"""

import pytest

from repro.pdes.conservative import ConservativeEngine
from repro.pdes.event import Event
from repro.pdes.lp import LP
from repro.pdes.sequential import SequentialEngine
from repro.pdes.timewarp import TimeWarpEngine

from tests.pdes.phold import build_phold, fingerprint


def _run(engine, until=40.0, **kw):
    lps = build_phold(engine, n_lps=10, seed=17, **kw)
    engine.run(until=until)
    return fingerprint(lps), engine.events_processed


def test_all_three_engines_commit_identical_event_set():
    seq_fp, seq_events = _run(SequentialEngine())
    for make in (
        lambda: ConservativeEngine(lookahead=0.5, n_partitions=3),
        lambda: ConservativeEngine(lookahead=0.25, n_partitions=5),
        lambda: TimeWarpEngine(gvt_interval=16),
    ):
        fp, events = _run(make())
        assert fp == seq_fp
        assert events == seq_events


def test_accel_engines_commit_identical_event_set():
    """The accel engines join the PHOLD cross-validation: the forced
    ``python`` backend always (so fallback parity never goes vacuous),
    the compiled kernel whenever this host can build it."""
    from repro.accel import (
        AccelConservativeEngine,
        AccelSequentialEngine,
        PythonConservativeEngine,
        PythonSequentialEngine,
        kernel_status,
    )

    seq_fp, seq_events = _run(SequentialEngine())
    makes = [
        lambda: PythonSequentialEngine(),
        lambda: PythonConservativeEngine(lookahead=0.5, n_partitions=3),
    ]
    if kernel_status()["available"]:
        makes += [
            lambda: AccelSequentialEngine(),
            lambda: AccelConservativeEngine(lookahead=0.5, n_partitions=3),
        ]
    for make in makes:
        fp, events = _run(make())
        assert fp == seq_fp
        assert events == seq_events


def test_conservative_per_partition_commits_sum_to_total():
    eng = ConservativeEngine(lookahead=0.5, n_partitions=4)
    _run(eng)
    assert sum(eng.committed_by_partition) == eng.events_processed
    assert eng.max_window_events >= 1
    assert eng.windows_executed >= 1


class _Recorder(LP):
    """Collects the timestamps of every event it handles."""

    __slots__ = ("times",)

    def __init__(self):
        super().__init__()
        self.times = []

    def handle(self, event: Event) -> None:
        self.times.append(event.time)


def _two_partition_recorders():
    """Two recorder LPs, one per partition, with a known event ladder.

    lookahead 1.0 puts the events at t = 0.5, 0.8, 1.1, 1.6, 2.4 into
    windows [0.5, 1.5) and [1.6, 2.6): a horizon or budget inside the
    first window cuts it mid-flight.
    """
    eng = ConservativeEngine(lookahead=1.0, n_partitions=2)
    a, b = _Recorder(), _Recorder()
    eng.register(a, partition=0)
    eng.register(b, partition=1)
    for t, lp in ((0.5, a), (0.8, b), (1.1, a), (1.6, b), (2.4, a)):
        eng.schedule_at(t, lp.lp_id, "tick")
    return eng, a, b


def test_until_mid_window_commits_only_up_to_horizon():
    eng, a, b = _two_partition_recorders()
    # Horizon 1.0 lands inside the first window [0.5, 1.5): the event at
    # 1.1 belongs to that window but lies beyond the horizon.
    end = eng.run(until=1.0)
    assert a.times == [0.5]
    assert b.times == [0.8]
    assert eng.events_processed == 2
    assert end == pytest.approx(1.0)  # clock advances to the horizon
    # The cut was not a drop: resuming commits the rest in order.
    eng.run(until=10.0)
    assert a.times == [0.5, 1.1, 2.4]
    assert b.times == [0.8, 1.6]
    assert eng.events_processed == 5


def test_event_exactly_at_horizon_commits():
    eng, a, b = _two_partition_recorders()
    eng.run(until=1.1)
    assert a.times == [0.5, 1.1]
    assert b.times == [0.8]


def test_budget_stop_mid_window_keeps_clock_and_resumes():
    eng, a, b = _two_partition_recorders()
    end = eng.run(until=10.0, max_events=2)
    assert eng.events_processed == 2
    # A budget stop keeps the last committed time (no horizon advance).
    assert end == pytest.approx(0.8)
    eng.run(until=10.0)
    assert a.times == [0.5, 1.1, 2.4]
    assert b.times == [0.8, 1.6]
    assert eng.events_processed == 5


def test_budget_stop_matches_sequential_prefix():
    """The first N committed events are the same on both engines."""
    seq = SequentialEngine()
    ref = build_phold(seq, n_lps=6, seed=23)
    seq.run(until=50.0, max_events=40)
    con = ConservativeEngine(lookahead=0.5, n_partitions=3)
    lps = build_phold(con, n_lps=6, seed=23)
    con.run(until=50.0, max_events=40)
    assert con.events_processed == seq.events_processed == 40
    assert fingerprint(lps) == fingerprint(ref)


def test_control_path_is_contract_exempt():
    """schedule_control may cross partitions below the lookahead; the
    normal path raises for the identical event."""

    class Fanout(LP):
        def __init__(self):
            super().__init__()
            self.got = 0

        def handle(self, event):
            self.got += 1
            if event.kind == "fan":
                # Zero-delay cross-partition control event: the driver
                # pattern (a launch fanning rank starts out at t=now).
                self.engine.schedule_control(self.engine.now, 1 - self.lp_id, "go")

    eng = ConservativeEngine(lookahead=1.0, n_partitions=2)
    a, b = Fanout(), Fanout()
    eng.register(a, partition=0)
    eng.register(b, partition=1)
    eng.schedule_at(0.5, a.lp_id, "fan")
    eng.run()
    assert (a.got, b.got) == (1, 1)

    eng2 = ConservativeEngine(lookahead=1.0, n_partitions=2)
    class Cheater(Fanout):
        def handle(self, event):
            self.engine.schedule_at(self.engine.now, 1 - self.lp_id, "go")
    a2, b2 = Cheater(), Cheater()
    eng2.register(a2, partition=0)
    eng2.register(b2, partition=1)
    eng2.schedule_at(0.5, a2.lp_id, "fan")
    with pytest.raises(RuntimeError, match="lookahead violation"):
        eng2.run()


def test_explicit_partition_register_overrides_partition_fn():
    eng = ConservativeEngine(lookahead=1.0, n_partitions=2)
    a = _Recorder()
    eng.register(a, partition=1)  # partition_fn would say 0
    assert eng.partition_of(a.lp_id) == 1
    with pytest.raises(ValueError, match="partition"):
        eng.register(_Recorder(), partition=7)
