"""TimeWarpEngine: rollback correctness and equivalence with sequential."""

import pytest

from repro.pdes.event import Event
from repro.pdes.lp import LP
from repro.pdes.sequential import SequentialEngine
from repro.pdes.timewarp import TimeWarpEngine

from tests.pdes.phold import build_phold, fingerprint


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_matches_sequential_on_phold(seed):
    seq = SequentialEngine()
    ref_lps = build_phold(seq, n_lps=6, seed=seed)
    seq.run(until=40.0)

    tw = TimeWarpEngine(gvt_interval=8)
    tw_lps = build_phold(tw, n_lps=6, seed=seed)
    tw.run(until=40.0)

    assert fingerprint(tw_lps) == fingerprint(ref_lps)
    assert tw.events_processed == seq.events_processed


def test_rollbacks_actually_happen():
    """Round-robin execution of PHOLD with tight coupling must speculate."""
    tw = TimeWarpEngine(gvt_interval=4)
    build_phold(tw, n_lps=8, seed=5, min_delay=0.1, mean_delay=2.0)
    tw.run(until=60.0)
    assert tw.rollbacks > 0
    assert tw.anti_messages >= 0
    assert tw.events_executed >= tw.events_processed


def test_straggler_triggers_rollback():
    """Deterministic two-LP scenario with a manufactured straggler.

    LP A runs far ahead of LP B (A has many early events, B has one late
    event that sends into A's past).
    """

    class Counter(LP):
        def __init__(self):
            super().__init__()
            self.values = []

        def handle(self, event):
            self.values.append(event.time)
            if event.kind == "poke":
                # B pokes A in A's past relative to A's optimistic progress.
                self.engine.schedule(0.5, 0, "late")

        def save_state(self):
            return list(self.values)

        def load_state(self, state):
            self.values = state

    tw = TimeWarpEngine(gvt_interval=2)
    a, b = Counter(), Counter()
    tw.register(a)
    tw.register(b)
    for i in range(10):
        tw.schedule_at(1.0 + i, a.lp_id, "tick")
    tw.schedule_at(2.25, b.lp_id, "poke")  # lands at A at t=2.75
    tw.run()
    # The final trajectory must be identical to sequential execution.
    seq = SequentialEngine()
    sa, sb = Counter(), Counter()
    seq.register(sa)
    seq.register(sb)
    for i in range(10):
        seq.schedule_at(1.0 + i, sa.lp_id, "tick")
    seq.schedule_at(2.25, sb.lp_id, "poke")
    seq.run()
    assert a.values == sa.values
    assert b.values == sb.values


def test_gvt_advances_and_fossils_collected():
    tw = TimeWarpEngine(gvt_interval=4)
    build_phold(tw, n_lps=4, seed=13)
    tw.run(until=30.0)
    assert tw.gvt > 0
    # After finalize, all history is fossil-collected.
    for rt in tw._rt:
        assert rt.processed == []


def test_lp_without_state_saving_rejected():
    class NoState(LP):
        def handle(self, event):
            pass

    tw = TimeWarpEngine()
    lp = NoState()
    tw.register(lp)
    tw.schedule_at(1.0, lp.lp_id, "x")
    with pytest.raises(NotImplementedError, match="state saving"):
        tw.run()


def test_invalid_gvt_interval():
    with pytest.raises(ValueError, match="gvt_interval"):
        TimeWarpEngine(gvt_interval=0)


def test_horizon_respected():
    tw = TimeWarpEngine(gvt_interval=8)
    lps = build_phold(tw, n_lps=4, seed=2)
    tw.run(until=15.0)
    seq = SequentialEngine()
    ref = build_phold(seq, n_lps=4, seed=2)
    seq.run(until=15.0)
    assert fingerprint(lps) == fingerprint(ref)
