"""Control policies and the policy registry family.

The load-bearing guarantees: the scripted baseline is bit-identical to
a policy-less run (golden), and a non-trivial policy (load-aware
placement reading observe() link loads) measurably changes placement
outcomes (pinned).
"""

import pytest

from repro.network.dragonfly import Dragonfly1D
from repro.placement.policies import PlacementError
from repro.registry import (
    PolicySpec,
    RegistryError,
    available_policies,
    build_policy,
    policy_registry,
    register_policy,
)
from repro.union.manager import Job, WorkloadManager
from repro.union.policy import (
    AdmissionPolicy,
    AdmissionRequest,
    ControlPolicy,
    LoadAwarePolicy,
    PlacementRequest,
    ScriptedPolicy,
)
from repro.workloads.hotspot import hotspot
from repro.workloads.nearest_neighbor import nearest_neighbor
from repro.workloads.uniform_random import uniform_random


# -- registry ----------------------------------------------------------------

def test_roster_and_aliases():
    names = available_policies()
    assert {"scripted", "load-aware", "admission"} <= set(names)
    assert policy_registry.get("baseline").name == "scripted"
    assert policy_registry.get("la").name == "load-aware"


def test_build_policy_forms():
    assert isinstance(build_policy(None), ScriptedPolicy)
    assert isinstance(build_policy("load-aware"), LoadAwarePolicy)
    adm = build_policy({"type": "admission", "min_free": 8})
    assert isinstance(adm, AdmissionPolicy)
    assert adm.min_free == 8
    ready = LoadAwarePolicy()
    assert build_policy(ready) is ready


def test_build_policy_errors():
    with pytest.raises(RegistryError, match="unknown policy"):
        build_policy("nope")
    with pytest.raises(RegistryError, match="missing 'type'"):
        build_policy({"min_free": 1})
    with pytest.raises(RegistryError, match="min_free"):
        build_policy({"type": "admission", "min_free": -1})
    with pytest.raises(RegistryError, match="unknown"):
        build_policy({"type": "admission", "bogus": 1})


def test_register_policy_requires_factory():
    with pytest.raises(ValueError, match="factory"):
        register_policy(PolicySpec(name="x", summary="no factory"))


def test_scripted_flag_and_hooks_default():
    p = ControlPolicy()
    assert not p.scripted
    assert p.admit(AdmissionRequest("j", 4, 0.0, 0.0, frozenset(range(8))))
    assert p.place(PlacementRequest("j", 4, "rn", 0.0, 0.0,
                                    frozenset(range(8)))) is None
    assert ScriptedPolicy.scripted
    assert not LoadAwarePolicy.scripted


# -- behavioural guarantees ---------------------------------------------------

def _manager(policy_kwargs=None, **jobs_kwargs):
    mgr = WorkloadManager(Dragonfly1D.mini(), routing="min", placement="rn",
                          seed=7)
    mgr.add_job(Job("hot", 16, program=hotspot,
                    params={"iters": 0, "msg_bytes": 65536,
                            "interval_s": 2e-5, "hot_ranks": 2, "seed": 7},
                    background=True))
    mgr.add_job(Job("app", 8, program=nearest_neighbor,
                    params={"dims": (2, 2, 2), "iters": 3, "msg_bytes": 8192},
                    arrival=0.002))
    return mgr


def _placement_of(policy):
    mgr = _manager()
    outcome = mgr.session(policy).run(until=0.01)
    return sorted(outcome.app("app").nodes)


def test_scripted_policy_golden_identical_to_no_policy():
    """The acceptance golden: a scripted-policy session reproduces the
    policy-less draws bit for bit (static and dynamic paths)."""
    # Dynamic path (arrival > 0).
    assert _placement_of("scripted") == _placement_of(None)
    # Static path (all t=0): one manager runs bare, one with the
    # scripted policy name.
    def static_nodes(policy):
        mgr = WorkloadManager(Dragonfly1D.mini(), placement="rn", seed=11)
        mgr.add_program_job("nn", 8, nearest_neighbor,
                            {"dims": (2, 2, 2), "iters": 2, "msg_bytes": 1024})
        out = (mgr.session(policy) if policy else mgr.session()).run(until=0.05)
        return sorted(out.app("nn").nodes)

    assert static_nodes("scripted") == static_nodes(None)


def test_load_aware_policy_changes_placement_outcomes():
    """The pinned behavioural test: load-aware placement reads the
    observation's router loads and lands the arrival on cooler routers
    than the scripted random draw."""
    scripted = _placement_of("scripted")
    aware = _placement_of("load-aware")
    assert aware != scripted

    # And the chosen routers really are the least-loaded ones: recompute
    # the observation at the arrival instant and check the selection.
    mgr = _manager()
    session = mgr.session("load-aware").build()
    session.step(until=0.002)
    obs = session.observe()
    topo = mgr.topo
    session.step(until=0.01)
    outcome = session.finalize()
    chosen_routers = sorted({topo.router_of_node(n)
                             for n in outcome.app("app").nodes})
    load = obs.router_load
    worst_chosen = max(load[r] for r in chosen_routers)
    hot_routers = sorted(range(topo.n_routers), key=lambda r: -load[r])
    # The hottest router carries real traffic and was avoided.
    assert load[hot_routers[0]] > worst_chosen
    assert hot_routers[0] not in chosen_routers


def test_admission_policy_defers_and_names_itself():
    mgr = _manager()
    # Mini dragonfly: 144 nodes.  hot admits (144-16=128 free >= 125);
    # app at t=0.002 would leave 128-8=120 < 125 -> deferred.
    outcome = mgr.session({"type": "admission", "min_free": 125}).run(until=0.01)
    assert [a.name for a in outcome.apps] == ["hot"]
    (name, reason), = outcome.not_started
    assert name == "app"
    assert "deferred by policy 'admission'" in reason
    assert "t=0.002" in reason


def test_admission_policy_admits_when_room():
    outcome = _manager().session(
        {"type": "admission", "min_free": 4}).run(until=0.01)
    assert {a.name for a in outcome.apps} == {"hot", "app"}


class _BadPlacer(ControlPolicy):
    name = "bad"

    def __init__(self, mode, only=None):
        super().__init__()
        self.mode = mode
        self.only = only  # misbehave only for this job (None = always)

    def place(self, req):
        if self.only is not None and req.job != self.only:
            return None  # scripted fallthrough
        free = sorted(req.free_nodes)
        if self.mode == "short":
            return free[:req.nranks - 1]
        if self.mode == "dup":
            return [free[0]] * req.nranks
        return [-1] + free[:req.nranks - 1]  # occupied/unknown node


@pytest.mark.parametrize("mode,match", [
    ("short", "7 nodes for 8 ranks"),
    ("dup", "duplicate nodes"),
    ("occupied", "occupied/unknown"),
])
def test_policy_node_validation(mode, match):
    """A bad placement for a t=0 job fails the build loudly."""
    mgr = WorkloadManager(Dragonfly1D.mini(), placement="rn", seed=7)
    mgr.add_program_job("nn", 8, nearest_neighbor,
                        {"dims": (2, 2, 2), "iters": 2, "msg_bytes": 1024})
    with pytest.raises(PlacementError, match=match):
        mgr.session(_BadPlacer(mode)).run(until=0.01)


def test_bad_placement_at_arrival_skips_job_with_reason():
    """A policy failure at a mid-run arrival skips the job (with the
    error as the reason) instead of crashing the simulation."""
    mgr = _manager()
    outcome = mgr.session(_BadPlacer("short", only="app")).run(until=0.01)
    (name, reason), = outcome.not_started
    assert name == "app"
    assert "placement failed at arrival" in reason


def test_route_hook_overrides_per_job_routing():
    class ForceMin(ControlPolicy):
        name = "force-min"

        def route(self, req):
            return "min"

    # Identical seeds; only the routing hook differs.  Against adaptive
    # fabric routing the forced-minimal job sees different traffic.
    def events(policy):
        mgr = WorkloadManager(Dragonfly1D.mini(), routing="adp",
                              placement="rn", seed=9)
        mgr.add_program_job("ur", 16, uniform_random,
                            {"iters": 30, "msg_bytes": 65536,
                             "interval_s": 1e-5})
        out = mgr.session(policy).run(until=0.05)
        return out.fabric.engine.events_processed

    assert events(ForceMin()) != events(ScriptedPolicy())
