"""Event-generator backends: pattern cache, counting rules, RNG layout."""

import pytest

from repro.conceptual.interpreter import ApplicationRun
from repro.union.event_generator import (
    CountingUnionAPI,
    SkeletonShared,
    run_skeleton_counting,
)
from repro.union.translator import translate


def test_pattern_cache_shared_and_bounded():
    shared = SkeletonShared(4, seed=0)
    apis = [CountingUnionAPI(r, shared, ApplicationRun(4, False)) for r in range(4)]
    tgt = ("expr", lambda s: (s + 1) % 4)
    for api in apis:
        snd, rcv = api.pattern(0, None, tgt, None)
        assert snd == [(api.rank + 1) % 4]
        assert rcv == [(api.rank - 1) % 4]
    # After all 4 ranks consumed the instance, the cache entry is gone.
    assert shared.cache == {}


def test_pattern_instances_advance_per_rank():
    shared = SkeletonShared(2, seed=0)
    api0 = CountingUnionAPI(0, shared, ApplicationRun(2, False))
    api1 = CountingUnionAPI(1, shared, ApplicationRun(2, False))
    tgt_a = ("expr", lambda s: 1 - s)
    # rank 0 executes the statement twice before rank 1 starts.
    api0.pattern(0, None, tgt_a, None)
    api0.pattern(0, None, tgt_a, None)
    assert len(shared.cache) == 2
    api1.pattern(0, None, tgt_a, None)
    api1.pattern(0, None, tgt_a, None)
    assert shared.cache == {}


def test_pattern_modes():
    shared = SkeletonShared(5, seed=0)
    api = CountingUnionAPI(2, shared, ApplicationRun(5, False))
    snd, rcv = api.pattern(0, None, ("others", None), None)
    assert len(snd) == 4 and 2 not in snd
    assert len(rcv) == 4
    snd, rcv = api.pattern(1, None, ("all", None), None)
    assert len(snd) == 5 and len(rcv) == 5
    snd, rcv = api.pattern(2, (lambda s: s == 0), ("filter", lambda t: t > 2), None)
    assert snd == []  # rank 2 is not a sender
    assert rcv == []  # rank 2 fails the filter
    api3 = CountingUnionAPI(3, shared, ApplicationRun(5, False))
    # same instance from another rank: rank 3 receives from sender 0
    _, rcv3 = api3.pattern(2, (lambda s: s == 0), ("filter", lambda t: t > 2), None)
    assert rcv3 == [0]


def test_pattern_count_multiplier():
    shared = SkeletonShared(2, seed=0)
    api = CountingUnionAPI(0, shared, ApplicationRun(2, False))
    snd, _ = api.pattern(0, None, ("expr", lambda s: 1 - s), lambda s: 3)
    assert snd == [1, 1, 1]


def test_pattern_negative_target_skipped():
    shared = SkeletonShared(3, seed=0)
    api = CountingUnionAPI(0, shared, ApplicationRun(3, False))
    snd, rcv = api.pattern(0, None, ("expr", lambda s: s - 1), None)
    assert snd == []  # rank 0's target is -1
    assert rcv == [1]


def test_pattern_out_of_range_target_raises():
    shared = SkeletonShared(3, seed=0)
    api = CountingUnionAPI(0, shared, ApplicationRun(3, False))
    with pytest.raises(ValueError, match="outside"):
        api.pattern(0, None, ("expr", lambda s: 99), None)


def test_random_task_for_uses_family_streams():
    shared = SkeletonShared(4, seed=1)
    api = CountingUnionAPI(0, shared, ApplicationRun(4, False))
    own_draw = api.random_task_for(0, 0, 1000)
    shared2 = SkeletonShared(4, seed=1)
    api2 = CountingUnionAPI(0, shared2, ApplicationRun(4, False))
    shared2.in_pattern = True
    pattern_draw = api2.random_task_for(0, 0, 1000)
    assert own_draw != pattern_draw  # distinct stream families
    with pytest.raises(ValueError, match="empty range"):
        api.random_task_for(0, 5, 2)


# -- counting backend rules ---------------------------------------------------


def counting_run(src, n, params=None, **kw):
    sk = translate(src, "t")
    return run_skeleton_counting(sk, n, params, **kw)


def test_counting_send_bytes_at_sender():
    r = counting_run("task 0 sends a 100 byte message to task 1", 2)
    assert list(r.bytes_by_rank()) == [100, 0]
    assert r.event_counts()["MPI_Send"] == 1
    assert r.event_counts()["MPI_Recv"] == 1


def test_counting_bcast_bytes_at_root():
    r = counting_run("task 1 multicasts a 50 byte message to all other tasks", 3)
    assert list(r.bytes_by_rank()) == [0, 50, 0]
    assert r.event_counts()["MPI_Bcast"] == 3


def test_counting_allreduce_bytes_everywhere():
    r = counting_run("all tasks reduce a 10 byte value to all tasks", 3)
    assert list(r.bytes_by_rank()) == [10, 10, 10]


def test_counting_reduce_bytes_nonroot():
    r = counting_run("all tasks reduce a 10 byte value to task 0", 3)
    assert list(r.bytes_by_rank()) == [0, 10, 10]


def test_counting_clock_and_elapsed():
    src = (
        "all tasks compute for 4 milliseconds then "
        "task 0 resets its counters then "
        "task 0 computes for 1 millisecond then "
        'task 0 logs elapsed_usecs as "e"'
    )
    r = counting_run(src, 2)
    assert r.clock[0] == pytest.approx(5e-3)
    assert r.log_values(0, "e") == [pytest.approx(1000.0)]


def test_counting_skeleton_has_no_buffers():
    r = counting_run("task 0 sends a 1 megabyte message to task 1", 2)
    assert r.peak_buffer_bytes() == 0


def test_counting_waitall_only_with_outstanding():
    r = counting_run("all tasks await completion", 2)
    assert "MPI_Waitall" not in r.event_counts()
    r = counting_run(
        "task 0 sends a 1 byte nonblocking message to task 1 then all tasks await completion", 2
    )
    assert r.event_counts()["MPI_Waitall"] == 2  # sender's isend + receiver's irecv


def test_counting_validates_n_tasks():
    sk = translate("all tasks synchronize", "t")
    with pytest.raises(ValueError):
        run_skeleton_counting(sk, 0)


def test_shared_validates_n_tasks():
    with pytest.raises(ValueError):
        SkeletonShared(0)
