"""SimUnionAPI: the simulation backend of the event generator."""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.union.event_generator import SimUnionAPI, SkeletonShared
from repro.union.translator import translate


def run_skeleton_sim(src, nranks, params=None, until=1.0):
    skeleton = translate(src, "api-test")
    resolved = skeleton.resolve_params(params)
    shared = SkeletonShared(nranks, seed=0)

    def program(ctx):
        api = SimUnionAPI(ctx, shared)
        yield from skeleton.main(api, resolved)

    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=1), routing="min")
    mpi = SimMPI(fabric)
    mpi.add_job(JobSpec("api-test", nranks, program, list(range(nranks)), resolved))
    mpi.run(until=until)
    return mpi.results()[0], fabric


def test_init_finalize_counted_without_traffic():
    res, fabric = run_skeleton_sim("all tasks compute for 1 microsecond", 4)
    counts = res.event_counts()
    assert counts["MPI_Init"] == 4
    assert counts["MPI_Finalize"] == 4
    assert fabric.messages_sent == 0


def test_blocking_send_produces_network_traffic():
    res, fabric = run_skeleton_sim("task 0 sends a 8192 byte message to task 1", 2)
    assert res.finished
    assert fabric.messages_sent == 1
    assert fabric.bytes_sent == 8192
    assert res.rank_stats[1].msgs_recvd == 1


def test_nonblocking_send_awaits_completion():
    src = (
        "all tasks t sends a 4096 byte nonblocking message to task (t+1) mod num_tasks then "
        "all tasks await completion"
    )
    res, fabric = run_skeleton_sim(src, 6)
    assert res.finished
    assert fabric.messages_sent == 6
    counts = res.event_counts()
    assert counts["MPI_Isend"] == 6
    assert counts["MPI_Irecv"] == 6
    assert counts["MPI_Waitall"] == 6


def test_collectives_expand_to_traffic():
    src = "all tasks reduce a 4 kilobyte value to all tasks then all tasks synchronize"
    res, fabric = run_skeleton_sim(src, 8)
    assert res.finished
    counts = res.event_counts()
    assert counts["MPI_Allreduce"] == 8
    assert counts["MPI_Barrier"] == 8
    assert fabric.messages_sent > 8  # expanded point-to-point traffic


def test_compute_advances_time_not_comm():
    res, _ = run_skeleton_sim("all tasks compute for 2 milliseconds", 3)
    for s in res.rank_stats:
        assert s.compute_time == pytest.approx(2e-3)
        assert s.comm_time == 0.0
        assert s.finished_at >= 2e-3


def test_logging_reaches_rank_stats():
    src = (
        "task 0 resets its counters then "
        "task 0 computes for 1 millisecond then "
        'task 0 logs elapsed_usecs as "t"'
    )
    res, _ = run_skeleton_sim(src, 2)
    rows = res.rank_stats[0].log_rows
    assert rows and rows[0][0] == "t"
    assert rows[0][1] == pytest.approx(1000.0, rel=0.01)


def test_mesh_pattern_skips_edges_in_sim():
    src = "all tasks t sends a 1024 byte message to task mesh_neighbor(4, 1, 1, t, 1, 0, 0)"
    res, fabric = run_skeleton_sim(src, 4)
    assert res.finished
    assert fabric.messages_sent == 3  # task 3 has no +x neighbour


def test_two_skeleton_jobs_have_independent_shared_state():
    skeleton = translate(
        "all tasks t sends a 512 byte message to task (t+1) mod num_tasks", "ring"
    )

    def make_program(shared, resolved):
        def program(ctx):
            api = SimUnionAPI(ctx, shared)
            yield from skeleton.main(api, resolved)

        return program

    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=2), routing="min")
    mpi = SimMPI(fabric)
    for i, n in enumerate((4, 6)):
        mpi.add_job(JobSpec(
            f"ring{i}", n, make_program(SkeletonShared(n, seed=i), {}),
            list(range(i * 8, i * 8 + n)),
        ))
    mpi.run(until=1.0)
    a, b = mpi.results()
    assert a.finished and b.finished
    assert sum(s.msgs_recvd for s in a.rank_stats) == 4
    assert sum(s.msgs_recvd for s in b.rank_stats) == 6
