"""SimulationSession: the build/step/observe/finalize lifecycle.

Covers the stepwise contract (mid-horizon steps commit the identical
event sequence as one monolithic run, on both engines), the versioned
observation snapshots, and the single-use guards on managers and
sessions.
"""

import json

import pytest

from repro.network.dragonfly import Dragonfly1D
from repro.pdes.sequential import SequentialEngine
from repro.scenario import (
    build_manager,
    parse_scenario,
    reduce_scenario_result,
    run_scenario,
)
from repro.telemetry import OBSERVATION_SCHEMA
from repro.union.manager import Job, WorkloadManager
from repro.union.registry import clear_registry, register_source
from repro.workloads.nearest_neighbor import nearest_neighbor
from repro.workloads.uniform_random import uniform_random

SYNC_SRC = (
    "for 5 repetitions { all tasks compute for 100 microseconds then "
    "all tasks reduce a 4 kilobyte value to all tasks }"
)


@pytest.fixture(autouse=True)
def clean_registry():
    clear_registry()
    yield
    clear_registry()


def _manager(seed=3, **kwargs) -> WorkloadManager:
    mgr = WorkloadManager(Dragonfly1D.mini(), routing="adp", placement="rr",
                          seed=seed, **kwargs)
    mgr.add_program_job(
        "nn", 8, nearest_neighbor,
        {"dims": (2, 2, 2), "iters": 3, "msg_bytes": 8192})
    mgr.add_job(Job("ur", 8, program=uniform_random,
                    params={"iters": 5, "msg_bytes": 4096, "interval_s": 1e-5},
                    arrival=0.0005))
    return mgr


def _outcome_fingerprint(outcome):
    out = {"end": outcome.end_time,
           "events": outcome.fabric.engine.events_processed,
           "links": outcome.link_load_summary()}
    for a in outcome.apps:
        out[a.name] = (
            sorted(a.nodes),
            a.result.avg_latency(),
            sorted(a.result.all_latencies()),
            a.result.event_counts(),
        )
    return out


def test_session_run_matches_manager_run():
    ref = _outcome_fingerprint(_manager().run(until=0.1))
    session = _manager().session()
    outcome = session.run(until=0.1)
    assert _outcome_fingerprint(outcome) == ref


def test_lifecycle_explicit_steps_match_monolithic_run():
    ref = _outcome_fingerprint(_manager().run(until=0.1))
    session = _manager().session().build()
    for t in (0.0003, 0.001, 0.02, 0.1):
        reached = session.step(until=t)
        assert reached == pytest.approx(t)
    assert _outcome_fingerprint(session.finalize()) == ref


@pytest.mark.parametrize("engine", [None, {"type": "conservative", "partitions": 3}])
def test_mid_horizon_stepping_parity(engine):
    """step(t1); step(horizon) commits the identical event sequence as
    one run(horizon) -- on the sequential and conservative engines."""
    kwargs = {"engine": dict(engine)} if engine else {}
    ref = _outcome_fingerprint(_manager(**kwargs).run(until=0.05))
    session = _manager(**kwargs).session().build()
    session.step(until=0.0007)
    session.step(until=0.05)
    assert _outcome_fingerprint(session.finalize()) == ref


@pytest.mark.parametrize("engine_table", [None, {"type": "conservative", "partitions": 3}])
def test_stepwise_scenario_json_parity(engine_table):
    """A windowed session reduces to scenario JSON bit-identical to the
    monolithic run_scenario, across both engines."""
    base = {
        "name": "stepwise",
        "topology": {"network": "1d", "scale": "mini"},
        "seed": 7,
        "horizon": 0.004,
        "jobs": [
            {"app": "milc", "nranks": 16},
            {"app": "alexnet", "nranks": 16, "arrival": 0.001},
        ],
        "traffic": [
            {"pattern": "uniform", "nranks": 8, "msg_bytes": 4096,
             "interval_s": 1e-4},
        ],
    }
    if engine_table:
        base["engine"] = dict(engine_table)
    ref = run_scenario(parse_scenario(dict(base))).to_json_dict()
    spec = parse_scenario(dict(base))
    session = build_manager(spec).session().build()
    n_windows = 8
    for k in range(1, n_windows + 1):
        session.step(until=spec.horizon * k / n_windows)
    got = reduce_scenario_result(spec, session.finalize()).to_json_dict()
    if engine_table:
        # 'windows' is an execution statistic, not simulation state:
        # every step() boundary closes a partial YAWNS window, so the
        # stepwise count is >= the monolithic one.  Everything the
        # simulation *committed* must still be bit-identical.
        assert got["engine"].pop("windows") >= ref["engine"].pop("windows")
    assert json.dumps(got, sort_keys=True) == json.dumps(ref, sort_keys=True)


def test_observation_snapshot_contents():
    session = _manager().session().build()
    obs0 = session.observe()
    assert obs0.schema == OBSERVATION_SCHEMA
    assert obs0.version == 1
    assert obs0.clock == 0.0
    assert obs0.jobs_total == 2
    assert obs0.jobs_started == 1  # 'ur' arrives at t=0.0005
    assert obs0.pending == ("ur",)
    assert obs0.job_states == {"nn": "running", "ur": "pending"}
    topo = session.manager.topo
    assert len(obs0.router_load) == topo.n_routers
    assert len(obs0.router_queue) == topo.n_routers
    assert sum(obs0.router_load) == 0.0  # nothing simulated yet
    # 'rr' placement reserves whole routers for nn's 8 ranks.
    assert obs0.free_nodes < topo.n_nodes

    session.step(until=0.01)
    obs1 = session.observe()
    assert obs1.version == 2
    assert obs1.clock == pytest.approx(0.01)
    assert obs1.events > 0
    assert obs1.jobs_started == 2
    assert sum(obs1.router_load) > 0
    assert obs1.link_summary["global_total_bytes"] >= 0
    assert obs1.n_instruments > 0

    vec = obs1.to_vector()
    assert len(vec) == 8 + 2 * topo.n_routers
    assert all(isinstance(x, float) for x in vec)
    d = obs1.to_dict()
    assert json.dumps(d)  # JSON-able
    assert d["pending"] == []
    session.finalize()


def test_observation_and_outcome_reprs():
    session = _manager().session().build()
    session.step(until=0.1)
    obs = session.observe()
    text = repr(obs)
    assert text.startswith("<Observation v")
    assert "2/2 jobs started" in text
    assert "2 finished" in text
    assert "instruments>" in text
    outcome = session.finalize()
    out = repr(outcome)
    assert out.startswith("<RunOutcome t=")
    assert "2 jobs started, 2 finished" in out


def test_outcome_repr_counts_not_started():
    mgr = WorkloadManager(Dragonfly1D.mini(), seed=1)
    mgr.add_program_job("nn", 8, nearest_neighbor,
                        {"dims": (2, 2, 2), "iters": 2, "msg_bytes": 1024})
    mgr.add_job(Job("late", 8, program=uniform_random,
                    params={"iters": 1}, arrival=99.0))
    out = repr(mgr.run(until=0.1))
    assert "1 jobs started" in out and "1 not started" in out


def test_manager_is_single_use():
    mgr = _manager()
    mgr.run(until=0.01)
    with pytest.raises(RuntimeError, match=r"single-use.*reset\(\)"):
        mgr.run(until=0.01)
    with pytest.raises(RuntimeError, match=r"single-use.*reset\(\)"):
        mgr.session()


def test_manager_reset_allows_identical_rerun():
    mgr = _manager()
    first = _outcome_fingerprint(mgr.run(until=0.05))
    second = _outcome_fingerprint(mgr.reset().run(until=0.05))
    assert second == first


def test_reset_refuses_ready_engine_instance():
    mgr = WorkloadManager(Dragonfly1D.mini(), engine=SequentialEngine())
    mgr.add_program_job("nn", 8, nearest_neighbor,
                        {"dims": (2, 2, 2), "iters": 2, "msg_bytes": 1024})
    mgr.run(until=0.05)
    with pytest.raises(RuntimeError, match="cannot reset"):
        mgr.reset()


def test_session_build_is_single_use():
    session = _manager().session()
    session.build()
    with pytest.raises(RuntimeError, match="already built"):
        session.build()


def test_step_and_observe_require_build():
    session = _manager().session()
    with pytest.raises(RuntimeError, match=r"cannot step before build\(\)"):
        session.step(until=1.0)
    with pytest.raises(RuntimeError, match=r"cannot observe before build\(\)"):
        session.observe()
    with pytest.raises(RuntimeError, match=r"cannot finalize before build\(\)"):
        session.finalize()


def test_step_after_finalize_raises():
    session = _manager().session().build()
    session.step(until=0.01)
    session.finalize()
    with pytest.raises(RuntimeError, match="finalized"):
        session.step(until=0.02)
    # finalize stays idempotent.
    assert session.finalize() is session.finalize()


def test_step_backwards_raises():
    session = _manager().session().build()
    session.step(until=0.01)
    with pytest.raises(ValueError, match="cannot step backwards"):
        session.step(until=0.001)


def test_sessions_share_telemetry_supersession_on_reset():
    """reset() + rerun re-registers instruments into the same telemetry
    session (replace=True supersession) instead of crashing."""
    mgr = _manager()
    mgr.run(until=0.01)
    t = mgr.telemetry
    n = len(t.instruments())
    mgr.reset().run(until=0.01)
    assert mgr.telemetry is t
    assert len(t.instruments()) == n
