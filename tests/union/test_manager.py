"""WorkloadManager: co-scheduling, placement wiring, metrics."""

import pytest

from repro.network.dragonfly import Dragonfly1D
from repro.union.manager import Job, WorkloadManager
from repro.union.registry import clear_registry, register_source
from repro.union.translator import translate
from repro.workloads.nearest_neighbor import nearest_neighbor

SYNC_SRC = "for 5 repetitions { all tasks compute for 100 microseconds then all tasks reduce a 4 kilobyte value to all tasks }"


@pytest.fixture(autouse=True)
def clean_registry():
    clear_registry()
    yield
    clear_registry()


def test_job_requires_exactly_one_payload():
    sk = translate(SYNC_SRC, "s")
    with pytest.raises(ValueError, match="exactly one"):
        Job("x", 2)
    with pytest.raises(ValueError, match="exactly one"):
        Job("x", 2, skeleton=sk, program=nearest_neighbor)
    with pytest.raises(ValueError, match="nranks"):
        Job("x", 0, skeleton=sk)


def test_run_without_jobs():
    mgr = WorkloadManager(Dragonfly1D.mini())
    with pytest.raises(RuntimeError, match="no jobs"):
        mgr.run()


def test_skeleton_and_program_jobs_corun():
    register_source(SYNC_SRC, "sync")
    mgr = WorkloadManager(Dragonfly1D.mini(), routing="adp", placement="rr", seed=3)
    mgr.add_skeleton_job("sync", 8)
    mgr.add_program_job(
        "nn", 8, nearest_neighbor, {"dims": (2, 2, 2), "iters": 3, "msg_bytes": 8192}
    )
    outcome = mgr.run(until=0.1)
    assert {a.name for a in outcome.apps} == {"sync", "nn"}
    for a in outcome.apps:
        assert a.result.finished
        assert a.result.avg_latency() > 0


def test_placement_disjoint_and_metadata():
    register_source(SYNC_SRC, "sync")
    mgr = WorkloadManager(Dragonfly1D.mini(), placement="rg", seed=5)
    mgr.add_skeleton_job("sync", 16, job_name="a")
    mgr.add_skeleton_job("sync", 16, job_name="b")
    outcome = mgr.run(until=0.1)
    a, b = outcome.app("a"), outcome.app("b")
    assert not (set(a.nodes) & set(b.nodes))
    # RG placement: whole groups, so group sets are disjoint too.
    assert not (set(a.groups) & set(b.groups))
    assert a.routers and b.routers


def test_rg_confines_traffic_to_own_groups():
    register_source(SYNC_SRC, "sync")
    mgr = WorkloadManager(Dragonfly1D.mini(), routing="min", placement="rg", seed=2)
    mgr.add_skeleton_job("sync", 16, job_name="a")
    mgr.add_skeleton_job("sync", 16, job_name="b")
    outcome = mgr.run(until=0.1)
    # With minimal routing and whole-group placement, job b's traffic
    # never crosses job a's routers.
    series = outcome.router_traffic_series("a", "b")
    assert series.sum() == 0
    assert outcome.router_traffic_series("a", "a").sum() > 0


def test_outcome_app_lookup_error():
    register_source(SYNC_SRC, "sync")
    mgr = WorkloadManager(Dragonfly1D.mini())
    mgr.add_skeleton_job("sync", 4)
    outcome = mgr.run(until=0.05)
    with pytest.raises(KeyError, match="no application"):
        outcome.app("nope")


def test_skeleton_params_forwarded():
    src = 'reps is "r" and comes from "--reps" with default 2. for reps repetitions { all tasks synchronize }'
    register_source(src, "param-app")
    mgr = WorkloadManager(Dragonfly1D.mini(), seed=4)
    mgr.add_skeleton_job("param-app", 4, {"reps": 7})
    outcome = mgr.run(until=0.1)
    counts = outcome.app("param-app").result.event_counts()
    assert counts["MPI_Barrier"] == 7 * 4


def test_undeclared_loop_variable_rejected_at_translate():
    with pytest.raises(Exception, match="undefined variable"):
        translate("for reps repetitions { all tasks synchronize }", "p")


def test_link_load_summary_exposed():
    register_source(SYNC_SRC, "sync")
    mgr = WorkloadManager(Dragonfly1D.mini(), seed=1)
    mgr.add_skeleton_job("sync", 8)
    outcome = mgr.run(until=0.1)
    summary = outcome.link_load_summary()
    assert summary["local_total_bytes"] > 0
    assert 0 <= summary["global_fraction"] <= 1
