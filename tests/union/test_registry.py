"""Skeleton registry (Figure 4)."""

import pytest

from repro.union.registry import (
    available_skeletons,
    clear_registry,
    get_skeleton,
    register_skeleton,
    register_source,
)
from repro.union.translator import translate


@pytest.fixture(autouse=True)
def clean():
    clear_registry()
    yield
    clear_registry()


def test_register_and_get():
    sk = register_source("all tasks synchronize", "sync")
    assert get_skeleton("sync") is sk
    assert available_skeletons() == ["sync"]


def test_duplicate_rejected_unless_replace():
    register_source("all tasks synchronize", "app")
    with pytest.raises(ValueError, match="already registered"):
        register_source("all tasks synchronize", "app")
    replacement = register_source("all tasks synchronize then all tasks synchronize", "app", replace=True)
    assert get_skeleton("app") is replacement


def test_missing_skeleton_lists_available():
    register_source("all tasks synchronize", "a")
    with pytest.raises(KeyError, match="available.*'a'"):
        get_skeleton("b")


def test_register_skeleton_object():
    sk = translate("all tasks synchronize", "obj")
    assert register_skeleton(sk) is sk
    assert "obj" in available_skeletons()


def test_clear():
    register_source("all tasks synchronize", "x")
    clear_registry()
    assert available_skeletons() == []
