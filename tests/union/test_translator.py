"""Union translator: code generation and compilation."""

import pytest

from repro.conceptual.errors import SemanticError
from repro.union.translator import generate_python, translate
from repro.conceptual.parser import parse
from repro.conceptual.semantics import check
from repro.workloads.sources import ALEXNET_SOURCE, COSMOFLOW_SOURCE, PINGPONG_SOURCE


def test_pingpong_translates():
    sk = translate(PINGPONG_SOURCE, "pingpong")
    assert sk.name == "pingpong"
    assert callable(sk.main)
    assert sk.defaults == {"reps": 1000, "msgsize": 1024}
    assert "UNION_MPI_Send" in sk.python_source
    assert "UNION_MPI_Init" in sk.python_source
    assert "UNION_MPI_Finalize" in sk.python_source


def test_generated_code_is_skeletonized():
    """No buffers in the generated code: only byte counts and the
    UNION_Compute delay model (the Section III-C transformations)."""
    sk = translate(COSMOFLOW_SOURCE, "cosmo")
    assert "UNION_Compute" in sk.python_source
    assert "bytearray" not in sk.python_source
    assert "UNION_MPI_Allreduce" in sk.python_source


def test_assert_compiled_into_guard():
    sk = translate(PINGPONG_SOURCE, "pp")
    assert "raise AssertionError" in sk.python_source


def test_params_resolve_and_reject_unknown():
    sk = translate(PINGPONG_SOURCE, "pp")
    merged = sk.resolve_params({"reps": 5})
    assert merged == {"reps": 5, "msgsize": 1024}
    with pytest.raises(ValueError, match="no parameters"):
        sk.resolve_params({"bogus": 1})


def test_unit_conversion_in_sizes():
    sk = translate("task 0 sends a 2 megabyte message to task 1", "m")
    assert "2097152" in sk.python_source or "* 1048576" in sk.python_source


def test_multicast_reduce_barrier_codegen():
    src = (
        "task 0 multicasts a 4 byte message to all other tasks then "
        "all tasks reduce an 8 byte value to all tasks then "
        "all tasks reduce an 8 byte value to task 2 then "
        "all tasks synchronize"
    )
    sk = translate(src, "colls")
    assert "UNION_MPI_Bcast" in sk.python_source
    assert "UNION_MPI_Allreduce" in sk.python_source
    assert "UNION_MPI_Reduce" in sk.python_source
    assert "UNION_MPI_Barrier" in sk.python_source


def test_control_flow_codegen():
    src = (
        "for 3 repetitions { "
        "for each i in {1, ..., 4} { "
        "if i is even then { all tasks synchronize } otherwise { all tasks synchronize } } }"
    )
    sk = translate(src, "cf")
    assert "for _i0 in range" in sk.python_source
    assert "_range_seq" in sk.python_source
    assert "else:" in sk.python_source


def test_nonblocking_send_codegen():
    src = "all tasks t sends a 8 byte nonblocking message to task (t+1) mod num_tasks then all tasks await completion"
    sk = translate(src, "nb")
    assert "UNION_MPI_Isend" in sk.python_source
    assert "UNION_MPI_Irecv" in sk.python_source
    assert "UNION_MPI_Waitall" in sk.python_source


def test_log_and_reset_codegen():
    sk = translate(PINGPONG_SOURCE, "pp")
    assert "u.reset_counters()" in sk.python_source
    assert "u.log(" in sk.python_source
    assert "u.compute_aggregates()" in sk.python_source


def test_semantic_errors_propagate():
    with pytest.raises(SemanticError):
        translate("task 0 sends a whoops byte message to task 1", "bad")


def test_generate_python_matches_translate():
    program = check(parse(PINGPONG_SOURCE, "pp"))
    src = generate_python(program, "pp")
    assert src == translate(PINGPONG_SOURCE, "pp").python_source


def test_all_shipped_sources_translate():
    for name, src in [
        ("pingpong", PINGPONG_SOURCE),
        ("cosmoflow", COSMOFLOW_SOURCE),
        ("alexnet", ALEXNET_SOURCE),
    ]:
        sk = translate(src, name)
        assert sk.python_source.startswith("# Auto-generated Union skeleton")


def test_generated_code_compiles_clean():
    sk = translate(ALEXNET_SOURCE, "alexnet")
    compile(sk.python_source, "<check>", "exec")
