"""The Section VII I/O extension: coNCePTuaL verbs through the whole
Union pipeline (parse -> translate -> validate -> simulate)."""

import pytest

from repro.conceptual import ast_nodes as A
from repro.conceptual.errors import ParseError, SemanticError
from repro.conceptual.interpreter import run_application
from repro.conceptual.parser import parse
from repro.conceptual.semantics import check
from repro.network.dragonfly import Dragonfly1D
from repro.union.manager import Job, WorkloadManager
from repro.union.translator import translate
from repro.union.validation import validate_skeleton

HEADER = 'Require language version "1.5".\n'


# -- parsing ------------------------------------------------------------------


def test_parse_write_with_server():
    prog = parse(HEADER + "task 0 writes a 4 megabyte file to server 1", "t")
    stmt = prog.body.stmts[0]
    assert isinstance(stmt, A.IOStmt)
    assert stmt.write is True
    assert stmt.unit == 1048576.0
    assert stmt.server is not None


def test_parse_read_defaults_server():
    prog = parse(HEADER + "all tasks reads a 128 kilobyte file", "t")
    stmt = prog.body.stmts[0]
    assert isinstance(stmt, A.IOStmt)
    assert stmt.write is False
    assert stmt.server is None


def test_parse_read_server_expression():
    prog = parse(HEADER + "all tasks t reads a 1 megabyte file from server (t mod 4)", "t")
    stmt = prog.body.stmts[0]
    assert isinstance(stmt, A.IOStmt)
    assert stmt.server is not None


def test_parse_rejects_wrong_preposition():
    # "to" belongs to writes, "from" to reads.
    with pytest.raises(ParseError):
        parse(HEADER + "task 0 writes a 1 megabyte file from server 0 to server 1", "t")


def test_semantics_checks_server_expr():
    prog = parse(HEADER + "task 0 writes a 1 megabyte file to server nosuchvar", "t")
    with pytest.raises(SemanticError, match="undefined variable"):
        check(prog)


def test_semantics_binds_task_var_in_size():
    prog = parse(HEADER + "all tasks t writes a (t+1) kilobyte file", "t")
    check(prog)  # must not raise


# -- application interpreter -------------------------------------------------------


def test_interpreter_counts_io_events_and_bytes():
    prog = check(parse(
        HEADER + "For 3 repetitions { all tasks t reads a 1 megabyte file from server t }",
        "t",
    ))
    run = run_application(prog, 4)
    assert run.event_counts()["IO_Read"] == 12
    assert list(run.bytes_io) == [3 * 1048576] * 4
    # The application stages I/O through a real buffer.
    assert run.peak_buffer_bytes() >= 1048576


def test_interpreter_io_single_task_membership():
    prog = check(parse(HEADER + "task 2 writes a 64 kilobyte file", "t"))
    run = run_application(prog, 4)
    assert list(run.event_counts_per_rank("IO_Write")) == [0, 0, 1, 0]
    assert list(run.bytes_io) == [0, 0, 65536, 0]


# -- translation + validation ----------------------------------------------------


IO_PROGRAM = HEADER + """
fsize is "File size" and comes from "--fsize" or "-f" with default 262144.

For 2 repetitions {
  all tasks t reads a fsize byte file from server (t mod 2) then
  all tasks reduces a 65536 byte message to all tasks then
  task 0 writes a 1 megabyte file
}
"""


def test_translator_emits_union_io_calls():
    skel = translate(IO_PROGRAM, "io_prog")
    assert "UNION_IO_Read(int(v_fsize), int(((v_t) % (2))))" in skel.python_source
    assert "UNION_IO_Write" in skel.python_source


def test_validation_matches_app_and_skeleton():
    rep = validate_skeleton(IO_PROGRAM, 8, name="io_prog")
    assert rep.ok, rep.mismatches
    counts = dict((fn, a) for fn, a, _ in rep.table4_rows())
    assert counts["IO_Read"] == 16
    assert counts["IO_Write"] == 2
    # Buffers: app stages I/O, skeleton nulls them (Table I property).
    app_buf, skel_buf = rep.memory_comparison()
    assert app_buf >= 1048576 and skel_buf == 0


def test_validation_catches_io_byte_mismatch():
    """Same op counts but different sizes must fail the byte check."""
    a = HEADER + "task 0 writes a 1 megabyte file"
    b = HEADER + "task 0 writes a 2 megabyte file"
    skel_b = translate(b, "b")
    from repro.union.event_generator import run_skeleton_counting
    import numpy as np

    app = run_application(check(parse(a, "a")), 2)
    skel = run_skeleton_counting(skel_b, 2)
    assert not np.array_equal(app.bytes_io, skel.bytes_io)


# -- simulation -----------------------------------------------------------------


def test_skeleton_io_runs_on_fabric_with_storage():
    skel = translate(IO_PROGRAM, "io_prog")
    topo = Dragonfly1D.mini()
    mgr = WorkloadManager(
        topo, routing="adp", placement="rg", seed=3,
        storage_nodes=[topo.n_nodes - 1, topo.n_nodes - 2],
    )
    mgr.add_job(Job("io_prog", 8, skeleton=skel))
    out = mgr.run(until=10.0)
    res = out.app("io_prog").result
    assert res.finished
    st = mgr.storage.app_stats(0)
    assert st.ops == 18  # 16 reads + 2 writes
    assert st.bytes_read == 16 * 262144
    assert st.bytes_written == 2 * 1048576
    # server (t mod 2) striping touched both servers.
    assert all(s.bytes_read > 0 for s in mgr.storage.servers)


def test_skeleton_io_without_storage_raises():
    skel = translate(HEADER + "task 0 writes a 1 megabyte file", "w")
    topo = Dragonfly1D.mini()
    mgr = WorkloadManager(topo, seed=1)
    mgr.add_job(Job("w", 2, skeleton=skel))
    with pytest.raises(RuntimeError, match="no storage"):
        mgr.run(until=1.0)


def test_default_server_round_robins_by_rank():
    skel = translate(HEADER + "all tasks writes a 64 kilobyte file", "w")
    topo = Dragonfly1D.mini()
    mgr = WorkloadManager(
        topo, seed=1, placement="rg",
        storage_nodes=[topo.n_nodes - 1, topo.n_nodes - 2],
    )
    mgr.add_job(Job("w", 4, skeleton=skel))
    mgr.run(until=10.0)
    # Ranks 0,2 -> server 0; ranks 1,3 -> server 1.
    assert [s.bytes_written for s in mgr.storage.servers] == [2 * 65536, 2 * 65536]
