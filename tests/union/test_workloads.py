"""Workload implementations and the Table III catalog."""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.workloads.base import grid_coords, grid_rank, torus_neighbors
from repro.workloads.catalog import (
    PANEL_APPS,
    WORKLOADS,
    app_catalog,
    build_baseline_job,
    build_jobs,
)
from repro.workloads.lammps import lammps
from repro.workloads.milc import milc
from repro.workloads.nearest_neighbor import nearest_neighbor
from repro.workloads.nekbone import nekbone
from repro.workloads.uniform_random import uniform_random


def run_program(program, nranks, params, until=0.2):
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=1), routing="min")
    mpi = SimMPI(fabric)
    mpi.add_job(JobSpec("w", nranks, program, list(range(nranks)), params))
    mpi.run(until=until)
    return mpi.results()[0], fabric


# -- grid helpers --------------------------------------------------------------


def test_grid_roundtrip():
    dims = (3, 4, 5)
    for rank in range(60):
        assert grid_rank(grid_coords(rank, dims), dims) == rank


def test_torus_neighbors_count_and_wrap():
    nbs = torus_neighbors(0, (4, 4, 4))
    assert len(nbs) == 6
    assert 3 in nbs  # -x wraps to coord 3


# -- individual workloads -------------------------------------------------------


def test_nearest_neighbor_runs_and_exchanges():
    res, _ = run_program(
        nearest_neighbor, 8, {"dims": (2, 2, 2), "iters": 4, "msg_bytes": 4096}
    )
    assert res.finished
    # 6 neighbour messages per rank per iteration.
    assert all(s.msgs_recvd == 6 * 4 for s in res.rank_stats)


def test_nearest_neighbor_grid_mismatch():
    with pytest.raises(ValueError, match="grid"):
        run_program(nearest_neighbor, 7, {"dims": (2, 2, 2), "iters": 1})


def test_milc_runs_4d():
    res, _ = run_program(milc, 16, {"dims": (2, 2, 2, 2), "iters": 3, "msg_bytes": 8192})
    assert res.finished
    assert all(s.msgs_recvd == 8 * 3 for s in res.rank_stats)


def test_milc_needs_4_dims():
    with pytest.raises(ValueError, match="4 grid"):
        run_program(milc, 8, {"dims": (2, 2, 2), "iters": 1})


def test_nekbone_mixes_collectives_and_p2p():
    res, _ = run_program(
        nekbone, 8, {"dims": (2, 2, 2), "iters": 4, "msg_sizes": (8, 1024)}
    )
    assert res.finished
    counts = res.event_counts()
    assert counts["MPI_Allreduce"] == 2 * 4 * 8
    assert counts["MPI_Isend"] == 6 * 4 * 8


def test_lammps_uses_blocking_sends():
    res, _ = run_program(
        lammps, 8, {"dims": (2, 2, 2), "iters": 4, "msg_sizes": (4, 2048)}
    )
    assert res.finished
    counts = res.event_counts()
    assert counts["MPI_Send"] == 6 * 4 * 8
    assert counts["MPI_Allreduce"] == 2 * 8  # every 2nd iteration


def test_uniform_random_endless_until_horizon():
    res, fabric = run_program(
        uniform_random, 8, {"msg_bytes": 1024, "interval_s": 1e-3, "iters": 0}, until=0.02
    )
    assert not res.finished  # endless by design
    assert fabric.messages_sent > 8


def test_uniform_random_never_self_sends():
    res, _ = run_program(
        uniform_random, 4, {"msg_bytes": 64, "interval_s": 1e-4, "iters": 50}
    )
    assert res.finished
    for rank, s in enumerate(res.rank_stats):
        # latency samples are recorded at receivers; self-sends would
        # show up as src == receiver, checked via message counts instead
        assert s.msgs_sent == 50


def test_uniform_random_deterministic_by_seed():
    a, _ = run_program(uniform_random, 4, {"iters": 20, "seed": 5})
    b, _ = run_program(uniform_random, 4, {"iters": 20, "seed": 5})
    assert [s.msgs_recvd for s in a.rank_stats] == [s.msgs_recvd for s in b.rank_stats]


# -- catalog ------------------------------------------------------------------------


def test_workloads_match_table3():
    assert set(WORKLOADS) == {"workload1", "workload2", "workload3"}
    assert WORKLOADS["workload1"].apps == ["cosmoflow", "alexnet", "lammps", "nn", "ur"]
    assert WORKLOADS["workload2"].apps == ["cosmoflow", "alexnet", "lammps", "milc", "nn"]
    assert WORKLOADS["workload3"].apps == ["cosmoflow", "alexnet", "nekbone", "milc", "nn"]


def test_paper_catalog_rank_counts():
    cat = app_catalog("paper")
    assert cat["cosmoflow"].nranks == 1024
    assert cat["alexnet"].nranks == 512
    assert cat["nn"].nranks == 512
    assert cat["milc"].nranks == 4096
    assert cat["nekbone"].nranks == 2197
    assert cat["lammps"].nranks == 2048
    assert cat["ur"].nranks == 4096


def test_mini_catalog_fits_mini_systems():
    cat = app_catalog("mini")
    for w in WORKLOADS.values():
        total = sum(cat[a].nranks for a in w.apps)
        assert total <= 144


def test_ml_flags():
    cat = app_catalog("mini")
    assert cat["cosmoflow"].ml and cat["alexnet"].ml
    assert not cat["milc"].ml


def test_build_jobs():
    jobs = build_jobs("workload3", "mini")
    assert [j.name for j in jobs] == WORKLOADS["workload3"].apps
    with pytest.raises(KeyError, match="unknown workload"):
        build_jobs("workload9")


def test_build_baseline_job():
    job = build_baseline_job("milc", "mini")
    assert job.name == "milc"
    assert job.program is not None


def test_unknown_scale():
    with pytest.raises(ValueError, match="unknown scale"):
        app_catalog("huge")


def test_panel_apps_subset_of_catalog():
    cat = app_catalog("mini")
    assert set(PANEL_APPS) <= set(cat)
