"""Section V validation: skeleton must match the application."""

import pytest

from repro.union.translator import translate
from repro.union.validation import validate_skeleton
from repro.workloads.sources import (
    ALEXNET_SOURCE,
    COSMOFLOW_SOURCE,
    HOTSPOT_SOURCE,
    PINGPONG_SOURCE,
    UNIFORM_RANDOM_SOURCE,
)


def test_pingpong_validates():
    rep = validate_skeleton(PINGPONG_SOURCE, 4, {"reps": 20}, name="pingpong")
    assert rep.ok
    assert rep.event_counts_match and rep.bytes_match and rep.traces_match
    assert rep.mismatches == []


def test_cosmoflow_validates():
    rep = validate_skeleton(COSMOFLOW_SOURCE, 8, {"iters": 3}, name="cosmoflow")
    assert rep.ok
    rows = {fn: (a, s) for fn, a, s in rep.table4_rows()}
    assert rows["MPI_Allreduce"] == (24, 24)  # 3 iters x 8 ranks


def test_alexnet_validates_with_full_structure():
    rep = validate_skeleton(
        ALEXNET_SOURCE,
        16,
        {"warmups": 30, "updates": 10, "tail": 5},
        name="alexnet",
    )
    assert rep.ok
    rows = {fn: (a, s) for fn, a, s in rep.table4_rows()}
    assert rows["MPI_Init"] == (16, 16)
    assert rows["MPI_Bcast"][0] == rows["MPI_Bcast"][1] == (30 + 10 + 5) * 16
    assert rows["MPI_Allreduce"][0] == (10 * 2 + 5) * 16


def test_alexnet_table5_shape():
    """Rank 0 transmits the broadcast payloads; workers transmit only the
    allreduce volume -- the Table V structure (one row for rank 0, one
    folded row for everyone else)."""
    rep = validate_skeleton(
        ALEXNET_SOURCE, 8, {"warmups": 5, "updates": 4, "tail": 1}, name="alexnet"
    )
    rows = rep.table5_rows()
    assert rows[0][0] == "0"
    assert rows[1][0] == "1 to 7"
    assert rows[0][1] == rows[0][2]
    assert rows[1][1] == rows[1][2]
    assert rows[0][1] != rows[1][1]


def test_uniform_random_with_random_task_validates():
    """random_task draws must agree across both backends (stream layout)."""
    rep = validate_skeleton(UNIFORM_RANDOM_SOURCE, 6, {"iters": 20}, name="ur")
    assert rep.ok, rep.mismatches


def test_hotspot_source_validates():
    """The hotspot DSL twin (restricted sender set) survives translation."""
    rep = validate_skeleton(HOTSPOT_SOURCE, 6, {"iters": 10}, name="hs")
    assert rep.ok, rep.mismatches


def test_memory_comparison_quantifies_skeletonization():
    rep = validate_skeleton(COSMOFLOW_SOURCE, 4, {"iters": 1, "abytes": 1 << 20}, name="c")
    app_mem, skel_mem = rep.memory_comparison()
    assert app_mem == 1 << 20
    assert skel_mem == 0


def test_traces_can_be_skipped():
    rep = validate_skeleton(PINGPONG_SOURCE, 2, {"reps": 2}, record_trace=False)
    assert rep.traces_match is None
    assert rep.ok


def test_mismatch_detection():
    """A deliberately broken skeleton must be flagged, with diagnostics."""
    sk = translate("task 0 sends a 100 byte message to task 1", "good")
    # Sabotage: wrap the good main and emit one extra send.
    orig_main = sk.main

    def bad_main(u, params):
        yield from orig_main(u, params)
        yield from u.UNION_MPI_Send(1 - u.rank if u.num_tasks > 1 else 0, 7)

    sk.main = bad_main
    rep = validate_skeleton(sk, 2)
    assert not rep.ok
    assert not rep.event_counts_match or not rep.bytes_match
    assert rep.mismatches


def test_table4_rows_cover_all_functions():
    rep = validate_skeleton(PINGPONG_SOURCE, 3, {"reps": 1})
    fns = [r[0] for r in rep.table4_rows()]
    assert "MPI_Init" in fns and "MPI_Finalize" in fns
    assert fns == sorted(fns)


def test_table5_rows_fold_equal_ranks():
    rep = validate_skeleton("all tasks reduce a 5 byte value to all tasks", 10, name="r")
    rows = rep.table5_rows()
    assert len(rows) == 1
    assert rows[0][0] == "0 to 9"
