"""Metric helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.metrics import BoxStats, boxplot_stats, slowdown


def test_boxplot_basic():
    b = boxplot_stats([1, 2, 3, 4, 5])
    assert b.minimum == 1 and b.maximum == 5
    assert b.median == 3
    assert b.mean == 3
    assert b.n == 5


def test_boxplot_empty():
    b = boxplot_stats([])
    assert b.as_tuple() == (0, 0, 0, 0, 0)
    assert b.n == 0


def test_boxplot_single_value():
    b = boxplot_stats([7.0])
    assert b.as_tuple() == (7, 7, 7, 7, 7)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=100))
@settings(max_examples=200)
def test_boxplot_invariants(values):
    b = boxplot_stats(values)
    assert b.minimum <= b.q1 <= b.median <= b.q3 <= b.maximum
    eps = 1e-9 * max(1.0, abs(b.minimum), abs(b.maximum))  # summation ulps
    assert b.minimum - eps <= b.mean <= b.maximum + eps
    assert b.n == len(values)
    assert b.minimum == min(values)
    assert b.maximum == max(values)


def test_boxplot_matches_numpy_percentiles():
    vals = list(np.linspace(0, 10, 41))
    b = boxplot_stats(vals)
    assert b.q1 == pytest.approx(np.percentile(vals, 25))
    assert b.q3 == pytest.approx(np.percentile(vals, 75))


def test_slowdown():
    assert slowdown(2.0, 1.0) == pytest.approx(1.0)
    assert slowdown(1.0, 1.0) == 0.0
    assert slowdown(0.5, 1.0) == pytest.approx(-0.5)
    assert slowdown(1.0, 0.0) == float("inf")
    assert slowdown(0.0, 0.0) == 0.0


def test_slowdown_zero_value_against_positive_baseline_is_full_speedup():
    # A zero-latency job against a real baseline must report -1.0
    # ("fully sped up"), never 0.0 ("equal"); the non-positive guard
    # applies to the *baseline* only.
    assert slowdown(0.0, 1.0) == -1.0
    assert slowdown(0.0, 1e-300) == -1.0
    assert slowdown(-0.5, 1.0) == pytest.approx(-1.5)


def test_slowdown_degenerate_baselines():
    inf = float("inf")
    # Nothing measurable on either side -> no slowdown.
    assert slowdown(0.0, 0.0) == 0.0
    assert slowdown(-1.0, 0.0) == 0.0
    assert slowdown(-1.0, -2.0) == 0.0
    # Any positive value against a non-positive baseline is infinite.
    assert slowdown(1e-12, 0.0) == inf
    assert slowdown(5.0, -1.0) == inf
    # Infinities propagate through the ratio path.
    assert slowdown(inf, 1.0) == inf
    assert slowdown(inf, 0.0) == inf
