"""Report rendering."""

import numpy as np

from repro.harness.report import format_bytes, format_seconds, render_series, render_table


def test_render_table_alignment():
    out = render_table(["a", "long-header"], [[1, 2], [333, 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "long-header" in lines[1]
    widths = {len(l) for l in lines[1:]}
    assert len(widths) == 1  # all rows equal width


def test_render_table_stringifies():
    out = render_table(["x"], [[None], [3.5]])
    assert "None" in out and "3.5" in out


def test_render_series_peak():
    s = np.array([0, 10, 100, 50])
    out = render_series(s, label="x")
    assert out.startswith("x|")
    assert "peak=" in out


def test_render_series_empty_and_zero():
    assert "(empty)" in render_series(np.array([]))
    out = render_series(np.zeros(10), label="z")
    assert "peak=0 B" in out


def test_render_series_downsamples():
    s = np.arange(1000)
    out = render_series(s, width=40)
    bar = out.split("|")[1]
    assert len(bar) <= 41


def test_render_series_downsampling_keeps_peaks_visible():
    # One huge spike in a long, otherwise-flat series: bucket-max
    # downsampling must keep the spike as the reported peak and render
    # exactly one full-intensity cell for it.
    s = np.ones(1000)
    s[637] = 4096.0
    out = render_series(s, width=50, label="spiky")
    assert "peak=4.00 KB" in out
    bar = out.split("|")[1]
    assert bar.count("@") == 1  # the spike's bucket, at max intensity


def test_render_series_all_zero_is_blank_bar():
    out = render_series(np.zeros(30), width=60, label="z")
    bar = out.split("|")[1]
    assert bar == " " * 30  # no downsampling, one blank per sample
    assert "peak=0 B" in out


def test_render_series_short_series_is_not_padded():
    # Fewer samples than width: one cell per sample, no stretching.
    out = render_series(np.array([1.0, 2.0, 3.0]), width=60)
    assert len(out.split("|")[1]) == 3


def test_render_table_pads_every_column_to_its_widest_cell():
    out = render_table(["a", "b"], [["xxxxxx", 1], ["y", 22222222]])
    lines = out.splitlines()
    # Header, separator and both rows all share one width.
    assert len({len(l) for l in lines}) == 1
    # Column widths come from the widest cell, not the header.
    header = lines[0]
    assert header.startswith("a      ")  # 'a' padded to len("xxxxxx")
    sep = lines[1]
    assert sep == "-" * 6 + "-+-" + "-" * 8


def test_render_table_no_rows_still_renders_header():
    out = render_table(["col1", "col2"], [])
    lines = out.splitlines()
    assert lines[0] == "col1 | col2"
    assert len(lines) == 2  # header + separator, no row lines


def test_format_bytes():
    assert format_bytes(0) == "0 B"
    assert format_bytes(512) == "512 B"
    assert format_bytes(2048) == "2.00 KB"
    assert format_bytes(5 * 1024**2) == "5.00 MB"
    assert format_bytes(3 * 1024**3) == "3.00 GB"
    assert format_bytes(2 * 1024**4) == "2.00 TB"


def test_format_seconds():
    assert format_seconds(0) == "0"
    assert format_seconds(5e-6) == "5.00 us"
    assert format_seconds(1.5e-3) == "1.500 ms"
    assert format_seconds(2.0) == "2.000 s"
