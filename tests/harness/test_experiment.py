"""Experiment runner: caching, result shape, sweeps."""

import numpy as np
import pytest

from repro.harness.configs import COMBOS, make_topology, default_horizon
from repro.harness.experiment import (
    ExperimentConfig,
    clear_cache,
    run_experiment,
)
from repro.harness.sweeps import fig8_series, latency_sweep, panel_stats, table6_loads, workloads_of


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_make_topology():
    assert make_topology("1d", "mini").n_nodes == 144
    assert make_topology("2d", "paper").n_nodes == 8448
    with pytest.raises(ValueError, match="unknown network"):
        make_topology("3d")
    with pytest.raises(ValueError, match="unknown scale"):
        make_topology("1d", "giant")


def test_combos_order():
    assert COMBOS == ("rg-min", "rr-min", "rn-min", "rg-adp", "rr-adp", "rn-adp")


def test_run_experiment_baseline():
    cfg = ExperimentConfig(network="1d", workload="baseline:nn", placement="rr", routing="min")
    res = run_experiment(cfg)
    assert set(res.apps) == {"nn"}
    a = res.app("nn")
    assert a.finished
    assert a.max_latency_box.maximum > 0
    assert a.max_comm_time > 0
    assert res.events > 0


def test_run_experiment_workload_has_all_apps():
    cfg = ExperimentConfig(network="1d", workload="workload2", placement="rn", routing="adp")
    res = run_experiment(cfg)
    assert set(res.apps) == {"cosmoflow", "alexnet", "lammps", "milc", "nn"}
    assert res.app("cosmoflow").ml
    assert not res.app("milc").ml


def test_cache_hit_returns_same_object():
    cfg = ExperimentConfig(network="1d", workload="baseline:nn")
    a = run_experiment(cfg)
    b = run_experiment(cfg)
    assert a is b
    clear_cache()
    c = run_experiment(cfg)
    assert c is not a


def test_results_deterministic_across_cache_clear():
    cfg = ExperimentConfig(network="1d", workload="baseline:lammps", seed=9)
    a = run_experiment(cfg)
    clear_cache()
    b = run_experiment(cfg)
    assert a.app("lammps").max_comm_time == b.app("lammps").max_comm_time
    assert a.app("lammps").max_latency_box == b.app("lammps").max_latency_box
    assert a.events == b.events


def test_router_series_shape():
    cfg = ExperimentConfig(network="1d", workload="baseline:nn")
    res = run_experiment(cfg)
    series = res.router_series[("nn", "nn")]
    expected_bins = int(np.ceil(cfg.resolved_horizon() / res.counter_window))
    assert len(series) == expected_bins
    assert series.sum() > 0


def test_config_helpers():
    cfg = ExperimentConfig(placement="rr", routing="adp")
    assert cfg.combo == "rr-adp"
    assert cfg.resolved_horizon() == default_horizon("mini")
    assert ExperimentConfig(horizon=0.01).resolved_horizon() == 0.01


def test_workloads_of():
    assert workloads_of("lammps") == ["workload1", "workload2"]
    assert workloads_of("nekbone") == ["workload3"]
    assert workloads_of("cosmoflow") == ["workload1", "workload2", "workload3"]


def test_small_sweep_and_panel():
    sweep = latency_sweep(
        networks=("1d",),
        combos=("rg-adp",),
        workloads=("workload3",),
        apps=("milc",),
    )
    assert ("1d", "rg-adp", "baseline:milc") in sweep
    assert ("1d", "rg-adp", "workload3") in sweep
    cell = panel_stats(sweep, "milc", "1d", "rg-adp")
    assert "baseline" in cell and "workload3" in cell
    assert cell["baseline"].nranks == 16


def test_fig8_series_structure():
    out = fig8_series(scale="mini", seed=1)
    assert set(out) == {"rr", "rg"}
    for placement in out.values():
        assert "alexnet" in placement
        assert all(isinstance(v, np.ndarray) for v in placement.values())


def test_table6_structure():
    out = table6_loads()
    assert set(out) == {"1d", "2d"}
    for summary in out.values():
        assert summary["local_total_bytes"] > 0
