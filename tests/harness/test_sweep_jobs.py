"""Sweep process fan-out: ``latency_sweep(jobs=N)`` equals the sequential run."""

import numpy as np

from repro.harness.experiment import ExperimentConfig, _CACHE, clear_cache
from repro.harness.sweeps import latency_sweep

_SLICE = dict(
    networks=("1d",),
    combos=("rg-adp",),
    workloads=("workload1",),
    apps=("nn",),
    scale="mini",
    seed=3,
)


def _results_equal(a, b) -> bool:
    if (a.config, a.apps, a.end_time, a.events, a.link_summary,
            a.counter_window) != (b.config, b.apps, b.end_time, b.events,
                                  b.link_summary, b.counter_window):
        return False
    if a.router_series.keys() != b.router_series.keys():
        return False
    return all(
        np.array_equal(a.router_series[k], b.router_series[k])
        for k in a.router_series
    )


def test_parallel_sweep_equals_sequential():
    clear_cache()
    seq = latency_sweep(**_SLICE, jobs=1)
    clear_cache()
    par = latency_sweep(**_SLICE, jobs=2)
    assert seq.keys() == par.keys()
    for key in seq:
        assert _results_equal(seq[key], par[key]), key
    clear_cache()


def test_parallel_sweep_primes_the_memo_cache():
    clear_cache()
    latency_sweep(**_SLICE, jobs=2)
    cfg = ExperimentConfig(network="1d", workload="workload1", placement="rg",
                           routing="adp", scale="mini", seed=3)
    assert cfg in _CACHE
    clear_cache()
