"""Content-addressed result cache: digests, storage, replay, counters."""

import copy
import json

from repro.scenario import parse_scenario, to_toml
from repro.scenario.runner import run_scenario
from repro.service import ResultCache, cache_mapping, spec_digest
from repro.telemetry import MemorySink, Telemetry

TINY = {
    "name": "tiny",
    "seed": 3,
    "horizon": 0.005,
    "placement": "rn",
    "topology": {"network": "1d"},
    "jobs": [{"app": "nn", "params": {"iters": 2}}],
}


def _spec(extra=None):
    data = copy.deepcopy(TINY)
    if extra:
        data.update(copy.deepcopy(extra))
    return parse_scenario(data, name=data["name"])


def test_digest_ignores_sink_routing_but_not_instrument_switches():
    base = spec_digest(_spec())
    # Pure routing: where the rows go cannot change what was simulated.
    assert spec_digest(_spec({"metrics": {"jsonl": "out.jsonl"}})) == base
    assert spec_digest(_spec({"metrics": {"jsonl": "elsewhere.jsonl",
                                          "filter": ["mpi.*"]}})) == base
    # Instrument switches change which rows exist: a different run.
    assert spec_digest(_spec({"metrics": {"summary": True}})) != base


def test_digest_ignores_base_dir_unless_a_job_reads_a_source():
    spec = _spec()
    spec.base_dir = "/somewhere/local"
    assert spec_digest(spec) == spec_digest(_spec())
    mapping = cache_mapping(spec)
    assert "base_dir" not in mapping
    # With a relative DSL source the base_dir selects real input files.
    sourced = dict(copy.deepcopy(TINY), base_dir="/somewhere/local")
    sourced["jobs"] = [{"source": "app.ncptl", "ntasks": 4}]
    assert "base_dir" in cache_mapping(sourced)


def test_put_get_roundtrip_and_replay(tmp_path):
    spec = _spec()
    result = run_scenario(spec)
    doc = result.to_json_dict()
    sink = result.telemetry.export(MemorySink(), None,
                                   meta={"scenario": spec.name})
    cache = ResultCache(tmp_path / "cache")
    digest = spec_digest(spec)
    assert cache.get(digest) is None  # miss
    entry = cache.put(digest, to_toml(spec), doc, sink.rows, sink.header)
    assert (entry.path / "spec.toml").is_file()
    hit = cache.get(digest)
    assert hit is not None
    assert hit.result() == doc
    assert hit.spec_toml() == to_toml(spec)
    header, rows = hit.telemetry()
    assert header["scenario"] == spec.name
    assert rows == sink.rows
    # Replay drives a later caller's own sink, with their filter globs.
    replayed = hit.replay(MemorySink(), ["mpi.job.*"])
    assert replayed.rows
    assert all(r["key"].startswith("mpi.job.") for r in replayed.rows)
    assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}


def test_contains_peeks_without_counting(tmp_path):
    cache = ResultCache(tmp_path)
    assert not cache.contains("ab" * 32)
    assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}


def test_hit_miss_telemetry_counters(tmp_path):
    t = Telemetry()
    cache = ResultCache(tmp_path, telemetry=t)
    digest = spec_digest(_spec())
    cache.get(digest)  # miss
    cache.put(digest, "x = 1\n", {"ok": True}, [], {})
    cache.get(digest)  # hit
    cache.get(digest)  # hit
    rows = {r["key"]: r["value"]
            for r in t.export(MemorySink(), "cache.*").rows}
    assert rows == {"cache.hit": 2, "cache.miss": 1}


def test_same_digest_put_races_harmlessly(tmp_path):
    cache = ResultCache(tmp_path)
    digest = spec_digest(_spec())
    cache.put(digest, "a = 1\n", {"v": 1}, [], {})
    # A second writer of the same digest keeps the existing object.
    cache.put(digest, "a = 1\n", {"v": 1}, [], {})
    assert cache.entries() == [digest]
    assert json.loads((cache._object_dir(digest) / "result.json")
                      .read_text()) == {"v": 1}
