"""The transport-free service surface: SubmitAPI + execute_spec."""

import copy
import json

import pytest

import repro.service.api as api_mod
from repro.scenario import ScenarioError, parse_scenario
from repro.scenario.runner import run_scenario
from repro.service import JobState, ServiceError, SubmitAPI, execute_spec
from repro.service.cache import ResultCache, spec_digest

TINY = {
    "name": "tiny-api",
    "seed": 11,
    "horizon": 0.005,
    "placement": "rn",
    "topology": {"network": "1d"},
    "jobs": [{"app": "nn", "params": {"iters": 2}}],
}


def _mapping(extra=None):
    data = copy.deepcopy(TINY)
    if extra:
        data.update(copy.deepcopy(extra))
    return data


def _spec(extra=None):
    data = _mapping(extra)
    return parse_scenario(data, name=data["name"])


def test_execute_spec_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    doc, cached = execute_spec(_spec(), cache)
    assert not cached
    again, cached = execute_spec(_spec(), cache)
    assert cached
    assert again == doc
    assert doc == run_scenario(_spec()).to_json_dict()
    assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}


def test_cache_hit_replays_rows_into_the_specs_jsonl_sink(tmp_path):
    """The harness-cache flaw fixed: a hit still produces the caller's
    row stream, honoring their own path and filter globs."""
    cache = ResultCache(tmp_path / "cache")
    live = tmp_path / "live.jsonl"
    execute_spec(_spec({"metrics": {"jsonl": str(live)}}), cache)
    replayed = tmp_path / "replayed.jsonl"
    _, cached = execute_spec(
        _spec({"metrics": {"jsonl": str(replayed),
                           "filter": ["mpi.job.*"]}}), cache)
    assert cached  # routing differences do not change the digest
    rows = [json.loads(line) for line in
            replayed.read_text().splitlines()[1:]]
    assert rows
    assert all(r["key"].startswith("mpi.job.") for r in rows)
    live_rows = [json.loads(line) for line in
                 live.read_text().splitlines()[1:]
                 if json.loads(line)["key"].startswith("mpi.job.")]
    assert rows == live_rows


def test_submit_status_result_lifecycle(tmp_path):
    api = SubmitAPI(tmp_path / "state")
    record = api.submit(_mapping())
    assert record.state is JobState.DONE
    assert not record.cached
    assert record.attempts == 1
    assert api.result(record.job_id) == run_scenario(_spec()).to_json_dict()
    header = json.loads(api.telemetry_jsonl(record.job_id).splitlines()[0])
    assert header["schema"] == "union-sim.telemetry/v1"
    # Same digest again: instant done straight from the cache.
    again = api.submit(_mapping())
    assert again.job_id != record.job_id
    assert again.state is JobState.DONE
    assert again.cached
    assert again.attempts == 0
    assert api.stats()["jobs"]["done"] == 2


def test_submissions_are_validated_through_the_real_parser(tmp_path):
    api = SubmitAPI(tmp_path / "state")
    with pytest.raises(ScenarioError):
        api.submit({"name": "broken"})  # no jobs
    with pytest.raises(ScenarioError, match="not a scenario mapping"):
        api.submit(["not", "a", "mapping"])


def test_unknown_job_and_unfinished_result_raise_service_errors(tmp_path):
    api = SubmitAPI(tmp_path / "state")
    with pytest.raises(ServiceError, match="no job"):
        api.status("job-999999")
    record = api.store.new_job("ab" * 32, "pending", _mapping())
    with pytest.raises(ServiceError, match="queued, not done"):
        api.result(record.job_id)


def test_failed_execution_is_journaled(tmp_path, monkeypatch):
    def boom(*a, **k):
        raise RuntimeError("engine exploded")

    monkeypatch.setattr(api_mod, "run_checkpointed", boom)
    api = SubmitAPI(tmp_path / "state")
    record = api.submit(_mapping())
    assert record.state is JobState.FAILED
    assert "engine exploded" in record.error
    with pytest.raises(ServiceError, match="failed, not done"):
        api.result(record.job_id)


def test_cancel_spares_terminal_jobs_and_kills_queued_ones(tmp_path):
    api = SubmitAPI(tmp_path / "state")
    done = api.submit(_mapping())
    assert api.cancel(done.job_id).state is JobState.DONE
    queued = api.store.new_job(spec_digest(_spec()), "queued", _mapping())
    assert api.cancel(queued.job_id).state is JobState.CANCELLED


def test_wait_times_out_on_a_stuck_job(tmp_path):
    api = SubmitAPI(tmp_path / "state")
    stuck = api.store.new_job("cd" * 32, "stuck", _mapping())
    with pytest.raises(ServiceError, match="still queued"):
        api.wait(stuck.job_id, timeout=0.05, poll=0.01)
