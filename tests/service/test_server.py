"""The persistent worker-pool server: queue, crash recovery, restart.

These tests spawn real worker processes (the ``spawn`` context), so
they are the slowest in the service suite; each keeps its scenario
small and its pool to one or two workers.
"""

import copy
import json
import os
import signal
import time

import pytest

from repro.scenario import parse_scenario
from repro.scenario.runner import run_scenario
from repro.service import JobState, JobStore, SimulationServer, spec_digest

TINY = {
    "name": "tiny-srv",
    "seed": 17,
    "horizon": 0.005,
    "placement": "rn",
    "topology": {"network": "1d"},
    "jobs": [{"app": "nn", "params": {"iters": 2}}],
}

#: Endless uniform traffic over a long horizon: slow enough (~1s wall)
#: that the monitor can observe it running and kill its worker mid-run.
LONG = {
    "name": "long-srv",
    "seed": 5,
    "horizon": 0.3,
    "jobs": [{"app": "ur", "name": "ur0"}],
}


def _mapping(base, **extra):
    data = copy.deepcopy(base)
    data.update(extra)
    return data


def _wait_for(predicate, timeout=30.0, poll=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise AssertionError("condition not reached within timeout")


def test_submit_runs_on_the_pool_and_caches(tmp_path):
    with SimulationServer(tmp_path / "state", workers=2) as server:
        a = server.submit(_mapping(TINY))
        b = server.submit(_mapping(TINY, seed=18))
        assert a.state is JobState.QUEUED
        done_a = server.wait(a.job_id, timeout=60.0)
        done_b = server.wait(b.job_id, timeout=60.0)
        assert done_a.state is JobState.DONE and not done_a.cached
        assert done_b.state is JobState.DONE and not done_b.cached
        assert done_a.attempts == 1
        # Resubmit: the submit-time probe answers from the cache without
        # touching a worker.
        again = server.submit(_mapping(TINY))
        assert again.state is JobState.DONE and again.cached
        stats = server.stats()
        assert stats["workers"]["configured"] == 2
        assert stats["jobs"]["done"] == 3
    # The pool is gone after the context exits.
    assert all(p is None or not p.is_alive() for p in server._procs)


def test_sigkilled_worker_resumes_from_checkpoint_bit_identically(tmp_path):
    """The durability proof: SIGKILL the worker mid-run; the monitor
    requeues the job with resume=True and the finished result matches
    an uninterrupted in-process run bit for bit."""
    baseline = run_scenario(
        parse_scenario(_mapping(LONG), name=LONG["name"])).to_json_dict()
    with SimulationServer(tmp_path / "state", workers=1,
                          checkpoint_interval=0.01) as server:
        record = server.submit(_mapping(LONG))
        pid = _wait_for(lambda: server.status(record.job_id).pid)
        # Give the worker time to commit at least one checkpoint cursor.
        _wait_for(server.checkpoint_path(record.job_id).is_file)
        os.kill(pid, signal.SIGKILL)
        done = server.wait(record.job_id, timeout=120.0)
        assert done.state is JobState.DONE
        assert done.attempts == 2
        assert "died with exit code -9" in done.error
        assert "resuming from checkpoint" in done.error
        assert server.result(record.job_id) == baseline


def test_job_that_keeps_killing_workers_fails_after_max_attempts(tmp_path):
    with SimulationServer(tmp_path / "state", workers=1, max_attempts=2,
                          checkpoint_interval=0.01) as server:
        record = server.submit(_mapping(LONG))

        def running_pid():
            r = server.status(record.job_id)
            return r.pid if r.state is JobState.RUNNING else None

        for _ in range(2):
            pid = _wait_for(running_pid)
            os.kill(pid, signal.SIGKILL)
            _wait_for(lambda: server.status(record.job_id).pid != pid)
        done = server.wait(record.job_id, timeout=60.0)
        assert done.state is JobState.FAILED
        assert "giving up after 2 attempts" in done.error


def test_server_restart_recovers_journaled_jobs(tmp_path):
    """A job accepted (queued) by a dead server runs after restart."""
    state = tmp_path / "state"
    store = JobStore(state)
    spec = parse_scenario(_mapping(TINY), name=TINY["name"])
    orphan = store.new_job(spec_digest(spec), spec.name, spec.to_dict())
    assert orphan.state is JobState.QUEUED
    with SimulationServer(state, workers=1) as server:
        done = server.wait(orphan.job_id, timeout=60.0)
        assert done.state is JobState.DONE
        assert server.result(orphan.job_id) == run_scenario(
            parse_scenario(_mapping(TINY), name=TINY["name"])).to_json_dict()


def test_cancel_queued_job_never_runs(tmp_path):
    with SimulationServer(tmp_path / "state", workers=1) as server:
        blocker = server.submit(_mapping(LONG))
        victim = server.submit(_mapping(TINY))
        cancelled = server.cancel(victim.job_id)
        assert cancelled.state is JobState.CANCELLED
        server.cancel(blocker.job_id)
        final = server.wait(victim.job_id, timeout=60.0)
        assert final.state is JobState.CANCELLED
        assert final.attempts == 0 or final.pid is None


def test_dispatch_requires_a_started_server(tmp_path):
    server = SimulationServer(tmp_path / "state", workers=1)
    with pytest.raises(RuntimeError, match="not started"):
        server.submit(_mapping(TINY))
    with pytest.raises(ValueError, match="workers"):
        SimulationServer(tmp_path / "other", workers=0)


def test_results_survive_restart_in_the_shared_cache(tmp_path):
    state = tmp_path / "state"
    with SimulationServer(state, workers=1) as server:
        record = server.submit(_mapping(TINY))
        server.wait(record.job_id, timeout=60.0)
        doc = server.result(record.job_id)
    with SimulationServer(state, workers=1) as reborn:
        # Persistent cache: the resubmit is a hit across processes.
        again = reborn.submit(_mapping(TINY))
        assert again.state is JobState.DONE and again.cached
        assert reborn.result(again.job_id) == doc
