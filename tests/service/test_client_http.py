"""The HTTP transport + urllib client over an in-process SubmitAPI.

Backing the HTTP server with the synchronous :class:`SubmitAPI` keeps
these tests free of worker processes: every submit completes inline,
so the tests exercise exactly the transport layer (routes, JSON
encoding, error mapping) the CLI client rides on.
"""

import copy
import json

import pytest

from repro.scenario.runner import run_scenario
from repro.scenario import parse_scenario
from repro.service import ServiceError, SubmitAPI
from repro.service.client import DEFAULT_SERVER, ServiceClient
from repro.service.http import ServiceHTTPServer

TINY = {
    "name": "tiny-http",
    "seed": 23,
    "horizon": 0.005,
    "placement": "rn",
    "topology": {"network": "1d"},
    "jobs": [{"app": "nn", "params": {"iters": 2}}],
}


@pytest.fixture()
def service(tmp_path):
    http = ServiceHTTPServer(SubmitAPI(tmp_path / "state")).start()
    try:
        yield ServiceClient(http.url)
    finally:
        http.stop()


def test_full_surface_over_http(service):
    assert service.healthz() == {"ok": True}
    record = service.submit(copy.deepcopy(TINY))
    assert record["state"] == "done"
    job_id = record["job_id"]
    assert service.status(job_id)["state"] == "done"
    assert [r["job_id"] for r in service.jobs()] == [job_id]
    baseline = run_scenario(
        parse_scenario(copy.deepcopy(TINY), name=TINY["name"]))
    assert service.result(job_id) == baseline.to_json_dict()
    header = json.loads(service.telemetry_jsonl(job_id).splitlines()[0])
    assert header["schema"] == "union-sim.telemetry/v1"
    assert service.cancel(job_id)["state"] == "done"  # terminal: untouched
    assert service.wait(job_id, timeout=1.0)["state"] == "done"
    stats = service.stats()
    assert stats["jobs"]["done"] == 1
    assert stats["cache"]["entries"] == 1


def test_http_error_mapping(service):
    with pytest.raises(ServiceError, match="no job"):
        service.status("job-424242")
    with pytest.raises(ServiceError, match="no route"):
        service._request("GET", "/no/such/route")
    # An invalid scenario comes back as a 400 with the parser's message.
    with pytest.raises(ServiceError, match="POST /jobs"):
        service.submit({"name": "broken"})
    with pytest.raises(ServiceError, match="spec"):
        service._request("POST", "/jobs", body={"nope": 1})


def test_unreachable_endpoint_message():
    client = ServiceClient("http://127.0.0.1:9", timeout=1.0)
    with pytest.raises(ServiceError, match="union-sim serve"):
        client.healthz()
    assert DEFAULT_SERVER.startswith("http://127.0.0.1")
