"""Checkpoint/resume: replay cursors, bit-identical resume, guards."""

import copy
import json

import pytest

from repro.scenario import parse_scenario
from repro.scenario.runner import run_scenario
from repro.service import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    checkpoint_boundaries,
    load_checkpoint,
    resume_from_checkpoint,
    run_checkpointed,
)

TINY = {
    "name": "tiny-ckpt",
    "seed": 7,
    "horizon": 0.005,
    "placement": "rn",
    "topology": {"network": "1d"},
    "jobs": [{"app": "nn", "params": {"iters": 2}}],
}


def _spec():
    data = copy.deepcopy(TINY)
    return parse_scenario(data, name=data["name"])


def _canon(result):
    return json.dumps(result.to_json_dict(), sort_keys=True)


def test_boundary_schedule():
    assert checkpoint_boundaries(1.0, None) == [1.0]
    assert checkpoint_boundaries(1.0, 0.0) == [1.0]
    assert checkpoint_boundaries(1.0, 2.0) == [1.0]
    assert checkpoint_boundaries(1.0, 0.4) == [0.4, 0.8, 1.0]
    # interval divides the horizon: no duplicated final boundary
    assert checkpoint_boundaries(1.0, 0.5) == [0.5, 1.0]


def test_checkpointed_run_matches_plain_run(tmp_path):
    baseline = _canon(run_scenario(_spec()))
    path = tmp_path / "cursor.json"
    result = run_checkpointed(_spec(), path, interval=TINY["horizon"] / 3)
    assert _canon(result) == baseline
    assert not path.exists()  # finished runs need no resume


def test_abandon_and_resume_is_bit_identical(tmp_path):
    baseline = _canon(run_scenario(_spec()))
    path = tmp_path / "cursor.json"
    aborted = run_checkpointed(_spec(), path, interval=TINY["horizon"] / 2,
                               stop_after=1)
    assert aborted is None
    data = load_checkpoint(path)
    assert data["format"] == CHECKPOINT_FORMAT
    assert data["committed_index"] == 0
    resumed = resume_from_checkpoint(path)
    assert _canon(resumed) == baseline
    assert not path.exists()


def test_unknown_format_tag_is_rejected(tmp_path):
    path = tmp_path / "cursor.json"
    path.write_text(json.dumps({"format": "union-sim/checkpoint/v999"}))
    with pytest.raises(CheckpointError, match="v999"):
        load_checkpoint(path)
    path.write_text("not json at all")
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(path)


def test_divergent_replay_fails_loudly(tmp_path):
    path = tmp_path / "cursor.json"
    run_checkpointed(_spec(), path, interval=TINY["horizon"] / 2,
                     stop_after=1)
    data = load_checkpoint(path)
    data["events"] += 13  # the environment "changed" since the cursor
    path.write_text(json.dumps(data))
    with pytest.raises(CheckpointError, match="replay diverged"):
        resume_from_checkpoint(path)


def test_off_schedule_cursor_is_rejected(tmp_path):
    path = tmp_path / "cursor.json"
    run_checkpointed(_spec(), path, interval=TINY["horizon"] / 2,
                     stop_after=1)
    data = load_checkpoint(path)
    data["committed_time"] = data["committed_time"] * 0.9
    path.write_text(json.dumps(data))
    with pytest.raises(CheckpointError, match="boundary schedule"):
        resume_from_checkpoint(path)
