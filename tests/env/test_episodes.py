"""Episode rollouts and the seed-batch runner."""

import math

import pytest

from repro.env import EpisodeResult, run_episode, run_episodes
from repro.scenario import parse_scenario

SPEC = {
    "name": "ep-test",
    "topology": {"network": "1d", "scale": "mini"},
    "routing": "min",
    "placement": "rn",
    "seed": 7,
    "horizon": 0.008,
    "jobs": [
        {"app": "lammps", "nranks": 16},
        {"app": "milc", "nranks": 16, "arrival": 0.002},
    ],
    "traffic": [
        {"name": "bg", "pattern": "uniform", "nranks": 8,
         "msg_bytes": 8192, "interval_s": 1e-4},
    ],
}


def test_run_episode_returns_plain_data():
    ep = run_episode(dict(SPEC))
    assert isinstance(ep, EpisodeResult)
    assert ep.scenario == "ep-test"
    assert ep.policy == {"type": "scripted"}
    assert ep.seed == 7
    assert ep.steps == 8
    assert math.isfinite(ep.total_reward)
    assert ep.end_time == pytest.approx(0.008)
    assert ep.events > 0
    assert ep.result["env"]["steps"] == 8
    d = ep.to_dict()
    assert d["reward_kind"] == "avg_latency"
    assert d["result"]["scenario"] == "ep-test"
    assert "ep-test" in repr(ep)


def test_run_episode_scripted_actions_and_hook():
    seen = []

    def on_step(i, obs, reward, info):
        seen.append((i, info["action"]))

    ep = run_episode(parse_scenario(dict(SPEC)),
                     actions=["defer", "defer", "load-aware"],
                     on_step=on_step)
    assert [a for _, a in seen[:4]] == ["defer", "defer", "load-aware", "keep"]
    assert len(seen) == ep.steps
    # milc's arrival (t=0.002) fell in a deferred window.
    milc = next(j for j in ep.result["jobs"] if j["name"] == "milc")
    assert not milc["started"]


def test_run_episodes_seed_batch_parallel_matches_serial():
    seeds = [1, 2, 3]
    serial = run_episodes(dict(SPEC), seeds, workers=1)
    parallel = run_episodes(dict(SPEC), seeds, workers=3)
    assert [e.to_dict() for e in serial] == [e.to_dict() for e in parallel]
    assert [e.seed for e in serial] == seeds
    # Different seeds draw different placements -> different episodes.
    assert len({e.events for e in serial}) > 1


def test_run_episodes_forwards_policy_and_window():
    eps = run_episodes(dict(SPEC), [5], policy="load-aware", window=0.004)
    assert len(eps) == 1
    assert eps[0].policy == {"type": "load-aware"}
    assert eps[0].steps == 2
