"""SimulationEnv: reset/step/result over scenario specs.

The headline acceptance test: a scripted-baseline episode on an
existing example scenario reproduces the exact per-job metrics of the
equivalent ``union-sim scenario`` run -- bit-identical JSON modulo the
episode's own ``env`` record.
"""

import json
import math
from pathlib import Path

import pytest

from repro.env import SimulationEnv
from repro.scenario import ScenarioError, load_scenario, parse_scenario, run_scenario
from repro.union.session import Observation

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "scenarios"

SPEC = {
    "name": "env-test",
    "topology": {"network": "1d", "scale": "mini"},
    "routing": "min",
    "placement": "rn",
    "seed": 7,
    "horizon": 0.01,
    "jobs": [
        {"app": "lammps", "nranks": 16},
        {"app": "milc", "nranks": 16, "arrival": 0.002},
    ],
    "traffic": [
        {"name": "bg", "pattern": "hotspot", "nranks": 16,
         "msg_bytes": 65536, "interval_s": 2e-5, "hot_ranks": 2},
    ],
}


def _env(**kwargs) -> SimulationEnv:
    return SimulationEnv(parse_scenario(dict(SPEC)), **kwargs)


def test_scripted_episode_bit_identical_to_scenario_run():
    """Acceptance criterion: episode result JSON == run_scenario JSON
    once the env's own record is removed, on a real example spec."""
    path = EXAMPLES / "dynamic_arrivals.toml"
    ref = run_scenario(load_scenario(path)).to_json_dict()
    env = SimulationEnv(load_scenario(path))
    env.reset()
    done = False
    while not done:
        _, _, done, _ = env.step()
    got = env.result().to_json_dict()
    record = got.pop("env")
    assert json.dumps(got, sort_keys=True) == json.dumps(ref, sort_keys=True)
    assert record["policy"] == {"type": "scripted"}
    assert record["steps"] == len(record["step_log"])
    assert math.isfinite(record["total_reward"])


def test_spaces_and_defaults():
    env = _env()
    assert env.action_space.labels == ("keep", "scripted", "load-aware", "defer")
    n_routers = 72  # mini 1D dragonfly
    assert env.observation_space.shape == (8 + 2 * n_routers,)
    assert env.window == pytest.approx(0.01 / 8)
    assert env.reward_kind == "avg_latency"


def test_reset_returns_observation_and_reseeds():
    env = _env()
    obs = env.reset()
    assert isinstance(obs, Observation)
    assert obs.clock == 0.0
    assert env.observation_space.contains(obs.to_vector())
    # A seed override flows into the episode's result document.
    env2 = _env()
    env2.reset(seed=99)
    done = False
    while not done:
        _, _, done, _ = env2.step()
    assert env2.result().to_json_dict()["seed"] == 99


def test_step_protocol_and_reward_telescopes():
    env = _env()
    env.reset()
    total = 0.0
    rewards = []
    done = False
    while not done:
        obs, reward, done, info = env.step("keep")
        total += reward
        rewards.append(reward)
        assert math.isfinite(reward)
        assert info["action"] == "keep"
        assert info["policy"] == "scripted"
        assert "avg_latency" in info
    assert len(rewards) == 8
    assert obs.clock == pytest.approx(0.01)
    # The negative-delta reward telescopes: episode return is minus the
    # final cumulative cost.
    assert total == pytest.approx(-info["avg_latency"])
    assert total < 0  # traffic flowed, latency accrued


def test_step_before_reset_and_after_done_raise():
    env = _env()
    with pytest.raises(RuntimeError, match=r"reset\(\) before step\(\)"):
        env.step()
    env.reset()
    with pytest.raises(RuntimeError, match="not done"):
        env.result()
    done = False
    while not done:
        _, _, done, _ = env.step()
    with pytest.raises(RuntimeError, match="episode is done"):
        env.step()
    assert env.result() is not None


def test_invalid_action_rejected():
    env = _env()
    env.reset()
    with pytest.raises(ValueError, match="unknown action"):
        env.step("warp-speed")
    with pytest.raises(ValueError, match="outside"):
        env.step(17)


def test_policy_switch_action_takes_effect():
    env = _env()
    env.reset()
    _, _, _, info = env.step("load-aware")
    assert info["policy"] == "load-aware"
    _, _, _, info = env.step("keep")
    assert info["policy"] == "load-aware"  # keep keeps the switch
    _, _, _, info = env.step("scripted")
    assert info["policy"] == "scripted"


def test_defer_action_rejects_arrivals_in_window():
    env = _env()
    env.reset()
    env.step("defer")  # window 1: (0, 1.25ms] -- no arrivals land here
    obs, _, _, _ = env.step("defer")  # window 2 covers t=0.002
    assert obs.job_states["milc"] == "skipped"
    done = False
    while not done:
        _, _, done, _ = env.step()
    row = env.result().job("milc")
    assert not row.started
    assert "deferred by policy" in row.skip_reason


def test_load_aware_episode_changes_outcomes():
    def rollout(policy):
        env = _env(policy=policy)
        env.reset()
        done = False
        while not done:
            _, _, done, _ = env.step()
        return env.result()

    scripted = rollout("scripted")
    aware = rollout("load-aware")
    assert (sorted(aware.outcome.app("milc").nodes)
            != sorted(scripted.outcome.app("milc").nodes))


def test_comm_time_reward_kind():
    env = _env(reward="comm_time")
    env.reset()
    total = 0.0
    done = False
    while not done:
        _, r, done, info = env.step()
        total += r
    assert total == pytest.approx(-info["comm_time"])
    assert math.isfinite(total)


def test_env_table_configures_environment():
    data = dict(SPEC)
    data["env"] = {"policy": "load-aware", "window": 0.002,
                   "reward": "comm_time"}
    env = SimulationEnv(parse_scenario(data))
    assert env.policy_table == {"type": "load-aware"}
    assert env.window == pytest.approx(0.002)
    assert env.reward_kind == "comm_time"
    # Constructor arguments override the table.
    env = SimulationEnv(parse_scenario(data), policy="scripted",
                        window=0.005, reward="avg_latency")
    assert env.policy_table == {"type": "scripted"}
    assert env.window == pytest.approx(0.005)
    assert env.reward_kind == "avg_latency"


def test_bad_env_arguments():
    with pytest.raises(ScenarioError, match="window must be > 0"):
        _env(window=0.0)
    with pytest.raises(ScenarioError, match="unknown reward"):
        _env(reward="profit")
    with pytest.raises(ScenarioError, match="unknown policy"):
        _env(policy="nope")


def test_early_exit_when_all_jobs_finish():
    """Without endless background traffic the episode ends as soon as
    every job is terminal, before the horizon."""
    data = {
        "name": "quick",
        "topology": {"network": "1d", "scale": "mini"},
        "seed": 3,
        "horizon": 5.0,
        "jobs": [{"app": "lammps", "nranks": 16}],
    }
    env = SimulationEnv(parse_scenario(data), window=0.01)
    env.reset()
    steps = 0
    done = False
    while not done:
        obs, _, done, _ = env.step()
        steps += 1
        assert steps < 500  # the episode must terminate early
    assert obs.clock < 5.0
    assert env.result().job("lammps").finished
