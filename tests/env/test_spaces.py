"""Observation/action space descriptions (no gym dependency)."""

import random

import pytest

from repro.env import BoxSpace, DiscreteSpace, observation_names


def test_discrete_space_contains_and_index():
    s = DiscreteSpace(("keep", "scripted", "defer"))
    assert s.n == 3
    assert s.contains("defer") and s.contains(2)
    assert not s.contains("nope") and not s.contains(3)
    assert not s.contains(True)  # bools are not action indices
    assert s.index("scripted") == 1
    assert s.index(0) == 0
    with pytest.raises(ValueError, match="unknown action"):
        s.index("nope")
    with pytest.raises(ValueError, match="outside"):
        s.index(7)


def test_discrete_space_sample_uniform():
    s = DiscreteSpace(("a", "b"))
    rng = random.Random(0)
    draws = {s.sample(rng) for _ in range(50)}
    assert draws == {0, 1}


def test_box_space_shape_and_contains():
    names = observation_names(n_routers=3)
    s = BoxSpace(names)
    assert s.shape == (8 + 2 * 3,)
    assert s.contains([0.0] * 14)
    assert not s.contains([0.0] * 13)
    assert not s.contains("nope")


def test_observation_names_order():
    names = observation_names(n_routers=2)
    assert names[:8] == ("clock", "events", "jobs_total", "jobs_started",
                         "jobs_finished", "pending", "free_nodes", "in_flight")
    assert names[8:] == ("router_load.0", "router_load.1",
                         "router_queue.0", "router_queue.1")
