"""FaultPlane mechanics: validation, apply/revert, path repair."""

import pytest

from repro.faults import FaultPlane
from repro.scenario import FaultEntry, parse_scenario
from repro.scenario.runner import run_scenario


def _outcome(storage=False):
    data = {
        "seed": 5,
        "horizon": 0.001,
        "routing": "adp",
        "jobs": [{"app": "nn", "params": {"iters": 1}}],
    }
    if storage:
        data["storage"] = {"servers": 2}
    return run_scenario(parse_scenario(data, name="t")).outcome


def _entry(**overrides):
    base = dict(name="f0", kind="link-degrade", start=0.0, duration=1.0,
                router=0, router_b=1, factor=0.5)
    base.update(overrides)
    return FaultEntry(**base)


@pytest.mark.parametrize("entry, match", [
    (_entry(router=999), "out of range"),
    (_entry(kind="router-down", router=-1, router_b=None, factor=None),
     "out of range"),
    (_entry(kind="storage-slow", router=None, router_b=None, factor=2.0),
     "no storage"),
])
def test_plane_validates_against_the_live_topology(entry, match):
    out = _outcome()
    with pytest.raises(ValueError, match=match):
        FaultPlane([entry], out.fabric)


def test_plane_rejects_unlinked_router_pairs():
    out = _outcome()
    topo = out.fabric.topo
    stranger = next(b for b in range(topo.n_routers)
                    if b != 0 and b not in topo.ports_to_router[0])
    with pytest.raises(ValueError, match="not directly linked"):
        FaultPlane([_entry(router_b=stranger)], out.fabric)


def test_link_degrade_scales_and_restores_port_bandwidth():
    out = _outcome()
    e = _entry(factor=0.25)
    plane = FaultPlane([e], out.fabric)
    topo = out.fabric.topo
    port = topo.ports_to_router[0][1][0]
    before = out.fabric.routers[0]._ports[port]
    plane._apply(e)
    assert out.fabric.routers[0]._ports[port][1] == pytest.approx(before[1] * 0.25)
    assert plane.active == {"f0": e}
    plane._revert(e)
    assert out.fabric.routers[0]._ports[port] == before
    assert not plane.active


def test_storage_slow_swaps_and_restores_server_configs():
    out = _outcome(storage=True)
    storage = out.manager.storage
    e = _entry(kind="storage-slow", router=None, router_b=None, factor=4.0)
    plane = FaultPlane([e], out.fabric, storage=storage)
    originals = [s.config for s in storage.servers]
    plane._apply(e)
    for server, orig in zip(storage.servers, originals):
        assert server.config.write_bw == pytest.approx(orig.write_bw / 4.0)
        assert server.config.read_bw == pytest.approx(orig.read_bw / 4.0)
        assert server.config.access_latency == pytest.approx(orig.access_latency * 4.0)
    plane._revert(e)
    assert [s.config for s in storage.servers] == originals


def test_blocked_exempts_endpoint_routers():
    out = _outcome()
    e = _entry(kind="router-down", router=3, router_b=None, factor=None)
    plane = FaultPlane([e], out.fabric)
    plane._apply(e)
    assert plane.blocked([1, 3, 5])          # transit through the outage
    assert not plane.blocked([3, 5])         # sourced at the dead router
    assert not plane.blocked([5, 3])         # destined to it
    e2 = _entry(name="f1", kind="link-down", factor=None)
    plane2 = FaultPlane([e2], out.fabric)
    plane2._apply(e2)
    assert plane2.blocked([0, 1, 2])
    assert plane2.blocked([1, 0])            # both directions die together
    assert not plane2.blocked([0, 2, 1])


def test_fault_aware_wrapper_repairs_the_only_minimal_path():
    from repro.network.routing import FaultAwareRouting

    out = _outcome()
    e = _entry(kind="link-down", factor=None)
    plane = FaultPlane([e], out.fabric)
    plane._apply(e)
    wrapped = FaultAwareRouting(out.fabric.routing, plane)
    path, nonmin = wrapped.select_path(0, 1)
    assert plane.blocked([0, 1])
    assert not plane.blocked(path)
    assert len(path) == 3 and path[0] == 0 and path[-1] == 1
    assert nonmin
    assert plane.avoided == 1 and plane.unavoidable == 0


def test_telemetry_gauges_track_fault_state():
    out = _outcome()
    e = _entry()
    plane = FaultPlane([e], out.fabric)
    t = out.manager.telemetry
    assert t.get("net.fault.active").value == 0
    plane._apply(e)
    assert t.get("net.fault.active").value == 1
    assert t.get("net.fault.f0.active").value == 1
    assert t.get("net.fault.transitions").value == 1
    plane._revert(e)
    assert t.get("net.fault.active").value == 0
    assert t.get("net.fault.f0.active").value == 0
