"""[[faults]] / [storage] parsing and validation."""

import pytest

from repro.scenario import (
    DOWN_FAULT_KINDS,
    FAULT_KINDS,
    FaultEntry,
    ScenarioError,
    StorageEntry,
    parse_scenario,
    to_toml,
)

BASE = {
    "seed": 5,
    "horizon": 0.004,
    "routing": "adp",
    "jobs": [{"app": "nn", "params": {"iters": 2}}],
}


def _spec(**overrides):
    data = dict(BASE)
    data.update(overrides)
    return parse_scenario(data, name="t")


def _fault(**overrides):
    entry = {"kind": "link-degrade", "start": 0.001, "duration": 0.001,
             "router": 0, "router_b": 1}
    entry.update(overrides)
    return entry


def test_fault_kinds_roster():
    assert FAULT_KINDS == ("link-degrade", "link-down", "router-down",
                           "storage-slow")
    assert set(DOWN_FAULT_KINDS) <= set(FAULT_KINDS)


def test_minimal_fault_parses_with_defaults():
    spec = _spec(faults=[_fault()])
    (f,) = spec.faults
    assert isinstance(f, FaultEntry)
    assert f.name == "link-degrade-0"
    assert f.factor == pytest.approx(0.1)
    assert spec.to_dict()["faults"] == [f.to_dict()]


def test_fault_round_trips_through_toml():
    spec = _spec(faults=[_fault(name="wobble", factor=0.25),
                         _fault(kind="router-down", router=3, router_b=None)],
                 storage={"servers": 2})
    assert isinstance(spec.storage, StorageEntry)
    text = to_toml(spec)
    import tomllib
    again = parse_scenario(tomllib.loads(text), name="t")
    assert again == spec
    assert to_toml(again) == text


@pytest.mark.parametrize("bad, match", [
    ({"kind": "meteor"}, "kind"),
    ({"start": -1.0}, "start"),
    ({"duration": 0.0}, "duration"),
    ({"router_b": 0}, "differ"),
    ({"factor": 0.0}, "factor"),
    ({"factor": 1.5}, "factor"),
    ({"kind": "router-down", "router_b": 1}, "router_b"),
    ({"kind": "storage-slow", "router": 0}, "router"),
    ({"kind": "storage-slow", "factor": 0.5, "router": None,
      "router_b": None}, "factor"),
    ({"kind": "link-down", "factor": 0.5}, "factor"),
])
def test_invalid_fault_entries_are_rejected(bad, match):
    entry = _fault()
    entry.update(bad)
    entry = {k: v for k, v in entry.items() if v is not None}
    with pytest.raises(ScenarioError, match=match):
        _spec(faults=[entry])


def test_storage_slow_requires_a_storage_table():
    entry = {"kind": "storage-slow", "start": 0.0, "duration": 0.001}
    with pytest.raises(ScenarioError, match=r"\[storage\]"):
        _spec(faults=[entry])
    spec = _spec(faults=[entry], storage={"servers": 1})
    assert spec.faults[0].factor == pytest.approx(10.0)
    assert spec.storage.servers == 1


def test_down_faults_demand_adaptive_routing():
    with pytest.raises(ScenarioError, match="adaptive"):
        _spec(routing="min", faults=[_fault(kind="link-down")])
    # A non-adaptive per-job override is just as fatal...
    data = dict(BASE, faults=[_fault(kind="link-down")])
    data["jobs"] = [{"app": "nn", "routing": "min"}]
    with pytest.raises(ScenarioError, match="adaptive"):
        parse_scenario(data, name="t")
    # ...while degradation alone is allowed under minimal routing.
    spec = _spec(routing="min", faults=[_fault()])
    assert spec.faults[0].kind == "link-degrade"


def test_fault_names_must_not_collide_after_metric_folding():
    with pytest.raises(ScenarioError, match="collide"):
        _spec(faults=[_fault(name="a.b"), _fault(name="a b", router=2)])
