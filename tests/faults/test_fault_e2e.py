"""Faulted scenarios end to end: interference, re-routing, skip paths.

The acceptance-grade property lives here: a fault-injected scenario
with adaptive routing completes end to end and its loaded latency
strictly exceeds the fault-free baseline under identical placements.
"""

import json

import pytest

from repro.scenario import parse_scenario
from repro.scenario.runner import run_scenario

BASE = {
    "seed": 3,
    "horizon": 0.004,
    "routing": "adp",
    "jobs": [{"app": "nn", "name": "nn0"}],
}

CONSERVATIVE = {"type": "conservative", "partitions": 2}


def _run(**overrides):
    data = dict(BASE)
    data.update(overrides)
    return run_scenario(parse_scenario(data, name="t"))


def _job_links(result):
    """Directly linked router pairs inside the job's placement."""
    routers = sorted(result.outcome.app("nn0").routers)
    topo = result.outcome.manager.topo
    return [(a, b) for a in routers for b in routers
            if b > a and b in topo.ports_to_router[a]]


def test_degraded_links_strictly_inflate_loaded_latency():
    baseline = _run()
    faults = [
        {"kind": "link-degrade", "start": 0.0, "duration": BASE["horizon"],
         "router": a, "router_b": b, "factor": 0.05}
        for a, b in _job_links(baseline)
    ]
    degraded = _run(faults=faults)
    # Identical placement: the fault plane must not perturb the draws.
    assert (degraded.outcome.app("nn0").nodes
            == baseline.outcome.app("nn0").nodes)
    assert degraded.job("nn0").started
    assert degraded.job("nn0").avg_latency > baseline.job("nn0").avg_latency
    assert degraded.job("nn0").max_latency > baseline.job("nn0").max_latency
    assert degraded.faults["transitions"] == 2 * len(faults)


def test_link_outage_is_rerouted_and_costs_latency():
    baseline = _run()
    a, b = _job_links(baseline)[0]
    cut = {"kind": "link-down", "start": 0.0, "duration": BASE["horizon"],
           "router": a, "router_b": b}
    faulted = _run(faults=[cut])
    assert faulted.faults["avoided_paths"] > 0
    assert faulted.faults["unavoidable_paths"] == 0
    assert faulted.job("nn0").avg_latency > baseline.job("nn0").avg_latency
    # Conservation survives the outage: detours deliver, never drop.
    fabric = faulted.outcome.fabric
    assert fabric.bytes_sent == sum(j.bytes_sent for j in faulted.jobs)


def test_faulted_runs_are_deterministic_and_engine_parity_holds():
    a, b = _job_links(_run())[0]
    faults = [
        {"kind": "link-down", "start": 0.001, "duration": 0.002,
         "router": a, "router_b": b},
        {"kind": "link-degrade", "start": 0.0, "duration": 0.004,
         "router": a, "router_b": b, "factor": 0.2},
    ]
    seq = _run(faults=faults).to_json_dict()
    again = _run(faults=faults).to_json_dict()
    assert json.dumps(seq, sort_keys=True) == json.dumps(again, sort_keys=True)
    con = _run(faults=faults, engine=CONSERVATIVE).to_json_dict()
    con.pop("engine")
    assert json.dumps(seq, sort_keys=True) == json.dumps(con, sort_keys=True)


def test_mid_run_fault_reverts_cleanly():
    baseline = _run()
    links = _job_links(baseline)
    faults = [
        {"kind": "link-degrade", "start": 0.0, "duration": 0.0005,
         "router": a, "router_b": b, "factor": 0.05}
        for a, b in links
    ]
    windowed = _run(faults=faults)
    assert windowed.faults["transitions"] == 2 * len(faults)
    # The fault window covers only the first eighth of the run, so the
    # penalty must be milder than a full-horizon degradation.
    full = _run(faults=[dict(f, duration=BASE["horizon"]) for f in faults])
    assert (baseline.job("nn0").avg_latency
            < windowed.job("nn0").avg_latency
            < full.job("nn0").avg_latency)


@pytest.mark.parametrize("engine", [None, CONSERVATIVE])
def test_arrival_failing_placement_mid_outage_names_the_fault(engine):
    data = {
        "seed": 5,
        "horizon": 0.006,
        "routing": "adp",
        "topology": {"type": "dragonfly1d", "n_groups": 2},
        "jobs": [{"app": "nn", "name": "first"},
                 {"app": "nn", "name": "second", "arrival": 0.002}],
    }
    if engine is not None:
        data["engine"] = dict(engine)
    # Sanity: with 32 nodes and 16-rank jobs, both fit fault-free.
    clean = run_scenario(parse_scenario(dict(data), name="t"))
    assert clean.job("second").started
    # Take down a router that is free when 'second' arrives: its two
    # masked nodes leave only 14 free, so placement must fail and the
    # skip reason must name the active fault.
    used = clean.outcome.app("first").routers
    victim = next(r for r in range(16) if r not in used)
    data["faults"] = [{"name": "blackout", "kind": "router-down",
                       "start": 0.001, "duration": 0.003, "router": victim}]
    faulted = run_scenario(parse_scenario(data, name="t"))
    second = faulted.job("second")
    assert not second.started
    assert "blackout" in second.skip_reason
    assert "active fault" in second.skip_reason
    assert faulted.job("first").started


def test_nodes_freed_during_outage_stay_masked_until_fault_off():
    data = {
        "seed": 5,
        "horizon": 0.008,
        "routing": "adp",
        "topology": {"type": "dragonfly1d", "n_groups": 2},
        "jobs": [{"app": "nn", "name": "first", "params": {"iters": 1}},
                 {"app": "nn", "name": "filler", "params": {"iters": 200}},
                 {"app": "nn", "name": "second", "arrival": 0.006}],
    }
    clean = run_scenario(parse_scenario(dict(data), name="t"))
    assert clean.job("first").finished
    assert not clean.job("filler").finished  # holds its nodes throughout
    assert clean.job("second").started  # first's freed nodes make room
    # Fail every router that hosted 'first' for the whole horizon: when
    # 'first' ends, its nodes must be absorbed into the faults' masks
    # instead of the free pool, so 'second' finds nothing to run on.
    victims = sorted(clean.outcome.app("first").routers)
    data["faults"] = [
        {"name": f"sink{r}", "kind": "router-down",
         "start": 0.0001, "duration": 0.0078, "router": r}
        for r in victims
    ]
    faulted = run_scenario(parse_scenario(data, name="t"))
    assert faulted.job("first").finished  # running jobs ride out the outage
    assert not faulted.job("second").started
    assert "sink" in faulted.job("second").skip_reason
