"""Zero-size and self-send messages end-to-end through WorkloadManager.

Exercises the two degenerate message paths at full-stack level: the
loopback short-circuit in ``NetworkFabric.send_message`` (src == dst
node, modeled as a local memory copy) and the ``chunk == 0``
single-packet path in ``TerminalLP.inject_message`` (zero-byte control
messages still pay per-hop latency), including delivery callbacks and
drained in-flight accounting.
"""

import pytest

from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.union.manager import WorkloadManager


def _edge_prog(ctx):
    left = (ctx.rank - 1) % ctx.size
    right = (ctx.rank + 1) % ctx.size
    # Zero-byte message around the ring.
    s = yield ctx.isend(right, 0, tag=1)
    r = yield ctx.irecv(src=left, tag=1)
    yield ctx.wait(s)
    yield ctx.wait(r)
    # Zero-byte self-send (loopback path).
    s0 = yield ctx.isend(ctx.rank, 0, tag=2)
    r0 = yield ctx.irecv(src=ctx.rank, tag=2)
    yield ctx.wait(s0)
    yield ctx.wait(r0)
    # Payload-carrying self-send (loopback with serialization cost).
    s1 = yield ctx.isend(ctx.rank, 4096, tag=3)
    r1 = yield ctx.irecv(src=ctx.rank, tag=3)
    yield ctx.wait(s1)
    yield ctx.wait(r1)


@pytest.mark.parametrize("placement", ["rn", "rr"])
def test_zero_size_and_self_send_end_to_end(placement):
    mgr = WorkloadManager(
        Dragonfly1D.mini(), routing="min", placement=placement, seed=4
    )
    nranks = 8
    mgr.add_program_job("edges", nranks, _edge_prog)
    outcome = mgr.run(until=1.0)
    app = outcome.app("edges")
    assert app.result.finished
    fabric = outcome.fabric
    # Every message was delivered and reassembly state fully drained.
    assert fabric.in_flight() == 0
    assert fabric.messages_delivered == fabric.messages_sent == 3 * nranks
    for rs in app.result.rank_stats:
        # One ring message + two self-sends received per rank, each with
        # a recorded (positive) latency from the delivery callback.
        assert rs.msgs_recvd == 3
        assert len(rs.latencies) == 3
        assert all(lat > 0 for lat in rs.latencies)


def test_self_send_latency_is_local_copy_cost():
    """A self-send bypasses the network: it costs exactly the terminal
    serialization plus one terminal latency."""
    cfg = NetworkConfig(seed=1)
    mgr = WorkloadManager(Dragonfly1D.mini(), config=cfg, routing="min", placement="rn", seed=1)

    def prog(ctx):
        s = yield ctx.isend(ctx.rank, 65536, tag=7)
        r = yield ctx.irecv(src=ctx.rank, tag=7)
        yield ctx.wait(s)
        yield ctx.wait(r)

    mgr.add_program_job("self", 1, prog)
    outcome = mgr.run(until=1.0)
    lat = outcome.app("self").result.rank_stats[0].latencies
    expected = 65536 / cfg.terminal_bw + cfg.terminal_latency
    assert lat == [pytest.approx(expected, rel=1e-9)]


def test_zero_size_message_pays_propagation_only():
    cfg = NetworkConfig(seed=2)
    mgr = WorkloadManager(Dragonfly1D.mini(), config=cfg, routing="min", placement="rn", seed=2)

    def prog(ctx):
        if ctx.rank == 0:
            s = yield ctx.isend(1, 0, tag=9)
            yield ctx.wait(s)
        else:
            r = yield ctx.irecv(src=0, tag=9)
            yield ctx.wait(r)

    mgr.add_program_job("zmsg", 2, prog)
    outcome = mgr.run(until=1.0)
    assert outcome.app("zmsg").result.finished
    lat = outcome.app("zmsg").result.rank_stats[1].latencies
    assert len(lat) == 1
    assert 0 < lat[0] < 1e-5  # latency only, no serialization term