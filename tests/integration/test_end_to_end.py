"""Full pipeline integration: DSL -> Union -> simulation, determinism."""

import pytest

from repro.harness.experiment import ExperimentConfig, clear_cache, run_experiment
from repro.network.dragonfly import Dragonfly1D
from repro.network.dragonfly2d import Dragonfly2D
from repro.union.manager import Job, WorkloadManager
from repro.union.translator import translate
from repro.union.validation import validate_skeleton

HALO_SRC = """\
side is "side" and comes from "--side" with default 3.
iters is "iters" and comes from "--iters" with default 4.
Assert that "grid fits" with side*side = num_tasks.
For iters repetitions {
  all tasks compute for 200 microseconds then
  all tasks t sends a 16 kilobyte nonblocking message to task torus_neighbor(side, side, 1, t, 1, 0, 0) then
  all tasks t sends a 16 kilobyte nonblocking message to task torus_neighbor(side, side, 1, t, 0, 1, 0) then
  all tasks await completion then
  all tasks reduce an 8 byte value to all tasks
}
"""


@pytest.fixture(scope="module")
def halo():
    return translate(HALO_SRC, "halo")


def test_dsl_to_simulation_both_networks(halo):
    for topo in (Dragonfly1D.mini(), Dragonfly2D.mini()):
        mgr = WorkloadManager(topo, routing="adp", placement="rr", seed=2)
        mgr.add_job(Job("halo", 9, skeleton=halo))
        outcome = mgr.run(until=0.1)
        app = outcome.app("halo")
        assert app.result.finished
        # 2 sends x 9 ranks x 4 iters of p2p + allreduce internals
        assert app.result.event_counts()["MPI_Isend"] == 2 * 9 * 4


def test_validation_then_simulation_consistency(halo):
    """The counting backend and the simulation backend must agree on the
    UNION-level call counts (the simulation adds no phantom calls)."""
    rep = validate_skeleton(halo, 9, {"iters": 2})
    assert rep.ok
    mgr = WorkloadManager(Dragonfly1D.mini(), routing="min", placement="rn", seed=3)
    mgr.add_job(Job("halo", 9, skeleton=halo, params={"iters": 2}))
    outcome = mgr.run(until=0.5)
    sim_counts = outcome.app("halo").result.event_counts()
    val_counts = rep.skel.event_counts()
    for fn in ("MPI_Isend", "MPI_Irecv", "MPI_Allreduce", "MPI_Init", "MPI_Finalize"):
        assert sim_counts[fn] == val_counts[fn], fn


def test_identical_runs_are_bit_identical(halo):
    def run_once():
        mgr = WorkloadManager(Dragonfly1D.mini(), routing="adp", placement="rn", seed=11)
        mgr.add_job(Job("halo", 9, skeleton=halo))
        outcome = mgr.run(until=0.1)
        r = outcome.app("halo").result
        return (
            [s.comm_time for s in r.rank_stats],
            sorted(r.all_latencies()),
            outcome.fabric.engine.events_processed,
        )

    assert run_once() == run_once()


def test_seed_changes_placement_and_results(halo):
    def run_seed(seed):
        mgr = WorkloadManager(Dragonfly1D.mini(), routing="adp", placement="rn", seed=seed)
        mgr.add_job(Job("halo", 9, skeleton=halo))
        return mgr.run(until=0.1).app("halo").nodes

    assert run_seed(1) != run_seed(2)


def test_experiment_runner_end_to_end():
    clear_cache()
    res = run_experiment(ExperimentConfig(network="2d", workload="workload3", placement="rg", routing="adp"))
    assert all(a.finished for a in res.apps.values())
    assert res.link_summary["global_total_bytes"] > 0
    clear_cache()
