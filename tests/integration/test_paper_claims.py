"""Mini-scale checks of the paper's directional claims (Section VI).

These are *shape* tests: they assert the direction of effects the paper
reports (interference inflates latency; RG isolates; adaptive helps a
congested minimal hotspot; ML comm time absorbs latency), each on a
single configuration to stay fast.  The full sweep lives in benchmarks/.
"""

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.metrics import slowdown


def res(workload, placement="rn", routing="adp", network="1d", seed=1):
    return run_experiment(
        ExperimentConfig(network=network, workload=workload, placement=placement, routing=routing, seed=seed)
    )


def test_interference_inflates_max_latency_under_rn():
    """Co-running with Workload2 must not *improve* LAMMPS's worst-case
    latency, and should measurably inflate it under random-node placement."""
    base = res("baseline:lammps").app("lammps")
    mixed = res("workload2").app("lammps")
    assert mixed.max_latency_box.maximum > base.max_latency_box.maximum


def test_rg_isolates_other_apps_traffic_from_alexnet_routers():
    """Figure 8's mechanism: under RG, AlexNet's routers carry (almost)
    no bytes from other jobs; under RR they carry plenty."""
    rg = res("workload3", placement="rg")
    rr = res("workload3", placement="rr")

    def foreign_bytes(r):
        return sum(
            int(r.router_series[("alexnet", src)].sum())
            for src in r.apps
            if src != "alexnet"
        )

    assert foreign_bytes(rg) < foreign_bytes(rr)


def test_rg_traffic_is_group_confined():
    """Under RG + minimal routing, a job's groups see only its traffic."""
    r = res("workload3", placement="rg", routing="min")
    own = int(r.router_series[("milc", "milc")].sum())
    foreign = sum(
        int(r.router_series[("milc", src)].sum()) for src in r.apps if src != "milc"
    )
    assert own > 0
    assert foreign == 0


def test_ml_absorbs_latency_better_than_hpc():
    """Section VI-B: relative comm-time slowdown of the ML apps stays
    below the worst HPC app's under the same interference."""
    baseline = {a: res(f"baseline:{a}").app(a) for a in ("lammps", "alexnet", "cosmoflow")}
    mixed = res("workload2")
    sd = {
        a: slowdown(mixed.app(a).max_comm_time, baseline[a].max_comm_time)
        for a in baseline
    }
    assert max(sd["alexnet"], sd["cosmoflow"]) < max(sd["lammps"], 1e-9) + 1.0


def test_latency_and_comm_time_positive_everywhere():
    r = res("workload3", placement="rr", routing="adp")
    for app in r.apps.values():
        assert app.max_latency_box.maximum > 0
        assert app.max_comm_time > 0
        assert app.finished


def test_2d_carries_smaller_global_fraction():
    """Table VI: the 1D system routes a larger share of its traffic over
    global links than the 2D system (smaller groups -> more inter-group)."""
    r1 = res("workload3", placement="rg", routing="adp", network="1d")
    r2 = res("workload3", placement="rg", routing="adp", network="2d")
    assert r1.link_summary["global_fraction"] > r2.link_summary["global_fraction"]


def test_2d_lower_per_link_load():
    """Table VI: per-link load is lower on the 2D system (more links)."""
    r1 = res("workload3", placement="rg", routing="adp", network="1d")
    r2 = res("workload3", placement="rg", routing="adp", network="2d")
    assert r2.link_summary["local_per_link_bytes"] < r1.link_summary["local_per_link_bytes"]
    assert r2.link_summary["global_per_link_bytes"] < r1.link_summary["global_per_link_bytes"]


def test_all_table3_workloads_complete_on_both_networks():
    for network in ("1d", "2d"):
        for w in ("workload1", "workload2", "workload3"):
            r = res(w, placement="rg", routing="adp", network=network)
            for name, app in r.apps.items():
                if name == "ur":
                    continue  # endless background traffic
                assert app.finished, (network, w, name)
