"""The network model runs unchanged on a different PDES engine.

The engine claim: the scheduler is a speed feature, not a semantics
feature.  Running the same workload configuration on the sequential
engine and on the conservative engine must produce identical metrics,
event for event.  A *naive* partitioning (the engine's default
``lp_id % n``) scatters terminals away from their routers and must be
*detected* via the lookahead contract, not silently misordered;
topology-aware partitioned runs (which pass) live in
``tests/parallel/test_conservative_stack.py``.
"""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.pdes.conservative import ConservativeEngine
from repro.pdes.sequential import SequentialEngine
from repro.workloads.nearest_neighbor import nearest_neighbor
from repro.workloads.uniform_random import uniform_random


def run_mix(engine):
    fabric = NetworkFabric(
        Dragonfly1D.mini(), NetworkConfig(seed=9), routing="adp", engine=engine
    )
    mpi = SimMPI(fabric)
    mpi.add_job(JobSpec(
        "nn", 8, nearest_neighbor, list(range(8)),
        {"dims": (2, 2, 2), "iters": 3, "msg_bytes": 32768},
    ))
    mpi.add_job(JobSpec(
        "ur", 8, uniform_random, list(range(64, 72)),
        {"iters": 5, "msg_bytes": 10240, "interval_s": 1e-5},
    ))
    mpi.run(until=5.0)
    return fabric, mpi


def fingerprint(fabric, mpi):
    out = {
        "events": fabric.engine.events_processed,
        "msgs": fabric.messages_delivered,
        "bytes": fabric.bytes_sent,
        "link_summary": fabric.link_loads.summary(),
    }
    for res in mpi.results():
        assert res.finished
        out[res.name] = (
            res.max_comm_time(),
            res.avg_latency(),
            sorted(res.all_latencies()),
            res.event_counts(),
        )
    return out


def test_sequential_and_conservative_agree():
    seq = run_mix(SequentialEngine())
    con = run_mix(ConservativeEngine(lookahead=1e-6, n_partitions=1))
    assert fingerprint(*seq) == fingerprint(*con)


def test_conservative_executed_windows():
    eng = ConservativeEngine(lookahead=1e-6, n_partitions=1)
    run_mix(eng)
    assert eng.windows_executed > 0
    assert eng.events_processed > 0


def test_partitioned_run_enforces_lookahead_contract():
    """With multiple partitions, the network model's zero-lookahead
    events must be *detected*, not silently misordered."""
    eng = ConservativeEngine(lookahead=1e-6, n_partitions=4)
    with pytest.raises(RuntimeError, match="lookahead violation"):
        run_mix(eng)
