"""Documentation drift checks (scripts/check_docs.py as tier-1 tests).

docs/cli.md must cover every argparse subcommand; every TOML/JSON
snippet in docs/scenarios.md must parse and validate.  The checker is
also exercised against doctored inputs so a regression in the checker
itself (e.g. a fence-regex change matching nothing) cannot silently
pass.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "scripts" / "check_docs.py"
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def check_docs():
    return load_check_docs()


def test_cli_doc_covers_every_subcommand(check_docs):
    check_docs.check_cli_doc()


def test_scenario_snippets_validate(check_docs):
    assert check_docs.check_scenario_snippets() >= 3


def test_registry_doc_names_every_component(check_docs):
    assert check_docs.check_registry_doc() >= 10


def test_telemetry_doc_names_every_sink_and_kind(check_docs):
    assert check_docs.check_telemetry_doc() >= 16


def test_engines_doc_names_every_engine_and_param(check_docs):
    # sequential + conservative with partitions/lookahead at minimum.
    assert check_docs.check_engines_doc() >= 4


def test_env_doc_names_every_policy_and_observation_field(check_docs):
    # 3 policies + min_free + 15 Observation fields at minimum.
    assert check_docs.check_env_doc() >= 19


def test_faults_doc_names_every_kind_generator_invariant(check_docs):
    # 4 fault kinds + 3 generators + 5 fuzz invariants at minimum.
    assert check_docs.check_faults_doc() >= 12


def test_service_doc_names_every_state_key_and_cache_file(check_docs):
    # 5 job states + 7 checkpoint keys + format tag + 3 cache files
    # + 2 telemetry counters at minimum.
    assert check_docs.check_service_doc() >= 18


def test_service_doc_checkpoint_key_drift_is_caught(check_docs, tmp_path):
    text = (REPO / "docs" / "service.md").read_text()
    p = tmp_path / "service.md"
    p.write_text(text.replace("`committed_index`", "`commit_index`"))
    with pytest.raises(AssertionError, match="committed_index"):
        check_docs.check_service_doc(p)


def test_service_doc_cache_counter_drift_is_caught(check_docs, tmp_path):
    text = (REPO / "docs" / "service.md").read_text()
    p = tmp_path / "service.md"
    p.write_text(text.replace("`cache.hit`", "`cache.hits`"))
    with pytest.raises(AssertionError, match="cache.hit"):
        check_docs.check_service_doc(p)


def test_faults_doc_drift_is_caught(check_docs, tmp_path):
    text = (REPO / "docs" / "faults.md").read_text()
    p = tmp_path / "faults.md"
    p.write_text(text.replace("`router-down`", "`router-gone`"))
    with pytest.raises(AssertionError, match="router-down"):
        check_docs.check_faults_doc(p)


def test_faults_doc_missing_invariant_is_caught(check_docs, tmp_path):
    text = (REPO / "docs" / "faults.md").read_text()
    p = tmp_path / "faults.md"
    p.write_text(text.replace("`no_stuck_jobs`", "`no_stuck_job`"))
    with pytest.raises(AssertionError, match="no_stuck_jobs"):
        check_docs.check_faults_doc(p)


def test_registry_doc_missing_generator_is_caught(check_docs, tmp_path):
    text = (REPO / "docs" / "registry.md").read_text()
    p = tmp_path / "registry.md"
    p.write_text(text.replace("`diurnal`", "`nocturnal`"))
    with pytest.raises(AssertionError, match="diurnal"):
        check_docs.check_registry_doc(p)


def test_env_doc_drift_is_caught(check_docs, tmp_path):
    text = (REPO / "docs" / "env.md").read_text()
    p = tmp_path / "env.md"
    p.write_text(text.replace("`load-aware`", "`load-blind`"))
    with pytest.raises(AssertionError, match="load-aware"):
        check_docs.check_env_doc(p)


def test_env_doc_missing_observation_field_is_caught(check_docs, tmp_path):
    text = (REPO / "docs" / "env.md").read_text()
    p = tmp_path / "env.md"
    p.write_text(text.replace("`router_queue`", "`router_fifo`"))
    with pytest.raises(AssertionError, match="router_queue"):
        check_docs.check_env_doc(p)


def test_engines_doc_drift_is_caught(check_docs, tmp_path):
    text = (REPO / "docs" / "engines.md").read_text()
    p = tmp_path / "engines.md"
    p.write_text(text.replace("`conservative`", "`cautious`"))
    with pytest.raises(AssertionError, match="conservative"):
        check_docs.check_engines_doc(p)


def test_telemetry_doc_drift_is_caught(check_docs, tmp_path):
    text = (REPO / "docs" / "telemetry.md").read_text()
    p = tmp_path / "telemetry.md"
    p.write_text(text.replace("`histogram`", "`spectrogram`"))
    with pytest.raises(AssertionError, match="histogram"):
        check_docs.check_telemetry_doc(p)


def test_registry_doc_drift_is_caught(check_docs, tmp_path):
    text = (REPO / "docs" / "registry.md").read_text()
    p = tmp_path / "registry.md"
    p.write_text(text.replace("`torus`", "`donut`"))
    with pytest.raises(AssertionError, match="torus"):
        check_docs.check_registry_doc(p)


def test_missing_subcommand_is_caught(check_docs, tmp_path):
    text = (REPO / "docs" / "cli.md").read_text()
    doctored = text.replace("## `union-sim scenario`", "## gone")
    p = tmp_path / "cli.md"
    p.write_text(doctored)
    with pytest.raises(AssertionError, match="scenario"):
        check_docs.check_cli_doc(p)


def test_stale_subcommand_is_caught(check_docs, tmp_path):
    text = (REPO / "docs" / "cli.md").read_text()
    p = tmp_path / "cli.md"
    p.write_text(text + "\n## `union-sim frobnicate`\n\nnot a real subcommand\n")
    with pytest.raises(AssertionError, match="frobnicate"):
        check_docs.check_cli_doc(p)


def test_invalid_snippet_is_caught(check_docs, tmp_path):
    p = tmp_path / "scenarios.md"
    p.write_text('```toml\njobs = "oops"\n```\n')
    with pytest.raises(AssertionError, match="snippet #1"):
        check_docs.check_scenario_snippets(p)


def test_snippetless_doc_is_caught(check_docs, tmp_path):
    p = tmp_path / "scenarios.md"
    p.write_text("no fences here\n")
    with pytest.raises(AssertionError, match="no toml/json"):
        check_docs.check_scenario_snippets(p)


def test_checker_runs_as_a_script():
    import subprocess

    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_docs.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "docs OK" in proc.stdout
