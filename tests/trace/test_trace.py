"""Trace collection, serialization, and replay (Table I baseline)."""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.trace.format import TraceOp, TraceSet, load_traces, save_traces
from repro.trace.recorder import record_job
from repro.trace.replay import TraceScalingError, replay_program
from repro.workloads.lammps import lammps
from repro.workloads.nearest_neighbor import nearest_neighbor

NN_PARAMS = {"dims": (2, 2, 2), "iters": 3, "msg_bytes": 8192}


def run_replay(traces, nranks, until=1.0):
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=1), routing="min")
    mpi = SimMPI(fabric)
    mpi.add_job(JobSpec("replay", nranks, replay_program(traces), list(range(nranks))))
    mpi.run(until=until)
    return mpi.results()[0], fabric


# -- format ----------------------------------------------------------------


def test_trace_op_validation():
    op = TraceOp("isend", 3, 100, 0)
    assert op.name == "isend"
    assert op.args == (3, 100, 0)
    with pytest.raises(ValueError, match="unknown trace op"):
        TraceOp("teleport", 1)
    with pytest.raises(ValueError, match="takes"):
        TraceOp("barrier", 1)


def test_traceset_validation():
    with pytest.raises(ValueError):
        TraceSet(0)


def test_save_load_roundtrip(tmp_path):
    traces = record_job(nearest_neighbor, 8, NN_PARAMS)
    path = str(tmp_path / "nn.trace.gz")
    size = save_traces(traces, path)
    assert size > 0
    loaded = load_traces(path)
    assert loaded == traces
    assert loaded.job_name == traces.job_name


def test_load_rejects_bad_version(tmp_path):
    import gzip
    import json

    path = str(tmp_path / "bad.trace.gz")
    with gzip.open(path, "wt") as f:
        f.write(json.dumps({"format": 99, "nranks": 1}) + "\n")
    with pytest.raises(ValueError, match="unsupported trace format"):
        load_traces(path)


# -- recording ------------------------------------------------------------------


def test_record_job_captures_all_ranks():
    traces = record_job(nearest_neighbor, 8, NN_PARAMS)
    assert traces.nranks == 8
    # Per rank per iteration: 6 irecv + 6 isend + 1 waitall + 1 compute.
    for rank in range(8):
        names = [op.name for op in traces.ops[rank]]
        assert names.count("isend") == 18
        assert names.count("irecv") == 18
        assert names.count("waitall") == 3
        assert names.count("compute") == 3


def test_record_blocking_sends_and_collectives():
    params = {"dims": (2, 2, 2), "iters": 2, "msg_sizes": (64,), "allreduce_every": 1}
    traces = record_job(lammps, 8, params)
    names = [op.name for op in traces.ops[0]]
    assert "send" in names
    assert "allreduce" in names


def test_trace_is_bulky():
    """The Table I point: traces grow with execution length."""
    short = record_job(nearest_neighbor, 8, {**NN_PARAMS, "iters": 2})
    long = record_job(nearest_neighbor, 8, {**NN_PARAMS, "iters": 8})
    assert long.byte_size() > 3 * short.byte_size()


# -- replay -------------------------------------------------------------------------


def test_replay_reproduces_message_counts():
    traces = record_job(nearest_neighbor, 8, NN_PARAMS)
    res, fabric = run_replay(traces, 8)
    assert res.finished
    # 6 neighbours x 3 iters x 8 ranks messages delivered.
    assert sum(s.msgs_recvd for s in res.rank_stats) == 6 * 3 * 8


def test_replay_matches_original_timing_approximately():
    traces = record_job(nearest_neighbor, 8, NN_PARAMS)
    res, _ = run_replay(traces, 8)

    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=1), routing="min")
    mpi = SimMPI(fabric)
    mpi.add_job(JobSpec("orig", 8, nearest_neighbor, list(range(8)), NN_PARAMS))
    mpi.run(until=1.0)
    orig = mpi.results()[0]
    t_replay = max(s.finished_at for s in res.rank_stats)
    t_orig = max(s.finished_at for s in orig.rank_stats)
    assert t_replay == pytest.approx(t_orig, rel=0.05)


def test_replay_rejects_different_rank_count():
    traces = record_job(nearest_neighbor, 8, NN_PARAMS)
    with pytest.raises(TraceScalingError, match="re-trace"):
        run_replay(traces, 12)


def test_record_job_checks_capacity():
    with pytest.raises(ValueError, match="cannot trace"):
        record_job(nearest_neighbor, 1000, {"dims": (10, 10, 10)})


def test_record_job_requires_completion():
    def forever(ctx):
        while True:
            yield ctx.compute(1e-3)

    with pytest.raises(RuntimeError, match="did not finish"):
        record_job(forever, 2, until=0.01)
