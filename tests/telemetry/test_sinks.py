"""Sink formats: JSONL, CSV, summary reduction."""

import csv
import io
import json

from repro.telemetry import (
    TELEMETRY_SCHEMA,
    CsvSink,
    JsonlSink,
    MemorySink,
    SummarySink,
    Telemetry,
)


def make_session() -> Telemetry:
    t = Telemetry()
    t.counter("c.bytes", unit="bytes").add(100)
    t.gauge("g.val").set(2.5)
    w = t.windowed("w.series", window=1.0)
    w.record(("r",), 0.5, 10)
    w.record(("r",), 2.5, 30)
    h = t.histogram("h.lat", edges=[1.0, 10.0], unit="seconds")
    h.record(0.5)
    h.record(5.0)
    return t


def test_jsonl_sink_file_and_stream(tmp_path):
    t = make_session()
    path = tmp_path / "m.jsonl"
    sink = t.export(JsonlSink(path), meta={"scenario": "s"})
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["schema"] == TELEMETRY_SCHEMA and header["scenario"] == "s"
    rows = [json.loads(l) for l in lines[1:]]
    assert [r["key"] for r in rows] == ["c.bytes", "g.val", "w.series.r", "h.lat"]
    assert sink.rows_written == 4
    # Streams work too (no close).
    buf = io.StringIO()
    t.export(JsonlSink(buf))
    assert len(buf.getvalue().splitlines()) == 5


def test_jsonl_rows_parse_to_schema_payloads(tmp_path):
    path = tmp_path / "m.jsonl"
    make_session().export(JsonlSink(path))
    rows = {r["key"]: r for r in map(json.loads, path.read_text().splitlines()[1:])}
    assert rows["w.series.r"]["bins"] == {"0": 10, "2": 30}
    assert rows["h.lat"]["count"] == 2
    assert rows["h.lat"]["buckets"] == {"1.0": 1, "10.0": 1}


def test_csv_sink_five_columns(tmp_path):
    path = tmp_path / "m.csv"
    make_session().export(CsvSink(path))
    lines = path.read_text().splitlines()
    assert lines[0].startswith("# ") and TELEMETRY_SCHEMA in lines[0]
    rows = list(csv.reader(lines[1:]))
    assert rows[0] == ["key", "kind", "unit", "value", "data"]
    by_key = {r[0]: r for r in rows[1:]}
    assert by_key["c.bytes"][3] == "100" and by_key["c.bytes"][4] == ""
    data = json.loads(by_key["w.series.r"][4])
    assert data["bins"] == {"0": 10, "2": 30}
    assert by_key["w.series.r"][3] == ""  # windowed has no scalar value


def test_summary_sink_compacts_structured_rows():
    t = make_session()
    summary = t.export(SummarySink(), meta={"seed": 3}).summary
    assert summary["schema"] == TELEMETRY_SCHEMA
    assert summary["seed"] == 3
    assert summary["rows"] == 4
    m = summary["metrics"]
    assert m["c.bytes"]["value"] == 100
    assert m["w.series.r"] == {
        "kind": "windowed", "unit": "", "window": 1.0, "agg": "sum",
        "total": 40, "peak": 30, "nonzero_bins": 2,
    }
    assert "buckets" not in m["h.lat"] and m["h.lat"]["count"] == 2


def test_summary_sink_max_agg_has_no_total():
    # Summing per-window peaks is meaningless; only "peak" survives.
    t = Telemetry()
    w = t.windowed("q.depth", window=1.0, agg="max")
    w.record((0,), 0.5, 3)
    w.record((0,), 1.5, 7)
    payload = t.export(SummarySink()).summary["metrics"]["q.depth.0"]
    assert "total" not in payload
    assert payload["peak"] == 7 and payload["nonzero_bins"] == 2


def test_memory_sink_filtered_export():
    t = make_session()
    sink = t.export(MemorySink(), pattern="h.*")
    assert [r["key"] for r in sink.rows] == ["h.lat"]
