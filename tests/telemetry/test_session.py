"""Telemetry session semantics: enablement, registration, export."""

import pytest

from repro.telemetry import (
    NULL,
    TELEMETRY_SCHEMA,
    Counter,
    MemorySink,
    Telemetry,
    match_key,
)


def test_default_everything_enabled():
    t = Telemetry()
    assert t.enabled("any.key")
    assert not t.enabled("opt.in", default=False)


def test_disable_wins_over_enable():
    t = Telemetry(enable=("net.*",), disable=("net.router.*",))
    assert t.enabled("net.link.bytes")
    assert not t.enabled("net.router.app.bytes")
    # enable patterns flip default-off families on
    t2 = Telemetry(enable=("mpi.job.msg_latency",))
    assert t2.enabled("mpi.job.msg_latency", default=False)
    assert not t2.enabled("net.router.queue", default=False)


def test_disabled_family_yields_shared_noop():
    t = Telemetry(disable=("net.*",))
    c = t.counter("net.fabric.messages_sent")
    assert c is NULL and not c.enabled
    assert t.get("net.fabric.messages_sent") is None
    assert t.keys() == []


def test_create_returns_existing_and_rejects_kind_mismatch():
    t = Telemetry()
    c1 = t.counter("a.b")
    c2 = t.counter("a.b")
    assert c1 is c2
    with pytest.raises(ValueError, match="kind"):
        t.gauge("a.b")


def test_register_duplicate_is_an_error():
    t = Telemetry()
    t.register(Counter("dup"))
    with pytest.raises(ValueError, match="already registered"):
        t.register(Counter("dup"))


def test_register_replace_supersedes():
    t = Telemetry()
    old = t.register(Counter("k"))
    old.add(5)
    new = t.register(Counter("k"), replace=True)
    assert t.get("k") is new and new.value == 0
    # The create helpers honor replace too (fresh instrument, not the
    # cached one).
    g1 = t.gauge("g", fn=lambda: 1)
    g2 = t.gauge("g", fn=lambda: 2, replace=True)
    assert g1 is not g2 and t.get("g").value == 2


def test_replace_still_enforces_kind_compatibility():
    t = Telemetry()
    t.windowed("w", window=1.0).record(("a",), 0.5, 1)
    # Superseding with a different kind would silently destroy the
    # recorded series -- refused on both the register and create paths.
    with pytest.raises(ValueError, match="kind"):
        t.register(Counter("w"), replace=True)
    with pytest.raises(ValueError, match="kind"):
        t.gauge("w", replace=True)
    assert t.get("w").series_of(("a",)) == {0: 1}


def test_register_disabled_returns_noop_unregistered():
    t = Telemetry(disable=("x.*",))
    inst = Counter("x.y")
    assert t.register(inst) is NULL
    assert t.get("x.y") is None


def test_rows_filter_by_glob():
    t = Telemetry()
    t.counter("a.one").add(1)
    t.counter("a.two").add(2)
    t.counter("b.one").add(3)
    assert {r["key"] for r in t.rows()} == {"a.one", "a.two", "b.one"}
    assert {r["key"] for r in t.rows("a.*")} == {"a.one", "a.two"}
    assert {r["key"] for r in t.rows(["a.one", "b.*"])} == {"a.one", "b.one"}
    assert list(t.rows("zzz")) == []


def test_snapshot_and_value():
    t = Telemetry()
    t.counter("k.a", unit="bytes").add(10)
    snap = t.snapshot()
    assert snap == {"k.a": {"kind": "counter", "unit": "bytes", "value": 10}}
    assert t.value("k.a") == 10
    assert t.value("missing", default=-1) == -1


def test_export_writes_header_and_rows():
    t = Telemetry()
    t.counter("m.n").add(5)
    sink = t.export(MemorySink(), meta={"run": "r1"})
    assert sink.header == {"schema": TELEMETRY_SCHEMA, "run": "r1"}
    assert sink.rows == [{"key": "m.n", "kind": "counter", "unit": "", "value": 5}]


def test_match_key_helper():
    assert match_key("a.b.c", None)
    assert match_key("a.b.c", "a.*")
    assert match_key("a.b.c", ["x", "*.c"])
    assert not match_key("a.b.c", "b.*")
