"""Instrument behaviour: counters, gauges, windowed series, histograms."""

import math

import pytest

from repro.telemetry import (
    LATENCY_EDGES,
    NULL,
    Counter,
    Gauge,
    Histogram,
    WindowedSeries,
)


def test_counter_accumulates():
    c = Counter("a.b", unit="bytes")
    c.add()
    c.add(41)
    assert c.value == 42
    (row,) = list(c.rows())
    assert row == {"key": "a.b", "kind": "counter", "unit": "bytes", "value": 42}


def test_gauge_set_and_row():
    g = Gauge("x.y")
    assert g.value == 0
    g.set(3.5)
    assert g.value == 3.5
    (row,) = list(g.rows())
    assert row["value"] == 3.5 and row["kind"] == "gauge"


def test_observable_gauge_reads_callback_at_export():
    state = {"v": 1}
    g = Gauge("obs", fn=lambda: state["v"])
    assert g.value == 1
    state["v"] = 7
    assert list(g.rows())[0]["value"] == 7
    with pytest.raises(TypeError, match="observable"):
        g.set(5)


def test_bad_keys_rejected():
    for bad in ("", ".x", "x.", "."):
        with pytest.raises(ValueError, match="dot path"):
            Counter(bad)


def test_windowed_sum_bins():
    w = WindowedSeries("s", window=1.0)
    w.record(("a",), 0.5, 10)
    w.record(("a",), 0.9, 5)
    w.record(("a",), 2.5, 7)
    w.record(("b",), 0.1, 1)
    assert w.series_of(("a",)) == {0: 15, 2: 7}
    assert w.series_of(("b",)) == {0: 1}
    assert w.series_of(("zzz",)) == {}
    assert w.labels_seen() == [("a",), ("b",)]


def test_windowed_max_aggregation():
    w = WindowedSeries("q", window=1.0, agg="max")
    w.record((0, 1), 0.2, 3)
    w.record((0, 1), 0.7, 9)
    w.record((0, 1), 0.9, 4)
    assert w.series_of((0, 1)) == {0: 9}


def test_windowed_template_and_default_row_keys():
    w = WindowedSeries("net.router.queue", window=0.5,
                       template="net.router.{}.port.{}.queue")
    w.record((3, 7), 0.1, 2)
    (row,) = list(w.rows())
    assert row["key"] == "net.router.3.port.7.queue"
    assert row["window"] == 0.5 and row["agg"] == "sum"
    assert row["bins"] == {"0": 2}
    # Without a template the labels append to the family key.
    v = WindowedSeries("fam", window=1.0)
    v.record((1, 2), 0.0, 1)
    assert list(v.rows())[0]["key"] == "fam.1.2"


def test_windowed_rejects_bad_args():
    with pytest.raises(ValueError, match="window"):
        WindowedSeries("w", window=0.0)
    with pytest.raises(ValueError, match="agg"):
        WindowedSeries("w", window=1.0, agg="median")


def test_histogram_streaming_stats():
    h = Histogram("lat", edges=[1.0, 10.0, 100.0])
    for v in (0.5, 2.0, 3.0, 50.0, 1e6):
        h.record(v)
    assert h.count == 5
    assert h.sum == pytest.approx(0.5 + 2.0 + 3.0 + 50.0 + 1e6)
    assert h.min == 0.5 and h.max == 1e6
    assert h.mean() == pytest.approx(h.sum / 5)
    assert h.buckets() == {"1.0": 1, "10.0": 2, "100.0": 1, "+inf": 1}


def test_histogram_boundary_goes_to_lower_bucket():
    # bisect_right: a value exactly at an upper edge belongs to that
    # edge's bucket (edges are inclusive upper bounds).
    h = Histogram("b", edges=[1.0, 2.0])
    h.record(1.0)
    assert h.buckets() == {"1.0": 1}


def test_histogram_quantile_approximation():
    h = Histogram("q", edges=[1.0, 2.0, 4.0, 8.0])
    for v in (0.5, 1.5, 3.0, 6.0):
        h.record(v)
    assert h.quantile(0.0) == 0.5 or h.quantile(0.0) == 1.0  # lowest bucket edge
    assert h.quantile(0.5) in (1.0, 2.0)
    assert h.quantile(1.0) == pytest.approx(6.0)  # overflow-free max
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_empty_rows_are_finite():
    h = Histogram("e")
    (row,) = list(h.rows())
    assert row["count"] == 0 and row["min"] == 0.0 and row["max"] == 0.0
    assert row["mean"] == 0.0 and row["buckets"] == {}
    assert h.quantile(0.5) == 0.0


def test_default_latency_edges_cover_simulation_range():
    assert LATENCY_EDGES[0] == pytest.approx(1e-7)
    assert LATENCY_EDGES[-1] == pytest.approx(1.0)
    assert all(a < b for a, b in zip(LATENCY_EDGES, LATENCY_EDGES[1:]))


def test_null_instrument_swallows_everything():
    assert NULL.enabled is False
    NULL.add(5)
    NULL.set(1)
    NULL.record(("x",), 0.0, 1)
    assert list(NULL.rows()) == []


def test_histogram_requires_edges():
    with pytest.raises(ValueError, match="at least one"):
        Histogram("h", edges=[])


def test_histogram_nan_like_inputs_do_not_corrupt_counts():
    h = Histogram("h", edges=[1.0])
    h.record(math.inf)
    assert h.count == 1 and h.buckets() == {"+inf": 1}
