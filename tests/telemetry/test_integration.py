"""Telemetry wired through the stack: fabric, MPI, manager, scenario.

The acceptance-critical invariants live here: disabled families change
*nothing* about the simulation except the recorded metrics, the classic
``fabric.app_counter`` accessors stay intact, and the scenario runner's
per-job rows come out of the telemetry store identical to the historic
reduction.
"""

import json

import pytest

from repro.mpi.engine import JobSpec, SimMPI, job_key
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.scenario import load_scenario, parse_scenario, run_scenario
from repro.telemetry import RESULT_SCHEMA_VERSION, Telemetry
from repro.union.manager import Job, WorkloadManager
from repro.workloads.uniform_random import uniform_random


def storm(fabric: NetworkFabric, msgs: int = 2) -> None:
    n = fabric.topo.n_nodes
    for node in range(n):
        for _ in range(msgs):
            fabric.send_message(node % 2, node, (node + n // 2) % n, 4096)
    fabric.engine.run(until=1.0)
    assert fabric.in_flight() == 0


def test_fabric_registers_classic_instruments():
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=1), routing="min")
    t = fabric.telemetry
    assert t.get("net.router.app.bytes") is fabric.app_counter
    assert t.get("net.link.bytes") is fabric.link_loads
    storm(fabric)
    keys = set(t.snapshot("net.fabric.*"))
    assert keys == {"net.fabric.messages_sent", "net.fabric.messages_delivered",
                    "net.fabric.bytes_sent"}
    assert t.get("net.fabric.messages_sent").value == fabric.messages_sent > 0
    # Expanded windowed rows exist for routers that saw traffic.
    assert any(k.startswith("net.router.") and k.endswith(".bytes")
               for k in t.snapshot("net.router.*"))
    # Link rows: class totals always, per-link only where loaded.
    link_rows = t.snapshot("net.link.*")
    assert "net.link.class.local.bytes" in link_rows
    assert all(r["value"] > 0 for k, r in link_rows.items()
               if not k.startswith("net.link.class."))


def test_disabled_families_do_not_change_the_simulation():
    f_on = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=3), routing="adp")
    storm(f_on)
    f_off = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=3), routing="adp",
                          telemetry=Telemetry(disable=("net.*",)))
    storm(f_off)
    # Identical event trajectory and end state...
    assert f_off.engine.events_processed == f_on.engine.events_processed
    assert f_off.engine.now == f_on.engine.now
    assert f_off.messages_delivered == f_on.messages_delivered
    # ...but nothing recorded: the accessors read as empty.
    assert f_on.app_counter.total(range(f_on.topo.n_routers), 0) > 0
    assert f_off.app_counter.total(range(f_off.topo.n_routers), 0) == 0
    assert f_off.link_loads.summary()["local_total_bytes"] == 0
    assert f_off.app_record is None and f_off.load_record is None
    assert list(f_off.telemetry.rows()) == []


def test_queue_occupancy_opt_in():
    t = Telemetry(enable=("net.router.queue",))
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=2), routing="min",
                           telemetry=t)
    storm(fabric, msgs=4)
    rows = list(t.rows("net.router.*.port.*.queue"))
    assert rows, "queue occupancy enabled but produced no rows"
    assert all(r["agg"] == "max" for r in rows)
    depths = [v for r in rows for v in r["bins"].values()]
    assert all(d >= 1 for d in depths)
    assert max(depths) > 1  # a permutation storm must queue somewhere
    # Off by default: the default-session fabric records none of this.
    f2 = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=2), routing="min")
    assert f2.queue_record is None
    storm(f2, msgs=1)
    assert list(f2.telemetry.rows("net.router.*.queue")) == []


def pingpong(ctx):
    peer = 1 - ctx.rank
    for _ in range(3):
        if ctx.rank == 0:
            yield from ctx.send(peer, 1024)
            yield from ctx.recv(peer)
        else:
            yield from ctx.recv(peer)
            yield from ctx.send(peer, 1024)


def run_pingpong(telemetry=None):
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=5), routing="min",
                           telemetry=telemetry)
    mpi = SimMPI(fabric)
    mpi.add_job(JobSpec("pp", 2, pingpong, [0, 9]))
    mpi.run(until=1.0)
    return mpi


def test_simmpi_publishes_lifecycle_and_reductions():
    mpi = run_pingpong()
    t = mpi.telemetry
    base = job_key("pp")
    assert base == "mpi.job.pp"
    snap = t.snapshot(f"{base}.*")
    assert snap[f"{base}.launched_at"]["value"] == 0.0
    r = mpi.results()[0]
    # The gauge is stamped when the last rank finishes, not at the horizon.
    assert snap[f"{base}.finished_at"]["value"] == pytest.approx(
        max(s.finished_at for s in r.rank_stats)
    )
    assert 0 < snap[f"{base}.finished_at"]["value"] < 1.0
    assert snap[f"{base}.finished"]["value"] == 1
    assert snap[f"{base}.msgs_recvd"]["value"] == 6
    assert snap[f"{base}.avg_msg_latency"]["value"] == pytest.approx(r.avg_latency())
    assert snap[f"{base}.max_comm_time"]["value"] == pytest.approx(r.max_comm_time())
    assert snap[f"{base}.bytes_sent"]["value"] == r.total_bytes_sent()
    # Latency histograms are off by default.
    assert t.get(f"{base}.msg_latency") is None


def test_simmpi_latency_histogram_opt_in():
    t = Telemetry(enable=("mpi.job.msg_latency",))
    mpi = run_pingpong(telemetry=t)
    hist = t.get("mpi.job.pp.msg_latency")
    assert hist is not None
    r = mpi.results()[0]
    lats = r.all_latencies()
    assert hist.count == len(lats) == 6
    assert hist.sum == pytest.approx(sum(lats))
    assert hist.min == pytest.approx(min(lats))
    assert hist.max == pytest.approx(max(lats))


def test_job_key_sanitizes_names():
    assert job_key("a.b c", "x") == "mpi.job.a_b_c.x"


def test_manager_rerun_replaces_instruments_instead_of_crashing():
    mgr = WorkloadManager(Dragonfly1D.mini(), routing="min", placement="rn", seed=2)
    mgr.add_job(Job("ur", 4, program=uniform_random,
                    params={"iters": 1, "msg_bytes": 256, "interval_s": 1e-4, "seed": 2}))
    mgr.run(until=1.0)
    first_counter = mgr.fabric.app_counter
    # Managers are single-use; reset() is the supported re-run idiom and
    # keeps the shared telemetry session.
    mgr.reset().run(until=1.0)
    t = mgr.telemetry
    assert t.get("net.router.app.bytes") is mgr.fabric.app_counter
    assert t.get("net.router.app.bytes") is not first_counter
    # Observable gauges read the *new* fabric, not the dead one.
    assert t.get("net.fabric.messages_sent").value == mgr.fabric.messages_sent > 0


def test_manager_rerun_resets_latency_histograms():
    t = Telemetry(enable=("mpi.job.msg_latency",))
    mgr = WorkloadManager(Dragonfly1D.mini(), routing="min", placement="rn",
                          seed=2, telemetry=t)
    mgr.add_job(Job("ur", 4, program=uniform_random,
                    params={"iters": 2, "msg_bytes": 256, "interval_s": 1e-4, "seed": 2}))
    mgr.run(until=1.0)
    first = t.get(job_key("ur", "msg_latency")).count
    assert first > 0
    mgr.reset().run(until=1.0)
    # A relaunch gets a fresh histogram, not run 1's merged into run 2.
    assert t.get(job_key("ur", "msg_latency")).count == first


def test_batch_same_named_specs_from_different_dirs_rejected(tmp_path):
    from repro.scenario import ScenarioError, run_batch

    data = {k: v for k, v in SCENARIO.items() if k != "metrics"}
    paths = []
    for d in ("a", "b"):
        (tmp_path / d).mkdir()
        p = tmp_path / d / "x.json"
        p.write_text(json.dumps(data))
        paths.append(p)
    with pytest.raises(ScenarioError, match="both write"):
        run_batch(paths, metrics_dir=tmp_path / "m")
    # Without a metrics dir the same list is fine (no files to collide).
    assert not run_batch(paths).failures


def test_colliding_job_names_rejected_by_manager():
    mgr = WorkloadManager(Dragonfly1D.mini(), routing="min", placement="rn")
    for name in ("a.b", "a_b"):
        mgr.add_job(Job(name, 2, program=uniform_random,
                        params={"iters": 1, "msg_bytes": 64, "interval_s": 1e-4,
                                "seed": 1}))
    with pytest.raises(ValueError, match="collide on telemetry key"):
        mgr.run(until=0.01)


def test_colliding_job_names_rejected_by_spec():
    from repro.scenario import ScenarioError

    data = dict(SCENARIO)
    data = {k: v for k, v in data.items() if k != "metrics"}
    data["jobs"] = [
        {"name": "a.b", "app": "nn", "params": {"iters": 1}},
        {"name": "a_b", "app": "nn", "params": {"iters": 1}},
    ]
    with pytest.raises(ScenarioError, match="telemetry key segment"):
        parse_scenario(data)


def test_manager_publishes_placement_metrics():
    mgr = WorkloadManager(Dragonfly1D.mini(), routing="min", placement="rg", seed=1)
    mgr.add_job(Job("ur", 8, program=uniform_random,
                    params={"iters": 2, "msg_bytes": 512, "interval_s": 1e-4, "seed": 1}))
    outcome = mgr.run(until=1.0)
    t = mgr.telemetry
    assert mgr.fabric.telemetry is t and mgr.mpi.telemetry is t
    a = outcome.app("ur")
    base = job_key("ur")
    assert t.get(f"{base}.started").value == 1
    assert t.get(f"{base}.n_nodes").value == len(a.nodes)
    assert t.get(f"{base}.n_routers").value == len(a.routers)
    assert t.get(f"{base}.n_groups").value == len(a.groups) > 0
    assert t.get(f"{base}.background").value == 0


SCENARIO = {
    "name": "tele",
    "horizon": 0.01,
    "topology": {"network": "1d"},
    "placement": "rn",
    "jobs": [{"app": "nn", "params": {"iters": 2}}],
    "metrics": {"summary": True, "latency_histograms": True,
                "queue_occupancy": True},
}


def test_scenario_reduces_from_telemetry_store():
    spec = parse_scenario(dict(SCENARIO))
    result = run_scenario(spec)
    t = result.telemetry
    assert t is not None
    j = result.job("nn")
    base = job_key("nn")
    assert j.started and j.finished
    assert j.avg_latency == t.get(f"{base}.avg_msg_latency").value > 0
    assert j.messages == t.get(f"{base}.msgs_recvd").value > 0
    # The opt-in instruments ran without any Python written.
    assert t.get(f"{base}.msg_latency").count == j.messages
    assert any(True for _ in t.rows("net.router.*.queue"))
    # And the summary sink landed in the JSON document.
    doc = result.to_json_dict()
    assert doc["schema_version"] == RESULT_SCHEMA_VERSION
    assert doc["metrics"]["rows"] > 0
    assert f"{base}.msg_latency" in doc["metrics"]["metrics"]
    json.dumps(doc)  # JSON-able end to end


def test_scenario_jsonl_sink_and_filter(tmp_path):
    out = tmp_path / "m.jsonl"
    data = dict(SCENARIO)
    data["metrics"] = {"jsonl": str(out), "filter": ["mpi.job.*"]}
    result = run_scenario(parse_scenario(data))
    assert result.metrics is None  # summary not requested
    lines = out.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["scenario"] == "tele"
    keys = [json.loads(l)["key"] for l in lines[1:]]
    assert keys and all(k.startswith("mpi.job.nn.") for k in keys)


def test_scenario_without_metrics_table_has_no_metrics_key(tmp_path):
    data = {k: v for k, v in SCENARIO.items() if k != "metrics"}
    result = run_scenario(parse_scenario(data))
    doc = result.to_json_dict()
    assert doc["schema_version"] == RESULT_SCHEMA_VERSION
    assert "metrics" not in doc


def test_metrics_table_round_trips(tmp_path):
    spec = parse_scenario(dict(SCENARIO))
    again = parse_scenario(spec.to_dict())
    assert again.metrics == spec.metrics
    assert again.to_dict() == spec.to_dict()


def test_metrics_table_validation_errors():
    from repro.scenario import ScenarioError

    bad = dict(SCENARIO)
    bad["metrics"] = {"sumary": True}
    with pytest.raises(ScenarioError, match="metrics.sumary"):
        parse_scenario(bad)
    bad["metrics"] = {"filter": 3}
    with pytest.raises(ScenarioError, match="metrics.filter"):
        parse_scenario(bad)
    bad["metrics"] = {"queue_occupancy": "yes"}
    with pytest.raises(ScenarioError, match="true/false"):
        parse_scenario(bad)


def test_batch_metrics_dir(tmp_path):
    from repro.scenario import run_batch

    spec_dir = tmp_path / "specs"
    spec_dir.mkdir()
    for name in ("one", "two"):
        data = {k: v for k, v in SCENARIO.items() if k != "metrics"}
        data["name"] = name
        (spec_dir / f"{name}.json").write_text(json.dumps(data))
    mdir = tmp_path / "metrics"
    batch = run_batch(spec_dir, metrics_dir=mdir, metrics_filter=["mpi.job.*"])
    assert not batch.failures
    files = sorted(p.name for p in mdir.iterdir())
    # Full spec filenames: a.toml and a.json must not share an output.
    assert files == ["one.json.metrics.jsonl", "two.json.metrics.jsonl"]
    for p in mdir.iterdir():
        lines = p.read_text().splitlines()
        assert len(lines) > 1
        assert all(json.loads(l)["key"].startswith("mpi.job.")
                   for l in lines[1:])


def test_instrumented_example_spec_validates():
    from pathlib import Path

    path = (Path(__file__).resolve().parents[2]
            / "examples" / "scenarios" / "instrumented_run.toml")
    spec = load_scenario(path)
    assert spec.metrics is not None
    assert spec.metrics.summary
    assert set(spec.metrics.enable_families()) == {
        "net.router.queue", "mpi.job.msg_latency",
    }


def test_run_experiment_with_telemetry_bypasses_cache():
    from repro.harness.experiment import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(workload="baseline:nn", placement="rn", routing="min")
    t = Telemetry()
    res = run_experiment(cfg, telemetry=t)
    assert t.get(job_key("nn", "finished")).value == 1
    assert t.get("net.fabric.messages_sent").value > 0
    # The cached path still works and agrees.
    res2 = run_experiment(cfg)
    assert res2.apps["nn"].messages == res.apps["nn"].messages


def test_run_experiment_disabled_telemetry_does_not_poison_cache():
    from repro.harness.experiment import ExperimentConfig, clear_cache, run_experiment

    clear_cache()
    cfg = ExperimentConfig(workload="baseline:nn", placement="rn", routing="min",
                           seed=4)
    muted = run_experiment(cfg, telemetry=Telemetry(disable=("net.*",)))
    assert muted.link_summary["local_total_bytes"] == 0  # nothing recorded
    # A later plain call must re-simulate, not return the muted result.
    plain = run_experiment(cfg)
    assert plain.link_summary["local_total_bytes"] > 0
