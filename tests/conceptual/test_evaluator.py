"""Expression evaluation semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conceptual import ast_nodes as A
from repro.conceptual.errors import EvalError
from repro.conceptual.evaluator import Env, evaluate, expand_range
from repro.conceptual.parser import parse
from repro.pdes.rng import SplitMix


def ev(src, variables=None, num_tasks=8, rng=None):
    prog = parse(f"if {src} then {{ all tasks synchronize }}")
    cond = prog.body.stmts[0].cond
    return evaluate(cond, Env(variables or {}, num_tasks=num_tasks, rng=rng))


def ev_arith(src, variables=None, num_tasks=8, rng=None):
    prog = parse(f"task 0 computes for {src} seconds")
    amount = prog.body.stmts[0].amount
    return evaluate(amount, Env(variables or {}, num_tasks=num_tasks, rng=rng))


def test_basic_arithmetic():
    assert ev_arith("1 + 2 * 3") == 7
    assert ev_arith("(1 + 2) * 3") == 9
    assert ev_arith("10 - 4 - 3") == 3
    assert ev_arith("2 ** 10") == 1024


def test_integer_division_truncates():
    assert ev_arith("7 / 2") == 3
    assert ev_arith("(0-7) / 2") == -3  # truncation towards zero
    assert ev_arith("7.0 / 2") == 3.5


def test_mod():
    assert ev_arith("7 mod 3") == 1
    assert ev_arith("9 mod 3") == 0


def test_division_by_zero():
    with pytest.raises(EvalError, match="division by zero"):
        ev_arith("1 / 0")
    with pytest.raises(EvalError, match="modulo by zero"):
        ev_arith("1 mod 0")


def test_unary_minus():
    assert ev_arith("-5 + 10") == 5


def test_shifts_and_bitwise():
    assert ev_arith("1 << 10") == 1024
    assert ev_arith("1024 >> 3") == 128
    assert ev_arith("12 & 10") == 8
    assert ev_arith("12 | 10") == 14
    assert ev_arith("12 ^ 10") == 6


def test_comparisons():
    assert ev("3 < 4") == 1
    assert ev("3 > 4") == 0
    assert ev("3 = 3") == 1
    assert ev("3 <> 3") == 0
    assert ev("3 <= 3") == 1
    assert ev("4 >= 5") == 0


def test_divides():
    assert ev("3 divides 9") == 1
    assert ev("3 divides 10") == 0
    with pytest.raises(EvalError):
        ev("0 divides 10")


def test_parity():
    assert ev("4 is even") == 1
    assert ev("4 is odd") == 0
    assert ev("7 is odd") == 1


def test_bool_ops_short_circuit():
    assert ev("1 = 1 and 2 = 2") == 1
    assert ev("1 = 2 and (1 / 0) = 0") == 0  # rhs never evaluated
    assert ev("1 = 1 or (1 / 0) = 0") == 1
    assert ev("not 1 = 2") == 1
    assert ev("(1 = 1) xor (2 = 2)") == 0


def test_num_tasks_builtin():
    assert ev("num_tasks = 8") == 1
    assert ev("num_tasks = 8", num_tasks=4) == 0


def test_variables_resolve():
    assert ev_arith("x * y", {"x": 6, "y": 7}) == 42


def test_undefined_variable():
    with pytest.raises(EvalError, match="undefined variable"):
        ev_arith("nope")


def test_unknown_function():
    with pytest.raises(EvalError, match="unknown function"):
        ev_arith("frobnicate(1)")


def test_function_arity_checked():
    with pytest.raises(EvalError, match="arguments"):
        ev_arith("abs(1, 2)")


def test_random_task_bounds_and_determinism():
    a = ev_arith("random_task(3, 7)", rng=SplitMix(5, 1))
    b = ev_arith("random_task(3, 7)", rng=SplitMix(5, 1))
    assert a == b
    assert 3 <= a <= 7


def test_random_task_without_rng():
    with pytest.raises(EvalError, match="random"):
        ev_arith("random_task(0, 3)")


def test_random_task_empty_range():
    with pytest.raises(EvalError, match="empty range"):
        ev_arith("random_task(5, 2)", rng=SplitMix(0, 0))


def test_elapsed_usecs_hook():
    prog = parse("task 0 computes for elapsed_usecs seconds")
    amount = prog.body.stmts[0].amount
    env = Env({}, num_tasks=1, elapsed_usecs=lambda: 123.0)
    assert evaluate(amount, env) == 123.0
    with pytest.raises(EvalError, match="elapsed_usecs"):
        evaluate(amount, Env({}, num_tasks=1))


def test_env_child_scoping():
    env = Env({"a": 1}, num_tasks=2)
    child = env.child(b=2)
    assert child.lookup("a", 0) == 1
    assert child.lookup("b", 0) == 2
    with pytest.raises(EvalError):
        env.lookup("b", 0)


# -- range expansion --------------------------------------------------------------


def expand(src, variables=None):
    prog = parse(f"for each i in {src} {{ all tasks synchronize }}")
    spec = prog.body.stmts[0].ranges[0]
    return expand_range(spec, Env(variables or {}, num_tasks=8))


def test_expand_simple_range():
    assert expand("{1, ..., 5}") == [1, 2, 3, 4, 5]


def test_expand_stepped_range():
    assert expand("{1, 3, ..., 9}") == [1, 3, 5, 7, 9]


def test_expand_geometricish_prefix():
    assert expand("{0, 10, ..., 40}") == [0, 10, 20, 30, 40]


def test_expand_descending():
    assert expand("{5, 4, ..., 1}") == [5, 4, 3, 2, 1]


def test_expand_explicit_list():
    assert expand("{2, 4, 32}") == [2, 4, 32]


def test_expand_with_variables():
    assert expand("{1, ..., n}", {"n": 3}) == [1, 2, 3]


@given(st.integers(-50, 50), st.integers(-50, 50))
@settings(max_examples=100)
def test_expand_matches_python_range(a, b):
    got = expand(f"{{{a}, ..., {b}}}")
    step = 1 if b >= a else -1
    assert got == list(range(a, b + step, step))
