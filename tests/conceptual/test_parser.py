"""Parser: statement forms, headers, expression precedence, errors."""

import pytest

from repro.conceptual import ast_nodes as A
from repro.conceptual.errors import ParseError
from repro.conceptual.parser import parse
from repro.workloads.sources import ALEXNET_SOURCE, COSMOFLOW_SOURCE, PINGPONG_SOURCE


def body_stmts(src):
    return parse(src).body.stmts


def first_stmt(src):
    return body_stmts(src)[0]


# -- headers ------------------------------------------------------------------


def test_require_header():
    p = parse('Require language version "1.5". all tasks synchronize')
    assert p.requires[0].version == "1.5"


def test_param_declaration():
    p = parse('reps is "Reps" and comes from "--reps" or "-r" with default 1000. all tasks synchronize')
    d = p.params[0]
    assert d.name == "reps"
    assert d.flags == ["--reps", "-r"]
    assert isinstance(d.default, A.Num) and d.default.value == 1000


def test_assert_declaration():
    p = parse('Assert that "need tasks" with num_tasks>=2. all tasks synchronize')
    a = p.asserts[0]
    assert a.text == "need tasks"
    assert isinstance(a.cond, A.Compare)


# -- statements ----------------------------------------------------------------


def test_send_statement():
    s = first_stmt("task 0 sends a 1024 byte message to task 1")
    assert isinstance(s, A.Send)
    assert s.blocking
    assert s.unit == 1.0
    assert isinstance(s.sender, A.TaskN)
    assert isinstance(s.target, A.TaskN)


def test_send_with_units():
    s = first_stmt("task 0 sends a 2 megabyte message to task 1")
    assert s.unit == 1 << 20
    s = first_stmt("task 0 sends a 3 kilobyte message to task 1")
    assert s.unit == 1 << 10


def test_send_nonblocking_keyword():
    s = first_stmt("task 0 sends a 8 byte nonblocking message to task 1")
    assert not s.blocking


def test_asynchronously_prefix():
    s = first_stmt("task 0 asynchronously sends a 8 byte message to task 1")
    assert not s.blocking


def test_send_with_count():
    s = first_stmt("task 0 sends 5 1024 byte messages to task 1")
    assert isinstance(s.count, A.Num) and s.count.value == 5


def test_send_all_tasks_with_binding():
    s = first_stmt("all tasks t sends a 8 byte message to task (t+1) mod num_tasks")
    assert isinstance(s.sender, A.AllTasks)
    assert s.sender.var == "t"


def test_send_such_that():
    s = first_stmt("tasks t such that t>0 sends a 8 byte message to task 0")
    assert isinstance(s.sender, A.SuchThat)
    assert s.sender.var == "t"


def test_receive_statement():
    s = first_stmt("task 1 receives a 64 byte message from task 0")
    assert isinstance(s, A.Receive)


def test_multicast():
    s = first_stmt("task 0 multicasts a 4 byte message to all other tasks")
    assert isinstance(s, A.Multicast)
    assert isinstance(s.target, A.AllOtherTasks)


def test_reduce_to_all_tasks():
    s = first_stmt("all tasks reduce a 28 megabyte value to all tasks")
    assert isinstance(s, A.ReduceStmt)
    assert isinstance(s.target, A.AllTasks)


def test_reduce_to_single_task():
    s = first_stmt("all tasks reduce an 8 byte value to task 0")
    assert isinstance(s.target, A.TaskN)


def test_synchronize():
    assert isinstance(first_stmt("all tasks synchronize"), A.Synchronize)


def test_compute_and_sleep():
    c = first_stmt("all tasks compute for 129 milliseconds")
    assert isinstance(c, A.ComputeStmt)
    assert c.unit == 1e-3
    s = first_stmt("task 0 sleeps for 2 seconds")
    assert isinstance(s, A.SleepStmt)
    assert s.unit == 1.0


def test_reset_and_aggregates():
    assert isinstance(first_stmt("task 0 resets its counters"), A.ResetCounters)
    assert isinstance(first_stmt("all tasks reset their counters"), A.ResetCounters)
    assert isinstance(first_stmt("task 0 computes aggregates"), A.ComputeAggregates)


def test_await_completion():
    assert isinstance(first_stmt("all tasks await completion"), A.AwaitCompletion)


def test_log_with_aggregate():
    s = first_stmt('task 0 logs the median of elapsed_usecs/2 as "RTT" and the msgsize as "B"')
    assert isinstance(s, A.LogStmt)
    assert s.items[0].aggregate == "median"
    assert s.items[1].aggregate is None
    assert s.items[1].label == "B"


def test_output():
    s = first_stmt('task 0 outputs "hello"')
    assert isinstance(s, A.OutputStmt) and s.text == "hello"
    s = first_stmt("task 0 outputs num_tasks*2")
    assert s.expr is not None


def test_touch():
    s = first_stmt("all tasks touch 1 megabyte of memory")
    assert isinstance(s, A.TouchStmt)


# -- control flow -----------------------------------------------------------------


def test_for_repetitions():
    s = first_stmt("for 10 repetitions { all tasks synchronize }")
    assert isinstance(s, A.ForReps)


def test_then_sequencing():
    stmts = body_stmts("all tasks synchronize then all tasks synchronize then all tasks synchronize")
    assert len(stmts) == 3


def test_for_each_with_ellipsis():
    s = first_stmt("for each i in {1, 2, ..., 9} { all tasks synchronize }")
    assert isinstance(s, A.ForEach)
    assert s.ranges[0].ellipsis_to is not None
    assert len(s.ranges[0].exprs) == 2


def test_for_each_explicit_list():
    s = first_stmt("for each i in {1, 5, 25} { all tasks synchronize }")
    assert s.ranges[0].ellipsis_to is None
    assert len(s.ranges[0].exprs) == 3


def test_if_otherwise():
    s = first_stmt(
        "if num_tasks > 4 then { all tasks synchronize } otherwise { all tasks synchronize }"
    )
    assert isinstance(s, A.If)
    assert s.otherwise is not None


def test_while():
    s = first_stmt("while 0 { all tasks synchronize }")
    assert isinstance(s, A.While)


def test_let():
    s = first_stmt("let x be 5 and y be x*2 while { task 0 computes for y microseconds }")
    assert isinstance(s, A.Let)
    assert [b[0] for b in s.bindings] == ["x", "y"]


# -- expressions -------------------------------------------------------------------


def expr_of(src):
    return first_stmt(f"if {src} then {{ all tasks synchronize }}").cond


def test_precedence_mul_before_add():
    e = expr_of("1 + 2 * 3 = 7")
    assert isinstance(e, A.Compare)
    assert isinstance(e.left, A.BinOp) and e.left.op == "+"


def test_power_right_associative():
    e = expr_of("2 ** 3 ** 2 = 512")
    left = e.left
    assert left.op == "**"
    assert isinstance(left.right, A.BinOp) and left.right.op == "**"


def test_parity_and_divides():
    assert isinstance(expr_of("num_tasks is even"), A.Parity)
    assert isinstance(expr_of("3 divides num_tasks"), A.Compare)


def test_bool_ops():
    e = expr_of("num_tasks > 1 and num_tasks < 100 or num_tasks = 1")
    assert isinstance(e, A.BoolOp) and e.op == "or"


def test_call_with_args():
    e = expr_of("mesh_neighbor(4, 4, 1, 0, 1, 0, 0) >= 0")
    assert isinstance(e.left, A.Call)
    assert len(e.left.args) == 7


# -- whole programs -----------------------------------------------------------------


@pytest.mark.parametrize("src", [PINGPONG_SOURCE, COSMOFLOW_SOURCE, ALEXNET_SOURCE])
def test_shipped_sources_parse(src):
    p = parse(src)
    assert p.body.stmts


# -- errors --------------------------------------------------------------------------


@pytest.mark.parametrize(
    "src,msg",
    [
        ("task 0 sends a 8 byte message", "expected 'to'"),
        ("task 0 jumps", "expected a verb|unknown verb"),
        ("for 10 { all tasks synchronize }", "repetitions"),
        ("task 0 sends a 8 furlong message to task 1", "size unit"),
        ("task 0 computes for 8 bytes", "time unit"),
        ("all tasks synchronize then", "task expression|expected"),
        ("task 0 sends a 8 byte message to task 1 extra", "trailing"),
    ],
)
def test_parse_errors(src, msg):
    with pytest.raises(ParseError, match=msg):
        parse(src)


def test_error_carries_position():
    try:
        parse("task 0 sends a 8 furlong message to task 1")
    except ParseError as e:
        assert e.line == 1
        assert e.column > 0
    else:  # pragma: no cover
        pytest.fail("expected ParseError")
