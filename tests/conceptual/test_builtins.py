"""Virtual-topology built-ins, including property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conceptual.builtins import (
    c_cbrt,
    c_div,
    c_log2,
    c_sqrt,
    knomial_child,
    knomial_children,
    knomial_parent,
    mesh_coordinate,
    mesh_neighbor,
    range_seq,
    torus_neighbor,
    tree_child,
    tree_parent,
)
from repro.conceptual.errors import EvalError


# -- arithmetic helpers -------------------------------------------------------


def test_div_truncates_towards_zero():
    assert c_div(7, 2) == 3
    assert c_div(-7, 2) == -3
    assert c_div(7, -2) == -3
    assert c_div(-7, -2) == 3
    assert c_div(7.0, 2) == 3.5


def test_sqrt_integer_exact():
    assert c_sqrt(16) == 4
    assert c_sqrt(17) == 4
    assert c_sqrt(2.25) == 1.5
    with pytest.raises(EvalError):
        c_sqrt(-1)


@given(st.integers(0, 10**9))
@settings(max_examples=200)
def test_cbrt_is_floor_cube_root(x):
    r = c_cbrt(x)
    assert r**3 <= x < (r + 1) ** 3


def test_log2_integer():
    assert c_log2(1) == 0
    assert c_log2(1024) == 10
    assert c_log2(1025) == 10
    with pytest.raises(EvalError):
        c_log2(0)


# -- n-ary trees ---------------------------------------------------------------


def test_tree_parent_root():
    assert tree_parent(0) == -1


@given(st.integers(1, 10_000), st.integers(1, 5))
@settings(max_examples=200)
def test_tree_parent_child_inverse(task, arity):
    parent = tree_parent(task, arity)
    assert parent >= 0
    children = [tree_child(parent, c, arity) for c in range(arity)]
    assert task in children


def test_tree_child_bounds_checked():
    with pytest.raises(EvalError):
        tree_child(0, 2, 2)


# -- k-nomial trees ---------------------------------------------------------------


@given(st.integers(1, 500), st.integers(2, 4), st.integers(2, 501))
@settings(max_examples=200)
def test_knomial_parent_is_smaller(task, k, n):
    if task >= n:
        task = task % n
    if task == 0:
        assert knomial_parent(task, k, n) == -1
    else:
        p = knomial_parent(task, k, n)
        assert 0 <= p < task


@given(st.integers(2, 200), st.integers(2, 4))
@settings(max_examples=100)
def test_knomial_tree_spans_all_nodes(n, k):
    """Every node except the root has exactly one parent; following
    children from the root reaches every node exactly once."""
    seen = {0}
    frontier = [0]
    while frontier:
        t = frontier.pop()
        n_children = knomial_children(t, k, n)
        for c in range(n_children):
            child = knomial_child(t, c, k, n)
            assert child not in seen
            assert knomial_parent(child, k, n) == t
            seen.add(child)
            frontier.append(child)
    assert seen == set(range(n))


def test_knomial_requires_n():
    with pytest.raises(EvalError):
        knomial_children(0, 2, None)
    with pytest.raises(EvalError):
        knomial_child(0, 0, 2, None)


def test_knomial_k_validated():
    with pytest.raises(EvalError):
        knomial_parent(3, 1, 8)


# -- meshes / tori ------------------------------------------------------------------


def test_mesh_neighbor_interior():
    # 4x4x1 mesh, task 5 = (1,1,0)
    assert mesh_neighbor(4, 4, 1, 5, 1, 0, 0) == 6
    assert mesh_neighbor(4, 4, 1, 5, 0, 1, 0) == 9
    assert mesh_neighbor(4, 4, 1, 5, -1, -1, 0) == 0


def test_mesh_neighbor_edge_returns_minus_one():
    assert mesh_neighbor(4, 4, 1, 0, -1, 0, 0) == -1
    assert mesh_neighbor(4, 4, 1, 3, 1, 0, 0) == -1
    assert mesh_neighbor(4, 4, 1, 15, 0, 1, 0) == -1


def test_torus_neighbor_wraps():
    assert torus_neighbor(4, 4, 1, 0, -1, 0, 0) == 3
    assert torus_neighbor(4, 4, 1, 3, 1, 0, 0) == 0
    assert torus_neighbor(2, 2, 2, 7, 1, 1, 1) == 0


@given(
    st.integers(1, 6), st.integers(1, 6), st.integers(1, 6),
    st.integers(-2, 2), st.integers(-2, 2), st.integers(-2, 2),
    st.data(),
)
@settings(max_examples=200)
def test_torus_neighbor_is_invertible(w, h, d, dx, dy, dz, data):
    task = data.draw(st.integers(0, w * h * d - 1))
    nb = torus_neighbor(w, h, d, task, dx, dy, dz)
    assert 0 <= nb < w * h * d
    assert torus_neighbor(w, h, d, nb, -dx, -dy, -dz) == task


def test_mesh_coordinate():
    assert mesh_coordinate(4, 3, 2, 23, 0) == 3
    assert mesh_coordinate(4, 3, 2, 23, 1) == 2
    assert mesh_coordinate(4, 3, 2, 23, 2) == 1
    with pytest.raises(EvalError):
        mesh_coordinate(4, 3, 2, 23, 3)


def test_mesh_task_out_of_range():
    with pytest.raises(EvalError):
        mesh_neighbor(2, 2, 1, 4, 0, 0, 0)


def test_non_integer_rejected():
    with pytest.raises(EvalError):
        tree_parent(1.5)


# -- range_seq -----------------------------------------------------------------------


def test_range_seq_matches_examples():
    assert range_seq([1], 5) == [1, 2, 3, 4, 5]
    assert range_seq([1, 3], 9) == [1, 3, 5, 7, 9]
    assert range_seq([10], 7) == [10, 9, 8, 7]
    assert range_seq([0, 5], 22) == [0, 5, 10, 15, 20]


def test_range_seq_errors():
    with pytest.raises(EvalError):
        range_seq([], 5)
    with pytest.raises(EvalError):
        range_seq([3, 3], 9)
