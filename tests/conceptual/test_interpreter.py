"""Application interpreter: event counts, bytes, buffers, control flow."""

import numpy as np
import pytest

from repro.conceptual.parser import parse
from repro.conceptual.interpreter import run_application
from repro.workloads.sources import PINGPONG_SOURCE


def run(src, n, params=None, **kw):
    return run_application(parse(src), n, params, **kw)


def test_init_finalize_counted_once_per_rank():
    r = run("all tasks synchronize", 6)
    assert r.event_counts()["MPI_Init"] == 6
    assert r.event_counts()["MPI_Finalize"] == 6


def test_pingpong_figure1_counts():
    r = run(PINGPONG_SOURCE, 4, {"reps": 10})
    counts = r.event_counts()
    assert counts["MPI_Send"] == 20
    assert counts["MPI_Recv"] == 20
    assert list(r.bytes_by_rank()) == [10240, 10240, 0, 0]


def test_send_count_multiplier():
    r = run("task 0 sends 5 100 byte messages to task 1", 2)
    assert r.event_counts()["MPI_Send"] == 5
    assert r.event_counts()["MPI_Recv"] == 5
    assert r.bytes_sent[0] == 500


def test_nonblocking_send_counts_isend():
    r = run("task 0 sends a 8 byte nonblocking message to task 1 then all tasks await completion", 2)
    c = r.event_counts()
    assert c["MPI_Isend"] == 1
    assert c["MPI_Irecv"] == 1
    assert c["MPI_Waitall"] == 2


def test_all_tasks_ring_send():
    r = run("all tasks t sends a 10 byte message to task (t+1) mod num_tasks", 5)
    assert r.event_counts()["MPI_Send"] == 5
    assert r.event_counts()["MPI_Recv"] == 5
    assert all(r.bytes_sent == 10)


def test_such_that_sender_subset():
    r = run("tasks t such that t>1 sends a 10 byte message to task 0", 5)
    assert r.event_counts()["MPI_Send"] == 3
    assert int(r.event_counts_per_rank("MPI_Recv")[0]) == 3


def test_mesh_edge_targets_skipped():
    # 1D chain of 4: task 3 has no +1 neighbour.
    r = run("all tasks t sends a 8 byte message to task mesh_neighbor(4, 1, 1, t, 1, 0, 0)", 4)
    assert r.event_counts()["MPI_Send"] == 3


def test_all_other_tasks_target():
    r = run("task 1 sends a 8 byte message to all other tasks", 4)
    assert r.event_counts()["MPI_Send"] == 3
    assert int(r.event_counts_per_rank("MPI_Recv")[1]) == 0


def test_bcast_accounting():
    r = run("task 2 multicasts a 100 byte message to all other tasks", 4)
    assert r.event_counts()["MPI_Bcast"] == 4
    assert list(r.bytes_by_rank()) == [0, 0, 100, 0]


def test_allreduce_accounting():
    r = run("all tasks reduce a 100 byte value to all tasks", 4)
    assert r.event_counts()["MPI_Allreduce"] == 4
    assert all(r.bytes_by_rank() == 100)


def test_reduce_accounting():
    r = run("all tasks reduce a 100 byte value to task 1", 4)
    assert r.event_counts()["MPI_Reduce"] == 4
    assert list(r.bytes_by_rank()) == [100, 0, 100, 100]


def test_compute_advances_clock_subset():
    r = run("task 1 computes for 5 milliseconds", 3)
    assert r.clock[1] == pytest.approx(5e-3)
    assert r.clock[0] == 0.0


def test_reset_and_elapsed_in_logs():
    src = (
        "task 0 computes for 10 milliseconds then "
        "task 0 resets its counters then "
        "task 0 computes for 2 milliseconds then "
        'task 0 logs elapsed_usecs as "e"'
    )
    r = run(src, 2)
    assert r.log_values(0, "e") == [pytest.approx(2000.0)]


def test_log_aggregates():
    src = 'for each i in {1, ..., 5} { task 0 logs i*10 as "v" }'
    r = run(src, 1)
    assert r.log_values(0, "v") == [10, 20, 30, 40, 50]
    assert r.aggregate_log(0, "v", "mean") == 30
    assert r.aggregate_log(0, "v", "median") == 30
    assert r.aggregate_log(0, "v", "maximum") == 50
    assert r.aggregate_log(0, "v", "sum") == 150
    with pytest.raises(KeyError):
        r.aggregate_log(1, "v", "mean")


def test_buffer_growth_tracks_message_sizes():
    src = "task 0 sends a 100 byte message to task 1 then task 0 sends a 5000 byte message to task 1"
    r = run(src, 2)
    assert r.buffer_bytes[0] == 5000
    assert r.buffer_bytes[1] == 5000
    assert r.peak_buffer_bytes() == 5000


def test_touch_grows_buffer():
    r = run("all tasks touch 2 kilobytes of memory", 2)
    assert r.peak_buffer_bytes() == 2048


def test_if_otherwise_branches():
    src = "if num_tasks > 2 then { all tasks synchronize } otherwise { all tasks synchronize then all tasks synchronize }"
    assert run(src, 4).event_counts()["MPI_Barrier"] == 4
    assert run(src, 2).event_counts()["MPI_Barrier"] == 4  # two barriers x 2 ranks


def test_while_loop():
    src = 'x is "x" and comes from "--x" with default 3. while x > 0 { all tasks synchronize then let x be x - 1 while { all tasks synchronize } }'
    # 'let' cannot mutate outer scope -> this would loop forever; instead use for
    src = "for each i in {1, ..., 3} { all tasks synchronize }"
    assert run(src, 2).event_counts()["MPI_Barrier"] == 6


def test_param_override_and_unknown_param():
    r = run(PINGPONG_SOURCE, 2, {"reps": 1})
    assert r.event_counts()["MPI_Send"] == 2
    with pytest.raises(Exception, match="unknown parameters"):
        run(PINGPONG_SOURCE, 2, {"nope": 1})


def test_assert_failure_raised():
    with pytest.raises(AssertionError, match="at least two"):
        run(PINGPONG_SOURCE, 1)


def test_traces_recorded_only_on_request():
    r = run("all tasks synchronize", 2)
    assert r.traces is None
    r = run("all tasks synchronize", 2, record_trace=True)
    assert r.traces[0] == ["MPI_Init", "MPI_Barrier", "MPI_Finalize"]


def test_outputs_collected():
    r = run('task 0 outputs "hi" then task 0 outputs num_tasks', 3)
    assert (0, "hi") in r.outputs
    assert (0, "3") in r.outputs


def test_sleep_statement():
    r = run("all tasks sleep for 1 second", 2)
    assert all(r.clock == 1.0)


def test_explicit_receive_counts():
    r = run("task 1 receives a 64 byte message from task 0", 2)
    assert r.event_counts()["MPI_Recv"] == 1
    assert int(r.event_counts_per_rank("MPI_Recv")[1]) == 1


def test_n_tasks_validated():
    with pytest.raises(ValueError):
        run("all tasks synchronize", 0)
