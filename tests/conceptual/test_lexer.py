"""Lexer behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conceptual.errors import LexError
from repro.conceptual.lexer import tokenize
from repro.conceptual.tokens import (
    COMMA,
    ELLIPSIS,
    EOF,
    IDENT,
    KEYWORD,
    LBRACE,
    NUMBER,
    OP,
    PERIOD,
    STRING,
)


def types(src):
    return [t.type for t in tokenize(src)]


def values(src):
    return [t.value for t in tokenize(src)][:-1]  # drop EOF


def test_empty_source_is_just_eof():
    assert types("") == [EOF]


def test_comments_skipped():
    assert values("# a comment\n42 # trailing\n") == [42]


def test_integers_and_floats():
    assert values("42 3.14 1e3 2.5e-2 0") == [42, 3.14, 1000.0, 0.025, 0]
    assert isinstance(values("42")[0], int)
    assert isinstance(values("42.0")[0], float)


def test_trailing_period_not_part_of_number():
    toks = tokenize("with default 1000.")
    assert toks[-3].value == 1000
    assert toks[-2].type == PERIOD


def test_string_literals_with_escapes():
    assert values('"hello" "a\\"b" "tab\\there"') == ["hello", 'a"b', "tab\there"]


def test_unterminated_string():
    with pytest.raises(LexError, match="unterminated"):
        tokenize('"abc')
    with pytest.raises(LexError, match="unterminated"):
        tokenize('"abc\ndef"')


def test_keywords_case_insensitive():
    toks = tokenize("For REPETITIONS Task SENDS")
    assert all(t.type == KEYWORD for t in toks[:-1])
    assert [t.value for t in toks[:-1]] == ["for", "repetitions", "task", "sends"]


def test_identifiers_preserved():
    toks = tokenize("msgsize num_tasks MyVar")
    assert [t.type for t in toks[:-1]] == [IDENT, IDENT, IDENT]
    assert toks[2].value == "MyVar"


def test_operators():
    assert values("+ - * / ** <= >= <> < > =") == [
        "+", "-", "*", "/", "**", "<=", ">=", "<>", "<", ">", "=",
    ]


def test_ellipsis_vs_period():
    toks = tokenize("{1, ..., 8}.")
    typs = [t.type for t in toks]
    assert ELLIPSIS in typs
    assert typs[-2] == PERIOD


def test_punctuation():
    assert types("{ } ( ) ,")[:-1] == [LBRACE, "RBRACE", "LPAREN", "RPAREN", COMMA]


def test_line_and_column_tracking():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].column) == (1, 1)
    assert (toks[1].line, toks[1].column) == (2, 3)


def test_unexpected_character():
    with pytest.raises(LexError, match="unexpected character"):
        tokenize("task 0 sends @")


@given(st.integers(min_value=0, max_value=10**12))
@settings(max_examples=100)
def test_integer_roundtrip(n):
    assert values(str(n)) == [n]


@given(st.floats(min_value=0.001, max_value=1e9, allow_nan=False, allow_infinity=False))
@settings(max_examples=100)
def test_float_roundtrip(x):
    got = values(repr(x))
    assert got[0] == pytest.approx(x)
