"""Static semantic checks."""

import pytest

from repro.conceptual.errors import SemanticError
from repro.conceptual.parser import parse
from repro.conceptual.semantics import check


def ok(src):
    check(parse(src))


def bad(src, msg):
    with pytest.raises(SemanticError, match=msg):
        check(parse(src))


def test_param_usage_ok():
    ok('n is "N" and comes from "--n" with default 4. task 0 sends a n byte message to task 1')


def test_undefined_variable():
    bad("task 0 sends a siz byte message to task 1", "undefined variable")


def test_loop_var_scoped_to_body():
    ok("for each i in {1, ..., 3} { task 0 computes for i seconds }")
    bad(
        "for each i in {1, ..., 3} { all tasks synchronize } then task 0 computes for i seconds",
        "undefined variable",
    )


def test_task_binding_visible_in_target():
    ok("all tasks t sends a 8 byte message to task (t+1) mod num_tasks")
    bad("all tasks sends a 8 byte message to task (t+1) mod num_tasks", "undefined variable")


def test_such_that_binding():
    ok("tasks t such that t>0 sends a 8 byte message to task 0")
    bad("tasks t such that q>0 sends a 8 byte message to task 0", "undefined variable")


def test_let_bindings_sequential():
    ok("let x be 2 and y be x+1 while { task 0 computes for y seconds }")
    bad("let x be y+1 and y be 2 while { all tasks synchronize }", "undefined variable")


def test_duplicate_params():
    bad(
        'n is "N" and comes from "--n" with default 1. '
        'n is "N again" and comes from "--n2" with default 2. '
        "all tasks synchronize",
        "duplicate parameter",
    )


def test_unknown_function():
    bad("task 0 computes for warp(3) seconds", "unknown function")


def test_function_arity():
    bad("task 0 computes for abs(1, 2, 3) seconds", "arguments")
    bad("task 0 computes for random_task(1) seconds", "2 arguments")


def test_multicast_needs_single_root():
    ok("task 0 multicasts a 4 byte message to all other tasks")
    bad("all tasks multicasts a 4 byte message to all other tasks", "single root")


def test_multicast_target_restricted():
    bad("task 0 multicasts a 4 byte message to task 1", "'all tasks' or 'all other tasks'")


def test_reduce_needs_all_tasks():
    ok("all tasks reduce an 8 byte value to all tasks")
    ok("all tasks reduce an 8 byte value to task 0")
    bad("task 0 reduces an 8 byte value to all tasks", "all tasks")
    bad("all tasks reduce an 8 byte value to tasks t such that t>0", "task <expr>")


def test_synchronize_needs_all_tasks():
    ok("all tasks synchronize")
    bad("task 0 synchronizes", "all tasks")


def test_all_other_tasks_cannot_be_subject():
    bad("all other tasks compute for 1 second", "cannot be a")


def test_send_target_cannot_rebind():
    bad("all tasks sends a 8 byte message to all tasks q", "binding")


def test_num_tasks_always_defined():
    ok("if num_tasks > 2 then { all tasks synchronize }")


def test_assert_exprs_checked():
    bad('Assert that "x" with unknown_thing > 2. all tasks synchronize', "undefined variable")


def test_check_returns_program():
    p = parse("all tasks synchronize")
    assert check(p) is p
