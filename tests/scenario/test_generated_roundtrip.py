"""Generator property tests: every emitted spec survives the real
parser and round-trips through TOML bit-identically."""

import tomllib

import pytest

from repro.generate import generate_mapping, generate_scenario
from repro.registry import RegistryError, available_generators, build_generator
from repro.scenario import parse_scenario, to_toml

GENERATORS = ("random-mix", "diurnal", "hotspot-blend")


def test_roster_matches_the_registry():
    assert set(GENERATORS) == set(available_generators())


@pytest.mark.parametrize("generator", [
    "random-mix",
    {"type": "random-mix", "jobs": 5, "traffic": 2, "faults": 3},
    {"type": "random-mix", "fabric": "fattree", "faults": 2},
    {"type": "random-mix", "fabric": "torus", "faults": 2},
    {"type": "diurnal", "arrivals": 40},
    "hotspot-blend",
    {"type": "hotspot-blend", "injectors": 5},
])
@pytest.mark.parametrize("seed", range(0, 40, 7))
def test_generated_specs_round_trip_bit_identically(generator, seed):
    spec = generate_scenario(generator, seed)
    text = to_toml(spec)
    again = parse_scenario(tomllib.loads(text), name=spec.name)
    assert again == spec
    assert to_toml(again) == text


def test_generation_is_deterministic_per_seed():
    a = generate_mapping({"type": "random-mix", "faults": 2}, 13)
    b = generate_mapping({"type": "random-mix", "faults": 2}, 13)
    assert a == b
    assert a != generate_mapping({"type": "random-mix", "faults": 2}, 14)


def test_diurnal_emits_thousands_of_arrivals_that_still_parse():
    spec = generate_scenario("diurnal", 3)
    assert len(spec.traffic) == 2000
    arrivals = [t.arrival for t in spec.traffic]
    assert all(0.0 <= t <= spec.horizon for t in arrivals)
    assert len(set(arrivals)) > 1900  # a process, not a pile-up
    text = to_toml(spec)
    assert to_toml(parse_scenario(tomllib.loads(text), name=spec.name)) == text


def test_first_job_anchors_the_timeline():
    for seed in range(5):
        spec = generate_scenario("random-mix", seed)
        assert spec.jobs[0].arrival == 0.0
        assert all(j.arrival >= 0.0 for j in spec.jobs)


def test_sprinkled_faults_are_always_valid_for_the_topology():
    """Down-kind faults demand adaptive routing and linked router pairs;
    the generator must never emit a spec the parser (or the fault
    plane) rejects."""
    from repro.scenario.runner import build_manager

    seen_faults = 0
    for seed in range(12):
        spec = generate_scenario({"type": "random-mix", "faults": 3}, seed)
        seen_faults += len(spec.faults)
        assert spec.routing == "adp"
        # The fault plane's range/link checks run at session build.
        build_manager(spec).session().build()
    assert seen_faults == 36


def test_fabric_param_emits_explicit_topology_tables():
    """random-mix can retarget fat-tree/torus: an explicit [topology]
    table, fabric-valid routing/placement, storage-slow-only faults
    (neither fabric satisfies the down-fault capability checks)."""
    from repro.scenario.runner import build_manager

    for fabric, routing in (("fattree", "adaptive"), ("torus", "dor")):
        spec = generate_scenario(
            {"type": "random-mix", "fabric": fabric, "faults": 3}, 7)
        assert spec.name == f"random-mix-{fabric}-7"
        assert spec.topology["type"] == fabric
        assert spec.routing == routing
        assert all(f.kind == "storage-slow" for f in spec.faults)
        build_manager(spec).session().build()


def test_default_fabric_output_is_unchanged():
    """fabric="dragonfly" (the default) must stay byte-identical to the
    pre-fabric generator output: golden seeds keep their meaning."""
    explicit = generate_mapping(
        {"type": "random-mix", "fabric": "dragonfly"}, 13)
    default = generate_mapping("random-mix", 13)
    assert explicit == default
    assert "topology" not in default
    assert default["name"] == "random-mix-13"


def test_unknown_generator_and_params_fail_loudly():
    with pytest.raises(RegistryError, match="unknown generator"):
        build_generator("tornado", 0)
    with pytest.raises(RegistryError, match="jobs"):
        build_generator({"type": "random-mix", "jobs": 0}, 0)
    with pytest.raises(RegistryError, match="wibble"):
        build_generator({"type": "diurnal", "wibble": 3}, 0)
    with pytest.raises(RegistryError, match="fabric"):
        build_generator({"type": "random-mix", "fabric": "hypercube"}, 0)
