"""Scenario runner: dynamic arrivals, interference, node reuse, reports."""

import pytest

from repro.network.dragonfly import Dragonfly1D
from repro.scenario import parse_scenario, render_scenario_report, run_scenario
from repro.union.manager import Job, WorkloadManager
from repro.workloads.uniform_random import uniform_random


def _arrival_spec(traffic_interval: float) -> dict:
    """Same scenario twice: only the background-traffic intensity differs.

    The background injector never finishes in either run and every seed
    matches, so placements (including the arriving job's draw against
    the residual free-node set) are identical -- any latency difference
    for the arriving job is interference, not placement luck.
    """
    return {
        "name": "arrival-interference",
        "topology": {"network": "1d", "scale": "mini"},
        "placement": "rn",
        "routing": "min",
        "seed": 5,
        "horizon": 0.03,
        "jobs": [
            {"name": "late-nn", "app": "nn", "arrival": 0.002},
        ],
        "traffic": [
            {"name": "bg", "pattern": "hotspot", "nranks": 32,
             "msg_bytes": 65536, "interval_s": traffic_interval, "hot_ranks": 2},
        ],
    }


def test_mid_simulation_arrival_sees_a_loaded_fabric():
    quiet = run_scenario(parse_scenario(_arrival_spec(traffic_interval=1.0)))
    loaded = run_scenario(parse_scenario(_arrival_spec(traffic_interval=0.0001)))

    # Identical placements: the control is exact.
    q_app, l_app = quiet.outcome.app("late-nn"), loaded.outcome.app("late-nn")
    assert q_app.nodes == l_app.nodes

    # The quiet run's injector sent nothing (interval > horizon): the
    # arriving job effectively ran solo.
    assert quiet.job("bg").messages == 0
    assert loaded.job("bg").messages > 0

    # Both runs completed the measured job...
    assert q_app.result.finished and l_app.result.finished
    # ...and the loaded fabric strictly inflates its latency.
    assert l_app.result.avg_latency() > q_app.result.avg_latency()
    assert loaded.job("late-nn").max_latency > quiet.job("late-nn").max_latency


def test_arrival_after_horizon_is_reported_not_run():
    res = run_scenario(parse_scenario({
        "name": "too-late",
        "horizon": 0.01,
        "placement": "rn",
        "jobs": [
            {"app": "nn"},
            {"name": "ghost", "app": "milc", "arrival": 5.0},
        ],
    }))
    ghost = res.job("ghost")
    assert not ghost.started and not ghost.finished
    assert "beyond the end" in ghost.skip_reason
    assert res.job("nn").finished
    report = render_scenario_report(res)
    assert "skipped" in report and "beyond the end" in report


def test_arrival_placement_failure_is_reported_not_fatal():
    # 'ur' with iters=0 never finishes, so it holds 140 of the mini 1D
    # system's 144 nodes for the whole run; the 16-rank arrival cannot
    # be placed and must be reported, while the rest of the run survives.
    res = run_scenario(parse_scenario({
        "name": "machine-full",
        "horizon": 0.005,
        "placement": "rn",
        "jobs": [
            {"name": "hog", "app": "ur", "nranks": 140,
             "params": {"interval_s": 0.001}},
            {"name": "crowded-out", "app": "nn", "arrival": 0.001},
        ],
    }))
    out = res.job("crowded-out")
    assert not out.started
    assert "placement failed at arrival" in out.skip_reason
    assert res.job("hog").started


def test_finished_jobs_return_their_nodes_to_the_pool():
    # Two 100-rank jobs on a 144-node system only fit if the second
    # (arriving after the first finished) reuses the first one's nodes.
    res = run_scenario(parse_scenario({
        "name": "reuse",
        "horizon": 0.05,
        "placement": "rn",
        "seed": 2,
        "jobs": [
            {"name": "first", "app": "ur", "nranks": 100,
             "params": {"iters": 2, "interval_s": 0.0001}},
            {"name": "second", "app": "ur", "nranks": 100, "arrival": 0.02,
             "params": {"iters": 2, "interval_s": 0.0001}},
        ],
    }))
    first, second = res.job("first"), res.job("second")
    assert first.finished
    assert second.started and second.finished
    a, b = res.outcome.app("first"), res.outcome.app("second")
    assert set(a.nodes) & set(b.nodes), "second job should reuse freed nodes"


def test_per_job_routing_override_applies_to_arrivals():
    res = run_scenario(parse_scenario({
        "name": "override",
        "horizon": 0.02,
        "placement": "rn",
        "routing": "min",
        "jobs": [
            {"app": "nn"},
            {"name": "late", "app": "milc", "arrival": 0.001, "routing": "adp"},
        ],
    }))
    fabric = res.outcome.fabric
    late_id = res.outcome.app("late").app_id
    assert fabric.routing_for(late_id).name == "adp"
    assert fabric.routing_for(res.outcome.app("nn").app_id).name == "min"


def test_nranks_override_mismatching_grid_dims_is_actionable():
    from repro.scenario import ScenarioError, build_manager

    spec = parse_scenario({
        "name": "bad-grid",
        "jobs": [{"app": "nn", "nranks": 32}],  # catalog dims (4,2,2) = 16
    })
    with pytest.raises(ScenarioError, match="override params.dims"):
        build_manager(spec)
    # Overriding dims alongside nranks is accepted.
    spec = parse_scenario({
        "name": "good-grid",
        "horizon": 0.02,
        "jobs": [{"app": "nn", "nranks": 32,
                  "params": {"dims": [4, 4, 2], "iters": 2}}],
    })
    assert run_scenario(spec).job("nn").finished


def test_rg_arrival_footprint_blocks_co_location():
    """An RG job owns its whole groups; a later arrival must not land on
    the unused tail nodes of those groups."""
    res = run_scenario(parse_scenario({
        "name": "rg-isolation",
        "horizon": 0.05,
        "placement": "rg",
        "seed": 3,
        "jobs": [
            # 27 ranks claim 2 whole 16-node groups (5 tail nodes unused).
            {"app": "nekbone"},
            {"name": "late", "app": "nn", "arrival": 0.001, "placement": "rn"},
        ],
    }))
    rg_app, late = res.outcome.app("nekbone"), res.outcome.app("late")
    assert late.result.finished
    assert not (rg_app.groups & late.groups), (
        "arriving job was co-located inside the RG job's groups"
    )


def test_two_injectors_of_one_pattern_are_independent():
    """Same-pattern injectors must not emit byte-identical streams."""
    from repro.scenario import build_manager

    spec = parse_scenario({
        "name": "two-bg",
        "jobs": [{"app": "nn"}],
        "traffic": [
            {"name": "bg1", "pattern": "uniform", "nranks": 8},
            {"name": "bg2", "pattern": "uniform", "nranks": 8},
        ],
    })
    bg1, bg2 = build_manager(spec).jobs[1:]
    assert bg1.params["seed"] != bg2.params["seed"]


def test_hotspot_stays_inside_the_hot_set():
    from repro.mpi.engine import JobSpec, SimMPI
    from repro.network.fabric import NetworkFabric
    from repro.workloads.hotspot import hotspot

    topo = Dragonfly1D.mini()
    fabric = NetworkFabric(topo, routing="min")
    mpi = SimMPI(fabric)
    mpi.add_job(JobSpec("hs", 8, hotspot, list(range(8)),
                        {"hot_ranks": 2, "iters": 4, "interval_s": 1e-5}))
    mpi.run(until=0.01)
    (res,) = mpi.results()
    # Every message lands on a hot rank (0 or 1), none anywhere else.
    hot_recvd = sum(res.rank_stats[r].msgs_recvd for r in (0, 1))
    assert hot_recvd == 8 * 4
    assert all(res.rank_stats[r].msgs_recvd == 0 for r in range(2, 8))


def test_manager_static_path_unchanged_without_arrivals():
    """No arrivals/overrides -> the historical single-draw placement."""
    from repro.placement.policies import make_placement

    topo = Dragonfly1D.mini()
    mgr = WorkloadManager(topo, placement="rn", seed=11)
    mgr.add_job(Job("a", 8, program=uniform_random, params={"iters": 1}))
    mgr.add_job(Job("b", 8, program=uniform_random, params={"iters": 1}))
    outcome = mgr.run(until=0.02)
    expected = make_placement("rn", topo, [8, 8], 11)
    assert outcome.app("a").nodes == expected[0]
    assert outcome.app("b").nodes == expected[1]


def test_json_dict_is_serializable():
    import json

    res = run_scenario(parse_scenario({
        "name": "tiny",
        "horizon": 0.005,
        "jobs": [{"app": "nn", "params": {"iters": 2}}],
        "traffic": [{"nranks": 4, "interval_s": 0.001}],
    }))
    blob = json.dumps(res.to_json_dict())
    assert "tiny" in blob and "outcome" not in blob


def test_source_job_builds_and_runs(tmp_path):
    src = tmp_path / "sync.ncptl"
    src.write_text(
        "for 3 repetitions { all tasks compute for 50 microseconds "
        "then all tasks reduce a 4 kilobyte value to all tasks }"
    )
    spec = parse_scenario(
        {"name": "dsl", "horizon": 0.05, "jobs": [
            {"name": "sync", "source": "sync.ncptl", "nranks": 8},
        ]},
        base_dir=tmp_path,
    )
    res = run_scenario(spec)
    assert res.job("sync").finished
    assert res.job("sync").messages > 0


def test_source_job_missing_file_is_actionable(tmp_path):
    from repro.scenario import ScenarioError, build_manager

    spec = parse_scenario(
        {"name": "dsl", "jobs": [{"name": "x", "source": "nope.ncptl", "nranks": 2}]},
        base_dir=tmp_path,
    )
    with pytest.raises(ScenarioError, match="source file not found"):
        build_manager(spec)
