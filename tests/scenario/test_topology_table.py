"""Parameterized [topology] tables: sugar equivalence, validation, e2e.

The legacy ``network = "1d" / scale = "mini"`` sugar must keep parsing
bit-for-bit, the explicit ``type = "..."`` registry form must reach
every fabric, and the new fat-tree/torus scenarios must be
deterministic under a fixed seed.
"""

from pathlib import Path

import pytest

from repro.scenario import (
    ScenarioError,
    build_scenario_topology,
    load_scenario,
    parse_scenario,
    run_scenario,
)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "scenarios"

BASE = {
    "horizon": 0.004,
    "seed": 5,
    "jobs": [{"app": "nn", "params": {"iters": 2}}],
}


def _spec(**overrides):
    data = dict(BASE)
    data.update(overrides)
    return parse_scenario(data, name="t")


# -- sugar vs explicit -------------------------------------------------------

def test_legacy_sugar_and_explicit_form_parse_identically():
    sugar = _spec(topology={"network": "1d", "scale": "mini"})
    explicit = _spec(topology={"type": "dragonfly1d", "scale": "mini"})
    assert sugar.topology is None  # sugar keeps its historical shape
    assert explicit.topology == {"type": "dragonfly1d", "scale": "mini"}
    assert (sugar.routing, sugar.placement) == (explicit.routing, explicit.placement)
    assert sugar.scale == explicit.scale == "mini"
    # Same wiring: identical topologies and identical simulation results.
    assert (build_scenario_topology(sugar).describe()
            == build_scenario_topology(explicit).describe())
    r1, r2 = run_scenario(sugar), run_scenario(explicit)
    assert r1.jobs == r2.jobs
    assert r1.events == r2.events
    assert r1.link_summary == r2.link_summary


def test_legacy_sugar_round_trips_unchanged():
    sugar = _spec(topology={"network": "2d", "scale": "mini"})
    assert sugar.to_dict()["topology"] == {"network": "2d", "scale": "mini"}
    again = parse_scenario(sugar.to_dict(), name="t")
    assert again == sugar


def test_explicit_form_round_trips():
    spec = _spec(topology={"type": "torus", "dims": [4, 4, 2], "nodes_per_router": 2},
                 placement="rn", routing="dor")
    assert spec.to_dict()["topology"] == {
        "type": "torus", "scale": "mini", "dims": [4, 4, 2], "nodes_per_router": 2,
    }
    assert parse_scenario(spec.to_dict(), name="t") == spec


def test_explicit_params_overlay_the_scale_preset():
    spec = _spec(topology={"type": "dragonfly1d", "n_groups": 4})
    topo = build_scenario_topology(spec)
    assert topo.n_groups == 4 and topo.routers_per_group == 8


def test_topology_defaults_come_from_the_registry():
    spec = _spec(topology={"type": "fattree"})
    assert (spec.routing, spec.placement) == ("dmodk", "rn")
    spec = _spec(topology={"type": "torus"}, placement="rr")
    assert spec.routing == "dor"


# -- validation --------------------------------------------------------------

@pytest.mark.parametrize("mutate,match", [
    (dict(topology={"network": "1d", "type": "torus"}), "set exactly one of"),
    (dict(topology={"type": "mobius"}), "unknown topology 'mobius'"),
    (dict(topology={"type": "fattree", "kk": 8}), "unknown parameter 'kk'"),
    (dict(topology={"type": "fattree", "k": "wide"}), "topology.k: expected an integer"),
    (dict(topology={"type": "torus", "scale": "huge"}), "'huge' is not one of"),
    (dict(topology={"type": "torus"}, routing="adp"),
     r"routing 'adp' is not available on topology 'torus'; choose from \['dor'\]"),
    (dict(topology={"type": "torus"}, routing="warp"), "'warp' is not one of"),
    (dict(topology={"type": "torus"}, placement="rg"),
     "placement 'rg' is not available on topology 'torus'"),
    (dict(topology={"type": "fattree"}, placement="rr"),
     "uniform node attachment"),
    (dict(topology={"type": "fattree"},
          jobs=[{"app": "nn", "routing": "min"}]),
     r"jobs\[0\].routing: routing 'min' is not available"),
    (dict(topology={"type": "torus"},
          traffic=[{"nranks": 4, "placement": "rg"}]),
     r"traffic\[0\].placement: placement 'rg' is not available"),
])
def test_topology_table_validation_errors(mutate, match):
    data = dict(BASE)
    data.update(mutate)
    with pytest.raises(ScenarioError, match=match):
        parse_scenario(data, name="t")


def test_model_level_constraints_become_scenario_errors():
    # k = 5 passes typed-param validation; the fat-tree model itself
    # rejects odd arities at build time.
    spec = _spec(topology={"type": "fattree", "k": 5})
    with pytest.raises(ScenarioError, match="topology: .*even"):
        build_scenario_topology(spec)


# -- end-to-end on the newly reachable fabrics -------------------------------

def test_fattree_scenario_e2e_deterministic():
    spec_path = EXAMPLES / "fattree_mix.toml"
    r1 = run_scenario(load_scenario(spec_path))
    r2 = run_scenario(load_scenario(spec_path))
    assert r1.to_json_dict() == r2.to_json_dict()
    assert r1.network == "fattree"
    assert r1.to_json_dict()["topology"] == {"type": "fattree", "scale": "mini", "k": 8}
    by_name = {j.name: j for j in r1.jobs}
    assert by_name["nn"].finished and by_name["alexnet"].finished
    assert by_name["late-milc"].started and by_name["late-milc"].arrival == 0.004
    # Fat-tree agg<->core links are class GLOBAL: the two-tier load split
    # must be visible, proving traffic really crossed the Clos core.
    assert r1.link_summary["global_total_bytes"] > 0


def test_torus_scenario_e2e_deterministic():
    spec_path = EXAMPLES / "torus_neighbors.toml"
    r1 = run_scenario(load_scenario(spec_path))
    r2 = run_scenario(load_scenario(spec_path))
    assert r1.to_json_dict() == r2.to_json_dict()
    assert r1.network == "torus"
    by_name = {j.name: j for j in r1.jobs}
    assert by_name["nn"].finished
    assert by_name["late-ur"].started
    # All torus links are LOCAL; a zero global fraction is correct.
    assert r1.link_summary["global_total_bytes"] == 0


def test_new_example_scenarios_pass_through_the_cli(capsys):
    from repro.cli import main

    assert main(["scenario", str(EXAMPLES / "fattree_mix.toml")]) == 0
    out = capsys.readouterr().out
    assert "fattree" in out and "rn-dmodk" in out
    assert main(["scenario", str(EXAMPLES / "torus_neighbors.toml")]) == 0
    out = capsys.readouterr().out
    assert "torus" in out and "rr-dor" in out
