"""Regression pin: per-injector seed salting in the scenario runner.

``build_manager`` seeds injector ``i`` with ``spec.seed + 1009 * i``;
without that stride two same-pattern injectors would replay identical
draw sequences and their "independent" background load would be one
stream counted twice.  These tests fail if the salt is removed."""

from repro.scenario import parse_scenario
from repro.scenario.runner import build_manager, run_scenario


def _spec(n_injectors, seed=5):
    return parse_scenario({
        "seed": seed,
        "horizon": 0.002,
        "jobs": [{"app": "nn", "params": {"iters": 1}}],
        "traffic": [
            {"name": f"bg{i}", "pattern": "uniform", "nranks": 8,
             "iters": 20, "interval_s": 2e-5, "msg_bytes": 4096}
            for i in range(n_injectors)
        ],
    }, name="salt")


def test_injector_seeds_follow_the_1009_stride():
    spec = _spec(4, seed=5)
    mgr = build_manager(spec)
    traffic = [j for j in mgr.jobs if j.background]
    seeds = [j.params["seed"] for j in traffic]
    assert seeds == [5 + 1009 * i for i in range(4)]
    assert len(set(seeds)) == len(seeds)  # pairwise distinct


def test_identical_injectors_produce_divergent_streams():
    """Two injectors configured identically must still behave
    differently at runtime -- the salted seed is all that separates
    them.  (With the salt removed, both checks below fail.)"""
    result = run_scenario(_spec(2))
    a, b = result.job("bg0"), result.job("bg1")
    assert a.messages == b.messages  # same configuration...
    assert a.avg_latency != b.avg_latency  # ...different draw sequences
    # And the divergence is exactly the salt: rebuilding injector 1's
    # stream with injector 0's seed reproduces injector 0's pattern.
    from repro.pdes.rng import SplitMix

    salted = [SplitMix(5 + 1009 * i + 7, rank + 1).next_u64()
              for i in range(2) for rank in range(8)]
    unsalted = [SplitMix(5 + 7, rank + 1).next_u64()
                for _ in range(2) for rank in range(8)]
    assert len(set(salted)) == 16      # all streams distinct
    assert len(set(unsalted)) == 8     # aliased without the stride
