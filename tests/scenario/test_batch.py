"""Batch runner: discovery, fan-out, error tolerance, summary."""

import json

import pytest

from repro.scenario import (
    ScenarioError,
    discover_specs,
    render_batch_summary,
    run_batch,
    run_spec_file,
)

TINY_A = """\
name = "tiny-a"
horizon = 0.005
placement = "rn"
[topology]
network = "1d"
[[jobs]]
app = "nn"
[jobs.params]
iters = 2
"""

TINY_B = """\
name = "tiny-b"
horizon = 0.005
placement = "rr"
[topology]
network = "1d"
[[jobs]]
app = "lammps"
[jobs.params]
iters = 2
[[traffic]]
nranks = 4
interval_s = 0.001
"""


@pytest.fixture()
def spec_dir(tmp_path):
    (tmp_path / "a.toml").write_text(TINY_A)
    (tmp_path / "b.toml").write_text(TINY_B)
    (tmp_path / "notes.txt").write_text("not a spec")
    return tmp_path


def test_discovery_is_sorted_and_filtered(spec_dir):
    assert [p.name for p in discover_specs(spec_dir)] == ["a.toml", "b.toml"]
    with pytest.raises(ScenarioError, match="not a directory"):
        discover_specs(spec_dir / "nope")


def test_batch_over_two_specs(spec_dir):
    batch = run_batch(spec_dir)
    assert [r["scenario"] for r in batch.results] == ["tiny-a", "tiny-b"]
    assert not batch.failures
    for r in batch.results:
        apps = [j for j in r["jobs"] if not j["background"]]
        assert all(j["finished"] for j in apps)
    summary = render_batch_summary(batch)
    assert "tiny-a" in summary and "tiny-b" in summary
    assert "2 scenario(s), 0 failure(s)" in summary


def test_batch_parallel_workers_match_sequential(spec_dir):
    seq = run_batch(spec_dir, workers=1)
    par = run_batch(spec_dir, workers=2)
    assert seq.results == par.results  # same sims, same order, same numbers


def test_broken_spec_becomes_error_row(spec_dir):
    (spec_dir / "c.toml").write_text("[[jobs]]\nbanana = 1\n")
    batch = run_batch(spec_dir)
    assert len(batch.results) == 3 and len(batch.failures) == 1
    (failure,) = batch.failures
    assert failure["scenario"] == "c"
    assert "banana" in failure["error"]
    assert "ERROR" in render_batch_summary(batch)


def test_run_spec_file_catches_crashes(tmp_path):
    p = tmp_path / "x.toml"
    p.write_text("garbage = [")
    rec = run_spec_file(p)
    assert "error" in rec and rec["path"] == str(p)


def test_write_json_report(spec_dir, tmp_path):
    batch = run_batch(spec_dir)
    out = tmp_path / "report.json"
    batch.write_json(out)
    data = json.loads(out.read_text())
    assert {r["scenario"] for r in data["scenarios"]} == {"tiny-a", "tiny-b"}


def test_empty_directory_is_an_error(tmp_path):
    with pytest.raises(ScenarioError, match="no .toml/.json"):
        run_batch(tmp_path)


# -- pool_map worker-crash semantics -----------------------------------------

def _double_or_die(n):
    """Pool worker for the crash tests: negative items kill the process."""
    if n < 0:
        import os
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    return n * 2


def test_pool_map_turns_a_dead_worker_into_a_per_item_result():
    from repro.scenario import pool_map

    out = pool_map(_double_or_die, [1, -1, 2, 3], workers=2,
                   on_crash=lambda item: {"crashed": item})
    # Innocent bystanders whose futures the broken pool poisoned are
    # retried and succeed; only the killer maps through on_crash --
    # and results stay in input order.
    assert out == [2, {"crashed": -1}, 4, 6]


def test_pool_map_without_on_crash_raises_broken_pool():
    from concurrent.futures.process import BrokenProcessPool

    from repro.scenario import pool_map

    with pytest.raises(BrokenProcessPool, match="pass on_crash="):
        pool_map(_double_or_die, [1, -1, 2], workers=2)


def test_pool_map_single_worker_stays_in_process():
    from repro.scenario import pool_map

    calls = []

    def tracked(n):
        calls.append(n)
        return n

    assert pool_map(tracked, [1, 2, 3], workers=1) == [1, 2, 3]
    assert calls == [1, 2, 3]  # in-process: closures are fine
