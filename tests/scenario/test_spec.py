"""Scenario spec parsing: round-trips and validation-error messages."""

import json

import pytest

from repro.scenario import ScenarioError, load_scenario, parse_scenario

GOOD = {
    "name": "demo",
    "topology": {"network": "1d", "scale": "mini"},
    "routing": "min",
    "placement": "rn",
    "seed": 9,
    "horizon": 0.02,
    "jobs": [
        {"app": "nn"},
        {"name": "late", "app": "milc", "arrival": 0.005,
         "routing": "adp", "placement": "rr", "params": {"iters": 4}},
    ],
    "traffic": [
        {"name": "bg", "pattern": "hotspot", "nranks": 16,
         "msg_bytes": 2048, "interval_s": 0.0005, "hot_ranks": 2},
    ],
}


def test_parse_good_spec():
    spec = parse_scenario(GOOD)
    assert spec.name == "demo"
    assert spec.routing == "min" and spec.placement == "rn"
    assert [j.name for j in spec.jobs] == ["nn", "late"]
    late = spec.jobs[1]
    assert late.arrival == 0.005
    assert late.routing == "adp" and late.placement == "rr"
    assert late.params == {"iters": 4}
    (bg,) = spec.traffic
    assert bg.pattern == "hotspot" and bg.hot_ranks == 2 and bg.iters == 0


def test_dict_round_trip():
    spec = parse_scenario(GOOD)
    again = parse_scenario(spec.to_dict())
    assert again.to_dict() == spec.to_dict()
    assert [j.to_dict() for j in again.jobs] == [j.to_dict() for j in spec.jobs]
    assert [t.to_dict() for t in again.traffic] == [t.to_dict() for t in spec.traffic]


def test_defaults_fill_in():
    spec = parse_scenario({"jobs": [{"app": "nn"}]})
    assert spec.network == "1d" and spec.scale == "mini"
    assert spec.routing == "adp" and spec.placement == "rg"
    assert spec.horizon == pytest.approx(0.05)  # default_horizon("mini")
    assert spec.jobs[0].name == "nn"  # job name defaults to the app name
    assert spec.jobs[0].nranks is None  # resolved from the catalog at build time


def test_toml_file_round_trip(tmp_path):
    p = tmp_path / "demo.toml"
    p.write_text(
        'name = "from-toml"\n'
        'placement = "rr"\n'
        "horizon = 0.01\n"
        "[topology]\n"
        'network = "2d"\n'
        "[[jobs]]\n"
        'app = "lammps"\n'
        "[[traffic]]\n"
        'pattern = "uniform"\n'
    )
    spec = load_scenario(p)
    assert spec.name == "from-toml"
    assert spec.network == "2d"
    assert spec.base_dir == tmp_path
    assert spec.traffic[0].name == "uniform-0"


def test_json_file_loads(tmp_path):
    p = tmp_path / "demo.json"
    p.write_text(json.dumps(GOOD))
    spec = load_scenario(p)
    assert spec.name == "demo"


def test_round_trip_preserves_base_dir(tmp_path):
    # A loaded spec with a relative source must stay runnable after
    # to_dict() -> parse_scenario() (base_dir survives the round trip).
    p = tmp_path / "dsl.toml"
    p.write_text('[[jobs]]\nname = "x"\nsource = "prog.ncptl"\nnranks = 2\n')
    spec = load_scenario(p)
    again = parse_scenario(spec.to_dict())
    assert again.base_dir == tmp_path
    assert again.to_dict() == spec.to_dict()


@pytest.mark.parametrize(
    "mutate, match",
    [
        (lambda d: d.update(jobs=[]), "at least one"),
        (lambda d: d.update(jobs=[{"app": "nope"}]), "unknown application 'nope'"),
        (lambda d: d.update(jobs=[{"app": "nn", "nranks": 0}]), "nranks: must be >= 1"),
        (lambda d: d.update(jobs=[{"app": "nn", "banana": 1}]), "unknown key 'banana'"),
        (lambda d: d.update(jobs=[{"app": "nn", "source": "x.ncptl"}]), "exactly one"),
        (lambda d: d.update(jobs=[{"source": "x.ncptl"}]), "required for 'source' jobs"),
        (lambda d: d.update(jobs=[{"app": "nn", "arrival": -1}]), "arrival: must be >= 0"),
        (lambda d: d.update(jobs=[{"app": "nn"}, {"app": "nn"}]), "duplicate"),
        (lambda d: d.update(routing="turbo"), "'turbo' is not one of"),
        (lambda d: d.update(placement="best"), "'best' is not one of"),
        (lambda d: d.update(topology={"network": "3d"}), "'3d' is not one of"),
        (lambda d: d.update(topology={"network": "1d", "size": 4}), "unknown key 'size'"),
        (lambda d: d.update(traffic=[{"pattern": "storm"}]), "'storm' is not one of"),
        (lambda d: d.update(traffic=[{"hot_ranks": 0}]), "hot_ranks: must be >= 1"),
        (lambda d: d.update(traffic=[{"interval_s": 0.0}]),
         "needs interval_s > 0"),  # endless injector at interval 0 would hang
        (lambda d: d.update(traffic=[{"nranks": 1}]),
         "nranks: must be >= 2"),  # a lone injector rank has no peer
        (lambda d: d.update(traffic=[{"name": "x"}, {"name": "x"}]),
         r"traffic\[1\].name: duplicate"),
        (lambda d: d.update(horizon=0), "must be > 0"),
        (lambda d: d.update(seed="one"), "expected an integer"),
        (lambda d: d.update(seed=-1), "seed: must be >= 0"),  # RNG wants uint64
    ],
)
def test_validation_errors_name_the_key(mutate, match):
    data = {"jobs": [{"app": "nn"}]}
    mutate(data)
    with pytest.raises(ScenarioError, match=match):
        parse_scenario(data)


def test_zero_interval_burst_with_finite_iters_is_allowed():
    spec = parse_scenario({"jobs": [{"app": "nn"}],
                           "traffic": [{"interval_s": 0.0, "iters": 5}]})
    assert spec.traffic[0].iters == 5


def test_error_paths_include_entry_index():
    with pytest.raises(ScenarioError, match=r"jobs\[1\]"):
        parse_scenario({"jobs": [{"app": "nn"}, {"app": "milc", "nranks": -3}]})
    with pytest.raises(ScenarioError, match=r"traffic\[0\]"):
        parse_scenario({"jobs": [{"app": "nn"}], "traffic": [{"nranks": 0}]})


def test_load_errors(tmp_path):
    with pytest.raises(ScenarioError, match="not found"):
        load_scenario(tmp_path / "missing.toml")
    p = tmp_path / "spec.yaml"
    p.write_text("jobs: []")
    with pytest.raises(ScenarioError, match="unsupported spec format"):
        load_scenario(p)
    p = tmp_path / "broken.toml"
    p.write_text("name = [unclosed")
    with pytest.raises(ScenarioError, match="not valid TOML"):
        load_scenario(p)
    p = tmp_path / "broken.json"
    p.write_text("{")
    with pytest.raises(ScenarioError, match="not valid JSON"):
        load_scenario(p)
    p = tmp_path / "bad.toml"
    p.write_text("[[jobs]]\nbanana = 1\n")
    with pytest.raises(ScenarioError, match=r"bad\.toml.*banana"):
        load_scenario(p)


# -- [engine] table ----------------------------------------------------------

def test_engine_table_parses_and_round_trips():
    data = dict(GOOD)
    data["engine"] = {"type": "conservative", "partitions": 3}
    spec = parse_scenario(data)
    assert spec.engine == {"type": "conservative", "partitions": 3}
    again = parse_scenario(spec.to_dict())
    assert again.to_dict() == spec.to_dict()
    assert again.engine == spec.engine


def test_engine_table_canonicalizes_aliases_and_keeps_sparse():
    data = dict(GOOD)
    data["engine"] = {"type": "yawns"}
    spec = parse_scenario(data)
    # Canonical name, and only the explicitly given parameters (the
    # registry default for partitions fills in at build time).
    assert spec.engine == {"type": "conservative"}


def test_omitted_engine_table_stays_none():
    spec = parse_scenario(GOOD)
    assert spec.engine is None
    assert "engine" not in spec.to_dict()


@pytest.mark.parametrize("table, match", [
    ({"partitions": 2}, "engine.type"),
    ({"type": "warp9"}, "unknown engine"),
    ({"type": "conservative", "partitions": 0}, "must be >= 1"),
    ({"type": "conservative", "partitions": "many"}, "expected an integer"),
    ({"type": "conservative", "lookahead": "tight"}, "expected a number"),
    ({"type": "sequential", "partitions": 2}, "unknown parameter"),
    ({"type": "conservative", "window": 5}, "unknown parameter"),
])
def test_engine_table_validation_errors(table, match):
    data = dict(GOOD)
    data["engine"] = table
    with pytest.raises(ScenarioError, match=match):
        parse_scenario(data)


def test_engine_lookahead_ceiling_is_checked_at_build_time():
    from repro.registry import RegistryError
    from repro.scenario import run_scenario

    data = dict(GOOD)
    data["engine"] = {"type": "conservative", "partitions": 3, "lookahead": 1.0}
    spec = parse_scenario(data)  # parses: the ceiling needs the topology
    with pytest.raises(RegistryError, match="exceeds the minimum cross-partition"):
        run_scenario(spec)


def test_env_table_parses_and_round_trips():
    data = dict(GOOD)
    data["env"] = {"policy": {"type": "admission", "min_free": 4},
                   "window": 0.002, "reward": "comm_time"}
    spec = parse_scenario(data)
    assert spec.env is not None
    assert spec.env.policy == {"type": "admission", "min_free": 4}
    assert spec.env.window == pytest.approx(0.002)
    assert spec.env.reward == "comm_time"
    again = parse_scenario(spec.to_dict())
    assert again.env == spec.env


def test_env_table_defaults_and_alias_canonicalization():
    data = dict(GOOD)
    data["env"] = {"policy": "la"}  # alias -> canonical name
    spec = parse_scenario(data)
    assert spec.env.policy == {"type": "load-aware"}
    assert spec.env.window is None
    assert spec.env.reward == "avg_latency"
    # Sparse round trip: only the non-default key survives.
    assert spec.to_dict()["env"] == {"policy": {"type": "load-aware"}}


def test_omitted_env_table_stays_none():
    spec = parse_scenario(GOOD)
    assert spec.env is None
    assert "env" not in spec.to_dict()


@pytest.mark.parametrize("table, match", [
    ({"policy": "warp9"}, "unknown policy"),
    ({"policy": {"min_free": 1}}, "env.policy.type"),
    ({"policy": {"type": "admission", "bogus": 1}}, "unknown parameter"),
    ({"policy": {"type": "admission", "min_free": -1}}, "must be >= 1|>= 0"),
    ({"reward": "profit"}, "not one of"),
    ({"window": 0}, "must be > 0"),
    ({"window": 1.0}, "exceeds the horizon"),
    ({"cadence": 3}, "unknown key"),
])
def test_env_table_validation_errors(table, match):
    data = dict(GOOD)
    data["env"] = table
    with pytest.raises(ScenarioError, match=match):
        parse_scenario(data)
