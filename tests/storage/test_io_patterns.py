"""I/O workload patterns co-scheduled with communication workloads."""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.storage import StorageConfig, StorageSystem
from repro.workloads.io_patterns import checkpointer, io_benchmark, ml_reader
from repro.workloads.nearest_neighbor import nearest_neighbor


@pytest.fixture()
def sim():
    topo = Dragonfly1D.mini()
    fabric = NetworkFabric(topo, NetworkConfig(seed=2), routing="adp")
    mpi = SimMPI(fabric)
    servers = [topo.n_nodes - 1 - i for i in range(2)]
    storage = StorageSystem(mpi, servers, StorageConfig())
    return topo, fabric, mpi, storage


def test_checkpointer_writes_expected_volume(sim):
    topo, _, mpi, storage = sim
    n, iters, stripe = 8, 3, 1 << 16
    mpi.add_job(JobSpec(
        "ckpt", n, checkpointer, list(range(n)),
        {"storage": storage, "iters": iters, "stripe_bytes": stripe, "interval_s": 1e-4},
    ))
    mpi.run(until=10.0)
    assert mpi.results()[0].finished
    total = sum(s.bytes_written for s in storage.servers)
    assert total == n * iters * stripe
    # Round-robin striping touched both servers.
    assert all(s.bytes_written > 0 for s in storage.servers)


def test_ml_reader_reads_and_allreduces(sim):
    topo, _, mpi, storage = sim
    n, steps, files, fbytes = 8, 2, 4, 64 << 10
    mpi.add_job(JobSpec(
        "train", n, ml_reader, list(range(n)),
        {"storage": storage, "steps": steps, "files_per_step": files,
         "file_bytes": fbytes, "step_s": 1e-4, "gradient_bytes": 1 << 18},
    ))
    mpi.run(until=10.0)
    res = mpi.results()[0]
    assert res.finished
    total_read = sum(s.bytes_read for s in storage.servers)
    assert total_read == n * steps * files * fbytes
    assert res.event_counts()["MPI_Allreduce"] == n * steps


def test_io_benchmark_logs_both_phases(sim):
    topo, _, mpi, storage = sim
    n = 4
    mpi.add_job(JobSpec(
        "ior", n, io_benchmark, list(range(n)),
        {"storage": storage, "block_bytes": 1 << 18, "xfer_bytes": 1 << 16},
    ))
    mpi.run(until=10.0)
    res = mpi.results()[0]
    assert res.finished
    for s in res.rank_stats:
        labels = [k for k, _ in s.log_rows]
        assert labels == ["write_usecs", "read_usecs"]
        assert all(v > 0 for _, v in s.log_rows)
    srv_bytes = sum(s.bytes_written for s in storage.servers)
    assert srv_bytes == n * (1 << 18)


def test_io_and_mpi_jobs_coexist(sim):
    """A checkpointing job and a halo-exchange job on one network: both
    finish, and the storage stats only show the I/O app."""
    topo, fabric, mpi, storage = sim
    mpi.add_job(JobSpec(
        "ckpt", 4, checkpointer, [0, 1, 2, 3],
        {"storage": storage, "iters": 2, "stripe_bytes": 1 << 16, "interval_s": 1e-4},
    ))
    nn_nodes = list(range(8, 16))
    mpi.add_job(JobSpec(
        "nn", 8, nearest_neighbor, nn_nodes,
        {"dims": (2, 2, 2), "iters": 3, "msg_bytes": 8192},
    ))
    mpi.run(until=10.0)
    ckpt, nn = mpi.results()
    assert ckpt.finished and nn.finished
    assert storage.app_stats(0).ops == 8  # 4 ranks x 2 checkpoints
    assert storage.app_stats(1).ops == 0  # the NN job did no I/O


def test_checkpoint_burst_slows_under_shared_server():
    """Doubling the number of clients per server increases mean write
    latency (device contention), holding everything else fixed."""

    def mean_latency(n_ranks):
        topo = Dragonfly1D.mini()
        fabric = NetworkFabric(topo, NetworkConfig(seed=3), routing="min")
        mpi = SimMPI(fabric)
        storage = StorageSystem(
            mpi, [topo.n_nodes - 1], StorageConfig(write_bw=2e8, access_latency=0.0)
        )
        mpi.add_job(JobSpec(
            "ckpt", n_ranks, checkpointer, list(range(n_ranks)),
            {"storage": storage, "iters": 1, "stripe_bytes": 1 << 20, "interval_s": 0.0},
        ))
        mpi.run(until=30.0)
        assert mpi.results()[0].finished
        return storage.app_stats(0).mean_latency()

    assert mean_latency(8) > mean_latency(2) * 1.5
