"""Property-based invariants of the storage device model."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.storage import IORead, IOWrite, StorageConfig, StorageSystem

op_strategy = st.tuples(
    st.sampled_from(["read", "write"]),
    st.integers(0, 1 << 20),   # nbytes
    st.integers(0, 1),         # server index
)


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(op_strategy, min_size=1, max_size=12))
def test_device_conservation_laws(ops):
    """For any op sequence: per-server busy time equals the sum of the
    admitted ops' service times, byte totals match what was issued, and
    every op completes."""
    topo = Dragonfly1D.mini()
    fabric = NetworkFabric(topo, NetworkConfig(seed=1), routing="min")
    mpi = SimMPI(fabric)
    cfg = StorageConfig(write_bw=1e9, read_bw=2e9, access_latency=1e-5)
    storage = StorageSystem(mpi, [topo.n_nodes - 1, topo.n_nodes - 2], cfg)

    def program(ctx):
        reqs = []
        for kind, nbytes, server in ops:
            cls = IOWrite if kind == "write" else IORead
            req = yield cls(storage, server, nbytes)
            reqs.append(req)
        yield ctx.waitall(reqs)

    mpi.add_job(JobSpec("client", 1, program, [0]))
    mpi.run(until=120.0)
    assert mpi.results()[0].finished

    expected_busy = [0.0, 0.0]
    expected_rd = [0, 0]
    expected_wr = [0, 0]
    for kind, nbytes, server in ops:
        expected_busy[server] += cfg.service_time(kind, nbytes)
        (expected_wr if kind == "write" else expected_rd)[server] += nbytes
    for s in storage.servers:
        assert s.busy_time == pytest.approx(expected_busy[s.server_id])
        assert s.bytes_read == expected_rd[s.server_id]
        assert s.bytes_written == expected_wr[s.server_id]
        assert s.ops_served == sum(1 for _, _, srv in ops if srv == s.server_id)
        assert s.queue_time >= 0.0
    st_app = storage.app_stats(0)
    assert st_app.ops == len(ops)
    assert st_app.bytes_read == sum(expected_rd)
    assert st_app.bytes_written == sum(expected_wr)
    assert st_app.max_latency >= st_app.mean_latency() >= 0.0
    # Everything the fabric carried was delivered.
    assert fabric.in_flight() == 0
    assert fabric.messages_delivered == fabric.messages_sent


@settings(max_examples=15, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 1 << 18), min_size=2, max_size=6),
    n_clients=st.integers(2, 6),
)
def test_fifo_completion_order_single_server(sizes, n_clients):
    """A single device is a FIFO: requests that *arrive* earlier finish
    earlier, regardless of size."""
    topo = Dragonfly1D.mini()
    fabric = NetworkFabric(topo, NetworkConfig(seed=2), routing="min")
    mpi = SimMPI(fabric)
    cfg = StorageConfig(write_bw=1e8, access_latency=0.0)
    storage = StorageSystem(mpi, [topo.n_nodes - 1], cfg)
    admitted = []
    done = []

    from repro.storage.server import StorageServer

    orig_admit = StorageServer.admit

    def tracking_admit(self, txn, engine, now):
        admitted.append((now, txn))
        completion = orig_admit(self, txn, engine, now)
        done.append((completion, txn))
        return completion

    def program(ctx):
        for nbytes in sizes:
            req = yield IOWrite(storage, 0, nbytes)
            yield ctx.wait(req)

    mpi.add_job(JobSpec("clients", n_clients, program, list(range(n_clients))))
    StorageServer.admit = tracking_admit
    try:
        mpi.run(until=300.0)
    finally:
        StorageServer.admit = orig_admit
    assert mpi.results()[0].finished
    # Admission order == completion order (FIFO device).
    assert [id(t) for _, t in done] == [id(t) for _, t in admitted]
    # Completions never overlap: gaps >= each op's service time.
    times = [t for t, _ in done]
    assert all(b >= a for a, b in zip(times, times[1:]))
