"""Storage subsystem: servers, I/O ops, and network coupling."""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.mpi.types import Wait
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.storage import (
    IORead,
    IOWrite,
    StorageConfig,
    StorageSystem,
    read_file,
    write_file,
)


def make_sim(seed=1, routing="min"):
    topo = Dragonfly1D.mini()
    fabric = NetworkFabric(topo, NetworkConfig(seed=seed), routing=routing)
    mpi = SimMPI(fabric)
    return topo, fabric, mpi


# -- configuration -----------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError, match="bandwidths"):
        StorageConfig(write_bw=0)
    with pytest.raises(ValueError, match="access_latency"):
        StorageConfig(access_latency=-1e-6)
    with pytest.raises(ValueError, match="request_bytes"):
        StorageConfig(request_bytes=-1)


def test_service_time_uses_per_direction_bandwidth():
    cfg = StorageConfig(write_bw=1e9, read_bw=2e9, access_latency=1e-5)
    assert cfg.service_time("write", 10**9) == pytest.approx(1.0 + 1e-5)
    assert cfg.service_time("read", 10**9) == pytest.approx(0.5 + 1e-5)


def test_system_validates_nodes():
    _, _, mpi = make_sim()
    with pytest.raises(ValueError, match="at least one"):
        StorageSystem(mpi, [])
    with pytest.raises(ValueError, match="outside system"):
        StorageSystem(mpi, [10**6])


def test_double_registration_rejected():
    _, _, mpi = make_sim()
    StorageSystem(mpi, [0])
    with pytest.raises(ValueError, match="already registered"):
        StorageSystem(mpi, [1])


def test_op_validation():
    _, _, mpi = make_sim()
    storage = StorageSystem(mpi, [0])
    with pytest.raises(ValueError, match="write size"):
        IOWrite(storage, 0, -1)
    with pytest.raises(ValueError, match="read size"):
        IORead(storage, 0, -5)


# -- single-op behaviour ---------------------------------------------------------


def run_one_rank(mpi, program, node=0, until=10.0):
    mpi.add_job(JobSpec("app", 1, program, [node]))
    mpi.run(until=until)
    return mpi.results()[0]


def test_blocking_write_completes_and_counts():
    topo, fabric, mpi = make_sim()
    storage = StorageSystem(mpi, [topo.n_nodes - 1])

    def program(ctx):
        yield from write_file(ctx, storage, server=0, nbytes=1 << 20)

    res = run_one_rank(mpi, program)
    assert res.finished
    srv = storage.servers[0]
    assert srv.bytes_written == 1 << 20
    assert srv.bytes_read == 0
    assert srv.ops_served == 1
    st = storage.app_stats(0)
    assert st.ops == 1 and st.bytes_written == 1 << 20
    assert st.max_latency > 0


def test_blocking_read_returns_latency():
    topo, _, mpi = make_sim()
    storage = StorageSystem(mpi, [topo.n_nodes - 1])
    seen = {}

    def program(ctx):
        latency = yield from read_file(ctx, storage, server=0, nbytes=1 << 20)
        seen["latency"] = latency

    res = run_one_rank(mpi, program)
    assert res.finished
    assert seen["latency"] > 0
    assert storage.servers[0].bytes_read == 1 << 20


def test_write_latency_includes_device_service_time():
    """End-to-end write latency >= data transfer + device service."""
    topo, fabric, mpi = make_sim()
    cfg = StorageConfig(write_bw=1e9, access_latency=1e-3)
    storage = StorageSystem(mpi, [topo.n_nodes - 1], cfg)
    nbytes = 1 << 20

    def program(ctx):
        latency = yield from write_file(ctx, storage, server=0, nbytes=nbytes)

    run_one_rank(mpi, program)
    st = storage.app_stats(0)
    assert st.max_latency >= cfg.service_time("write", nbytes)


def test_read_ships_data_on_response_leg():
    """A read moves ~nbytes over the network server->client; a write
    moves them client->server.  Either way the fabric carries the data."""
    topo, fabric, mpi = make_sim()
    storage = StorageSystem(mpi, [topo.n_nodes - 1])
    nbytes = 1 << 20

    def program(ctx):
        yield from read_file(ctx, storage, server=0, nbytes=nbytes)

    run_one_rank(mpi, program)
    assert fabric.bytes_sent >= nbytes  # data leg + request envelope
    assert fabric.messages_delivered == fabric.messages_sent == 2


def test_device_serializes_concurrent_writes():
    """Two ranks writing to one server: the device is a FIFO, so total
    busy time equals the sum of both service times and completions are
    strictly ordered."""
    topo, _, mpi = make_sim()
    cfg = StorageConfig(write_bw=1e8, access_latency=0.0)  # 10 ms per MiB
    storage = StorageSystem(mpi, [topo.n_nodes - 1], cfg)
    nbytes = 1 << 20
    done = {}

    def program(ctx):
        yield from write_file(ctx, storage, server=0, nbytes=nbytes)
        done[ctx.rank] = ctx.now

    mpi.add_job(JobSpec("app", 2, program, [0, 1]))
    mpi.run(until=10.0)
    assert mpi.results()[0].finished
    srv = storage.servers[0]
    svc = cfg.service_time("write", nbytes)
    assert srv.busy_time == pytest.approx(2 * svc)
    assert abs(done[0] - done[1]) >= svc * 0.99  # second op waited for first
    assert srv.queue_time > 0


def test_nonblocking_io_overlaps_compute():
    """IOWrite then compute then Wait: the rank's comm/IO wait is less
    than the full device time because the write progressed during the
    compute block."""
    topo, _, mpi = make_sim()
    cfg = StorageConfig(write_bw=1e8, access_latency=0.0)
    storage = StorageSystem(mpi, [topo.n_nodes - 1], cfg)
    nbytes = 1 << 20
    svc = cfg.service_time("write", nbytes)

    def overlapped(ctx):
        req = yield IOWrite(storage, server=0, nbytes=nbytes)
        yield ctx.compute(svc)  # overlap device time with compute
        yield Wait(req)

    res = run_one_rank(mpi, overlapped)
    stats = res.rank_stats[0]
    assert stats.compute_time == pytest.approx(svc)
    # Wait time far below svc: device worked during the compute.
    assert stats.comm_time < svc * 0.5


def test_striped_writes_across_servers_parallelize():
    """One rank striping to two servers finishes faster than writing the
    same bytes to one server (devices work in parallel)."""
    total = 2 << 20
    cfg = StorageConfig(write_bw=1e8, access_latency=0.0)

    def run(n_servers):
        topo, _, mpi = make_sim()
        nodes = [topo.n_nodes - 1 - i for i in range(n_servers)]
        storage = StorageSystem(mpi, nodes, cfg)
        end = {}

        def program(ctx):
            reqs = []
            per = total // n_servers
            for s in range(n_servers):
                req = yield IOWrite(storage, server=s, nbytes=per)
                reqs.append(req)
            yield ctx.waitall(reqs)
            end["t"] = ctx.now

        run_one_rank(mpi, program)
        return end["t"]

    assert run(2) < run(1) * 0.75


def test_io_traffic_shares_network_with_mpi():
    """I/O bytes appear in the fabric's link-load accounting, tagged
    with the issuing application's id on the router counters."""
    topo, fabric, mpi = make_sim()
    storage = StorageSystem(mpi, [topo.n_nodes - 1])

    def program(ctx):
        yield from write_file(ctx, storage, server=0, nbytes=1 << 18)

    run_one_rank(mpi, program, node=0)
    total_link_bytes = sum(fabric.link_loads.summary().values())
    assert total_link_bytes > 0


def test_wrong_system_and_server_rejected():
    topo, _, mpi = make_sim()
    storage = StorageSystem(mpi, [topo.n_nodes - 1])

    class Fake:
        pass

    def bad_server(ctx):
        yield IOWrite(storage, server=7, nbytes=16)

    mpi.add_job(JobSpec("bad", 1, bad_server, [0]))
    with pytest.raises(ValueError, match="server 7 out of range"):
        mpi.run(until=1.0)


def test_utilization_bounded():
    topo, _, mpi = make_sim()
    cfg = StorageConfig(write_bw=1e9)
    storage = StorageSystem(mpi, [topo.n_nodes - 1], cfg)

    def program(ctx):
        for _ in range(4):
            yield from write_file(ctx, storage, server=0, nbytes=1 << 16)

    run_one_rank(mpi, program)
    srv = storage.servers[0]
    assert 0.0 < srv.utilization(mpi.engine.now) <= 1.0
    assert srv.utilization(0.0) == 0.0


def test_zero_byte_ops_still_roundtrip():
    topo, _, mpi = make_sim()
    storage = StorageSystem(mpi, [topo.n_nodes - 1])

    def program(ctx):
        yield from write_file(ctx, storage, server=0, nbytes=0)
        yield from read_file(ctx, storage, server=0, nbytes=0)

    res = run_one_rank(mpi, program)
    assert res.finished
    assert storage.app_stats(0).ops == 2


def test_many_clients_aggregate_stats():
    topo, _, mpi = make_sim()
    storage = StorageSystem(mpi, [topo.n_nodes - 1, topo.n_nodes - 2])
    n = 8

    def program(ctx):
        yield from write_file(ctx, storage, server=ctx.rank % 2, nbytes=4096)

    mpi.add_job(JobSpec("app", n, program, list(range(n))))
    mpi.run(until=10.0)
    assert mpi.results()[0].finished
    st = storage.app_stats(0)
    assert st.ops == n
    assert st.bytes_written == n * 4096
    assert storage.total_bytes() == n * 4096
    assert st.mean_latency() > 0
