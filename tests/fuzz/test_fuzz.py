"""The fuzz harness: invariants, sweeps, shrinking, mutation drill."""

import tomllib

import pytest

import repro.fuzz.invariants as invariants_mod
from repro.fuzz import (
    INVARIANTS,
    FuzzContext,
    check_mapping,
    fuzz_seeds,
    render_fuzz_report,
    shrink_mapping,
)
from repro.generate import generate_mapping
from repro.scenario import ScenarioError, parse_scenario


def test_invariant_roster_is_the_documented_six():
    assert list(INVARIANTS) == [
        "conservation", "no_stuck_jobs", "determinism", "parity",
        "checkpoint_resume", "monotone_clocks",
    ]


def test_three_seed_fuzz_is_clean_and_deterministic():
    """Tier-1 anchor: a small sweep passes every invariant, twice."""
    first = fuzz_seeds("random-mix", seeds=3, parity_stride=3, shrink=False)
    assert first.ok, render_fuzz_report(first)
    assert [c.parity_checked for c in first.cases] == [True, False, False]
    again = fuzz_seeds("random-mix", seeds=3, parity_stride=3, shrink=False)
    assert first.to_json_dict() == again.to_json_dict()


def test_check_mapping_flags_a_crashing_invariant_not_a_bad_spec():
    mapping = generate_mapping("random-mix", 1)

    def boom(ctx):
        raise RuntimeError("simulated harness crash")

    violations = check_mapping(mapping, invariants={"boom": boom})
    assert violations == ["boom: raised RuntimeError: simulated harness crash"]
    with pytest.raises(ScenarioError):
        check_mapping({"name": "broken"})  # no jobs: the *spec* is invalid


def test_mutation_drill_shrinks_to_a_minimal_repro(tmp_path, monkeypatch):
    """Plant a failing invariant; the harness must report it and write a
    shrunken TOML repro that still fails and still parses."""

    def planted(ctx):
        if ctx.mapping.get("traffic"):
            return ["planted failure: traffic present"]
        return []

    monkeypatch.setitem(invariants_mod.INVARIANTS, "conservation", planted)
    generator = {"type": "random-mix", "faults": 2, "traffic": 2, "jobs": 2}
    report = fuzz_seeds(generator, seeds=1, parity_stride=0,
                        repro_dir=tmp_path)
    assert not report.ok
    (case,) = report.failures
    assert any("planted failure" in v for v in case.violations)
    repro_path = tmp_path / f"repro-{case.name}.toml"
    assert str(repro_path) == report.repros[case.seed]
    small = tomllib.loads(repro_path.read_text())
    # Shrunk: the faults are gone, one job and one injector remain.
    assert "faults" not in small and "storage" not in small
    assert len(small["jobs"]) == 1
    assert len(small["traffic"]) == 1
    parse_scenario(dict(small), name="repro")  # still a valid scenario
    assert check_mapping(small)  # and it still fails


def test_shrinker_rejects_candidates_that_no_longer_parse():
    """Dropping [storage] while a storage-slow fault remains would be an
    invalid spec; the shrinker must keep the pair together."""

    mapping = generate_mapping({"type": "random-mix", "faults": 1}, 0)
    mapping["faults"] = [{"kind": "storage-slow", "start": 0.0,
                          "duration": 0.001, "factor": 4.0}]
    mapping["storage"] = {"servers": 1}

    always = {"fail": lambda ctx: ["always"]}
    import repro.fuzz.harness as harness
    orig = dict(harness.INVARIANTS)
    harness.INVARIANTS.clear()
    harness.INVARIANTS.update(always)
    try:
        small = shrink_mapping(mapping)
    finally:
        harness.INVARIANTS.clear()
        harness.INVARIANTS.update(orig)
    # The invariant fails unconditionally, so everything droppable went;
    # what remains must still be a parseable scenario.
    parse_scenario(dict(small), name="t")
    assert len(small["jobs"]) == 1
    assert "traffic" not in small
    assert "faults" not in small and "storage" not in small


def test_fuzz_context_memoizes_baseline_runs():
    ctx = FuzzContext(generate_mapping("random-mix", 2))
    assert ctx.run() is ctx.run()
    assert ctx.run() is not ctx.run_fresh()


def test_invariants_hold_on_a_faulted_generated_scenario():
    mapping = generate_mapping({"type": "random-mix", "faults": 3}, 7)
    assert check_mapping(mapping, parity=True) == []


def test_checkpoint_resume_invariant_is_gated_on_parity_sampling():
    from repro.fuzz.invariants import check_checkpoint_resume

    mapping = generate_mapping("random-mix", 4)
    assert check_checkpoint_resume(FuzzContext(mapping, parity=False)) == []
    assert check_checkpoint_resume(FuzzContext(mapping, parity=True)) == []


def test_checkpoint_resume_invariant_catches_a_divergent_resume(monkeypatch):
    import repro.fuzz.invariants as inv

    from repro.service.checkpoint import resume_from_checkpoint

    mapping = generate_mapping("random-mix", 4)

    def planted(path):
        result = resume_from_checkpoint(path)
        result.end_time = result.end_time + 1.0  # corrupt the resume
        return result

    monkeypatch.setattr("repro.service.checkpoint.resume_from_checkpoint",
                        planted)
    violations = inv.check_checkpoint_resume(FuzzContext(mapping, parity=True))
    assert violations == ["checkpoint/resume produced result JSON different "
                          "from the straight-through run"]


def test_crashed_worker_becomes_a_failing_case():
    from repro.fuzz.harness import _crashed_case

    case = _crashed_case(("random-mix", 9, False))
    assert case["seed"] == 9
    assert case["mapping"] == {}
    assert any("worker process died" in v for v in case["violations"])
