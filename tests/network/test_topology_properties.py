"""Property-based structural invariants across all five topology models.

Every topology the fabric supports must satisfy the same contracts: the
port tables are symmetric, every node hangs off exactly one router,
link ids are dense, and the routing policy produces edge-valid paths
bounded by the advertised diameter.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.config import LinkClass, NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.dragonfly2d import Dragonfly2D
from repro.network.fattree import FatTreeNCARouting, FatTreeTopology
from repro.network.routing import make_routing
from repro.network.slimfly import SlimFlyRouting, SlimFlyTopology
from repro.network.torus import TorusDORRouting, TorusTopology

# -- shared structural contracts --------------------------------------------------


def assert_structural_contracts(topo):
    """Invariants every fabric-compatible topology must satisfy."""
    # Every node attaches to exactly one router, via one terminal port.
    seen_nodes = set()
    for r in range(topo.n_routers):
        for node, pid in topo.port_to_node[r].items():
            port = topo.router_ports[r][pid]
            assert port.link_class == LinkClass.TERMINAL
            assert port.peer_node == node
            assert topo.router_of_node(node) == r
            assert node not in seen_nodes
            seen_nodes.add(node)
    assert seen_nodes == set(range(topo.n_nodes))
    # Port table symmetric: r->peer parallel link counts match peer->r.
    for r in range(topo.n_routers):
        for peer, ports in topo.ports_to_router[r].items():
            assert len(topo.ports_to_router[peer][r]) == len(ports)
            for pid in ports:
                assert topo.router_ports[r][pid].peer_router == peer
    # Link ids dense and classed.
    assert len(topo.link_class_of) == topo.n_links
    lids = [p.link_id for ports in topo.router_ports for p in ports]
    assert sorted(lids) == list(range(topo.n_links))


def assert_paths_valid(topo, routing, pairs, hop_bound):
    for src, dst in pairs:
        path, _ = routing.select_path(src, dst)
        assert path[0] == src and path[-1] == dst
        for a, b in zip(path, path[1:]):
            assert b in topo.ports_to_router[a], f"no link {a}->{b}"
        assert len(path) - 1 <= hop_bound


def sample_pairs(n_routers, rnd):
    return [(rnd.randrange(n_routers), rnd.randrange(n_routers)) for _ in range(25)]


# -- dragonfly ---------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    groups=st.integers(3, 9),
    rpg=st.integers(2, 8),
    npr=st.integers(1, 3),
    data=st.data(),
)
def test_dragonfly1d_properties(groups, rpg, npr, data):
    h = max(1, (groups - 1) // rpg + ((groups - 1) % rpg > 0))
    topo = Dragonfly1D(n_groups=groups, routers_per_group=rpg,
                       nodes_per_router=npr, global_per_router=h)
    assert_structural_contracts(topo)
    assert topo.n_nodes == groups * rpg * npr
    # All-to-all local wiring: every router reaches every group peer.
    for g in range(groups):
        routers = list(topo.routers_of_group(g))
        for r in routers:
            for r2 in routers:
                if r != r2:
                    assert r2 in topo.ports_to_router[r]
    # Every group pair owns at least one global link, both directions.
    for g1 in range(groups):
        for g2 in range(groups):
            if g1 != g2:
                assert topo.gateways[g1][g2], f"groups {g1},{g2} unconnected"
    rnd = data.draw(st.randoms(use_true_random=False))
    routing = make_routing("min", topo, NetworkConfig(seed=1), lambda r, p: 0)
    assert_paths_valid(topo, routing, sample_pairs(topo.n_routers, rnd), topo.diameter())


@settings(max_examples=10, deadline=None)
@given(
    groups=st.integers(2, 5),
    rows=st.integers(2, 4),
    cols=st.integers(2, 5),
    data=st.data(),
)
def test_dragonfly2d_properties(groups, rows, cols, data):
    rpg = rows * cols
    need = groups - 1
    h = max(1, (need + rpg - 1) // rpg)
    topo = Dragonfly2D(n_groups=groups, rows=rows, cols=cols,
                       nodes_per_router=1, global_per_router=h)
    assert_structural_contracts(topo)
    # Row/column all-to-all: same row or column => direct link.
    for g in range(groups):
        base = g * rpg
        for i in range(rpg):
            for j in range(rpg):
                if i == j:
                    continue
                same_row = i // cols == j // cols
                same_col = i % cols == j % cols
                linked = (base + j) in topo.ports_to_router[base + i]
                assert linked == (same_row or same_col)
    rnd = data.draw(st.randoms(use_true_random=False))
    routing = make_routing("adp", topo, NetworkConfig(seed=2), lambda r, p: 0)
    # Adaptive may take a Valiant detour: bound = 2 local diameters + 2
    # globals + intermediate-group local crossing.
    bound = 3 * topo.local_diameter() + 2
    assert_paths_valid(topo, routing, sample_pairs(topo.n_routers, rnd), bound)


# -- torus --------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    dims=st.lists(st.integers(2, 5), min_size=1, max_size=4),
    npr=st.integers(1, 2),
    data=st.data(),
)
def test_torus_properties(dims, npr, data):
    topo = TorusTopology(tuple(dims), nodes_per_router=npr)
    assert_structural_contracts(topo)
    rnd = data.draw(st.randoms(use_true_random=False))
    routing = TorusDORRouting(topo, NetworkConfig(seed=3), probe=lambda r, p: 0)
    for src, dst in sample_pairs(topo.n_routers, rnd):
        path, _ = routing.select_path(src, dst)
        ca, cb = topo.coords(src), topo.coords(dst)
        dist = sum(min((x - y) % d, (y - x) % d) for x, y, d in zip(ca, cb, topo.dims))
        assert len(path) - 1 == dist  # DOR is exactly minimal


# -- fat-tree ------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(k=st.sampled_from([2, 4, 6, 8]), mode=st.sampled_from(["dmodk", "random", "adaptive"]), data=st.data())
def test_fattree_properties(k, mode, data):
    topo = FatTreeTopology(k=k)
    assert_structural_contracts(topo)
    assert topo.n_nodes == k**3 // 4
    assert topo.n_routers == 5 * k**2 // 4
    rnd = data.draw(st.randoms(use_true_random=False))
    routing = FatTreeNCARouting(topo, NetworkConfig(seed=4), probe=lambda r, p: 0, mode=mode)
    pairs = [(rnd.randrange(topo.n_edge), rnd.randrange(topo.n_edge)) for _ in range(25)]
    assert_paths_valid(topo, routing, pairs, topo.diameter())


# -- slim fly -------------------------------------------------------------------


@settings(max_examples=6, deadline=None)
@given(q=st.sampled_from([5, 13]), mode=st.sampled_from(["min", "adaptive"]), data=st.data())
def test_slimfly_properties(q, mode, data):
    topo = SlimFlyTopology(q=q, nodes_per_router=1)
    assert_structural_contracts(topo)
    degree = (3 * q - 1) // 2
    assert all(len(topo.adj[r]) == degree for r in range(topo.n_routers))
    rnd = data.draw(st.randoms(use_true_random=False))
    routing = SlimFlyRouting(topo, NetworkConfig(seed=5), probe=lambda r, p: 0, mode=mode)
    # Valiant detours compose two <=2-hop legs.
    assert_paths_valid(topo, routing, sample_pairs(topo.n_routers, rnd), 4)
