"""Slim fly (MMS graph) topology + diameter-2 routing."""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import LinkClass, NetworkConfig
from repro.network.fabric import NetworkFabric
from repro.network.slimfly import (
    SlimFlyRouting,
    SlimFlyTopology,
    generator_sets,
    slimfly_routing_factory,
)
from repro.workloads.uniform_random import uniform_random


@pytest.fixture(scope="module")
def topo():
    return SlimFlyTopology(q=5, nodes_per_router=1)


def test_construction_counts(topo):
    assert topo.n_routers == 50
    assert topo.n_nodes == 50
    # q=5 => delta=+1 => degree (3q - 1)/2 = 7
    assert topo.degree() == 7
    assert topo.radix() == 8  # 7 network + 1 terminal


@pytest.mark.parametrize("q,degree", [(5, 7), (13, 19), (17, 25)])
def test_degree_formula(q, degree):
    t = SlimFlyTopology(q=q, nodes_per_router=1)
    assert (3 * q - 1) // 2 == degree
    assert t.degree() == degree
    assert all(len(t.adj[r]) == degree for r in range(t.n_routers))


def test_generator_sets_partition_nonzero_residues():
    for q in (5, 13, 17):
        X, Xp = generator_sets(q)
        assert X & Xp == frozenset()
        assert X | Xp == frozenset(range(1, q))
        # Closure under negation keeps the Cayley graph undirected.
        assert all((q - v) % q in X for v in X)
        assert all((q - v) % q in Xp for v in Xp)


def test_diameter_is_two(topo):
    # BFS from every router: everything reachable within 2 hops.
    for src in range(topo.n_routers):
        frontier = {src} | topo.adj[src]
        two_hop = set(frontier)
        for r in topo.adj[src]:
            two_hop |= topo.adj[r]
        assert len(two_hop) == topo.n_routers


def test_links_symmetric(topo):
    for r in range(topo.n_routers):
        for peer, ports in topo.ports_to_router[r].items():
            assert len(topo.ports_to_router[peer][r]) == len(ports)
            assert r in topo.adj[peer]


def test_all_network_links_local(topo):
    classes = {p.link_class for ports in topo.router_ports for p in ports}
    assert classes == {LinkClass.TERMINAL, LinkClass.LOCAL}


def test_label_roundtrip(topo):
    q = topo.q
    for r in range(topo.n_routers):
        half, i, j = topo.label(r)
        assert (topo.a_router(i, j) if half == 0 else topo.b_router(i, j)) == r


def test_invalid_configs():
    with pytest.raises(ValueError, match="prime"):
        SlimFlyTopology(q=6)
    with pytest.raises(ValueError, match="prime"):
        SlimFlyTopology(q=9)  # prime power, not prime: unsupported
    with pytest.raises(ValueError, match="4w"):
        SlimFlyTopology(q=7)  # prime, but delta = -1 family unsupported
    with pytest.raises(ValueError, match="nodes_per_router"):
        SlimFlyTopology(q=5, nodes_per_router=0)


@pytest.mark.parametrize("mode", ["min", "adaptive"])
def test_paths_valid(topo, mode):
    routing = SlimFlyRouting(topo, NetworkConfig(seed=1), probe=lambda r, p: 0, mode=mode)
    for src in range(0, topo.n_routers, 7):
        for dst in range(0, topo.n_routers, 5):
            path, nonmin = routing.select_path(src, dst)
            assert path[0] == src and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert b in topo.ports_to_router[a]
            if not nonmin:
                # Minimal paths respect the diameter-2 bound.
                assert len(path) - 1 <= 2


def test_min_paths_are_shortest(topo):
    routing = SlimFlyRouting(topo, NetworkConfig(seed=2), probe=lambda r, p: 0, mode="min")
    for src in range(0, topo.n_routers, 3):
        for dst in range(topo.n_routers):
            path, _ = routing.select_path(src, dst)
            if src == dst:
                assert len(path) == 1
            elif dst in topo.adj[src]:
                assert len(path) == 2
            else:
                assert len(path) == 3


def test_adaptive_uniform_congestion_stays_minimal(topo):
    """Uniform queue depth everywhere never favours a longer path
    (q*h is strictly larger on the detour)."""
    routing = SlimFlyRouting(
        topo, NetworkConfig(seed=3, adaptive_bias=0), probe=lambda r, p: 40, mode="adaptive"
    )
    assert not any(routing.select_path(0, dst)[1] for dst in range(1, 40))


def test_adaptive_detours_around_congested_first_hop(topo):
    """When every minimal first hop out of the source is saturated and
    the rest of the network is idle, UGAL takes Valiant detours...
    except that all detours also leave through the same source router,
    so the decisive comparison is hop-weighted queue depth."""
    src = 0

    def probe(router, port):
        # Congest only the direct links toward routers adjacent to dst 49.
        if router == src:
            peer = topo.router_ports[router][port].peer_router
            if peer in topo.adj[49] or peer == 49:
                return 1000
        return 0

    routing = SlimFlyRouting(
        topo, NetworkConfig(seed=4, adaptive_bias=0), probe=probe, mode="adaptive"
    )
    decisions = [routing.select_path(src, 49)[1] for _ in range(16)]
    assert any(decisions), "UGAL never detoured around a saturated minimal path"


def test_mode_validation(topo):
    with pytest.raises(ValueError, match="unknown slim fly mode"):
        SlimFlyRouting(topo, NetworkConfig(), probe=lambda r, p: 0, mode="ugal-g")


def test_uniform_random_on_slimfly():
    topo = SlimFlyTopology(q=5, nodes_per_router=2)
    fabric = NetworkFabric(topo, NetworkConfig(seed=5), routing=slimfly_routing_factory("min"))
    mpi = SimMPI(fabric)
    n = 32
    mpi.add_job(JobSpec(
        "ur", n, uniform_random, list(range(n)),
        {"iters": 4, "msg_bytes": 4096, "interval_s": 1e-5},
    ))
    mpi.run(until=1.0)
    res = mpi.results()[0]
    assert res.finished
    assert fabric.messages_delivered == fabric.messages_sent
    assert fabric.link_loads.global_fraction() == 0.0
