"""Routing policies: path validity, minimality, adaptive behaviour."""

import pytest

from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.dragonfly2d import Dragonfly2D
from repro.network.routing import AdaptiveRouting, MinimalRouting, make_routing


def _zero_probe(router, port):
    return 0


def path_is_valid(topo, path):
    """Every consecutive hop must be a physical link."""
    for a, b in zip(path, path[1:]):
        if b not in topo.ports_to_router[a]:
            return False
    return True


@pytest.fixture(scope="module")
def topo1d():
    return Dragonfly1D.mini()


@pytest.fixture(scope="module")
def topo2d():
    return Dragonfly2D.mini()


@pytest.mark.parametrize("fixture", ["topo1d", "topo2d"])
def test_minimal_paths_follow_links(fixture, request):
    topo = request.getfixturevalue(fixture)
    routing = MinimalRouting(topo, NetworkConfig(seed=1), _zero_probe)
    step = max(1, topo.n_routers // 10)
    for src in range(0, topo.n_routers, step):
        for dst in range(0, topo.n_routers, step):
            path, nonmin = routing.select_path(src, dst)
            assert not nonmin
            assert path[0] == src and path[-1] == dst
            assert path_is_valid(topo, path)


def test_minimal_hop_bounds_1d(topo1d):
    routing = MinimalRouting(topo1d, NetworkConfig(seed=1), _zero_probe)
    for src in range(0, topo1d.n_routers, 5):
        for dst in range(0, topo1d.n_routers, 7):
            path, _ = routing.select_path(src, dst)
            assert len(path) - 1 <= 3  # local + global + local


def test_minimal_hop_bounds_2d(topo2d):
    routing = MinimalRouting(topo2d, NetworkConfig(seed=1), _zero_probe)
    for src in range(0, topo2d.n_routers, 5):
        for dst in range(0, topo2d.n_routers, 7):
            path, _ = routing.select_path(src, dst)
            assert len(path) - 1 <= 5  # 2 local + global + 2 local


def test_same_router_trivial_path(topo1d):
    routing = MinimalRouting(topo1d, NetworkConfig(seed=1), _zero_probe)
    path, nonmin = routing.select_path(4, 4)
    assert path == [4]
    assert not nonmin


def test_intra_group_single_hop_1d(topo1d):
    routing = MinimalRouting(topo1d, NetworkConfig(seed=1), _zero_probe)
    src, dst = 0, 5  # same group in mini 1D (8 routers/group)
    path, _ = routing.select_path(src, dst)
    assert path == [0, 5]


def test_inter_group_path_crosses_exactly_one_global_link(topo1d):
    routing = MinimalRouting(topo1d, NetworkConfig(seed=2), _zero_probe)
    src = 0
    dst = topo1d.router_id(4, 3)
    for _ in range(20):
        path, _ = routing.select_path(src, dst)
        crossings = sum(
            1
            for a, b in zip(path, path[1:])
            if topo1d.group_of(a) != topo1d.group_of(b)
        )
        assert crossings == 1


def test_adaptive_prefers_minimal_when_idle(topo1d):
    routing = AdaptiveRouting(topo1d, NetworkConfig(seed=3), _zero_probe)
    dst = topo1d.router_id(3, 2)
    for _ in range(50):
        path, nonmin = routing.select_path(0, dst)
        assert not nonmin
        assert len(path) - 1 <= 3


def test_adaptive_detours_under_congestion(topo1d):
    """When every minimal first-hop port is deeply queued, UGAL must
    sometimes choose the Valiant path."""
    congested_src = 0

    def probe(router, port):
        if router != congested_src:
            return 0
        p = topo1d.router_ports[router][port]
        # Congest the direct links toward the destination group only.
        if p.peer_router >= 0 and topo1d.group_of(p.peer_router) in (0, 3):
            # local ports within group 0 and globals to group 3
            return 50
        return 0

    routing = AdaptiveRouting(topo1d, NetworkConfig(seed=4, adaptive_bias=1.0), probe)
    dst = topo1d.router_id(3, 0)
    nonmin_taken = 0
    for _ in range(100):
        path, nonmin = routing.select_path(congested_src, dst)
        assert path_is_valid(topo1d, path)
        nonmin_taken += nonmin
    assert nonmin_taken > 0


def test_valiant_path_visits_intermediate_group(topo1d):
    routing = AdaptiveRouting(topo1d, NetworkConfig(seed=5), _zero_probe)
    for _ in range(50):
        path = routing._valiant_candidate(0, topo1d.router_id(5, 0))
        assert path_is_valid(topo1d, path)
        groups = {topo1d.group_of(r) for r in path}
        assert 0 in groups and 5 in groups


def test_valiant_falls_back_with_two_groups():
    tiny = Dragonfly1D(n_groups=2, routers_per_group=4, nodes_per_router=1, global_per_router=2)
    routing = AdaptiveRouting(tiny, NetworkConfig(seed=6), _zero_probe)
    path, nonmin = routing.select_path(0, 7)
    assert path_is_valid(tiny, path)


def test_make_routing_dispatch(topo1d):
    cfg = NetworkConfig(seed=1)
    assert isinstance(make_routing("min", topo1d, cfg, _zero_probe), MinimalRouting)
    assert isinstance(make_routing("ADP", topo1d, cfg, _zero_probe), AdaptiveRouting)
    with pytest.raises(ValueError, match="unknown routing"):
        make_routing("ecmp", topo1d, cfg, _zero_probe)


def test_routing_deterministic_per_seed(topo1d):
    a = MinimalRouting(topo1d, NetworkConfig(seed=9), _zero_probe)
    b = MinimalRouting(topo1d, NetworkConfig(seed=9), _zero_probe)
    for src, dst in [(0, 30), (5, 60), (12, 71)]:
        assert a.select_path(src, dst) == b.select_path(src, dst)
