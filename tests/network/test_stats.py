"""Measurement instruments: windowed app counters, link loads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.config import LinkClass
from repro.network.dragonfly import Dragonfly1D
from repro.network.stats import LinkLoadAccounting, WindowedAppCounter


def test_window_binning():
    c = WindowedAppCounter(0.5e-3)
    c.record(1, 0, 0.0001, 100)
    c.record(1, 0, 0.0004, 50)   # same bin 0
    c.record(1, 0, 0.0006, 25)   # bin 1
    s = c.series([1], 0, horizon=1.5e-3)
    assert list(s) == [150, 25, 0]


def test_series_sums_over_router_set():
    c = WindowedAppCounter(1e-3)
    c.record(1, 0, 0.0005, 10)
    c.record(2, 0, 0.0005, 20)
    c.record(3, 0, 0.0005, 40)  # excluded
    s = c.series({1, 2}, 0, horizon=1e-3)
    assert list(s) == [30]


def test_apps_and_routers_seen():
    c = WindowedAppCounter(1e-3)
    c.record(5, 2, 0.0, 1)
    c.record(6, 3, 0.0, 1)
    assert c.apps_seen() == {2, 3}
    assert c.routers_seen() == {5, 6}


def test_total():
    c = WindowedAppCounter(1e-3)
    for i in range(10):
        c.record(1, 0, i * 1e-3, 7)
    assert c.total([1], 0) == 70
    assert c.total([2], 0) == 0


def test_record_beyond_horizon_excluded_from_series():
    c = WindowedAppCounter(1e-3)
    c.record(1, 0, 0.0095, 99)
    s = c.series([1], 0, horizon=5e-3)
    assert s.sum() == 0


def test_record_at_exact_horizon_lands_in_final_bin():
    """Regression: a record at ``time == horizon`` (horizon an exact
    multiple of the window -- the normal case for a run to
    ``until=horizon``) fell into bin ``int(horizon/window) == n_bins``
    and was silently dropped from the series."""
    c = WindowedAppCounter(0.5e-3)
    c.record(1, 0, 0.0e-3, 10)
    c.record(1, 0, 1.5e-3, 99)  # exactly at the horizon boundary
    s = c.series([1], 0, horizon=1.5e-3)
    assert len(s) == 3
    assert list(s) == [10, 0, 99]
    # Totals and series agree again (bytes are conserved).
    assert s.sum() == c.total([1], 0)


def test_shorter_horizon_query_excludes_post_horizon_bytes():
    """Querying a horizon shorter than the recorded data must not fold
    post-horizon traffic from the boundary bin into the series."""
    c = WindowedAppCounter(0.5e-3)
    c.record(1, 0, 0.2e-3, 10)
    c.record(1, 0, 1.0e-3, 5)    # exactly at the queried horizon: folded
    c.record(1, 0, 1.2e-3, 99)   # after the horizon, same bin: excluded
    c.record(1, 0, 1.7e-3, 70)   # well after: excluded
    s = c.series([1], 0, horizon=1.0e-3)
    assert list(s) == [10, 5]


def test_record_at_non_multiple_horizon_unaffected():
    c = WindowedAppCounter(0.5e-3)
    c.record(1, 0, 1.4e-3, 7)   # inside the final (partial) bin
    c.record(1, 0, 1.6e-3, 99)  # beyond the horizon: excluded
    s = c.series([1], 0, horizon=1.45e-3)
    assert list(s) == [0, 0, 7]


def test_invalid_window():
    with pytest.raises(ValueError):
        WindowedAppCounter(0.0)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=0.01), st.integers(1, 1000)), min_size=1, max_size=50))
@settings(max_examples=100)
def test_series_conserves_bytes(records):
    c = WindowedAppCounter(1e-3)
    for t, b in records:
        c.record(0, 0, t, b)
    s = c.series([0], 0, horizon=0.011)
    assert s.sum() == sum(b for _, b in records)


# -- link loads ---------------------------------------------------------------


@pytest.fixture(scope="module")
def topo():
    return Dragonfly1D.mini()


def test_class_totals(topo):
    loads = LinkLoadAccounting(topo)
    # Find one link of each class.
    ids = {c: None for c in LinkClass}
    for lid, c in enumerate(topo.link_class_of):
        if ids[c] is None:
            ids[c] = lid
    loads.record(ids[LinkClass.LOCAL], 100)
    loads.record(ids[LinkClass.GLOBAL], 50)
    loads.record(ids[LinkClass.TERMINAL], 25)
    assert loads.class_total(LinkClass.LOCAL) == 100
    assert loads.class_total(LinkClass.GLOBAL) == 50
    assert loads.class_total(LinkClass.TERMINAL) == 25


def test_mean_and_max_per_link(topo):
    loads = LinkLoadAccounting(topo)
    gl = [lid for lid, c in enumerate(topo.link_class_of) if c == LinkClass.GLOBAL]
    loads.record(gl[0], 300)
    loads.record(gl[1], 100)
    n = loads.class_link_count(LinkClass.GLOBAL)
    assert n == len(gl)
    assert loads.class_mean_per_link(LinkClass.GLOBAL) == pytest.approx(400 / n)
    assert loads.class_max_per_link(LinkClass.GLOBAL) == 300


def test_global_fraction(topo):
    loads = LinkLoadAccounting(topo)
    gl = next(lid for lid, c in enumerate(topo.link_class_of) if c == LinkClass.GLOBAL)
    ll = next(lid for lid, c in enumerate(topo.link_class_of) if c == LinkClass.LOCAL)
    loads.record(gl, 25)
    loads.record(ll, 75)
    assert loads.global_fraction() == pytest.approx(0.25)


def test_global_fraction_empty(topo):
    assert LinkLoadAccounting(topo).global_fraction() == 0.0


def test_summary_keys(topo):
    s = LinkLoadAccounting(topo).summary()
    assert set(s) == {
        "global_total_bytes",
        "local_total_bytes",
        "global_per_link_bytes",
        "local_per_link_bytes",
        "global_fraction",
    }
