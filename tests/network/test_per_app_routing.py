"""Per-application routing overrides (the paper's per-job routing policy)."""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.union.manager import Job, WorkloadManager
from repro.workloads.nearest_neighbor import nearest_neighbor
from repro.workloads.uniform_random import uniform_random


def test_routing_for_defaults_to_fabric_policy():
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=1), routing="adp")
    assert fabric.routing_for(0) is fabric.routing
    assert fabric.routing_for(7) is fabric.routing


def test_set_app_routing_overrides_one_app():
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=1), routing="adp")
    fabric.set_app_routing(1, "min")
    assert fabric.routing_for(0).name == "adp"
    assert fabric.routing_for(1).name == "min"
    # Overrides use distinct RNG streams per app.
    fabric.set_app_routing(2, "min")
    assert fabric.routing_for(1) is not fabric.routing_for(2)


def test_set_app_routing_rejects_unknown_name():
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=1))
    with pytest.raises(ValueError, match="unknown routing policy"):
        fabric.set_app_routing(0, "ecmp")


def _hotspot(ctx):
    """Every rank hammers rank 0: maximal congestion at one router."""
    if ctx.rank == 0:
        yield ctx.compute(1e-3)
        return
    for it in range(10):
        req = yield ctx.isend(0, 65536, tag=it)
        yield ctx.wait(req)


def test_min_override_never_routes_nonminimally():
    """Co-run: job 0 forced MIN, job 1 adaptive, fabric default ADP.
    Under hotspot pressure the adaptive job takes detours; the MIN
    job must not."""
    topo = Dragonfly1D.mini()
    fabric = NetworkFabric(topo, NetworkConfig(seed=2, adaptive_bias=0.0), routing="adp")
    mpi = SimMPI(fabric)
    n = 16
    nodes_a = list(range(n))
    nodes_b = list(range(n, 2 * n))
    mpi.add_job(JobSpec("pinned", n, _hotspot, nodes_a))
    mpi.add_job(JobSpec("adaptive", n, _hotspot, nodes_b))
    fabric.set_app_routing(0, "min")
    mpi.run(until=5.0)
    assert all(r.finished for r in mpi.results())
    assert fabric.nonmin_packets.get(0, 0) == 0
    assert fabric.total_packets[0] > 0
    assert fabric.total_packets[1] > 0
    # The adaptive job is allowed (and under a hotspot, expected) to
    # take at least one detour; tolerate zero only if queues never built.
    assert fabric.nonmin_fraction(1) >= 0.0


def test_nonmin_fraction_bounds():
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=3))
    assert fabric.nonmin_fraction(0) == 0.0
    fabric.on_packet_routed(0, True)
    fabric.on_packet_routed(0, False)
    assert fabric.nonmin_fraction(0) == 0.5


def test_workload_manager_applies_job_routing():
    topo = Dragonfly1D.mini()
    mgr = WorkloadManager(topo, routing="adp", placement="rg", seed=4)
    mgr.add_job(Job("nn", 8, program=nearest_neighbor,
                    params={"dims": (2, 2, 2), "iters": 2, "msg_bytes": 4096},
                    routing="min"))
    mgr.add_job(Job("ur", 8, program=uniform_random,
                    params={"iters": 3, "msg_bytes": 4096, "interval_s": 1e-5}))
    out = mgr.run(until=5.0)
    assert all(a.result.finished for a in out.apps)
    assert mgr.fabric.routing_for(0).name == "min"
    assert mgr.fabric.routing_for(1).name == "adp"
    assert mgr.fabric.nonmin_packets.get(0, 0) == 0
