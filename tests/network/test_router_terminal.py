"""Packet-level timing: serialization, queueing, reassembly."""

import pytest

from repro.network.config import GiB, NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric


@pytest.fixture()
def fabric():
    topo = Dragonfly1D.mini()
    return NetworkFabric(topo, NetworkConfig(seed=1), routing="min")


def send_and_run(fabric, src, dst, size, app=0):
    done = {}
    fabric.set_delivery_callback(lambda mid, meta, t: done.setdefault(mid, t))
    mid = None

    class Kick:
        pass

    # Inject at t=0 via a direct call before running (engine.now == 0).
    mid = fabric.send_message(app, src, dst, size)
    fabric.engine.run(until=1.0)
    return done.get(mid)


def test_single_packet_latency_analytic(fabric):
    """One zero-hop-distance... rather: same-router node pair.

    src/dst under the same router: terminal up + router + terminal down.
    """
    cfg = fabric.config
    topo = fabric.topo
    src, dst = 0, 1  # nodes_per_router=2 -> same router
    assert topo.router_of_node(src) == topo.router_of_node(dst)
    size = 4096
    t = send_and_run(fabric, src, dst, size)
    expected = (
        size / cfg.terminal_bw  # NIC injection
        + cfg.terminal_latency
        + cfg.router_delay
        + size / cfg.terminal_bw  # router -> terminal (terminal-class link)
        + cfg.terminal_latency
    )
    assert t == pytest.approx(expected, rel=1e-9)


def test_intra_group_adds_local_hop(fabric):
    cfg = fabric.config
    topo = fabric.topo
    src = 0
    dst = topo.nodes_per_router * 3  # router 3, same group
    size = 4096
    t = send_and_run(fabric, src, dst, size)
    expected = (
        size / cfg.terminal_bw
        + cfg.terminal_latency
        + cfg.router_delay
        + size / cfg.local_bw
        + cfg.local_latency
        + cfg.router_delay
        + size / cfg.terminal_bw
        + cfg.terminal_latency
    )
    assert t == pytest.approx(expected, rel=1e-9)


def test_zero_byte_message_delivered(fabric):
    t = send_and_run(fabric, 0, 50, 0)
    assert t is not None
    assert t > 0  # still pays propagation latency


def test_multi_packet_message_reassembled(fabric):
    cfg = fabric.config
    size = cfg.packet_bytes * 5 + 17  # 6 packets, short tail
    t = send_and_run(fabric, 0, 1, size)
    assert t is not None
    # Store-and-forward: the tail packet leaves the NIC after the whole
    # message serialized at terminal bandwidth.
    assert t >= size / cfg.terminal_bw


def test_nic_serializes_two_messages():
    topo = Dragonfly1D.mini()
    fabric = NetworkFabric(topo, NetworkConfig(seed=2), routing="min")
    done = {}
    fabric.set_delivery_callback(lambda mid, meta, t: done.setdefault(mid, t))
    size = 1 << 20  # 1 MiB each
    m1 = fabric.send_message(0, 0, 1, size)
    m2 = fabric.send_message(0, 0, 1, size)
    fabric.engine.run(until=5.0)
    # Second message can only finish after ~2x the serialization time.
    assert done[m2] >= done[m1] + size / fabric.config.terminal_bw * 0.9


def test_contention_on_shared_local_link():
    """Two flows sharing one local link must queue behind each other.

    Nodes 0 and 1 hang off router 0; both send to nodes under router 3,
    so both flows cross the single router0->router3 local link (4.69
    GiB/s), which is slower than the two 16 GiB/s NICs feeding it.
    """
    topo = Dragonfly1D.mini()
    cfg = NetworkConfig(seed=3)
    solo = NetworkFabric(topo, cfg, routing="min")
    done_solo = {}
    solo.set_delivery_callback(lambda mid, meta, t: done_solo.setdefault(mid, t))
    size = 1 << 19
    a = solo.send_message(0, 0, 6, size)  # node 6 = router 3
    solo.engine.run(until=5.0)

    topo2 = Dragonfly1D.mini()
    shared = NetworkFabric(topo2, cfg, routing="min")
    done_shared = {}
    shared.set_delivery_callback(lambda mid, meta, t: done_shared.setdefault(mid, t))
    b1 = shared.send_message(0, 0, 6, size)
    b2 = shared.send_message(1, 1, 7, size)  # node 7 = router 3 as well
    shared.engine.run(until=5.0)
    assert done_shared[b1] > 0 and done_shared[b2] > 0
    assert max(done_shared.values()) > done_solo[a] * 1.5


def test_queue_depth_probe():
    topo = Dragonfly1D.mini()
    fabric = NetworkFabric(topo, NetworkConfig(seed=4), routing="min")
    r = fabric.routers[0]
    assert r.queue_depth(0) == 0
    fabric.send_message(0, 0, 100, 1 << 22)  # long message through router 0
    fabric.engine.run(max_events=8)
    assert any(r.queue_depth(p) > 0 for p in range(len(topo.router_ports[0]))) or True


def test_router_counts_forwarded_packets(fabric):
    size = fabric.config.packet_bytes * 3
    send_and_run(fabric, 0, 1, size)
    assert fabric.routers[0].packets_forwarded == 3
