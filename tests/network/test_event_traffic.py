"""Event-traffic accounting of the network core.

The seed model spent one ``free``/``inj_free`` self-event per packet
transmission (router ports *and* NIC injection channels), doubling the
engine's event traffic.  The ``busy_until`` forwarding path removes the
router self-events entirely and reduces the NIC to a single ``drain``
per queued packet, so a congested reference run must commit strictly
fewer events than the free-event model's floor of
``2*forwards + 2*injections + messages``.
"""

from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.pdes.conservative import ConservativeEngine
from repro.pdes.sequential import SequentialEngine


def _congested_reference_run(engine=None):
    """Two flows forced across one shared local link (the congestion
    scenario of the contention tests), plus a same-router flow."""
    fabric = NetworkFabric(
        Dragonfly1D.mini(), NetworkConfig(seed=3), routing="min", engine=engine
    )
    done = {}
    fabric.set_delivery_callback(lambda mid, meta, t: done.setdefault(mid, t))
    size = 1 << 19
    fabric.send_message(0, 0, 6, size)
    fabric.send_message(1, 1, 7, size)
    fabric.send_message(0, 0, 1, size)
    fabric.engine.run(until=5.0)
    assert len(done) == 3 and fabric.in_flight() == 0
    return fabric


def test_congested_run_commits_fewer_events_than_free_event_model():
    fabric = _congested_reference_run()
    forwards = sum(r.packets_forwarded for r in fabric.routers)
    injections = sum(fabric.total_packets.values())
    messages = fabric.messages_delivered
    seed_model_events = 2 * forwards + 2 * injections + messages
    committed = fabric.engine.events_processed
    assert committed < seed_model_events
    # The router side is completely self-event free: total traffic is the
    # arrivals (one per forward + one per delivered packet) plus NIC-side
    # drain/inj_done bookkeeping, which is bounded by the injections.
    assert committed <= forwards + 2 * injections + messages


def test_event_counts_identical_across_engines():
    seq = _congested_reference_run(SequentialEngine())
    con = _congested_reference_run(ConservativeEngine(lookahead=1e-6, n_partitions=1))
    assert seq.engine.events_processed == con.engine.events_processed
    assert seq.link_loads.summary() == con.link_loads.summary()


def test_truncated_run_counts_committed_link_bytes():
    """Pin the event-free forwarding accounting: a horizon-truncated run
    records bytes for every packet *committed* to a link at arrival,
    including transmissions scheduled to start after the cutoff (the
    seed model recorded only started transmissions; drained runs are
    identical either way)."""
    fabric = _congested_reference_run()
    drained_total = int(fabric.link_loads.bytes_per_link.sum())

    fabric2 = NetworkFabric(
        Dragonfly1D.mini(), NetworkConfig(seed=3), routing="min"
    )
    size = 1 << 19
    fabric2.send_message(0, 0, 6, size)
    fabric2.send_message(1, 1, 7, size)
    fabric2.send_message(0, 0, 1, size)
    # Cut off mid-flight: traffic still queued at busy ports.
    fabric2.engine.run(until=20e-6)
    assert fabric2.in_flight() > 0
    truncated_total = int(fabric2.link_loads.bytes_per_link.sum())
    # Committed-to-link accounting: monotone in simulated time and equal
    # to transmitted bytes once the run drains.
    assert 0 < truncated_total <= drained_total
    assert sum(r.packets_forwarded for r in fabric2.routers) > 0
