"""NetworkConfig per-class lookups (hot-path tuple form)."""

import pytest

from repro.network.config import LinkClass, NetworkConfig


def test_bandwidth_and_latency_lookup_by_class():
    cfg = NetworkConfig(terminal_bw=1.0, local_bw=2.0, global_bw=3.0,
                        terminal_latency=0.1, local_latency=0.2,
                        global_latency=0.3)
    assert [cfg.bandwidth(c) for c in LinkClass] == [1.0, 2.0, 3.0]
    assert [cfg.latency(c) for c in LinkClass] == [0.1, 0.2, 0.3]
    # IntEnum values index the precomputed tuples directly.
    assert cfg.bandwidth(LinkClass.GLOBAL) == cfg._bw_of_class[2]


def test_defaults_preserved():
    cfg = NetworkConfig()
    assert cfg.bandwidth(LinkClass.TERMINAL) == cfg.terminal_bw
    assert cfg.bandwidth(LinkClass.LOCAL) == cfg.local_bw
    assert cfg.bandwidth(LinkClass.GLOBAL) == cfg.global_bw
    assert cfg.latency(LinkClass.TERMINAL) == cfg.terminal_latency
    assert cfg.latency(LinkClass.LOCAL) == cfg.local_latency
    assert cfg.latency(LinkClass.GLOBAL) == cfg.global_latency


def test_frozen_validation_still_applies():
    with pytest.raises(ValueError, match="local_bw"):
        NetworkConfig(local_bw=0)
    with pytest.raises(ValueError, match="router_delay"):
        NetworkConfig(router_delay=-1)
