"""Dragonfly topology structure: link tables, gateways, Table II facts."""

import pytest

from repro.network.config import LinkClass
from repro.network.dragonfly import Dragonfly1D
from repro.network.dragonfly2d import Dragonfly2D


@pytest.fixture(scope="module")
def mini1d():
    return Dragonfly1D.mini()


@pytest.fixture(scope="module")
def mini2d():
    return Dragonfly2D.mini()


# -- Table II paper configurations -------------------------------------------


def test_paper_1d_matches_table2():
    t = Dragonfly1D.paper()
    d = t.describe()
    assert d["groups"] == 33
    assert d["routers_per_group"] == 32
    assert d["nodes_per_router"] == 8
    assert d["nodes_per_group"] == 256
    assert d["global_per_router"] == 4
    assert d["system_size"] == 8448


def test_paper_2d_matches_table2():
    t = Dragonfly2D.paper()
    d = t.describe()
    assert d["groups"] == 22
    assert d["routers_per_group"] == 96
    assert d["nodes_per_router"] == 4
    assert d["nodes_per_group"] == 384
    assert d["global_per_router"] == 7
    assert d["system_size"] == 8448
    assert t.rows == 6 and t.cols == 16


def test_paper_1d_group_pair_links_exact():
    # 32 routers x 4 global ports = 128 slots over 32 peers = 4 links/pair.
    t = Dragonfly1D.paper()
    assert t.links_per_group_pair == 4


def test_paper_2d_group_pair_links_exact():
    # 96 x 7 = 672 slots over 21 peers = 32 links/pair.
    t = Dragonfly2D.paper()
    assert t.links_per_group_pair == 32


def test_2d_has_more_links_than_1d_at_paper_scale():
    c1 = Dragonfly1D.paper().link_census()
    c2 = Dragonfly2D.paper().link_census()
    assert c2[LinkClass.LOCAL] > c1[LinkClass.LOCAL]
    assert c2[LinkClass.GLOBAL] > c1[LinkClass.GLOBAL]


def test_2d_has_more_links_than_1d_at_mini_scale(mini1d, mini2d):
    c1, c2 = mini1d.link_census(), mini2d.link_census()
    assert c2[LinkClass.LOCAL] > c1[LinkClass.LOCAL]
    assert c2[LinkClass.GLOBAL] > c1[LinkClass.GLOBAL]
    assert mini1d.n_nodes == mini2d.n_nodes == 144


def test_diameters():
    assert Dragonfly1D.paper().diameter() == 3
    assert Dragonfly2D.paper().diameter() == 5


# -- structural invariants ----------------------------------------------------


@pytest.mark.parametrize("topo_name", ["mini1d", "mini2d"])
def test_ports_are_consistent(topo_name, request):
    topo = request.getfixturevalue(topo_name)
    for r in range(topo.n_routers):
        for p in topo.router_ports[r]:
            assert p.pid == topo.router_ports[r].index(p) or topo.router_ports[r][p.pid] is p
            if p.link_class == LinkClass.TERMINAL:
                assert topo.router_of_node(p.peer_node) == r
            else:
                assert 0 <= p.peer_router < topo.n_routers
                same_group = topo.group_of(p.peer_router) == topo.group_of(r)
                if p.link_class == LinkClass.LOCAL:
                    assert same_group
                else:
                    assert not same_group


@pytest.mark.parametrize("topo_name", ["mini1d", "mini2d"])
def test_router_links_symmetric(topo_name, request):
    topo = request.getfixturevalue(topo_name)
    for r in range(topo.n_routers):
        for peer, ports in topo.ports_to_router[r].items():
            back = topo.ports_to_router[peer].get(r, [])
            assert len(back) == len(ports)


@pytest.mark.parametrize("topo_name", ["mini1d", "mini2d"])
def test_gateways_cover_all_group_pairs(topo_name, request):
    topo = request.getfixturevalue(topo_name)
    for g1 in range(topo.n_groups):
        for g2 in range(topo.n_groups):
            if g1 == g2:
                continue
            gws = topo.gateways[g1][g2]
            assert len(gws) == topo.links_per_group_pair
            for gw in gws:
                assert topo.group_of(gw) == g1
                assert g2 in topo.global_ports_to_group[gw]


@pytest.mark.parametrize("topo_name", ["mini1d", "mini2d"])
def test_every_node_has_terminal_port(topo_name, request):
    topo = request.getfixturevalue(topo_name)
    for node in range(topo.n_nodes):
        r = topo.router_of_node(node)
        assert node in topo.port_to_node[r]


def test_1d_local_all_to_all(mini1d):
    a = mini1d.routers_per_group
    for g in range(mini1d.n_groups):
        routers = list(mini1d.routers_of_group(g))
        for r in routers:
            local_peers = {
                p.peer_router
                for p in mini1d.router_ports[r]
                if p.link_class == LinkClass.LOCAL
            }
            assert local_peers == set(routers) - {r}


def test_1d_local_paths(mini1d):
    g0 = list(mini1d.routers_of_group(0))
    assert mini1d.local_paths(g0[0], g0[0]) == [[]]
    assert mini1d.local_paths(g0[0], g0[3]) == [[g0[3]]]
    with pytest.raises(ValueError):
        mini1d.local_paths(g0[0], mini1d.router_id(1, 0))


def test_group_node_router_identities(mini2d):
    t = mini2d
    for node in (0, 17, t.n_nodes - 1):
        r = t.router_of_node(node)
        assert node in t.nodes_of_router(r)
        g = t.group_of(r)
        assert node in t.nodes_of_group(g)
        assert t.router_id(g, t.local_index(r)) == r


def test_invalid_configurations_rejected():
    with pytest.raises(ValueError, match="at least 2 groups"):
        Dragonfly1D(n_groups=1)
    with pytest.raises(ValueError, match=">= 1"):
        Dragonfly1D(n_groups=3, routers_per_group=0)
    with pytest.raises(ValueError, match="cannot connect"):
        # 2 routers x 1 global port = 2 slots for 8 peers.
        Dragonfly1D(n_groups=9, routers_per_group=2, nodes_per_router=1, global_per_router=1)


def test_link_census_totals(mini1d):
    census = mini1d.link_census()
    assert census[LinkClass.TERMINAL] == mini1d.n_nodes
    # all-to-all: a*(a-1) directed per group
    a = mini1d.routers_per_group
    assert census[LinkClass.LOCAL] == mini1d.n_groups * a * (a - 1)
    assert sum(census.values()) == mini1d.n_links


def test_radix_counts_max_ports(mini1d):
    expected = (
        mini1d.nodes_per_router
        + (mini1d.routers_per_group - 1)
        + mini1d.global_per_router
    )
    assert mini1d.radix() == expected
