"""2D dragonfly grid wiring and corner-turn paths."""

import pytest

from repro.network.config import LinkClass
from repro.network.dragonfly2d import Dragonfly2D


@pytest.fixture(scope="module")
def topo():
    return Dragonfly2D(n_groups=3, rows=3, cols=4, nodes_per_router=2, global_per_router=2)


def test_row_col_roundtrip(topo):
    for r in topo.routers_of_group(1):
        row, col = topo.row_col(r)
        assert topo.router_at(1, row, col) == r
        assert 0 <= row < topo.rows
        assert 0 <= col < topo.cols


def test_local_degree_is_row_plus_col(topo):
    expect = (topo.cols - 1) + (topo.rows - 1)
    for r in range(topo.n_routers):
        n_local = sum(
            1 for p in topo.router_ports[r] if p.link_class == LinkClass.LOCAL
        )
        assert n_local == expect


def test_same_row_direct_link(topo):
    a = topo.router_at(0, 1, 0)
    b = topo.router_at(0, 1, 3)
    assert topo.local_paths(a, b) == [[b]]


def test_same_col_direct_link(topo):
    a = topo.router_at(0, 0, 2)
    b = topo.router_at(0, 2, 2)
    assert topo.local_paths(a, b) == [[b]]


def test_dimension_change_goes_through_corner(topo):
    a = topo.router_at(0, 0, 0)
    b = topo.router_at(0, 2, 3)
    paths = topo.local_paths(a, b)
    assert len(paths) == 2
    corners = {paths[0][0], paths[1][0]}
    assert corners == {topo.router_at(0, 0, 3), topo.router_at(0, 2, 0)}
    for path in paths:
        assert path[-1] == b
        assert len(path) == 2


def test_no_direct_link_across_dimensions(topo):
    a = topo.router_at(0, 0, 0)
    b = topo.router_at(0, 1, 1)
    assert b not in topo.ports_to_router[a]


def test_local_paths_same_router(topo):
    r = topo.router_at(2, 1, 1)
    assert topo.local_paths(r, r) == [[]]


def test_local_paths_cross_group_rejected(topo):
    with pytest.raises(ValueError):
        topo.local_paths(topo.router_at(0, 0, 0), topo.router_at(1, 0, 0))


def test_local_diameter(topo):
    assert topo.local_diameter() == 2
    assert Dragonfly2D(n_groups=2, rows=1, cols=4, nodes_per_router=1, global_per_router=1).local_diameter() == 1


def test_invalid_grid():
    with pytest.raises(ValueError, match="rows and cols"):
        Dragonfly2D(n_groups=2, rows=0, cols=4)
