"""Fat-tree topology + NCA routing on the unchanged fabric."""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import LinkClass, NetworkConfig
from repro.network.fabric import NetworkFabric
from repro.network.fattree import (
    FatTreeNCARouting,
    FatTreeTopology,
    fattree_routing_factory,
)
from repro.workloads.uniform_random import uniform_random


@pytest.fixture(scope="module")
def topo():
    return FatTreeTopology(k=4)


def test_construction_counts(topo):
    # k=4: 16 nodes, 8 edge + 8 agg + 4 core switches.
    assert topo.n_nodes == 16
    assert topo.n_edge == 8
    assert topo.n_agg == 8
    assert topo.n_core == 4
    assert topo.n_routers == 20
    assert topo.radix() == 4
    assert topo.diameter() == 4


def test_scaling_with_k():
    t6 = FatTreeTopology(k=6)
    assert t6.n_nodes == 6**3 // 4
    assert t6.n_routers == 5 * 6**2 // 4
    assert t6.radix() == 6


def test_tier_predicates(topo):
    for e in range(topo.n_edge):
        assert topo.is_edge(e) and not topo.is_agg(e) and not topo.is_core(e)
    for a in range(topo.n_edge, topo.n_edge + topo.n_agg):
        assert topo.is_agg(a)
    for c in range(topo.n_edge + topo.n_agg, topo.n_routers):
        assert topo.is_core(c)
        assert topo.pod_of(c) == -1


def test_edge_hosts_nodes_only(topo):
    for r in range(topo.n_routers):
        nodes = list(topo.nodes_of_router(r))
        if topo.is_edge(r):
            assert len(nodes) == topo.half
            for n in nodes:
                assert topo.router_of_node(n) == r
        else:
            assert nodes == []


def test_links_symmetric(topo):
    for r in range(topo.n_routers):
        for peer, ports in topo.ports_to_router[r].items():
            assert len(topo.ports_to_router[peer][r]) == len(ports)


def test_link_classes_by_tier(topo):
    # Edge->agg links are LOCAL, agg->core GLOBAL.
    for e in range(topo.n_edge):
        for p in topo.router_ports[e]:
            if p.peer_router >= 0:
                assert p.link_class == LinkClass.LOCAL
    for c in range(topo.n_edge + topo.n_agg, topo.n_routers):
        for p in topo.router_ports[c]:
            assert p.link_class == LinkClass.GLOBAL


def test_core_connects_every_pod_once(topo):
    for c in range(topo.n_core):
        core = topo.core_id(c)
        pods = sorted(topo.pod_of(peer) for peer in topo.ports_to_router[core])
        assert pods == list(range(topo.n_pods))


def test_full_bisection_counts(topo):
    # Up-capacity of each tier equals down-capacity (rearrangeably
    # non-blocking Clos property): k/2 uplinks per edge switch.
    for e in range(topo.n_edge):
        ups = [p for p in topo.router_ports[e] if p.peer_router >= 0]
        downs = [p for p in topo.router_ports[e] if p.peer_node >= 0]
        assert len(ups) == len(downs) == topo.half


def test_invalid_configs():
    with pytest.raises(ValueError, match="even"):
        FatTreeTopology(k=3)
    with pytest.raises(ValueError, match="even"):
        FatTreeTopology(k=0)


@pytest.mark.parametrize("mode", ["dmodk", "random", "adaptive"])
def test_paths_valid_and_shortest(topo, mode):
    routing = FatTreeNCARouting(topo, NetworkConfig(seed=1), probe=lambda r, p: 0, mode=mode)
    for src in range(topo.n_edge):
        for dst in range(topo.n_edge):
            path, nonmin = routing.select_path(src, dst)
            assert not nonmin
            assert path[0] == src and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert b in topo.ports_to_router[a]
            if src == dst:
                assert len(path) == 1
            elif topo.pod_of(src) == topo.pod_of(dst):
                assert len(path) == 3  # edge -> agg -> edge
            else:
                assert len(path) == 5  # edge -> agg -> core -> agg -> edge


def test_dmodk_is_deterministic(topo):
    r1 = FatTreeNCARouting(topo, NetworkConfig(seed=1), probe=lambda r, p: 0, mode="dmodk")
    r2 = FatTreeNCARouting(topo, NetworkConfig(seed=99), probe=lambda r, p: 0, mode="dmodk")
    for src in range(topo.n_edge):
        for dst in range(topo.n_edge):
            assert r1.select_path(src, dst) == r2.select_path(src, dst)


def test_adaptive_avoids_congested_uplink(topo):
    depth = {}

    def probe(router, port):
        return depth.get((router, port), 0)

    routing = FatTreeNCARouting(topo, NetworkConfig(seed=1), probe=probe, mode="adaptive")
    src, dst = 0, 2  # same pod (pod 0), must go via one of two aggs
    aggs = [topo.agg_id(0, j) for j in range(topo.half)]
    # Congest every port towards the first agg.
    for p in topo.ports_to_router[src][aggs[0]]:
        depth[(src, p)] = 50
    for _ in range(8):
        path, _ = routing.select_path(src, dst)
        assert path[1] == aggs[1]


def test_mode_validation(topo):
    with pytest.raises(ValueError, match="unknown fat-tree mode"):
        FatTreeNCARouting(topo, NetworkConfig(), probe=lambda r, p: 0, mode="ecmp")


def test_uniform_random_on_fattree(topo):
    fabric = NetworkFabric(topo, NetworkConfig(seed=3), routing=fattree_routing_factory("random"))
    mpi = SimMPI(fabric)
    n = topo.n_nodes
    mpi.add_job(JobSpec(
        "ur", n, uniform_random, list(range(n)),
        {"iters": 4, "msg_bytes": 4096, "interval_s": 1e-5},
    ))
    mpi.run(until=1.0)
    res = mpi.results()[0]
    assert res.finished
    assert fabric.messages_delivered == fabric.messages_sent
    # Cross-pod traffic must exercise the core (GLOBAL) tier.
    assert fabric.link_loads.class_total(LinkClass.GLOBAL) > 0


def test_intra_pod_traffic_stays_off_core():
    topo = FatTreeTopology(k=4)
    fabric = NetworkFabric(topo, NetworkConfig(seed=4), routing=fattree_routing_factory("dmodk"))
    # Send only between nodes of pod 0 (nodes 0..3 live on edges 0..1).
    mpi = SimMPI(fabric)

    def pod_local(ctx):
        from repro.mpi.types import Isend, Irecv, Waitall
        peer = ctx.rank ^ 2  # node on the other edge switch of pod 0
        s = yield Isend(peer, 1024, tag=0)
        r = yield Irecv(peer, tag=0)
        yield Waitall([s, r])

    mpi.add_job(JobSpec("local", 4, pod_local, [0, 1, 2, 3]))
    mpi.run(until=1.0)
    assert mpi.results()[0].finished
    assert fabric.link_loads.class_total(LinkClass.GLOBAL) == 0
