"""NetworkFabric message API."""

import pytest

from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric


@pytest.fixture()
def fabric():
    return NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=1), routing="adp")


def test_lp_layout(fabric):
    topo = fabric.topo
    assert len(fabric.routers) == topo.n_routers
    assert len(fabric.terminals) == topo.n_nodes
    assert fabric.router_lp_id(0) == 0
    assert fabric.terminal_lp_id(0) == topo.n_routers


def test_message_ids_unique(fabric):
    ids = {fabric.send_message(0, 0, 1, 10) for _ in range(10)}
    assert len(ids) == 10


def test_delivery_and_injection_callbacks_order(fabric):
    events = []
    fabric.set_delivery_callback(lambda mid, meta, t: events.append(("deliver", mid, t)))
    fabric.set_injection_callback(lambda mid, meta, t: events.append(("inject", mid, t)))
    mid = fabric.send_message(3, 0, 100, 8192, meta="m")
    fabric.engine.run(until=1.0)
    kinds = [e[0] for e in events]
    assert kinds == ["inject", "deliver"]
    inject_t = events[0][2]
    deliver_t = events[1][2]
    assert 0 < inject_t < deliver_t


def test_self_send_loopback(fabric):
    got = []
    fabric.set_delivery_callback(lambda mid, meta, t: got.append((mid, t)))
    mid = fabric.send_message(0, 5, 5, 4096)
    fabric.engine.run(until=1.0)
    assert got and got[0][0] == mid
    # loopback never touches the network
    assert fabric.routers[fabric.topo.router_of_node(5)].packets_forwarded == 0


def test_in_flight_tracking(fabric):
    assert fabric.in_flight() == 0
    fabric.send_message(0, 0, 80, 4096)
    assert fabric.in_flight() == 1
    fabric.engine.run(until=1.0)
    assert fabric.in_flight() == 0


def test_counters(fabric):
    fabric.send_message(0, 0, 1, 100)
    fabric.send_message(0, 1, 2, 200)
    fabric.engine.run(until=1.0)
    assert fabric.messages_sent == 2
    assert fabric.messages_delivered == 2
    assert fabric.bytes_sent == 300


def test_meta_passthrough(fabric):
    seen = []
    fabric.set_delivery_callback(lambda mid, meta, t: seen.append(meta))
    fabric.send_message(0, 0, 1, 10, meta={"tag": 42})
    fabric.engine.run(until=1.0)
    assert seen == [{"tag": 42}]


@pytest.mark.parametrize(
    "src,dst,size,err",
    [
        (-1, 0, 10, "src_node"),
        (0, 999999, 10, "dst_node"),
        (0, 1, -5, "size"),
    ],
)
def test_send_validation(fabric, src, dst, size, err):
    with pytest.raises(ValueError, match=err):
        fabric.send_message(0, src, dst, size)


def test_routing_name_recorded():
    f = NetworkFabric(Dragonfly1D.mini(), routing="min")
    assert f.routing_name == "min"
