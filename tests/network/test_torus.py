"""Torus topology + dimension-order routing on the unchanged fabric."""

import pytest

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import LinkClass, NetworkConfig
from repro.network.fabric import NetworkFabric
from repro.network.torus import TorusDORRouting, TorusTopology, torus_routing_factory
from repro.workloads.nearest_neighbor import nearest_neighbor


@pytest.fixture(scope="module")
def topo():
    return TorusTopology((4, 4, 2), nodes_per_router=1)


def test_construction_counts(topo):
    assert topo.n_routers == 32
    assert topo.n_nodes == 32
    # 3D torus: degree 6, except the 2-ring axis contributes 1 link.
    assert topo.radix() == 1 + 2 + 2 + 1
    assert topo.diameter() == 2 + 2 + 1


def test_coords_roundtrip(topo):
    for r in range(topo.n_routers):
        assert topo.router_at(topo.coords(r)) == r


def test_links_symmetric(topo):
    for r in range(topo.n_routers):
        for peer, ports in topo.ports_to_router[r].items():
            assert len(topo.ports_to_router[peer][r]) == len(ports)


def test_all_links_local_class(topo):
    classes = {p.link_class for ports in topo.router_ports for p in ports}
    assert classes == {LinkClass.TERMINAL, LinkClass.LOCAL}


def test_two_ring_axis_has_single_link(topo):
    # Axis of size 2: +1 and -1 neighbours coincide; only one link.
    r = 0
    peer = topo.router_at((0, 0, 1))
    assert len(topo.ports_to_router[r][peer]) == 1


def test_invalid_configs():
    with pytest.raises(ValueError, match=">= 2"):
        TorusTopology((4, 1, 4))
    with pytest.raises(ValueError, match="nodes_per_router"):
        TorusTopology((2, 2), nodes_per_router=0)


def test_dor_paths_are_minimal_and_valid(topo):
    routing = TorusDORRouting(topo, NetworkConfig(seed=1), probe=lambda r, p: 0)
    for src in range(0, 32, 5):
        for dst in range(0, 32, 3):
            path, nonmin = routing.select_path(src, dst)
            assert not nonmin
            assert path[0] == src and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert b in topo.ports_to_router[a]
            # Minimality: hop count equals the torus Manhattan distance.
            ca, cb = topo.coords(src), topo.coords(dst)
            dist = sum(min((x - y) % d, (y - x) % d) for x, y, d in zip(ca, cb, topo.dims))
            assert len(path) - 1 == dist


def test_dor_routes_dimensions_in_order(topo):
    routing = TorusDORRouting(topo, NetworkConfig(seed=2), probe=lambda r, p: 0)
    src = topo.router_at((0, 0, 0))
    dst = topo.router_at((2, 3, 1))
    path, _ = routing.select_path(src, dst)
    coords = [topo.coords(r) for r in path]
    # x settles before y moves, y before z.
    x_done = next(i for i, c in enumerate(coords) if c[0] == 2)
    assert all(c[1] == 0 and c[2] == 0 for c in coords[: x_done + 1])


def test_factory_validation():
    with pytest.raises(ValueError, match="unknown torus routing"):
        torus_routing_factory("valiant")


def test_nn_workload_on_torus(topo):
    fabric = NetworkFabric(topo, NetworkConfig(seed=3), routing=torus_routing_factory())
    mpi = SimMPI(fabric)
    mpi.add_job(JobSpec(
        "nn", 32, nearest_neighbor, list(range(32)),
        {"dims": (4, 4, 2), "iters": 4, "msg_bytes": 16384},
    ))
    mpi.run(until=1.0)
    res = mpi.results()[0]
    assert res.finished
    assert all(s.msgs_recvd == 6 * 4 for s in res.rank_stats)
    # No global links on a torus.
    assert fabric.link_loads.global_fraction() == 0.0
    assert fabric.link_loads.class_total(LinkClass.LOCAL) > 0


def test_torus_neighbor_traffic_stays_one_hop(topo):
    """Halo exchange on a matching torus: every message is one router hop,
    so per-message latency is near the analytic single-hop time."""
    cfg = NetworkConfig(seed=4)
    fabric = NetworkFabric(topo, cfg, routing=torus_routing_factory())
    mpi = SimMPI(fabric)
    size = 4096
    mpi.add_job(JobSpec(
        "nn", 32, nearest_neighbor, list(range(32)),
        {"dims": (4, 4, 2), "iters": 1, "msg_bytes": size, "compute_s": 0.0},
    ))
    mpi.run(until=1.0)
    res = mpi.results()[0]
    single_hop = (
        size / cfg.terminal_bw + cfg.terminal_latency + cfg.router_delay
        + size / cfg.local_bw + cfg.local_latency + cfg.router_delay
        + size / cfg.terminal_bw + cfg.terminal_latency
    )
    lats = res.all_latencies()
    assert min(lats) == pytest.approx(single_hop, rel=1e-6)
