"""The one event-heap entry layout every scheduler in the tree shares.

All engines order pending events by the total key ``(time, priority,
seq)`` and store ``(time, priority, seq, Event)`` tuples in a binary
heap: the leading key triple is decided at C speed and ``seq`` is
unique, so a comparison never reaches the ``Event`` element (see the
note in :mod:`repro.pdes.event` -- heaping raw events through the
Python-level ``__lt__`` measures 15-20% slower end-to-end).

This module is that idiom, written once: :func:`push` /
:func:`pop_event` / :func:`peek_time` are the only functions allowed to
know the entry layout.  The compiled kernel (:mod:`repro.accel`)
implements the *identical* entry struct and comparison in C --
``_kernel.c`` mirrors ``ENTRY_FIELDS`` and the ``(time, priority,
seq)`` compare order -- so a heap drained by either side pops the same
event sequence.

The engines' innermost loops still inline the push/pop for speed
(``SequentialEngine.schedule_fast`` and the ``run`` loops); every
non-inlined site goes through here, and the inlined ones are pinned to
this layout by :data:`ENTRY_FIELDS` plus the cross-engine parity tests.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.pdes.event import Event

    #: A heap entry: the packed ordering key, then the event itself.
    Entry = tuple[float, int, int, Event]

#: The entry layout, as attribute names of :class:`Event`, in key
#: order.  ``_kernel.c`` packs the same fields into its C entry struct;
#: keep the two in lockstep.
ENTRY_FIELDS = ("time", "priority", "seq")


def entry(ev: "Event") -> "Entry":
    """The heap entry for ``ev`` (key triple + event)."""
    return (ev.time, ev.priority, ev.seq, ev)


def push(queue: "list[Entry]", ev: "Event") -> None:
    """Push ``ev`` onto ``queue`` in the shared entry layout."""
    heapq.heappush(queue, (ev.time, ev.priority, ev.seq, ev))


def pop_event(queue: "list[Entry]") -> "Event":
    """Pop and return the next event in ``(time, priority, seq)`` order."""
    return heapq.heappop(queue)[3]


def peek_time(queue: "list[Entry]") -> float:
    """Timestamp of the next pending event (``inf`` when drained)."""
    return queue[0][0] if queue else float("inf")
