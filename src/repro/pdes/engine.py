"""Common engine interface shared by all schedulers."""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.pdes.event import Event, Priority
from repro.pdes.lp import LP


class Engine:
    """Abstract discrete-event engine.

    Concrete engines differ only in *how* they order and commit events;
    the model-facing API (:meth:`register`, :meth:`schedule`,
    :meth:`schedule_at`, :meth:`run`, :attr:`now`) is identical, so a
    model written against :class:`Engine` runs unmodified on the
    sequential, conservative and optimistic schedulers.
    """

    #: Number of partitions the engine executes over.  1 for the
    #: sequential and optimistic engines; the conservative engine
    #: overrides it.  Model layers (e.g. the MPI runtime) consult this
    #: to co-locate their control LPs with the partitions they serve.
    n_partitions: int = 1

    #: Bit width reserved for the per-origin event counter in ``seq``
    #: (see :meth:`schedule_fast`): 2^40 events per origin before the
    #: packed keys of two origins could collide.
    SEQ_ORIGIN_SHIFT = 40

    def __init__(self) -> None:
        self.lps: list[LP] = []
        self.now: float = 0.0
        # Origin-scoped sequence numbers: ``seq`` is packed from the
        # identity of the LP whose handler scheduled the event (slot 0
        # is the environment -- model setup code running outside any
        # handler) and a per-origin counter.  Because the counter of an
        # origin advances only while that origin executes, the key is
        # computable *locally* by whichever partition runs the origin,
        # yet globally unique and identical to what a sequential run
        # assigns -- the property the multi-process conservative engine
        # (repro.parallel.mp) relies on for bit-identical merge order.
        self._origin: int = -1
        self._origin_seq: list[int] = [0]
        self.events_processed: int = 0
        self._end_hooks: list[Callable[[], None]] = []

    # -- topology of the model -------------------------------------------
    def register(self, lp: LP, partition: int | None = None) -> int:
        """Register one LP and return its id.

        ``partition`` pins the LP to one execution partition on engines
        that partition their LPs (the conservative engine); unpartitioned
        engines accept and ignore it, so model code can always pass the
        hint.
        """
        lp_id = len(self.lps)
        lp.bind(self, lp_id)
        self.lps.append(lp)
        self._origin_seq.append(0)
        return lp_id

    def register_all(self, lps: Iterable[LP]) -> list[int]:
        return [self.register(lp) for lp in lps]

    def partition_of(self, lp_id: int) -> int:
        """The partition executing ``lp_id`` (always 0 when unpartitioned)."""
        return 0

    # -- scheduling --------------------------------------------------------
    def schedule(
        self,
        delay: float,
        dst: int,
        kind: str,
        data: Any = None,
        priority: int = Priority.NETWORK,
        src: int = -1,
    ) -> Event:
        """Schedule an event ``delay`` seconds from the current time."""
        time = self.now + delay
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: t={time} < now={self.now}"
            )
        if not 0 <= dst < len(self.lps):
            raise ValueError(f"unknown destination LP {dst}")
        return self.schedule_fast(time, dst, kind, data, priority, src)

    def schedule_at(
        self,
        time: float,
        dst: int,
        kind: str,
        data: Any = None,
        priority: int = Priority.NETWORK,
        src: int = -1,
    ) -> Event:
        """Schedule an event at absolute time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: t={time} < now={self.now}"
            )
        if not 0 <= dst < len(self.lps):
            raise ValueError(f"unknown destination LP {dst}")
        return self.schedule_fast(time, dst, kind, data, priority, src)

    def schedule_fast(
        self,
        time: float,
        dst: int,
        kind: str,
        data: Any = None,
        priority: int = Priority.NETWORK,
        src: int = -1,
    ) -> Event:
        """Hot-path variant of :meth:`schedule_at` that skips argument
        re-validation.

        The network LPs schedule hundreds of thousands of events per
        simulated second against destinations the fabric wired up at
        construction time and timestamps derived from ``now`` plus
        non-negative delays; re-checking both on every call is pure
        overhead.  Callers must guarantee ``time >= now`` and a valid
        ``dst``.  Engine-specific safety checks that are part of the
        execution contract (e.g. the conservative engine's lookahead
        enforcement in ``_push``) still apply.
        """
        ev = Event(time, dst, kind, data, priority, src, send_time=self.now)
        slot = self._origin + 1
        c = self._origin_seq[slot]
        self._origin_seq[slot] = c + 1
        ev.seq = (slot << 40) | c
        self._push(ev)
        return ev

    def schedule_control(
        self,
        time: float,
        dst: int,
        kind: str,
        data: Any = None,
        priority: int = Priority.MPI,
        src: int = -1,
    ) -> Event:
        """Control-plane variant of :meth:`schedule_at`.

        For scheduler/driver actions that are *not* model messages --
        e.g. fanning a job launch out to per-partition driver LPs at the
        launch instant.  In a parallel PDES these travel out-of-band (a
        ROSS-style scheduler distributes launches at a synchronization
        point), so partitioned engines exempt this path from the
        cross-partition lookahead contract; on unpartitioned engines it
        is exactly :meth:`schedule_at`.
        """
        return self.schedule_at(time, dst, kind, data, priority, src)

    # -- hooks -------------------------------------------------------------
    def add_end_hook(self, fn: Callable[[], None]) -> None:
        """Register a callable invoked once when :meth:`run` returns."""
        self._end_hooks.append(fn)

    def _run_end_hooks(self) -> None:
        for fn in self._end_hooks:
            fn()

    # -- to be provided by concrete engines ---------------------------------
    def _push(self, ev: Event) -> None:
        raise NotImplementedError

    def run(self, until: float = float("inf"), max_events: int | None = None) -> float:
        """Execute events until the queue drains, ``until`` is passed, or
        ``max_events`` have been committed.  Returns the final time."""
        raise NotImplementedError

    def step(self, until: float) -> float:
        """Advance the committed simulation to ``until`` and return the
        reached time.

        Engines are *resumable*: a sequence ``step(t1); step(t2)``
        commits the identical event sequence as one ``run(t2)`` (the
        stepping-parity contract, golden-tested for the sequential and
        conservative engines).  This is the building block of the
        session lifecycle (:class:`repro.union.session.SimulationSession`)
        -- advance a window, observe, decide, advance again.  ``until``
        is an absolute time and must not move backwards.
        """
        if until < self.now:
            raise ValueError(
                f"cannot step backwards: until={until} < now={self.now}"
            )
        return self.run(until=until)
