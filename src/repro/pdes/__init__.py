"""Parallel discrete-event simulation kernel (ROSS substitute).

The paper's simulation stack runs CODES on top of ROSS, a parallel
optimistic (Time Warp) discrete-event engine.  This package provides the
Python equivalent: a common :class:`~repro.pdes.engine.Engine` interface
with three interchangeable schedulers,

* :class:`~repro.pdes.sequential.SequentialEngine` -- a deterministic
  single-queue scheduler used by all network experiments,
* :class:`~repro.pdes.conservative.ConservativeEngine` -- a YAWNS-style
  lookahead-window scheduler over partitioned LPs,
* :class:`~repro.pdes.timewarp.TimeWarpEngine` -- an optimistic Time Warp
  scheduler with state saving, rollback, anti-messages and GVT-based
  fossil collection.

All three produce identical event trajectories for models with unique
``(time, priority)`` keys; this is verified by the PHOLD tests in
``tests/pdes``.
"""

from repro.pdes.event import Event, Priority
from repro.pdes.lp import LP
from repro.pdes.engine import Engine
from repro.pdes.sequential import SequentialEngine
from repro.pdes.conservative import ConservativeEngine
from repro.pdes.timewarp import TimeWarpEngine
from repro.pdes.rng import lp_stream

__all__ = [
    "Event",
    "Priority",
    "LP",
    "Engine",
    "SequentialEngine",
    "ConservativeEngine",
    "TimeWarpEngine",
    "lp_stream",
]
