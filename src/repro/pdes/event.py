"""Event objects and ordering keys for the PDES kernel.

Events are ordered by ``(time, priority, seq)``.  ``seq`` is a globally
monotone sequence number assigned at scheduling time; it makes the
ordering total, so runs are reproducible for a fixed schedule order.
:meth:`Event.__lt__` implements that total order, so events sort and
compare directly; the engines' internal queues nevertheless store
``(time, priority, seq, Event)`` tuples, because CPython resolves
tuple comparisons in C while a raw-event heap pays a Python-level
``__lt__`` call per comparison (measured 15-20% slower end-to-end).
Cross-engine determinism additionally requires the ``(time, priority)``
part of the key to be unique per destination LP (the engines may assign
``seq`` in different orders); the network models guarantee this by
deriving event times from continuous quantities.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any


class Priority(IntEnum):
    """Coarse event classes used to break timestamp ties deterministically.

    Lower values run first at equal timestamps.  ``CONTROL`` events
    (e.g. GVT bookkeeping, stat flushes) run before model events so that
    windowed counters close their bins before new traffic is recorded.
    """

    CONTROL = 0
    NETWORK = 1
    MPI = 2
    WAKEUP = 3
    LOW = 9


class Event:
    """A timestamped message addressed to one logical process.

    Parameters
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    dst:
        Destination LP id.
    kind:
        Small string tag dispatched on by the LP's handler.
    data:
        Arbitrary payload (kept opaque by the kernel).
    priority:
        Tie-break class, see :class:`Priority`.
    src:
        Originating LP id (or ``-1`` for external/initial events).
    send_time:
        Time at which the event was scheduled; used by Time Warp for
        causality checks and anti-message matching.
    """

    __slots__ = ("time", "dst", "kind", "data", "priority", "src", "send_time", "seq")

    def __init__(
        self,
        time: float,
        dst: int,
        kind: str,
        data: Any = None,
        priority: int = Priority.NETWORK,
        src: int = -1,
        send_time: float = 0.0,
    ) -> None:
        self.time = time
        self.dst = dst
        self.kind = kind
        self.data = data
        self.priority = priority
        self.src = src
        self.send_time = send_time
        self.seq = -1  # assigned by the engine at scheduling time

    def __lt__(self, other: "Event") -> bool:
        """Heap ordering on ``(time, priority, seq)``.

        Branchy on purpose: almost all comparisons are decided by the
        timestamp alone, so the common case is two attribute loads and
        one float compare -- cheaper than building two key tuples.
        """
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def key(self) -> tuple[float, int, int]:
        """Total ordering key used by every engine's event queue."""
        return (self.time, self.priority, self.seq)

    def uid(self) -> tuple[float, int, int, int]:
        """Identity used for anti-message matching in Time Warp."""
        return (self.time, self.priority, self.seq, self.dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(t={self.time:.9f}, dst={self.dst}, kind={self.kind!r}, "
            f"prio={int(self.priority)}, seq={self.seq})"
        )
