"""Optimistic (Time Warp) scheduler with rollback and GVT.

This emulates ROSS's optimistic mode inside one process: each LP is
advanced greedily in round-robin order, exactly as if every LP had its
own processor.  An LP may therefore run ahead of its peers; when a
*straggler* (an event older than the LP's local virtual time) arrives,
the LP rolls back:

1. restore the newest saved state older than the straggler,
2. return the rolled-back processed events to the pending queue,
3. cancel every event it sent from the rolled-back region by delivering
   *anti-messages*, which may trigger secondary rollbacks downstream.

Global Virtual Time (GVT) -- the minimum timestamp any LP could still
roll back to -- advances monotonically; state/history older than GVT is
*fossil collected*.  Statistics reported by the engine
(``events_processed``) count committed events only.

The network experiments run on the sequential engine; Time Warp exists
to reproduce the ROSS layer of the paper's stack and is validated by the
PHOLD equivalence tests.
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.pdes import eventheap
from repro.pdes.engine import Engine
from repro.pdes.event import Event


class _LpRuntime:
    """Bookkeeping the optimistic scheduler keeps per LP."""

    __slots__ = ("pending", "processed", "sent", "lvt")

    def __init__(self) -> None:
        # min-heap in the shared eventheap entry layout; the leading key
        # triple keeps heap comparisons at C speed.
        self.pending: list[eventheap.Entry] = []
        # chronological list of (Event, state-before) pairs
        self.processed: list[tuple[Event, Any]] = []
        # chronological list of events this LP emitted (for anti-messages)
        self.sent: list[Event] = []
        self.lvt: float = 0.0


class TimeWarpEngine(Engine):
    """Single-process emulation of a Time Warp optimistic scheduler.

    Parameters
    ----------
    gvt_interval:
        Number of scheduler rounds between GVT computations / fossil
        collections.
    """

    def __init__(self, gvt_interval: int = 64) -> None:
        super().__init__()
        if gvt_interval < 1:
            raise ValueError(f"gvt_interval must be >= 1, got {gvt_interval}")
        self.gvt_interval = gvt_interval
        self._rt: list[_LpRuntime] = []
        self._current_lp: int = -1
        self.gvt: float = 0.0
        self.rollbacks: int = 0
        self.anti_messages: int = 0
        self.events_executed: int = 0  # including later-rolled-back work

    # -- engine plumbing -----------------------------------------------------
    def register(self, lp, partition: int | None = None) -> int:
        lp_id = super().register(lp, partition)
        self._rt.append(_LpRuntime())
        return lp_id

    def _push(self, ev: Event) -> None:
        rt = self._rt[ev.dst]
        if self._current_lp >= 0:
            self._rt[self._current_lp].sent.append(ev)
        eventheap.push(rt.pending, ev)
        if ev.time < rt.lvt:
            # Straggler: the destination already executed past this time.
            self._rollback(ev.dst, ev.time)

    # -- rollback machinery ----------------------------------------------------
    def _rollback(self, lp_id: int, to_time: float) -> None:
        """Undo every event of ``lp_id`` with timestamp >= ``to_time``."""
        rt = self._rt[lp_id]
        if not rt.processed or rt.processed[-1][0].time < to_time:
            return
        self.rollbacks += 1
        # Find the first processed entry at/after the straggler time.
        lo, hi = 0, len(rt.processed)
        while lo < hi:
            mid = (lo + hi) // 2
            if rt.processed[mid][0].time < to_time:
                lo = mid + 1
            else:
                hi = mid
        undone = rt.processed[lo:]
        del rt.processed[lo:]
        # Restore the state saved just before the oldest undone event.
        self.lps[lp_id].load_state(undone[0][1])
        rt.lvt = rt.processed[-1][0].time if rt.processed else 0.0
        # Re-queue the undone input events.
        for ev, _state in undone:
            eventheap.push(rt.pending, ev)
        # Cancel outputs emitted from the undone region.
        cancel_from = undone[0][0].time
        keep: list[Event] = []
        to_cancel: list[Event] = []
        for out in rt.sent:
            (to_cancel if out.send_time >= cancel_from else keep).append(out)
        rt.sent = keep
        for out in to_cancel:
            self._annihilate(out)

    def _annihilate(self, ev: Event) -> None:
        """Deliver an anti-message for ``ev``: remove it wherever it is."""
        self.anti_messages += 1
        rt = self._rt[ev.dst]
        uid = ev.uid()
        # Case 1: still pending -- drop it from the queue.
        for i, (_, _, _, pend) in enumerate(rt.pending):
            if pend.uid() == uid:
                rt.pending[i] = rt.pending[-1]
                rt.pending.pop()
                heapq.heapify(rt.pending)
                return
        # Case 2: already processed -- secondary rollback, then drop it.
        for i, (done, _state) in enumerate(rt.processed):
            if done.uid() == uid:
                self._rollback(ev.dst, done.time)
                # The rollback re-queued it as pending; remove it now.
                for j, (_, _, _, pend) in enumerate(rt.pending):
                    if pend.uid() == uid:
                        rt.pending[j] = rt.pending[-1]
                        rt.pending.pop()
                        heapq.heapify(rt.pending)
                        return
                raise AssertionError("annihilated event vanished during rollback")
        # Case 3: already annihilated (positive message never arrived first
        # is impossible in-process) -- nothing to do.

    # -- GVT / fossil collection -------------------------------------------------
    def _compute_gvt(self) -> float:
        gvt = float("inf")
        for rt in self._rt:
            if rt.pending:
                gvt = min(gvt, rt.pending[0][0])
        return gvt

    def _fossil_collect(self, gvt: float) -> None:
        for rt in self._rt:
            lo = 0
            while lo < len(rt.processed) and rt.processed[lo][0].time < gvt:
                lo += 1
            if lo:
                self.events_processed += lo
                del rt.processed[:lo]
            rt.sent = [ev for ev in rt.sent if ev.send_time >= gvt]

    # -- main loop ------------------------------------------------------------------
    def run(self, until: float = float("inf"), max_events: int | None = None) -> float:
        # ``executed == budget`` is the stop condition, so an unlimited
        # run uses -1 (never equal) and ``max_events=0`` commits nothing.
        budget = -1 if max_events is None else max_events
        if budget == 0:
            self._run_end_hooks()
            return self.now
        executed = 0
        rounds = 0
        n = len(self.lps)
        while True:
            progressed = False
            for lp_id in range(n):
                rt = self._rt[lp_id]
                if not rt.pending or rt.pending[0][0] > until:
                    continue
                ev = heapq.heappop(rt.pending)[3]
                state = self.lps[lp_id].save_state()
                self.now = ev.time
                self._current_lp = lp_id
                self._origin = lp_id
                self.lps[lp_id].handle(ev)
                self._current_lp = -1
                self._origin = -1
                rt.processed.append((ev, state))
                rt.lvt = ev.time
                self.events_executed += 1
                executed += 1
                progressed = True
                if executed == budget:
                    self._finalize(until)
                    return self.now
            rounds += 1
            if rounds % self.gvt_interval == 0:
                gvt = self._compute_gvt()
                self.gvt = min(gvt, until)
                self._fossil_collect(self.gvt)
            if not progressed:
                break
        self._finalize(until)
        return self.now

    def _finalize(self, until: float) -> None:
        self.gvt = min(self._compute_gvt(), until) if until < float("inf") else self._compute_gvt()
        self._fossil_collect(float("inf"))
        committed = [rt.lvt for rt in self._rt if rt.lvt > 0.0]
        self.now = max(committed) if committed else self.now
        if self.now < until < float("inf"):
            self.now = until
        self._run_end_hooks()
