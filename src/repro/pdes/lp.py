"""Logical process base class."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.pdes.engine import Engine
    from repro.pdes.event import Event


class LP:
    """A logical process: a state machine driven by timestamped events.

    Subclasses implement :meth:`handle`.  LPs that run under the
    optimistic engine must additionally implement :meth:`save_state` /
    :meth:`load_state` (the defaults raise, making the requirement
    explicit rather than silently wrong).
    """

    __slots__ = ("lp_id", "engine")

    def __init__(self) -> None:
        self.lp_id: int = -1
        self.engine: "Engine | None" = None

    # -- wiring ---------------------------------------------------------
    def bind(self, engine: "Engine", lp_id: int) -> None:
        """Called by the engine when the LP is registered."""
        self.engine = engine
        self.lp_id = lp_id

    # -- model interface -------------------------------------------------
    def handle(self, event: "Event") -> None:
        """Process one event.  May schedule new events via ``self.engine``."""
        raise NotImplementedError

    # -- optimistic-execution support -------------------------------------
    def save_state(self) -> Any:
        """Return an opaque snapshot of the LP's mutable state."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state saving; "
            "it cannot run under TimeWarpEngine"
        )

    def load_state(self, state: Any) -> None:
        """Restore a snapshot previously produced by :meth:`save_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state restore; "
            "it cannot run under TimeWarpEngine"
        )
