"""Deterministic per-LP random streams.

Every stochastic decision in the simulator (adaptive route choice,
Valiant intermediate groups, synthetic traffic destinations, placement
shuffles) draws from a stream keyed by ``(seed, stream_id)``.  Philox is
counter-based, so streams are statistically independent and a given
``(seed, stream_id)`` pair produces the same sequence on every engine
and platform -- the property that makes sequential/conservative/
optimistic runs comparable.
"""

from __future__ import annotations

import numpy as np


def lp_stream(seed: int, stream_id: int) -> np.random.Generator:
    """Return the deterministic random stream for one LP / component.

    Parameters
    ----------
    seed:
        Experiment-level seed.
    stream_id:
        Component identity (LP id, job id, ...).  Streams with different
        ids are independent even under the same seed.
    """
    if stream_id < 0:
        raise ValueError(f"stream_id must be non-negative, got {stream_id}")
    return np.random.Generator(np.random.Philox(key=np.uint64(seed), counter=[0, 0, 0, np.uint64(stream_id)]))


class SplitMix:
    """A tiny, allocation-free 64-bit PRNG for hot paths.

    ``numpy.random.Generator`` calls cost ~1 us each, which dominates a
    per-packet adaptive-routing decision.  SplitMix64 gives us a few
    nanoseconds per draw with full determinism.  Used only where
    statistical quality requirements are modest (tie-breaking, picking
    one of k equivalent links).
    """

    __slots__ = ("state",)

    _GOLDEN = 0x9E3779B97F4A7C15
    _MASK = 0xFFFFFFFFFFFFFFFF

    def __init__(self, seed: int, stream_id: int = 0) -> None:
        # Mix the stream id into the seed so streams do not overlap.
        self.state = (seed * 0x2545F4914F6CDD1D + stream_id * self._GOLDEN + 1) & self._MASK

    def next_u64(self) -> int:
        self.state = (self.state + self._GOLDEN) & self._MASK
        z = self.state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return z ^ (z >> 31)

    def randint(self, n: int) -> int:
        """Uniform integer in ``[0, n)``."""
        if n <= 0:
            raise ValueError(f"randint bound must be positive, got {n}")
        return self.next_u64() % n

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        return seq[self.randint(len(seq))]
