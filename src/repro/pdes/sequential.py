"""Deterministic single-queue event scheduler.

This is the engine the network experiments run on.  One binary heap of
``(time, priority, seq, Event)`` entries: the leading key triple is
decided at C speed (``seq`` is unique, so a comparison never reaches
the ``Event`` element), which measures 15-20% faster end-to-end than
heaping raw events through the Python-level ``Event.__lt__``.

No speculation -- every committed event is final, which makes metric
collection trivially correct.
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.pdes import eventheap
from repro.pdes.engine import Engine
from repro.pdes.event import Event, Priority


class SequentialEngine(Engine):
    """Classic event-driven simulation loop over a binary heap."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: list[eventheap.Entry] = []

    def _push(self, ev: Event) -> None:
        # Engine-contract enqueue.  The schedule_fast override below
        # inlines this push for speed, so instrumenting _push alone does
        # not observe hot-path traffic on this engine.
        eventheap.push(self._queue, ev)

    def schedule_fast(
        self,
        time: float,
        dst: int,
        kind: str,
        data: Any = None,
        priority: int = Priority.NETWORK,
        src: int = -1,
    ) -> Event:
        # Flattened override of Engine.schedule_fast: the base class
        # documents the contract; this engine inlines construction and
        # push to drop two call frames from the hottest path in the tree.
        ev = Event(time, dst, kind, data, priority, src, self.now)
        slot = self._origin + 1
        counters = self._origin_seq
        c = counters[slot]
        counters[slot] = c + 1
        seq = ev.seq = (slot << 40) | c
        heapq.heappush(self._queue, (time, priority, seq, ev))
        return ev

    def empty(self) -> bool:
        return not self._queue

    def peek_time(self) -> float:
        """Timestamp of the next pending event (``inf`` if drained)."""
        return eventheap.peek_time(self._queue)

    def run(self, until: float = float("inf"), max_events: int | None = None) -> float:
        q = self._queue
        pop = heapq.heappop
        lps = self.lps
        # ``committed == budget`` is the stop condition, so an unlimited
        # run uses -1 (never equal) and ``max_events=0`` commits nothing.
        budget = -1 if max_events is None else max_events
        budget_hit = budget == 0
        committed = 0
        try:
            while q and not budget_hit:
                t = q[0]
                if t[0] > until:
                    break
                pop(q)
                ev = t[3]
                self.now = t[0]
                self._origin = ev.dst
                lps[ev.dst].handle(ev)
                committed += 1
                if committed == budget:
                    budget_hit = True
        finally:
            # Keep the committed-event count accurate even when a
            # handler raises mid-run (post-mortem reporting reads it),
            # and reset the seq origin to the environment slot.
            self._origin = -1
            self.events_processed += committed
        if not budget_hit and self.now < until < float("inf"):
            # Stopped at the horizon (drained or future events only): advance
            # the clock to the horizon so windowed statistics cover the full
            # requested interval.  A budget stop keeps the last event time.
            self.now = until
        self._run_end_hooks()
        return self.now
