"""Deterministic single-queue event scheduler.

This is the engine the network experiments run on.  One binary heap,
tuple keys ``(time, priority, seq)``, no speculation -- every committed
event is final, which makes metric collection trivially correct.
"""

from __future__ import annotations

import heapq

from repro.pdes.engine import Engine
from repro.pdes.event import Event


class SequentialEngine(Engine):
    """Classic event-driven simulation loop over a binary heap."""

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, int, int, Event]] = []

    def _push(self, ev: Event) -> None:
        heapq.heappush(self._heap, (ev.time, ev.priority, ev.seq, ev))

    def empty(self) -> bool:
        return not self._heap

    def peek_time(self) -> float:
        """Timestamp of the next pending event (``inf`` if drained)."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float = float("inf"), max_events: int | None = None) -> float:
        heap = self._heap
        pop = heapq.heappop
        lps = self.lps
        budget = max_events if max_events is not None else -1
        budget_hit = False
        while heap:
            t = heap[0][0]
            if t > until:
                break
            ev = pop(heap)[3]
            self.now = ev.time
            lps[ev.dst].handle(ev)
            self.events_processed += 1
            if budget > 0:
                budget -= 1
                if budget == 0:
                    budget_hit = True
                    break
        if not budget_hit and self.now < until < float("inf"):
            # Stopped at the horizon (drained or future events only): advance
            # the clock to the horizon so windowed statistics cover the full
            # requested interval.  A budget stop keeps the last event time.
            self.now = until
        self._run_end_hooks()
        return self.now
