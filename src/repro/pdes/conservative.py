"""Conservative (YAWNS-style) lookahead-window scheduler.

LPs are partitioned; the engine repeatedly computes the global floor
``T`` (minimum pending timestamp) and commits every event in the window
``[T, T + lookahead)`` before advancing to the next window.  Safety
rests on the model contract that *cross-partition* events carry at
least ``lookahead`` of delay, so anything a partition sends during the
window lands at or after the window boundary -- which is what lets a
parallel implementation execute the partitions of one window
concurrently with no further synchronization.  The contract is enforced
at scheduling time rather than assumed: a sub-lookahead cross-partition
event raises immediately, naming the offending event.

This mirrors how CODES/ROSS run in conservative (YAWNS) mode, where the
minimum link latency provides the lookahead.  Being a single-process
emulation, the engine commits each window's events in the deterministic
``(time, priority, seq)`` merge order -- the one serialization every
valid parallel execution of the window is equivalent to.  That makes a
conservative run *bit-identical* to a sequential run of the same model
(same committed event sequence, same RNG draw order), so the partition
plan, window advancement and per-partition commit streams can be
validated against sequential ground truth.  Partitioning the
network/MPI stack topology-aware lives in :mod:`repro.parallel`.

Scheduler control-plane actions that must cross partitions at the
current instant (e.g. fanning a job launch out to per-partition driver
LPs) go through :meth:`Engine.schedule_control`, which this engine
exempts from the contract -- in a parallel run those travel out-of-band
at a synchronization point, not as model messages.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.pdes import eventheap
from repro.pdes.engine import Engine
from repro.pdes.event import Event, Priority
from repro.pdes.lp import LP


class ConservativeEngine(Engine):
    """Partitioned lookahead-window scheduler.

    Parameters
    ----------
    lookahead:
        Guaranteed minimum delay of cross-partition events (seconds).
    n_partitions:
        Number of partitions to emulate.
    partition_fn:
        Maps an LP id to a partition index at registration time;
        defaults to ``lp_id % n``.  A registration with an explicit
        ``partition=`` argument takes precedence (the idiom for control
        LPs the partition plan cannot know about).
    """

    def __init__(
        self,
        lookahead: float,
        n_partitions: int = 4,
        partition_fn: Callable[[int], int] | None = None,
    ) -> None:
        super().__init__()
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead}")
        if n_partitions < 1:
            raise ValueError(f"need at least one partition, got {n_partitions}")
        self.lookahead = lookahead
        self.n_partitions = n_partitions
        self._partition_fn = partition_fn or (lambda lp_id: lp_id % n_partitions)
        # One global heap of (time, priority, seq, Event) entries: the
        # leading key triple keeps heap comparisons at C speed (see the
        # note in pdes/sequential.py).  Windows are carved out of it by
        # timestamp; the partition of each LP is resolved once at
        # registration into _part_of_lp, so the per-event partition
        # lookup on the push (contract check) and pop (stats) paths is
        # a plain list index.
        self._queue: list[eventheap.Entry] = []
        self._part_of_lp: list[int] = []
        self._current_partition: int = -1
        self.windows_executed: int = 0
        #: Events committed per partition (the per-partition commit
        #: streams a parallel run would execute concurrently).
        self.committed_by_partition: list[int] = [0] * n_partitions
        #: Events committed in the widest window so far.
        self.max_window_events: int = 0

    # -- partitioning ------------------------------------------------------
    def register(self, lp: LP, partition: int | None = None) -> int:
        lp_id = super().register(lp)
        part = self._partition_fn(lp_id) if partition is None else partition
        if not 0 <= part < self.n_partitions:
            raise ValueError(
                f"LP {lp_id}: partition {part} outside "
                f"[0, {self.n_partitions})"
            )
        self._part_of_lp.append(part)
        return lp_id

    def partition_of(self, lp_id: int) -> int:
        return self._part_of_lp[lp_id]

    # -- scheduling --------------------------------------------------------
    def _push(self, ev: Event) -> None:
        dst_part = self._part_of_lp[ev.dst]
        if (
            self._current_partition >= 0
            and dst_part != self._current_partition
            and ev.time < ev.send_time + self.lookahead
        ):
            raise RuntimeError(
                f"lookahead violation: cross-partition event {ev!r} scheduled "
                f"with delay {ev.time - ev.send_time:.3e} < lookahead "
                f"{self.lookahead:.3e}"
            )
        eventheap.push(self._queue, ev)

    def schedule_control(
        self,
        time: float,
        dst: int,
        kind: str,
        data: Any = None,
        priority: int = Priority.MPI,
        src: int = -1,
    ) -> Event:
        # Contract-exempt path: suspend the executing-partition marker
        # (which gates the check in _push) around the validated enqueue.
        saved = self._current_partition
        self._current_partition = -1
        try:
            return self.schedule_at(time, dst, kind, data, priority, src)
        finally:
            self._current_partition = saved

    # -- execution ---------------------------------------------------------
    def pending_floor(self) -> float:
        """Timestamp of the oldest pending event (``inf`` when drained).

        In a parallel run each worker reports its local floor and the
        master takes the global minimum -- the YAWNS window floor.
        """
        return eventheap.peek_time(self._queue)

    def commit_window(self, window_end: float, until: float = float("inf"),
                      budget: int = -1) -> tuple[int, bool]:
        """Commit every pending event in ``[heap floor, window_end)``.

        The extracted YAWNS window core: events are committed in the
        deterministic ``(time, priority, seq)`` merge order -- including
        events a handler schedules into the remainder of the window --
        stopping at ``window_end``, at the ``until`` horizon (events
        beyond it stay pending), or when ``budget`` more events have
        been committed (``-1`` = unlimited).  Returns ``(committed,
        budget_hit)``.  This same loop body executes one partition's
        share of a window inside a :mod:`repro.parallel.mp` worker,
        where the heap holds only that partition's events.
        """
        q = self._queue
        pop = heapq.heappop
        lps = self.lps
        parts = self._part_of_lp
        per_part = self.committed_by_partition
        committed = 0
        budget_hit = False
        try:
            while q:
                t = q[0]
                time = t[0]
                if time >= window_end or time > until:
                    break
                pop(q)
                ev = t[3]
                part = parts[ev.dst]
                self._current_partition = part
                self._origin = ev.dst
                self.now = time
                lps[ev.dst].handle(ev)
                per_part[part] += 1
                committed += 1
                if committed == budget:
                    budget_hit = True
                    break
        finally:
            # Leave the engine re-runnable on *every* exit path,
            # including a handler raising mid-window: clear the
            # executing-partition marker (it gates the lookahead check
            # in _push) and the seq origin.
            self._current_partition = -1
            self._origin = -1
        return committed, budget_hit

    def run(self, until: float = float("inf"), max_events: int | None = None) -> float:
        # ``committed == budget`` is the stop condition, so an unlimited
        # run uses -1 (never equal) and ``max_events=0`` commits nothing.
        budget = -1 if max_events is None else max_events
        budget_hit = budget == 0
        committed = 0
        q = self._queue
        lookahead = self.lookahead
        try:
            while q and not budget_hit:
                floor = q[0][0]
                if floor > until:
                    break  # nothing left inside the horizon
                window_end = floor + lookahead
                self.windows_executed += 1
                window_events, budget_hit = self.commit_window(
                    window_end, until, -1 if budget < 0 else budget - committed
                )
                committed += window_events
                if window_events > self.max_window_events:
                    self.max_window_events = window_events
        finally:
            self.events_processed += committed
        if not budget_hit and self.now < until < float("inf"):
            self.now = until
        self._run_end_hooks()
        return self.now
