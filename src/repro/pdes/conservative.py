"""Conservative (YAWNS-style) lookahead-window scheduler.

LPs are partitioned; each partition owns a private event queue.  The
engine repeatedly computes the global floor ``T`` (minimum pending
timestamp across partitions) and lets every partition process all of its
events in ``[T, T + lookahead)``.  Safety rests on the model contract
that *cross-partition* events carry at least ``lookahead`` of delay, so
anything a partition sends during the window lands at or after the
window boundary.  The contract is enforced at scheduling time rather
than assumed.

This mirrors how CODES/ROSS run in conservative (YAWNS) mode, where the
minimum link latency provides the lookahead.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.pdes.engine import Engine
from repro.pdes.event import Event


class ConservativeEngine(Engine):
    """Partitioned lookahead-window scheduler.

    Parameters
    ----------
    lookahead:
        Guaranteed minimum delay of cross-partition events (seconds).
    n_partitions:
        Number of partitions to emulate.
    partition_fn:
        Maps an LP id to a partition index; defaults to ``lp_id % n``.
    """

    def __init__(
        self,
        lookahead: float,
        n_partitions: int = 4,
        partition_fn: Callable[[int], int] | None = None,
    ) -> None:
        super().__init__()
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead}")
        if n_partitions < 1:
            raise ValueError(f"need at least one partition, got {n_partitions}")
        self.lookahead = lookahead
        self.n_partitions = n_partitions
        self._partition_fn = partition_fn or (lambda lp_id: lp_id % n_partitions)
        # Per-partition heaps of (time, priority, seq, Event) entries:
        # the leading key triple keeps heap comparisons at C speed (see
        # the note in pdes/sequential.py).
        self._heaps: list[list[tuple[float, int, int, Event]]] = [
            [] for _ in range(n_partitions)
        ]
        self._current_partition: int = -1
        self.windows_executed: int = 0

    def partition_of(self, lp_id: int) -> int:
        return self._partition_fn(lp_id)

    def _push(self, ev: Event) -> None:
        dst_part = self.partition_of(ev.dst)
        if (
            self._current_partition >= 0
            and dst_part != self._current_partition
            and ev.time < ev.send_time + self.lookahead
        ):
            raise RuntimeError(
                f"lookahead violation: cross-partition event {ev!r} scheduled "
                f"with delay {ev.time - ev.send_time:.3e} < lookahead "
                f"{self.lookahead:.3e}"
            )
        heapq.heappush(self._heaps[dst_part], (ev.time, ev.priority, ev.seq, ev))

    def _floor(self) -> float:
        times = [h[0][0] for h in self._heaps if h]
        return min(times) if times else float("inf")

    def run(self, until: float = float("inf"), max_events: int | None = None) -> float:
        # ``committed == budget`` is the stop condition, so an unlimited
        # run uses -1 (never equal) and ``max_events=0`` commits nothing.
        budget = -1 if max_events is None else max_events
        budget_hit = budget == 0
        committed = 0
        lps = self.lps
        try:
            while not budget_hit:
                floor = self._floor()
                if floor == float("inf") or floor > until:
                    break  # drained, or nothing left inside the horizon
                window_end = floor + self.lookahead
                self.windows_executed += 1
                for part in range(self.n_partitions):
                    heap = self._heaps[part]
                    self._current_partition = part
                    while heap and heap[0][0] < window_end and heap[0][0] <= until:
                        ev = heapq.heappop(heap)[3]
                        self.now = ev.time
                        lps[ev.dst].handle(ev)
                        committed += 1
                        if committed == budget:
                            budget_hit = True
                            break
                    self._current_partition = -1
                    if budget_hit:
                        break
        finally:
            # Leave the engine re-runnable on *every* exit path,
            # including a handler raising mid-window: clear the
            # executing-partition marker (it gates the lookahead check
            # in _push) and keep the committed count accurate.
            self._current_partition = -1
            self.events_processed += committed
        if not budget_hit and self.now < until < float("inf"):
            self.now = until
        self._run_end_hooks()
        return self.now
