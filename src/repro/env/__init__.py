"""``repro.env``: the gym-style control surface over simulation sessions.

Built on the stepwise :class:`~repro.union.session.SimulationSession`
lifecycle: an episode is one simulated scenario advanced in decision
windows, observed through versioned telemetry snapshots and steered by
control policies from the ``policy`` registry family.

* :mod:`repro.env.spaces`      -- dependency-free observation/action spaces
* :mod:`repro.env.environment` -- :class:`SimulationEnv` (reset/step/result)
* :mod:`repro.env.episodes`    -- episode rollouts + seed-batch runner

See ``docs/env.md`` for the observation/action schema and the policy
roster; ``union-sim env`` is the CLI entry point.
"""

from repro.env.environment import SimulationEnv, coerce_spec
from repro.env.episodes import EpisodeResult, run_episode, run_episodes
from repro.env.spaces import BoxSpace, DiscreteSpace, observation_names

__all__ = [
    "BoxSpace",
    "DiscreteSpace",
    "EpisodeResult",
    "SimulationEnv",
    "coerce_spec",
    "observation_names",
    "run_episode",
    "run_episodes",
]
