"""Episode rollouts: one env episode, or a seed-batch of them.

:func:`run_episode` drives a :class:`~repro.env.environment.SimulationEnv`
from ``reset`` to ``done`` under a scripted action sequence (default:
all-``keep``) and reduces it to a plain-data :class:`EpisodeResult`.
:func:`run_episodes` fans a list of seeds over the scenario's
:func:`~repro.scenario.batch.pool_map` helper -- episodes are
independent simulations, so they parallelize embarrassingly, exactly
like batch scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.env.environment import SimulationEnv, coerce_spec
from repro.scenario.batch import pool_map
from repro.scenario.spec import ScenarioSpec, parse_scenario


@dataclass
class EpisodeResult:
    """One finished episode, as plain (picklable, JSON-able) data."""

    scenario: str
    policy: dict[str, Any]
    seed: int
    window: float
    reward_kind: str
    steps: int
    total_reward: float
    end_time: float
    events: int
    #: The full scenario-result document (per-job rows, link summary,
    #: the ``env`` episode record).
    result: dict[str, Any] = field(repr=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "policy": dict(self.policy),
            "seed": self.seed,
            "window": self.window,
            "reward_kind": self.reward_kind,
            "steps": self.steps,
            "total_reward": self.total_reward,
            "end_time": self.end_time,
            "events": self.events,
            "result": dict(self.result),
        }


def run_episode(
    spec: "ScenarioSpec | Mapping | str | Path",
    policy: "str | Mapping | None" = None,
    seed: int | None = None,
    window: float | None = None,
    actions: Sequence[Any] | None = None,
    on_step=None,
) -> EpisodeResult:
    """Roll one episode to completion and reduce it.

    ``actions`` scripts the first ``len(actions)`` steps (labels or
    indices); once exhausted, the episode continues with ``keep``.
    ``on_step(step_index, observation, reward, info)`` is called after
    every step (the CLI's progress table hook).
    """
    env = SimulationEnv(spec, policy=policy, window=window)
    env.reset(seed=seed)
    queue = list(actions or [])
    done = False
    i = 0
    while not done:
        action = queue.pop(0) if queue else None
        obs, reward, done, info = env.step(action)
        if on_step is not None:
            on_step(i, obs, reward, info)
        i += 1
    res = env.result()
    assert res.env is not None
    return EpisodeResult(
        scenario=res.scenario,
        policy=dict(env.policy_table),
        seed=res.seed,
        window=env.window,
        reward_kind=env.reward_kind,
        steps=res.env["steps"],
        total_reward=res.env["total_reward"],
        end_time=res.end_time,
        events=res.events,
        result=res.to_json_dict(),
    )


def _episode_worker(item: tuple) -> EpisodeResult:
    """Pool worker: rebuild the spec from its plain-dict form (specs
    carry non-picklable state like live topologies only lazily, but the
    dict form is the robust cross-process currency)."""
    data, policy, seed, window = item
    return run_episode(parse_scenario(data), policy=policy, seed=seed,
                       window=window)


def run_episodes(
    spec: "ScenarioSpec | Mapping | str | Path",
    seeds: Sequence[int],
    policy: "str | Mapping | None" = None,
    window: float | None = None,
    workers: int = 1,
) -> list[EpisodeResult]:
    """Roll one episode per seed, optionally across a process pool.

    Results come back in seed order regardless of ``workers``.
    """
    parsed = coerce_spec(spec)
    data = parsed.to_dict()
    items = [(data, policy, seed, window) for seed in seeds]
    return pool_map(_episode_worker, items, workers)
