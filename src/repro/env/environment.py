"""A gym-style control surface over the stepwise simulation session.

:class:`SimulationEnv` turns any scenario spec into an episodic
environment: ``reset(seed)`` builds a fresh
:class:`~repro.union.session.SimulationSession` from the spec,
``step(action)`` advances the simulation one decision window and
returns ``(observation, reward, done, info)``, and ``result()``
reduces the finished episode through the **same** reduction as
``union-sim scenario`` -- so a scripted-baseline episode reproduces the
monolithic run's result JSON bit for bit (modulo the episode's own
``env`` record).

Actions select which control policy answers the session's decision
hooks (admission / placement / routing) during the *next* window:

``keep``
    No-op: the currently active policy keeps deciding.
``scripted`` / ``load-aware``
    Switch the active policy (resolved through the ``policy`` registry
    family) from the next decision on.
``defer``
    Reject any arrival that lands in the next window.  Deferral is
    rejection in this runtime -- the launch decision fires once, so a
    deferred job reports ``not started`` with the policy named in the
    reason -- exactly like the ``admission`` policy's verdicts.

The reward is the negative delta of a cumulative cost signal (the
running mean message latency over measured jobs by default), so the
episode return is minus the final cost: maximizing return minimizes
the cost, and every reward is finite by construction.

There is deliberately no Gymnasium dependency: the spaces are the
lightweight descriptions in :mod:`repro.env.spaces`, and the ``step``
tuple follows the classic 4-tuple API.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Mapping

from repro.env.spaces import BoxSpace, DiscreteSpace, observation_names
from repro.scenario.runner import (
    ScenarioResult,
    build_manager,
    build_scenario_topology,
    reduce_scenario_result,
)
from repro.scenario.spec import (
    ENV_REWARDS,
    EnvEntry,
    ScenarioError,
    ScenarioSpec,
    load_scenario,
    parse_policy_table,
    parse_scenario,
)
from repro.union.policy import (
    AdmissionRequest,
    ControlPolicy,
    PlacementRequest,
    RoutingRequest,
)
from repro.union.session import Observation, SimulationSession


def coerce_spec(spec: "ScenarioSpec | Mapping | str | Path") -> ScenarioSpec:
    """Accept a parsed spec, a plain mapping, or a spec file path."""
    if isinstance(spec, ScenarioSpec):
        return spec
    if isinstance(spec, Mapping):
        return parse_scenario(spec)
    return load_scenario(spec)


class _EnvControl(ControlPolicy):
    """The env's switchable delegate policy.

    Wraps the episode's configured base policy; :meth:`apply` retargets
    the hooks at the policy an action named, for the decisions of the
    next window.  Mirrors the base policy's ``scripted`` flag so a
    scripted-baseline episode keeps the bit-identical static placement
    path.
    """

    def __init__(self, base: ControlPolicy) -> None:
        super().__init__()
        self.base = base
        self.active = base
        self.name = f"env:{base.name}"
        self.scripted = base.scripted
        self.defer_window = False
        self._modes: dict[str, ControlPolicy] = {base.name: base}

    def bind(self, session) -> None:
        super().bind(session)
        for mode in self._modes.values():
            mode.bind(session)

    def apply(self, label: str) -> None:
        """Retarget the hooks per the action label (``keep``/``defer``/
        a policy name); deferral covers exactly one window."""
        self.defer_window = False
        if label == "keep":
            return
        if label == "defer":
            self.defer_window = True
            return
        if label not in self._modes:
            from repro.registry import build_policy

            mode = build_policy(label)
            if self.session is not None:
                mode.bind(self.session)
            self._modes[label] = mode
        self.active = self._modes[label]

    # -- hooks: delegate to the active mode --------------------------------
    def admit(self, req: AdmissionRequest) -> bool:
        if self.defer_window and req.arrival > 0:
            return False
        return self.active.admit(req)

    def place(self, req: PlacementRequest) -> list[int] | None:
        return self.active.place(req)

    def route(self, req: RoutingRequest) -> str | None:
        return self.active.route(req)


class SimulationEnv:
    """Episodic step/observe/act interface over one scenario.

    Configuration comes from the spec's ``[env]`` table, overridable
    per instance (``policy``/``window``/``reward`` keyword arguments);
    plain scenarios without an ``[env]`` table run with the defaults
    (scripted policy, horizon/8 window, ``avg_latency`` reward).
    """

    #: Action labels, in action-index order.
    ACTIONS = ("keep", "scripted", "load-aware", "defer")

    def __init__(
        self,
        spec: "ScenarioSpec | Mapping | str | Path",
        policy: "str | Mapping | None" = None,
        window: float | None = None,
        reward: str | None = None,
    ) -> None:
        self.spec = coerce_spec(spec)
        cfg = self.spec.env or EnvEntry()
        self.policy_table = (
            parse_policy_table(policy) if policy is not None
            else dict(cfg.policy)
        )
        self.window = window if window is not None else (
            cfg.window if cfg.window is not None else self.spec.horizon / 8
        )
        if not self.window > 0:
            raise ScenarioError(f"env window must be > 0, got {self.window!r}")
        self.reward_kind = reward if reward is not None else cfg.reward
        if self.reward_kind not in ENV_REWARDS:
            raise ScenarioError(
                f"unknown reward {self.reward_kind!r}; "
                f"choose from {list(ENV_REWARDS)}"
            )
        self.action_space = DiscreteSpace(self.ACTIONS)
        topo = build_scenario_topology(self.spec)
        self.observation_space = BoxSpace(observation_names(topo.n_routers))
        self._session: SimulationSession | None = None
        self._run_spec: ScenarioSpec = self.spec
        self._control: _EnvControl | None = None
        self._done = False
        self._cost = 0.0
        self._total_reward = 0.0
        self._step_log: list[dict[str, Any]] = []

    # -- episode lifecycle -------------------------------------------------
    def reset(self, seed: int | None = None) -> Observation:
        """Build a fresh session (optionally reseeded) and observe it.

        Every reset wires a brand-new manager/fabric/session -- the
        engines underneath are single-use -- so episodes are fully
        independent and reproducible from ``(spec, seed)``.
        """
        spec = self.spec
        if seed is not None and seed != spec.seed:
            spec = dataclasses.replace(spec, seed=seed)
        self._run_spec = spec
        from repro.registry import build_policy

        self._control = _EnvControl(build_policy(dict(self.policy_table)))
        mgr = build_manager(spec)
        self._session = mgr.session(self._control).build()
        self._done = False
        self._cost = 0.0
        self._total_reward = 0.0
        self._step_log = []
        return self._session.observe()

    def step(self, action: "int | str | None" = None
             ) -> tuple[Observation, float, bool, dict[str, Any]]:
        """Apply ``action`` to the next window and advance one window.

        ``action`` is an index into :attr:`action_space`, a label, or
        ``None`` for ``keep``.  Returns the classic 4-tuple
        ``(observation, reward, done, info)``.
        """
        if self._session is None:
            raise RuntimeError("call reset() before step()")
        if self._done:
            raise RuntimeError("episode is done; call reset() to start a new one")
        assert self._control is not None
        label = self.ACTIONS[self.action_space.index(
            "keep" if action is None else action)]
        self._control.apply(label)
        horizon = self._run_spec.horizon
        target = min(self._session.engine.now + self.window, horizon)
        self._session.step(target)
        obs = self._session.observe()
        cost = self._episode_cost()
        reward = -(cost - self._cost)
        self._cost = cost
        self._total_reward += reward
        # Episode ends at the horizon, or early once every job reached a
        # terminal state (endless background injectors run to the
        # horizon, so they never trigger the early exit).
        self._done = obs.clock >= horizon or all(
            state in ("finished", "skipped") for state in obs.job_states.values()
        )
        if self._done:
            self._session.finalize()
        info = {
            "action": label,
            "policy": self._control.active.name,
            "clock": obs.clock,
            "events": obs.events,
            self.reward_kind: cost,
        }
        self._step_log.append(
            {"action": label, "clock": obs.clock, "reward": reward})
        return obs, reward, self._done, info

    def result(self) -> ScenarioResult:
        """Reduce the finished episode to a :class:`ScenarioResult`.

        Identical to the ``union-sim scenario`` reduction (same job
        rows, link summary, metrics sinks) plus the episode's ``env``
        record (policy, window, per-step rewards).
        """
        if self._session is None or not self._done:
            raise RuntimeError("episode is not done; run it to completion "
                               "(step() until done) before result()")
        res = reduce_scenario_result(self._run_spec, self._session.finalize())
        res.env = {
            "policy": dict(self.policy_table),
            "window": self.window,
            "reward": self.reward_kind,
            "steps": len(self._step_log),
            "total_reward": self._total_reward,
            "step_log": [dict(s) for s in self._step_log],
        }
        return res

    # -- reward ------------------------------------------------------------
    def _episode_cost(self) -> float:
        """The cumulative cost signal so far (always finite).

        ``avg_latency``: mean message latency across every message the
        measured (non-background) jobs have received so far.
        ``comm_time``: the worst per-rank blocked-in-MPI time over
        measured jobs.
        """
        assert self._session is not None and self._session.mpi is not None
        measured = {j.name for j in self._session.manager.jobs
                    if not j.background}
        results = [r for r in self._session.mpi.results()
                   if r.name in measured]
        if self.reward_kind == "comm_time":
            return max((r.max_comm_time() for r in results), default=0.0)
        total = n = 0.0
        for r in results:
            lats = r.all_latencies()
            total += sum(lats)
            n += len(lats)
        return total / n if n else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = ("done" if self._done
                 else "running" if self._session is not None else "new")
        return (f"<SimulationEnv {self.spec.name!r} {state}: "
                f"policy {self.policy_table['type']!r}, "
                f"window {self.window:g}s, reward {self.reward_kind}>")
