"""Lightweight observation/action space descriptions.

Deliberately dependency-free stand-ins for the Gymnasium space classes
(the container must not grow new dependencies): just enough structure
for a controller to know what comes out of
:meth:`~repro.env.environment.SimulationEnv.reset`/``step`` and what
goes in -- a labelled discrete action set and a fixed-length numeric
observation vector.  The field-by-field meaning of the observation is
:class:`repro.union.session.Observation` (see ``docs/env.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class DiscreteSpace:
    """``n`` labelled choices; actions are indices or their labels."""

    labels: tuple[str, ...]

    @property
    def n(self) -> int:
        return len(self.labels)

    def contains(self, action: Any) -> bool:
        if isinstance(action, str):
            return action in self.labels
        return isinstance(action, int) and not isinstance(action, bool) \
            and 0 <= action < self.n

    def index(self, action: Any) -> int:
        """Normalize a label or index to an index; raises on unknowns."""
        if isinstance(action, str):
            if action not in self.labels:
                raise ValueError(
                    f"unknown action {action!r}; choose from {list(self.labels)}"
                )
            return self.labels.index(action)
        if not self.contains(action):
            raise ValueError(
                f"action index {action!r} outside [0, {self.n}); "
                f"labels: {list(self.labels)}"
            )
        return int(action)

    def sample(self, rng) -> int:
        """A uniform action index drawn from ``rng`` (``random.Random``
        or ``numpy`` generator -- anything with ``randrange``/``integers``)."""
        if hasattr(rng, "randrange"):
            return rng.randrange(self.n)
        return int(rng.integers(self.n))

    def __repr__(self) -> str:
        return f"DiscreteSpace({self.n}: {', '.join(self.labels)})"


@dataclass(frozen=True)
class BoxSpace:
    """A fixed-length vector of floats (``Observation.to_vector()``).

    ``names`` labels each component; bounds are informational
    (observations are unnormalized simulation quantities, all >= 0).
    """

    names: tuple[str, ...] = field(default=())

    @property
    def shape(self) -> tuple[int]:
        return (len(self.names),)

    def contains(self, vector: Any) -> bool:
        try:
            return len(vector) == len(self.names) and all(
                isinstance(float(x), float) for x in vector
            )
        except (TypeError, ValueError):
            return False

    def __repr__(self) -> str:
        return f"BoxSpace(shape={self.shape})"


def observation_names(n_routers: int) -> tuple[str, ...]:
    """Component labels of the observation vector for an ``n_routers``
    fabric -- the scalar :class:`~repro.union.session.Observation`
    fields in ``to_vector()`` order, then per-router load and queue."""
    scalars = ("clock", "events", "jobs_total", "jobs_started",
               "jobs_finished", "pending", "free_nodes", "in_flight")
    return (
        scalars
        + tuple(f"router_load.{r}" for r in range(n_routers))
        + tuple(f"router_queue.{r}" for r in range(n_routers))
    )
