"""Fault injection: scheduled fabric/storage degradation as events.

Faults are declared in a scenario's ``[[faults]]`` table (parsed and
validated by :mod:`repro.scenario.spec`) and lowered onto the engine
control plane here: the :class:`FaultPlane` registers one controller LP
and schedules a ``fault_on``/``fault_off`` control event per entry, so
fault transitions commit in the same deterministic event order on every
engine -- a faulted run is still bit-identical between the sequential
and the conservative engine, and between two runs of the same spec.

Four fault kinds (``docs/faults.md``):

``link-degrade``
    Scale one link's bandwidth by ``factor`` in both directions; any
    routing may keep using it (slower).
``link-down``
    Take one link out: adaptive routings steer around it (the scenario
    parser rejects deterministic routings up front).
``router-down``
    Take one router out of transit: paths avoid it, and its attached
    nodes are masked from new job placements while it is down.
``storage-slow``
    Multiply every storage server's service time by ``factor``.

Telemetry lives under ``net.fault.*``.
"""

from repro.faults.plane import FaultPlane

__all__ = ["FaultPlane"]
