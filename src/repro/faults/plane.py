"""FaultPlane: schedule, apply and revert fabric/storage faults.

The plane owns the *mechanics* of fault injection; the *declaration*
lives in the scenario spec (``[[faults]]`` entries, already validated
for shape and routing capability by :mod:`repro.scenario.spec`).  One
controller LP is registered on the run's engine and every entry becomes
a pair of control events (``schedule_control`` at ``start`` and
``start + duration``) -- the control plane is exempt from the
partitioned engines' cross-partition lookahead contract, and events
commit in the deterministic global merge order, so a faulted run stays
bit-identical across engines and across repeated runs.

Application per kind:

* ``link-degrade`` rewrites the affected :class:`RouterLP` port tuples
  (both directions) with the scaled bandwidth and restores the saved
  originals at ``fault_off`` -- zero cost on the forwarding hot path.
* ``link-down`` / ``router-down`` publish the dead element into
  ``dead_links`` / ``failed_routers``; the fabric's routing policies
  are wrapped in :class:`~repro.network.routing.FaultAwareRouting`,
  which re-draws candidate paths until one avoids every dead element
  (counting ``net.fault.avoided`` / ``net.fault.unavoidable``).
  Packets already in flight complete their journey: delivery stays
  guaranteed, which is what keeps the byte-conservation invariant
  checkable under faults.
* ``router-down`` additionally masks the router's attached nodes out of
  the session's free pool, so arrivals cannot be placed on a dead
  router mid-outage (a placement that no longer fits is reported
  ``not_started`` with the fault named in the reason).
* ``storage-slow`` swaps every :class:`StorageServer`'s config for a
  copy with ``factor``-scaled service time, and swaps the originals
  back at ``fault_off``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.pdes.event import Event, Priority
from repro.pdes.lp import LP
from repro.telemetry import metric_segment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.fabric import NetworkFabric
    from repro.union.session import SimulationSession

#: Fault kinds that remove an element (mirrors
#: :data:`repro.scenario.spec.DOWN_FAULT_KINDS` without the import --
#: the plane only duck-types its entries).
_DOWN_KINDS = ("link-down", "router-down")

#: Candidate re-draws before a dead element is declared unavoidable.
_AVOID_TRIES = 8


class _FaultLP(LP):
    """Controller LP: receives the fault on/off control events."""

    __slots__ = ("plane",)

    def __init__(self, plane: "FaultPlane") -> None:
        super().__init__()
        self.plane = plane

    def handle(self, event: Event) -> None:
        if event.kind == "fault_on":
            self.plane._apply(event.data)
        elif event.kind == "fault_off":
            self.plane._revert(event.data)
        else:  # pragma: no cover - defensive
            raise ValueError(f"fault plane got unknown event kind {event.kind!r}")


class FaultPlane:
    """Lower a scenario's fault entries onto one run's control plane.

    ``entries`` are :class:`~repro.scenario.spec.FaultEntry`-shaped
    objects (``name``/``kind``/``start``/``duration``/``router``/
    ``router_b``/``factor``); the plane range-checks them against the
    live topology, which the parser could not.  ``session`` enables the
    placement-masking side of ``router-down``; ``storage`` (a
    :class:`~repro.storage.system.StorageSystem`) is required for
    ``storage-slow`` entries.
    """

    def __init__(
        self,
        entries: Sequence[Any],
        fabric: "NetworkFabric",
        storage: Any = None,
        session: "SimulationSession | None" = None,
    ) -> None:
        self.entries = list(entries)
        self.fabric = fabric
        self.storage = storage
        self.session = session
        self._validate(fabric.topo)
        #: Currently active faults, by name.
        self.active: dict[str, Any] = {}
        #: Routers out of transit service right now.
        self.failed_routers: set[int] = set()
        #: Directed router pairs whose link is out right now.
        self.dead_links: set[tuple[int, int]] = set()
        #: fault_on/fault_off events committed.
        self.transitions = 0
        #: Path selections re-drawn around a dead element / stuck with one.
        self.avoided = 0
        self.unavoidable = 0
        # Saved state for reverts, keyed by fault name.
        self._saved_ports: dict[str, list[tuple[int, int, tuple]]] = {}
        self._saved_configs: dict[str, list[tuple[Any, Any]]] = {}
        self._masked: dict[str, set[int]] = {}
        self._lp: _FaultLP | None = None
        t = fabric.telemetry
        t.gauge("net.fault.active", unit="faults", replace=True,
                doc="faults currently applied", fn=lambda: len(self.active))
        t.gauge("net.fault.transitions", unit="events", replace=True,
                doc="fault on/off control events committed",
                fn=lambda: self.transitions)
        t.gauge("net.fault.avoided", unit="paths", replace=True,
                doc="path selections re-drawn around a dead element",
                fn=lambda: self.avoided)
        t.gauge("net.fault.unavoidable", unit="paths", replace=True,
                doc="path selections that could not avoid a dead element",
                fn=lambda: self.unavoidable)
        self._gauges = {
            e.name: t.gauge(f"net.fault.{metric_segment(e.name)}.active",
                            replace=True,
                            doc=f"1 while fault {e.name!r} ({e.kind}) is applied")
            for e in self.entries
        }

    def _validate(self, topo) -> None:
        for e in self.entries:
            where = f"fault {e.name!r} ({e.kind})"
            if e.kind in ("link-degrade", "link-down"):
                for r in (e.router, e.router_b):
                    if not 0 <= r < topo.n_routers:
                        raise ValueError(
                            f"{where}: router {r} out of range "
                            f"[0, {topo.n_routers}) on this topology")
                if e.router_b not in topo.ports_to_router[e.router]:
                    raise ValueError(
                        f"{where}: routers {e.router} and {e.router_b} are "
                        "not directly linked on this topology")
            elif e.kind == "router-down":
                if not 0 <= e.router < topo.n_routers:
                    raise ValueError(
                        f"{where}: router {e.router} out of range "
                        f"[0, {topo.n_routers}) on this topology")
            elif e.kind == "storage-slow":
                if self.storage is None:
                    raise ValueError(
                        f"{where}: the run has no storage servers to slow "
                        "down (configure storage_nodes / [storage])")
            else:
                raise ValueError(f"{where}: unknown fault kind")

    # -- install -----------------------------------------------------------
    @property
    def needs_avoidance(self) -> bool:
        """Whether any entry requires routing around a dead element."""
        return any(e.kind in _DOWN_KINDS for e in self.entries)

    def install(self) -> None:
        """Register the controller LP and schedule every transition.

        Fault state changes carry CONTROL priority, so at their exact
        timestamp they commit before any model traffic.
        """
        engine = self.fabric.engine
        self._lp = _FaultLP(self)
        engine.register(self._lp, partition=0)
        for e in self.entries:
            engine.schedule_control(e.start, self._lp.lp_id, "fault_on", e,
                                    priority=Priority.CONTROL)
            engine.schedule_control(e.start + e.duration, self._lp.lp_id,
                                    "fault_off", e, priority=Priority.CONTROL)
        if self.needs_avoidance:
            self.fabric.attach_fault_plane(self)

    # -- routing-facing state ---------------------------------------------
    def blocked(self, path: Sequence[int]) -> bool:
        """Whether ``path`` crosses a dead link or a failed transit router.

        Endpoint routers are exempt: a packet sourced at (or destined
        to) a failed router's own terminal has nowhere else to go.
        """
        fr = self.failed_routers
        if fr and len(path) > 2:
            for r in path[1:-1]:
                if r in fr:
                    return True
        dl = self.dead_links
        if dl:
            prev = path[0]
            for nxt in path[1:]:
                if (prev, nxt) in dl:
                    return True
                prev = nxt
        return False

    def describe_active(self) -> str:
        """Names of the currently active faults, for skip reasons."""
        if not self.active:
            return ""
        return ", ".join(sorted(self.active))

    # -- transitions -------------------------------------------------------
    def _apply(self, e: Any) -> None:
        self.transitions += 1
        self.active[e.name] = e
        self._gauges[e.name].set(1)
        if e.kind == "link-degrade":
            self._scale_link(e)
        elif e.kind == "link-down":
            self.dead_links.add((e.router, e.router_b))
            self.dead_links.add((e.router_b, e.router))
        elif e.kind == "router-down":
            self.failed_routers.add(e.router)
            self._mask_router(e)
        else:  # storage-slow
            self._slow_storage(e)

    def _revert(self, e: Any) -> None:
        self.transitions += 1
        self.active.pop(e.name, None)
        self._gauges[e.name].set(0)
        if e.kind == "link-degrade":
            for rid, port, original in self._saved_ports.pop(e.name, ()):
                self.fabric.routers[rid].restore_port(port, original)
        elif e.kind == "link-down":
            self.dead_links.discard((e.router, e.router_b))
            self.dead_links.discard((e.router_b, e.router))
        elif e.kind == "router-down":
            self.failed_routers.discard(e.router)
            self._unmask_router(e)
        else:  # storage-slow
            for server, original in self._saved_configs.pop(e.name, ()):
                server.config = original

    def _scale_link(self, e: Any) -> None:
        saved = self._saved_ports[e.name] = []
        for a, b in ((e.router, e.router_b), (e.router_b, e.router)):
            router = self.fabric.routers[a]
            for port in self.fabric.topo.ports_to_router[a][b]:
                saved.append((a, port,
                              router.scale_port_bandwidth(port, e.factor)))

    def _slow_storage(self, e: Any) -> None:
        saved = self._saved_configs[e.name] = []
        for server in self.storage.servers:
            original = server.config
            server.config = replace(
                original,
                write_bw=original.write_bw / e.factor,
                read_bw=original.read_bw / e.factor,
                access_latency=original.access_latency * e.factor,
            )
            saved.append((server, original))

    # -- placement masking (router-down) -----------------------------------
    def _mask_router(self, e: Any) -> None:
        if self.session is None:
            return
        nodes = set(self.fabric.topo.nodes_of_router(e.router))
        self._masked[e.name] = self.session.fault_mask_nodes(nodes)

    def _unmask_router(self, e: Any) -> None:
        if self.session is None:
            return
        nodes = self._masked.pop(e.name, set())
        # A node may sit under *another* still-failed router (overlapping
        # outages): keep it masked under that fault instead of freeing it.
        free, _ = self._split_by_failed(nodes)
        self.session.fault_unmask_nodes(free)

    def absorb_freed(self, nodes: Iterable[int]) -> set[int]:
        """Filter nodes a finished job returns to the free pool.

        Nodes attached to a currently-failed router are captured into
        that fault's masked set (released at its ``fault_off``); the
        rest pass through.
        """
        free, _ = self._split_by_failed(set(nodes))
        return free

    def _split_by_failed(self, nodes: set[int]) -> tuple[set[int], set[int]]:
        """Partition ``nodes``; failed-router nodes are re-masked under
        the covering active ``router-down`` fault."""
        if not self.failed_routers:
            return nodes, set()
        topo = self.fabric.topo
        still_down = {n for n in nodes
                      if topo.router_of_node(n) in self.failed_routers}
        if still_down:
            for fault in self.active.values():
                if fault.kind == "router-down":
                    captured = {n for n in still_down
                                if topo.router_of_node(n) == fault.router}
                    if captured:
                        self._masked.setdefault(fault.name, set()).update(captured)
        return nodes - still_down, still_down
