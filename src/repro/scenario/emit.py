"""Deterministic TOML emission of scenario specs.

``to_toml(spec)`` is the inverse of :func:`repro.scenario.load_scenario`
for TOML files: the emitted text parses back (stdlib :mod:`tomllib`)
into a spec equal to the input, and re-emitting that spec reproduces
the text byte for byte.  That bit-stable round trip is what the
scenario generators (:mod:`repro.generate`) and the fuzz harness's
shrunken-repro writer (:mod:`repro.fuzz`) are built on -- a generated
spec is only *valid* if its serialized form survives the real parser.

The emitter covers exactly the value shapes :meth:`ScenarioSpec.to_dict`
produces: scalars, lists of scalars (inline arrays), nested mappings
(inline tables inside entries, ``[table]`` sections at the top level)
and lists of mappings (``[[section]]`` arrays of tables).  Strings are
JSON-escaped -- a JSON string literal is also a valid TOML basic
string -- and floats use ``repr``, which ``tomllib`` round-trips
exactly.
"""

from __future__ import annotations

import json
import re
from typing import Any, Mapping

from repro.scenario.spec import ScenarioSpec

_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


def _key(key: str) -> str:
    return key if _BARE_KEY.match(key) else json.dumps(key)


def _scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        # repr() emits a '.' or an exponent for every float, so the
        # token is a TOML float and tomllib reads the identical value.
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_scalar(v) for v in value) + "]"
    if isinstance(value, Mapping):
        items = ", ".join(f"{_key(k)} = {_scalar(v)}" for k, v in value.items())
        return "{" + items + "}"
    raise TypeError(f"cannot emit {type(value).__name__} value {value!r} as TOML")


def _table_lines(name: str, table: Mapping, header: str) -> list[str]:
    lines = [header.format(name)]
    for k, v in table.items():
        lines.append(f"{_key(k)} = {_scalar(v)}")
    return lines


def dump_toml(data: Mapping) -> str:
    """Serialize one plain scenario mapping to TOML text.

    Top-level scalars come first (TOML forbids them after a table
    header), then ``[table]`` sections, then ``[[array]]`` sections --
    each group in the mapping's own (deterministic) insertion order.
    """
    scalars: list[str] = []
    tables: list[str] = []
    for key, value in data.items():
        if isinstance(value, Mapping):
            tables.extend(["", *_table_lines(key, value, "[{}]")])
        elif isinstance(value, list) and value \
                and all(isinstance(v, Mapping) for v in value):
            for entry in value:
                tables.extend(["", *_table_lines(key, entry, "[[{}]]")])
        else:
            scalars.append(f"{_key(key)} = {_scalar(value)}")
    return "\n".join(scalars + tables) + "\n"


def to_toml(spec: ScenarioSpec) -> str:
    """The spec as TOML text that loads back equal and re-emits identical."""
    return dump_toml(spec.to_dict())
