"""Declarative experiment scenarios (the "as many scenarios as you can
imagine" layer).

One 20-line TOML/JSON file describes a whole hybrid-workload experiment:
the topology, routing, placement and seed, the measured jobs -- each
with an optional mid-simulation arrival time and per-job overrides --
and background-traffic injectors loading the fabric underneath them.

* :mod:`repro.scenario.spec`   -- parsing + validation (:func:`load_scenario`)
* :mod:`repro.scenario.emit`   -- deterministic TOML emission (:func:`to_toml`)
* :mod:`repro.scenario.runner` -- one scenario -> metrics (:func:`run_scenario`)
* :mod:`repro.scenario.batch`  -- a directory of scenarios -> one report

See ``docs/scenarios.md`` for the spec-format reference.
"""

from repro.scenario.batch import (
    BatchResult,
    discover_specs,
    pool_map,
    render_batch_summary,
    run_batch,
    run_spec_file,
)
from repro.scenario.runner import (
    JobReport,
    ScenarioResult,
    build_manager,
    build_scenario_topology,
    build_telemetry,
    reduce_scenario_result,
    render_scenario_report,
    run_scenario,
)
from repro.scenario.emit import dump_toml, to_toml
from repro.scenario.spec import (
    DOWN_FAULT_KINDS,
    FAULT_KINDS,
    EnvEntry,
    FaultEntry,
    JobEntry,
    MetricsEntry,
    ScenarioError,
    ScenarioSpec,
    StorageEntry,
    TrafficEntry,
    load_scenario,
    parse_engine_table,
    parse_policy_table,
    parse_scenario,
)

__all__ = [
    "BatchResult",
    "DOWN_FAULT_KINDS",
    "EnvEntry",
    "FAULT_KINDS",
    "FaultEntry",
    "JobEntry",
    "JobReport",
    "MetricsEntry",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioSpec",
    "StorageEntry",
    "TrafficEntry",
    "build_manager",
    "build_scenario_topology",
    "build_telemetry",
    "discover_specs",
    "dump_toml",
    "load_scenario",
    "parse_engine_table",
    "parse_policy_table",
    "parse_scenario",
    "pool_map",
    "reduce_scenario_result",
    "render_batch_summary",
    "render_scenario_report",
    "run_batch",
    "run_spec_file",
    "to_toml",
]
