"""Batch runner: fan a directory of scenario specs into one report.

``union-sim batch <dir>`` discovers every ``*.toml``/``*.json`` spec
under a directory, runs each scenario (sequentially, or across worker
processes with ``--jobs N`` -- scenarios are independent simulations, so
they parallelize embarrassingly via :mod:`multiprocessing`), and reduces
everything to one summary table plus an optional JSON report.  A spec
that fails to parse or crashes mid-run is reported alongside the
successes instead of aborting the rest of the batch.
"""

from __future__ import annotations

import json
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Callable

from repro.harness.report import format_seconds, render_table
from repro.scenario.runner import run_scenario
from repro.scenario.spec import (
    MetricsEntry,
    ScenarioError,
    load_scenario,
    parse_engine_table,
)


def pool_map(fn, items, workers: int = 1,
             on_crash: "Callable[[Any], Any] | None" = None) -> list:
    """Map ``fn`` over ``items``, optionally across a process pool.

    The shared fan-out helper of the batch runner, the harness sweeps,
    and the fuzz harness: simulations are independent, so they
    parallelize embarrassingly; results always come back in input
    order, and ``workers <= 1`` (or a single item) stays in-process so
    callers get identical behavior with no pool overhead.  ``fn`` and
    the items must be picklable when ``workers > 1``.

    A worker process that *dies* mid-item (SIGKILL, OOM) must not hang
    or sink the batch: every item whose future the broken pool
    poisoned is retried alone in a fresh single-worker pool, so
    innocent bystanders still produce results; an item that kills its
    worker again is mapped through ``on_crash(item)`` -- the hook
    batch-style callers use to produce per-item error entries.  With
    no hook, the :class:`BrokenProcessPool` propagates.
    """
    items = list(items)
    if workers > 1 and len(items) > 1:
        return _pool_map_processes(fn, items, min(workers, len(items)),
                                   on_crash)
    return [fn(i) for i in items]


def _pool_map_processes(fn, items: list, workers: int, on_crash) -> list:
    results: dict[int, Any] = {}
    retry: list[int] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, item) for item in items]
        for i, fut in enumerate(futures):
            try:
                results[i] = fut.result()
            except BrokenProcessPool:
                # One dead worker poisons every pending future; which
                # item actually killed it is unknowable from here.
                retry.append(i)
    for i in retry:
        # Isolate each suspect: a fresh single-worker pool per item
        # convicts exactly the item that crashes it.
        try:
            with ProcessPoolExecutor(max_workers=1) as solo:
                results[i] = solo.submit(fn, items[i]).result()
        except BrokenProcessPool:
            if on_crash is None:
                raise BrokenProcessPool(
                    f"worker process died while mapping item {i} "
                    f"({items[i]!r}); pass on_crash= to turn crashes "
                    "into per-item results"
                )
            results[i] = on_crash(items[i])
    return [results[i] for i in range(len(items))]


def discover_specs(directory: str | Path) -> list[Path]:
    """Every scenario file in ``directory``, sorted for stable ordering."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ScenarioError(f"not a directory: {directory}")
    return sorted(
        p for p in directory.iterdir()
        if p.suffix.lower() in (".toml", ".json") and p.is_file()
    )


def run_spec_file(
    path: str | Path,
    metrics_dir: str | Path | None = None,
    metrics_filter: list[str] | None = None,
    engine: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run one spec file; always returns a JSON-able dict.

    Shaped for :class:`multiprocessing.Pool` workers: errors become
    ``{"scenario", "path", "error"}`` records instead of exceptions, so
    one broken spec cannot take down a batch.

    ``metrics_dir`` routes each scenario's telemetry rows to
    ``<metrics_dir>/<spec filename>.metrics.jsonl`` (overriding the
    spec's own ``[metrics] jsonl``); the full filename keeps ``a.toml``
    and ``a.json`` in one directory from clobbering each other.
    ``metrics_filter`` overrides the export globs.  The spec's opt-in
    instrument flags are honored either way.  ``engine`` replaces every
    spec's ``[engine]`` table (the ``--engine`` batch override); it is
    validated like a parsed table, so a bad name fails per spec with
    the registry's message.
    """
    path = Path(path)
    try:
        spec = load_scenario(path)
        if metrics_dir is not None or metrics_filter:
            jsonl = (str(Path(metrics_dir) / f"{path.name}.metrics.jsonl")
                     if metrics_dir is not None else None)
            spec.metrics = (spec.metrics or MetricsEntry()).overridden(
                jsonl=jsonl, filter=metrics_filter,
            )
        if engine is not None:
            spec.engine = parse_engine_table(engine)
        result = run_scenario(spec).to_json_dict()
        result["path"] = str(path)
        return result
    except Exception as exc:  # noqa: BLE001 - the batch must survive any spec
        return {
            "scenario": path.stem,
            "path": str(path),
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


@dataclass
class BatchResult:
    """All per-scenario JSON dicts of one batch run."""

    results: list[dict[str, Any]] = field(default_factory=list)

    @property
    def failures(self) -> list[dict[str, Any]]:
        return [r for r in self.results if "error" in r]

    def to_json_dict(self) -> dict[str, Any]:
        return {"scenarios": self.results}

    def write_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_json_dict(), indent=2) + "\n")


def run_batch(
    paths: list[Path] | str | Path,
    workers: int = 1,
    metrics_dir: str | Path | None = None,
    metrics_filter: list[str] | None = None,
    engine: dict[str, Any] | None = None,
) -> BatchResult:
    """Run many scenario files; ``paths`` may also be a directory.

    ``workers > 1`` fans the specs out over a process pool; each worker
    simulates whole scenarios independently (results come back in input
    order either way).  ``metrics_dir``/``metrics_filter``/``engine``
    forward to :func:`run_spec_file` (one telemetry JSONL per scenario;
    one execution-engine override for every spec).
    """
    if isinstance(paths, (str, Path)):
        paths = discover_specs(paths)
    if not paths:
        raise ScenarioError("no .toml/.json scenario files to run")
    if metrics_dir is not None:
        try:
            Path(metrics_dir).mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            # exist_ok only tolerates an existing *directory*.
            raise ScenarioError(
                f"metrics directory {metrics_dir} collides with an existing "
                f"file: {exc}"
            ) from None
        # Metrics files key on the spec *filename*; an explicit path
        # list may carry same-named specs from different directories,
        # which would silently overwrite (or race on) one JSONL.
        by_name: dict[str, Path] = {}
        for p in map(Path, paths):
            other = by_name.setdefault(p.name, p)
            if other != p:
                raise ScenarioError(
                    f"specs {other} and {p} would both write "
                    f"{Path(metrics_dir) / (p.name + '.metrics.jsonl')}; "
                    "rename one or batch them separately"
                )
    worker = partial(run_spec_file, metrics_dir=metrics_dir,
                     metrics_filter=metrics_filter, engine=engine)
    return BatchResult(pool_map(worker, paths, workers,
                                on_crash=_crashed_spec_entry))


def _crashed_spec_entry(path: Path) -> dict[str, Any]:
    """The per-item error record for a spec that killed its worker --
    same shape as :func:`run_spec_file`'s exception records, so crash
    and crash-free failures render identically in the summary."""
    path = Path(path)
    return {
        "scenario": path.stem,
        "path": str(path),
        "error": "WorkerCrashed: the worker process running this spec "
                 "died (killed or out of memory)",
    }


def render_batch_summary(batch: BatchResult) -> str:
    """The ``union-sim batch`` summary: one row per scenario."""
    rows = []
    for r in batch.results:
        if "error" in r:
            rows.append((r["scenario"], "ERROR", "-", "-", "-", r["error"]))
            continue
        jobs = r["jobs"]
        apps = [j for j in jobs if not j["background"]]
        done = sum(1 for j in apps if j["finished"])
        worst = max((j["max_latency"] for j in apps if j["started"]), default=0.0)
        note = "; ".join(
            f"{j['name']}: {j['skip_reason']}" for j in jobs if j["skip_reason"]
        )
        rows.append((
            r["scenario"],
            f"{done}/{len(apps)} apps done",
            format_seconds(r["end_time"]),
            r["events"],
            format_seconds(worst),
            note or "-",
        ))
    return render_table(
        ["scenario", "status", "end time", "events", "worst max lat", "notes"],
        rows,
        title=f"batch: {len(batch.results)} scenario(s), "
              f"{len(batch.failures)} failure(s)",
    )
