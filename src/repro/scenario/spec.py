"""Declarative scenario specs: parsing and validation.

A *scenario* is one co-scheduled simulation described as data instead of
a hand-written Python script: the topology (any registered fabric model,
parameterized through its ``[topology]`` table), the fabric-wide routing
and placement policies (validated against that topology's registry
capability lists), the seed and horizon, a list of jobs -- each with an
optional arrival time and per-job routing/placement overrides -- and a
list of background-traffic injectors that load the fabric underneath the
measured applications.

Specs live in TOML (stdlib :mod:`tomllib`) or JSON files, or are built
programmatically from plain dicts via :func:`parse_scenario`.  The
format is documented with worked examples in ``docs/scenarios.md``;
``scripts/check_docs.py`` validates every snippet there against this
parser, so the docs cannot drift.

Every validation failure raises :class:`ScenarioError` carrying the
offending key path (``jobs[2].nranks``) and what was expected -- specs
are written by hand, so error messages are the user interface.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.harness.configs import NETWORKS, default_horizon
from repro.registry import (
    SCALES,
    EngineSpec,
    PolicySpec,
    RegistryError,
    TopologySpec,
    all_routing_names,
    available_placements,
    check_placement,
    engine_registry,
    placement_registry,
    policy_registry,
    routing_spec,
    topology_registry,
)
from repro.telemetry import metric_segment
from repro.workloads.catalog import app_catalog

#: Background-traffic patterns a ``[[traffic]]`` entry may name.
TRAFFIC_PATTERNS = ("uniform", "hotspot")

#: Reward signals an ``[env]`` table may name.
ENV_REWARDS = ("avg_latency", "comm_time")

#: Fault kinds a ``[[faults]]`` entry may name (``docs/faults.md``).
FAULT_KINDS = ("link-degrade", "link-down", "router-down", "storage-slow")

#: Fault kinds that take an element out entirely, so every effective
#: routing must be capable of steering around it (``RoutingSpec.adaptive``).
DOWN_FAULT_KINDS = ("link-down", "router-down")


class ScenarioError(ValueError):
    """A scenario spec failed validation; the message names the key path."""


def _err(path: str, problem: str) -> ScenarioError:
    where = f"{path}: " if path else ""
    return ScenarioError(f"{where}{problem}")


def _require_mapping(value: Any, path: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise _err(path, f"expected a table/object, got {type(value).__name__}")
    return value


def _check_keys(data: Mapping, allowed: dict[str, str], path: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        key = sorted(unknown)[0]
        expected = ", ".join(sorted(allowed))
        raise _err(
            f"{path}.{key}" if path else key,
            f"unknown key {key!r}; expected one of: {expected}",
        )


def _get_str(data: Mapping, key: str, path: str, default: str | None = None,
             choices: tuple[str, ...] | None = None) -> str | None:
    value = data.get(key, default)
    if value is None:
        return None
    if not isinstance(value, str):
        raise _err(f"{path}.{key}" if path else key,
                   f"expected a string, got {value!r}")
    if choices is not None and value not in choices:
        raise _err(f"{path}.{key}" if path else key,
                   f"{value!r} is not one of {list(choices)}")
    return value


def _get_int(data: Mapping, key: str, path: str, default: int | None = None,
             minimum: int | None = None) -> int | None:
    value = data.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _err(f"{path}.{key}" if path else key,
                   f"expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise _err(f"{path}.{key}" if path else key,
                   f"must be >= {minimum}, got {value}")
    return value


def _get_bool(data: Mapping, key: str, path: str, default: bool = False) -> bool:
    value = data.get(key, default)
    if not isinstance(value, bool):
        raise _err(f"{path}.{key}" if path else key,
                   f"expected true/false, got {value!r}")
    return value


def _get_float(data: Mapping, key: str, path: str, default: float | None = None,
               minimum: float | None = None) -> float | None:
    value = data.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _err(f"{path}.{key}" if path else key,
                   f"expected a number, got {value!r}")
    value = float(value)
    if minimum is not None and value < minimum:
        raise _err(f"{path}.{key}" if path else key,
                   f"must be >= {minimum}, got {value}")
    return value


@dataclass
class JobEntry:
    """One measured application in a scenario.

    Exactly one of ``app``/``source`` is set: ``app`` names a
    workload-catalog entry (``cosmoflow``, ``lammps``, ...) whose rank
    count and parameters become defaults; ``source`` points to a
    coNCePTuaL file (relative paths resolve against the spec file) that
    is translated to a Union skeleton when the scenario is built.
    """

    name: str
    app: str | None = None
    source: str | None = None
    nranks: int | None = None
    params: dict[str, Any] = field(default_factory=dict)
    arrival: float = 0.0
    routing: str | None = None
    placement: str | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name}
        if self.app is not None:
            out["app"] = self.app
        if self.source is not None:
            out["source"] = self.source
        if self.nranks is not None:
            out["nranks"] = self.nranks
        if self.params:
            out["params"] = dict(self.params)
        if self.arrival:
            out["arrival"] = self.arrival
        if self.routing is not None:
            out["routing"] = self.routing
        if self.placement is not None:
            out["placement"] = self.placement
        return out


@dataclass
class TrafficEntry:
    """One background-traffic injector (not a measured application)."""

    name: str
    pattern: str = "uniform"  # "uniform" | "hotspot"
    nranks: int = 8
    msg_bytes: int = 10240
    interval_s: float = 1e-3
    iters: int = 0  # 0 = endless (until the horizon)
    hot_ranks: int = 1  # hotspot only: how many ranks are targets
    arrival: float = 0.0
    routing: str | None = None
    placement: str | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "pattern": self.pattern,
            "nranks": self.nranks,
            "msg_bytes": self.msg_bytes,
            "interval_s": self.interval_s,
        }
        if self.iters:
            out["iters"] = self.iters
        if self.pattern == "hotspot":
            out["hot_ranks"] = self.hot_ranks
        if self.arrival:
            out["arrival"] = self.arrival
        if self.routing is not None:
            out["routing"] = self.routing
        if self.placement is not None:
            out["placement"] = self.placement
        return out


@dataclass
class FaultEntry:
    """One scheduled fabric/storage fault (a ``[[faults]]`` entry).

    Faults are first-class scenario events: each is lowered onto the
    engine control plane at build time (``schedule_control`` at
    ``start`` and ``start + duration``) and applied/reverted by the
    fault plane (:mod:`repro.faults`).  ``router``/``router_b`` are
    router indices into the built topology -- range-checked when the
    scenario is built, since the parser has no instance.  ``factor``
    scales the affected link bandwidth (``link-degrade``, must be in
    (0, 1)) or the storage service time (``storage-slow``, must be
    > 1).
    """

    name: str
    kind: str
    start: float
    duration: float
    router: int | None = None
    router_b: int | None = None
    factor: float | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
        }
        if self.router is not None:
            out["router"] = self.router
        if self.router_b is not None:
            out["router_b"] = self.router_b
        if self.factor is not None:
            out["factor"] = self.factor
        return out


@dataclass
class StorageEntry:
    """The ``[storage]`` table: burst-buffer servers on the fabric.

    ``servers = N`` attaches a storage server to each of the last ``N``
    terminal nodes (exactly what ``union-sim simulate
    --storage-servers`` does).  Needed by ``storage-slow`` faults,
    which have nothing to slow down otherwise.
    """

    servers: int = 1

    def to_dict(self) -> dict[str, Any]:
        return {"servers": self.servers}


@dataclass
class MetricsEntry:
    """The ``[metrics]`` table: telemetry configuration of a scenario.

    Declares what the run exports (``jsonl`` sink path, ``filter``
    globs over hierarchical metric keys, ``summary`` embedding into the
    result JSON) and which opt-in instrument families to switch on --
    per-port queue-occupancy time series and per-job message-latency
    histograms, measurements that previously required writing Python.
    """

    jsonl: str | None = None  # metric-row JSONL path (resolved against cwd)
    filter: list[str] = field(default_factory=list)  # export key globs ([] = all)
    summary: bool = False  # embed a metrics summary in the result JSON
    queue_occupancy: bool = False  # enable net.router.queue
    latency_histograms: bool = False  # enable mpi.job.msg_latency

    def enable_families(self) -> tuple[str, ...]:
        """Telemetry family keys this table switches on."""
        out = []
        if self.queue_occupancy:
            out.append("net.router.queue")
        if self.latency_histograms:
            out.append("mpi.job.msg_latency")
        return tuple(out)

    def overridden(self, jsonl: str | None = None,
                   filter: list[str] | None = None) -> "MetricsEntry":
        """A copy with the sink/filter overridden (CLI flags, batch);
        the opt-in instrument switches always carry over."""
        return MetricsEntry(
            jsonl=jsonl if jsonl is not None else self.jsonl,
            filter=list(filter) if filter else list(self.filter),
            summary=self.summary,
            queue_occupancy=self.queue_occupancy,
            latency_histograms=self.latency_histograms,
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.jsonl is not None:
            out["jsonl"] = self.jsonl
        if self.filter:
            out["filter"] = list(self.filter)
        for flag in ("summary", "queue_occupancy", "latency_histograms"):
            if getattr(self, flag):
                out[flag] = True
        return out


@dataclass
class EnvEntry:
    """The ``[env]`` table: control-surface configuration of a scenario.

    Makes the scenario runnable as a :class:`repro.env.SimulationEnv`
    episode (``union-sim env <spec>``): which control policy drives the
    session's decision hooks, how long one decision window is, and which
    reward signal scores the episode.
    """

    #: Canonical policy table (``{"type": "load-aware"}``); resolved
    #: through the ``policy`` registry family.
    policy: dict[str, Any] = field(default_factory=lambda: {"type": "scripted"})
    #: Seconds of simulated time per ``env.step()``; ``None`` defaults
    #: to an eighth of the horizon.
    window: float | None = None
    #: Reward signal: negative delta of the running mean message latency
    #: over measured jobs (``avg_latency``) or of the worst per-job
    #: communication time (``comm_time``).
    reward: str = "avg_latency"

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.policy != {"type": "scripted"}:
            out["policy"] = dict(self.policy)
        if self.window is not None:
            out["window"] = self.window
        if self.reward != "avg_latency":
            out["reward"] = self.reward
        return out


@dataclass
class ScenarioSpec:
    """A fully validated scenario, ready for :func:`repro.scenario.runner.run_scenario`.

    ``topology`` is the canonical parameterized table for explicit
    ``[topology] type = "..."`` specs (sparse: the type, the scale
    preset, and only the explicitly overridden parameters); ``None``
    means the spec used the legacy ``network``/``scale`` dragonfly
    sugar, which keeps parsing -- and round-tripping -- bit-for-bit as
    before.  ``network`` holds the legacy alias (``"1d"``/``"2d"``) in
    sugar form and the registry type name otherwise.
    """

    name: str
    network: str = "1d"
    scale: str = "mini"
    routing: str = "adp"
    placement: str = "rg"
    seed: int = 1
    horizon: float = 0.0  # resolved: always > 0 after parsing
    counter_window: float | None = None
    jobs: list[JobEntry] = field(default_factory=list)
    traffic: list[TrafficEntry] = field(default_factory=list)
    base_dir: Path | None = None  # where relative job sources resolve
    topology: dict[str, Any] | None = None  # explicit [topology] table
    metrics: MetricsEntry | None = None  # [metrics] telemetry table
    #: Canonical ``[engine]`` table (``{"type": "conservative",
    #: "partitions": 8}``); ``None`` keeps the sequential default and
    #: the historical JSON form.
    engine: dict[str, Any] | None = None
    #: The ``[env]`` control-surface table; ``None`` for plain
    #: scenarios (they still run as env episodes with the defaults).
    env: EnvEntry | None = None
    #: Scheduled fabric/storage faults (``[[faults]]`` entries).
    faults: list[FaultEntry] = field(default_factory=list)
    #: The ``[storage]`` table; ``None`` runs without storage servers.
    storage: StorageEntry | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form that round-trips through :func:`parse_scenario`."""
        if self.topology is None:
            topology: dict[str, Any] = {"network": self.network, "scale": self.scale}
        else:
            topology = dict(self.topology)
        out: dict[str, Any] = {
            "name": self.name,
            "topology": topology,
            "routing": self.routing,
            "placement": self.placement,
            "seed": self.seed,
            "horizon": self.horizon,
            "jobs": [j.to_dict() for j in self.jobs],
        }
        if self.counter_window is not None:
            out["counter_window"] = self.counter_window
        if self.traffic:
            out["traffic"] = [t.to_dict() for t in self.traffic]
        if self.metrics is not None:
            out["metrics"] = self.metrics.to_dict()
        if self.engine is not None:
            out["engine"] = dict(self.engine)
        if self.env is not None:
            out["env"] = self.env.to_dict()
        if self.faults:
            out["faults"] = [f.to_dict() for f in self.faults]
        if self.storage is not None:
            out["storage"] = self.storage.to_dict()
        if self.base_dir is not None:
            # Keep relative job sources resolvable after a round trip.
            out["base_dir"] = str(self.base_dir)
        return out


_TOP_KEYS = {
    "name": "scenario name",
    "topology": "[topology] table",
    "routing": "fabric-wide routing",
    "placement": "fabric-wide placement",
    "seed": "master seed",
    "horizon": "simulation horizon (s)",
    "counter_window": "router counter window (s)",
    "jobs": "[[jobs]] entries",
    "traffic": "[[traffic]] entries",
    "base_dir": "directory for relative job sources",
    "metrics": "[metrics] telemetry table",
    "engine": "[engine] execution-engine table",
    "env": "[env] control-surface table",
    "faults": "[[faults]] entries",
    "storage": "[storage] burst-buffer table",
}

_METRICS_KEYS = {
    "jsonl": "metric-row JSONL output path",
    "filter": "export key glob(s)",
    "summary": "embed a metrics summary in the result JSON",
    "queue_occupancy": "per-port queue-depth series",
    "latency_histograms": "per-job message-latency histograms",
}


def _parse_metrics(data: Mapping) -> MetricsEntry | None:
    """Validate the optional ``[metrics]`` table."""
    if "metrics" not in data:
        return None
    raw = _require_mapping(data["metrics"], "metrics")
    _check_keys(raw, _METRICS_KEYS, "metrics")
    filt = raw.get("filter", [])
    if isinstance(filt, str):
        filt = [filt]
    if not isinstance(filt, list) or not all(isinstance(f, str) for f in filt):
        raise _err("metrics.filter",
                   f"expected a glob string or array of globs, got {filt!r}")
    return MetricsEntry(
        jsonl=_get_str(raw, "jsonl", "metrics"),
        filter=list(filt),
        summary=_get_bool(raw, "summary", "metrics"),
        queue_occupancy=_get_bool(raw, "queue_occupancy", "metrics"),
        latency_histograms=_get_bool(raw, "latency_histograms", "metrics"),
    )

_ENV_KEYS = {
    "policy": "control policy (name or {type = ...} table)",
    "window": "seconds per env step",
    "reward": "reward signal (avg_latency|comm_time)",
}


def parse_policy_table(raw: Any, path: str = "policy") -> dict[str, Any]:
    """Validate a policy name or table against the policy registry.

    Returns the canonical sparse table (``{"type": name, ...params}``),
    mirroring :func:`parse_engine_table` for the ``policy`` family; also
    the validator behind ``union-sim env --policy``.
    """
    if isinstance(raw, str):
        raw = {"type": raw}
    raw = _require_mapping(raw, path)
    name = raw.get("type")
    if name is None:
        raise _err(f"{path}.type",
                   f"missing policy name; available: "
                   f"{list(policy_registry.names())}")
    try:
        spec = policy_registry.get(name, path=f"{path}.type")
        assert isinstance(spec, PolicySpec)
        params = {k: v for k, v in raw.items() if k != "type"}
        params = spec.validate_params(params, path, kind="policy")
    except RegistryError as exc:
        raise ScenarioError(str(exc)) from None
    return {"type": spec.name, **params}


def _parse_env(data: Mapping) -> EnvEntry | None:
    """Validate the optional ``[env]`` control-surface table."""
    if "env" not in data:
        return None
    raw = _require_mapping(data["env"], "env")
    _check_keys(raw, _ENV_KEYS, "env")
    policy = raw.get("policy", "scripted")
    window = _get_float(raw, "window", "env", minimum=0.0)
    if window == 0.0:
        raise _err("env.window", "must be > 0 (seconds of simulated time "
                                 "per env step)")
    return EnvEntry(
        policy=parse_policy_table(policy, path="env.policy"),
        window=window,
        reward=_get_str(raw, "reward", "env", default="avg_latency",
                        choices=ENV_REWARDS),
    )


def parse_engine_table(raw: Mapping) -> dict[str, Any]:
    """Validate one ``[engine]`` table against the engine registry.

    Returns the canonical sparse table (engine name plus only the
    explicitly given parameters, typed-validated); cross-checks that
    need the live topology (partition counts vs. group structure, the
    lookahead ceiling) happen when the run builds its engine.  Also the
    validator behind the CLI/batch ``--engine`` overrides.
    """
    raw = _require_mapping(raw, "engine")
    name = raw.get("type")
    if name is None:
        raise _err("engine.type",
                   f"missing engine name; available: "
                   f"{list(engine_registry.names())}")
    try:
        spec = engine_registry.get(name, path="engine.type")
        assert isinstance(spec, EngineSpec)
        params = {k: v for k, v in raw.items() if k != "type"}
        params = spec.validate_params(params, "engine", kind="engine")
    except RegistryError as exc:
        raise ScenarioError(str(exc)) from None
    return {"type": spec.name, **params}


_TOPOLOGY_KEYS = {"network": "1d|2d", "scale": "mini|paper"}


def _parse_topology(data: Mapping) -> tuple[str, str, dict[str, Any] | None, TopologySpec]:
    """Validate the ``[topology]`` table.

    Two forms: the legacy dragonfly sugar ``{network = "1d", scale =
    "mini"}`` (parsed exactly as it always was) and the explicit
    registry form ``{type = "fattree", k = 8}`` -- any registered
    topology name with an optional ``scale`` preset plus typed
    parameter overrides.  Returns ``(network, scale, canonical,
    topo_spec)`` where ``canonical`` is ``None`` for the sugar form.
    """
    raw = _require_mapping(data.get("topology", {}), "topology")
    if "type" not in raw:
        # Mention 'type' in unknown-key errors so a typo'd explicit form
        # is steered towards the registry syntax, not away from it.
        _check_keys(raw, {**_TOPOLOGY_KEYS, "type": "registry topology"}, "topology")
        network = _get_str(raw, "network", "topology", default="1d", choices=NETWORKS)
        scale = _get_str(raw, "scale", "topology", default="mini", choices=SCALES)
        spec = topology_registry.get(network)
        assert isinstance(spec, TopologySpec)
        return network, scale, None, spec
    if "network" in raw:
        raise _err("topology", "set exactly one of 'network' (legacy dragonfly "
                               "sugar) or 'type' (a registry topology)")
    scale = _get_str(raw, "scale", "topology", default="mini", choices=SCALES)
    try:
        spec = topology_registry.get(raw["type"], path="topology.type")
        assert isinstance(spec, TopologySpec)
        explicit = {k: v for k, v in raw.items() if k not in ("type", "scale")}
        explicit = spec.validate_params(explicit, "topology", kind="topology")
    except RegistryError as exc:
        raise ScenarioError(str(exc)) from None
    canonical: dict[str, Any] = {"type": spec.name, "scale": scale}
    canonical.update(
        {k: list(v) if isinstance(v, tuple) else v for k, v in explicit.items()}
    )
    return spec.name, scale, canonical, spec


def _get_routing(data: Mapping, key: str, path: str, topo_spec: TopologySpec,
                 default: str | None = None) -> str | None:
    """A routing name validated against the topology's capability list."""
    value = data.get(key, default)
    if value is None:
        return None
    where = f"{path}.{key}" if path else key
    if not isinstance(value, str):
        raise _err(where, f"expected a string, got {value!r}")
    avail = list(topo_spec.routings)
    if value in avail:
        return value
    if value in all_routing_names():
        raise _err(where, f"routing {value!r} is not available on topology "
                          f"{topo_spec.name!r}; choose from {avail}")
    raise _err(where, f"{value!r} is not one of {avail}")


def _get_placement(data: Mapping, key: str, path: str, topo_spec: TopologySpec,
                   default: str | None = None) -> str | None:
    """A placement name whose requirements the topology satisfies."""
    value = data.get(key, default)
    if value is None:
        return None
    where = f"{path}.{key}" if path else key
    if not isinstance(value, str):
        raise _err(where, f"expected a string, got {value!r}")
    avail = list(available_placements(topo_spec.name))
    if value in avail:
        return value
    if value in placement_registry.names():
        try:
            check_placement(value, topo_spec.name, path=where)
        except RegistryError as exc:
            raise ScenarioError(str(exc)) from None
    raise _err(where, f"{value!r} is not one of {avail}")

_JOB_KEYS = {
    "name": "job name",
    "app": "workload-catalog entry",
    "source": "coNCePTuaL file",
    "nranks": "rank count",
    "params": "parameter overrides",
    "arrival": "arrival time (s)",
    "routing": "per-job routing override",
    "placement": "per-job placement override",
}

_TRAFFIC_KEYS = {
    "name": "injector name",
    "pattern": "uniform|hotspot",
    "nranks": "rank count",
    "msg_bytes": "message size",
    "interval_s": "injection interval (s)",
    "iters": "rounds (0 = endless)",
    "hot_ranks": "hotspot targets",
    "arrival": "arrival time (s)",
    "routing": "per-injector routing override",
    "placement": "per-injector placement override",
}


def _parse_job(data: Any, i: int, scale: str, topo_spec: TopologySpec) -> JobEntry:
    path = f"jobs[{i}]"
    data = _require_mapping(data, path)
    _check_keys(data, _JOB_KEYS, path)
    app = _get_str(data, "app", path)
    source = _get_str(data, "source", path)
    if (app is None) == (source is None):
        raise _err(path, "set exactly one of 'app' (a workload-catalog name) "
                         "or 'source' (a coNCePTuaL file)")
    if app is not None:
        catalog = app_catalog(scale)
        if app not in catalog:
            raise _err(f"{path}.app",
                       f"unknown application {app!r}; the {scale!r} catalog has: "
                       f"{sorted(catalog)}")
    name = _get_str(data, "name", path, default=app or Path(source).stem)
    nranks = _get_int(data, "nranks", path, minimum=1)
    if source is not None and nranks is None:
        raise _err(f"{path}.nranks",
                   "required for 'source' jobs (DSL files carry no rank count)")
    params = data.get("params", {})
    params = dict(_require_mapping(params, f"{path}.params"))
    return JobEntry(
        name=name,
        app=app,
        source=source,
        nranks=nranks,
        params=params,
        arrival=_get_float(data, "arrival", path, default=0.0, minimum=0.0),
        routing=_get_routing(data, "routing", path, topo_spec),
        placement=_get_placement(data, "placement", path, topo_spec),
    )


def _parse_traffic(data: Any, i: int, topo_spec: TopologySpec) -> TrafficEntry:
    path = f"traffic[{i}]"
    data = _require_mapping(data, path)
    _check_keys(data, _TRAFFIC_KEYS, path)
    pattern = _get_str(data, "pattern", path, default="uniform",
                       choices=TRAFFIC_PATTERNS)
    interval_s = _get_float(data, "interval_s", path, default=1e-3, minimum=0.0)
    iters = _get_int(data, "iters", path, default=0, minimum=0)
    if iters == 0 and interval_s == 0.0:
        raise _err(f"{path}.interval_s",
                   "an endless injector (iters = 0) needs interval_s > 0, "
                   "or simulated time would never advance")
    return TrafficEntry(
        name=_get_str(data, "name", path, default=f"{pattern}-{i}"),
        pattern=pattern,
        # Both patterns need a peer to send to: 1-rank "uniform" has no
        # valid destination and a 1-rank hotspot degenerates to self-sends.
        nranks=_get_int(data, "nranks", path, default=8, minimum=2),
        msg_bytes=_get_int(data, "msg_bytes", path, default=10240, minimum=0),
        interval_s=interval_s,
        iters=iters,
        hot_ranks=_get_int(data, "hot_ranks", path, default=1, minimum=1),
        arrival=_get_float(data, "arrival", path, default=0.0, minimum=0.0),
        routing=_get_routing(data, "routing", path, topo_spec),
        placement=_get_placement(data, "placement", path, topo_spec),
    )


_FAULT_KEYS = {
    "name": "fault name",
    "kind": "|".join(FAULT_KINDS),
    "start": "onset time (s)",
    "duration": "how long the fault lasts (s)",
    "router": "router index (link-*: one end; router-down: the router)",
    "router_b": "other end of the link (link-* kinds)",
    "factor": "bandwidth multiplier (link-degrade) or service-time "
              "multiplier (storage-slow)",
}

_STORAGE_KEYS = {
    "servers": "storage servers on the last N terminal nodes",
}


def _parse_fault(data: Any, i: int) -> FaultEntry:
    path = f"faults[{i}]"
    data = _require_mapping(data, path)
    _check_keys(data, _FAULT_KEYS, path)
    kind = _get_str(data, "kind", path, choices=FAULT_KINDS)
    if kind is None:
        raise _err(f"{path}.kind", f"required; one of {list(FAULT_KINDS)}")
    start = _get_float(data, "start", path, minimum=0.0)
    if start is None:
        raise _err(f"{path}.start", "required (fault onset time in seconds)")
    duration = _get_float(data, "duration", path, minimum=0.0)
    if duration is None or duration == 0.0:
        raise _err(f"{path}.duration", "required and must be > 0 (seconds)")
    router = _get_int(data, "router", path, minimum=0)
    router_b = _get_int(data, "router_b", path, minimum=0)
    factor = _get_float(data, "factor", path, minimum=0.0)

    if kind in ("link-degrade", "link-down"):
        if router is None or router_b is None:
            raise _err(path, f"{kind!r} needs both 'router' and 'router_b' "
                             "(the two ends of the link)")
        if router == router_b:
            raise _err(f"{path}.router_b",
                       f"link endpoints must differ, got {router} twice")
    elif kind == "router-down":
        if router is None:
            raise _err(path, "'router-down' needs 'router' (the failed router)")
        if router_b is not None:
            raise _err(f"{path}.router_b",
                       "'router-down' takes a single 'router', not a link")
    else:  # storage-slow
        if router is not None or router_b is not None:
            raise _err(path, "'storage-slow' targets storage servers, not "
                             "routers; drop 'router'/'router_b'")

    if kind == "link-degrade":
        if factor is None:
            factor = 0.1
        if not 0.0 < factor < 1.0:
            raise _err(f"{path}.factor",
                       f"link-degrade factor must be in (0, 1) -- the "
                       f"remaining bandwidth fraction -- got {factor:g}")
    elif kind == "storage-slow":
        if factor is None:
            factor = 10.0
        if factor <= 1.0:
            raise _err(f"{path}.factor",
                       f"storage-slow factor must be > 1 -- the service-time "
                       f"multiplier -- got {factor:g}")
    elif factor is not None:
        raise _err(f"{path}.factor",
                   f"{kind!r} takes no 'factor' (the element is fully down)")

    default_name = f"{kind}-{i}"
    return FaultEntry(
        name=_get_str(data, "name", path, default=default_name),
        kind=kind,
        start=start,
        duration=duration,
        router=router,
        router_b=router_b,
        factor=factor,
    )


def _parse_storage(data: Mapping) -> StorageEntry | None:
    """Validate the optional ``[storage]`` table."""
    if "storage" not in data:
        return None
    raw = _require_mapping(data["storage"], "storage")
    _check_keys(raw, _STORAGE_KEYS, "storage")
    servers = _get_int(raw, "servers", "storage", default=1, minimum=1)
    return StorageEntry(servers=servers)


def _check_fault_capabilities(
    faults: list[FaultEntry],
    spec: ScenarioSpec,
    topo_spec: TopologySpec,
) -> None:
    """Down-kind faults require every effective routing to be adaptive.

    A failed link or router under a deterministic single-path policy
    (``min``, ``dor``, ``dmodk``) would be hit forever; the capability
    flag lives on the registry entry, so the rejection happens at parse
    time with the fault and the routing both named.
    """
    down = [f for f in faults if f.kind in DOWN_FAULT_KINDS]
    if not down:
        return
    effective: list[tuple[str, str]] = [("routing", spec.routing)]
    effective += [(f"jobs[{i}].routing", j.routing)
                  for i, j in enumerate(spec.jobs) if j.routing is not None]
    effective += [(f"traffic[{i}].routing", t.routing)
                  for i, t in enumerate(spec.traffic) if t.routing is not None]
    adaptive = [r for r in topo_spec.routings
                if routing_spec(topo_spec.name, r).adaptive]
    for where, rname in effective:
        if not routing_spec(topo_spec.name, rname).adaptive:
            raise _err(where,
                       f"fault {down[0].name!r} ({down[0].kind}) needs an "
                       f"adaptive routing to steer around the failed element, "
                       f"but {rname!r} is deterministic; choose from "
                       f"{adaptive or ['<none on ' + topo_spec.name + '>']}")


def parse_scenario(
    data: Mapping,
    name: str | None = None,
    base_dir: str | Path | None = None,
) -> ScenarioSpec:
    """Validate a plain mapping (parsed TOML/JSON) into a :class:`ScenarioSpec`.

    ``name`` is the fallback scenario name (usually the file stem);
    ``base_dir`` is where relative job ``source`` paths resolve (it
    falls back to a ``base_dir`` key in the data itself, which is how
    :meth:`ScenarioSpec.to_dict` keeps round-tripped specs runnable).
    """
    data = _require_mapping(data, "")
    _check_keys(data, _TOP_KEYS, "")
    if base_dir is None:
        base_dir = _get_str(data, "base_dir", "")
    network, scale, canonical, topo_spec = _parse_topology(data)

    jobs_raw = data.get("jobs", [])
    if not isinstance(jobs_raw, list):
        raise _err("jobs", f"expected an array of tables, got {type(jobs_raw).__name__}")
    jobs = [_parse_job(j, i, scale, topo_spec) for i, j in enumerate(jobs_raw)]
    if not jobs:
        raise _err("jobs", "a scenario needs at least one [[jobs]] entry")

    traffic_raw = data.get("traffic", [])
    if not isinstance(traffic_raw, list):
        raise _err("traffic",
                   f"expected an array of tables, got {type(traffic_raw).__name__}")
    traffic = [_parse_traffic(t, i, topo_spec) for i, t in enumerate(traffic_raw)]

    faults_raw = data.get("faults", [])
    if not isinstance(faults_raw, list):
        raise _err("faults",
                   f"expected an array of tables, got {type(faults_raw).__name__}")
    faults = [_parse_fault(f, i) for i, f in enumerate(faults_raw)]
    fault_folded: dict[str, str] = {}
    for i, entry in enumerate(faults):
        # Fault names become net.fault.<segment> telemetry keys, so the
        # same fold-collision rule as job names applies among faults.
        key = metric_segment(entry.name)
        other = fault_folded.setdefault(key, entry.name)
        if other != entry.name:
            raise _err(f"faults[{i}].name",
                       f"name {entry.name!r} collides with {other!r} on "
                       f"telemetry key segment {key!r}; rename one")

    seen: set[str] = set()
    folded: dict[str, str] = {}
    for section, entries in (("jobs", jobs), ("traffic", traffic)):
        for i, entry in enumerate(entries):
            if entry.name in seen:
                raise _err(f"{section}[{i}].name",
                           f"duplicate job/traffic name {entry.name!r}; "
                           "names must be unique so reports are unambiguous")
            seen.add(entry.name)
            # Distinct names may still fold onto one telemetry key
            # segment ('a.b' vs 'a_b'); that would silently merge their
            # mpi.job.* metrics, so reject it here with the key path.
            key = metric_segment(entry.name)
            other = folded.setdefault(key, entry.name)
            if other != entry.name:
                raise _err(f"{section}[{i}].name",
                           f"name {entry.name!r} collides with {other!r} on "
                           f"telemetry key segment {key!r} (dots/whitespace "
                           "fold to underscores); rename one")

    # Fabric-wide defaults come from the topology's registry entry
    # ("adp"/"rg" on dragonflies, exactly the historical defaults).
    spec = ScenarioSpec(
        name=_get_str(data, "name", "", default=name or "scenario"),
        network=network,
        scale=scale,
        routing=_get_routing(data, "routing", "", topo_spec,
                             default=topo_spec.default_routing),
        placement=_get_placement(data, "placement", "", topo_spec,
                                 default=topo_spec.default_placement),
        seed=_get_int(data, "seed", "", default=1, minimum=0),  # RNG wants uint64
        horizon=_get_float(data, "horizon", "", default=default_horizon(scale),
                           minimum=0.0),
        counter_window=_get_float(data, "counter_window", "", minimum=0.0),
        jobs=jobs,
        traffic=traffic,
        base_dir=Path(base_dir) if base_dir is not None else None,
        topology=canonical,
        metrics=_parse_metrics(data),
        engine=parse_engine_table(data["engine"]) if "engine" in data else None,
        env=_parse_env(data),
        faults=faults,
        storage=_parse_storage(data),
    )
    if spec.horizon <= 0:
        raise _err("horizon", f"must be > 0, got {spec.horizon}")
    if spec.storage is None:
        slow = next((f for f in spec.faults if f.kind == "storage-slow"), None)
        if slow is not None:
            raise _err("storage",
                       f"fault {slow.name!r} is 'storage-slow' but the "
                       "scenario has no [storage] table; add one "
                       "(e.g. servers = 2) so there are servers to slow down")
    _check_fault_capabilities(spec.faults, spec, topo_spec)
    if spec.env is not None and spec.env.window is not None \
            and spec.env.window > spec.horizon:
        raise _err("env.window",
                   f"one step window ({spec.env.window:g}s) exceeds the "
                   f"horizon ({spec.horizon:g}s)")
    return spec


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Load and validate a ``.toml`` or ``.json`` scenario file."""
    path = Path(path)
    if not path.is_file():
        raise ScenarioError(f"scenario file not found: {path}")
    suffix = path.suffix.lower()
    try:
        if suffix == ".toml":
            with open(path, "rb") as fh:
                data = tomllib.load(fh)
        elif suffix == ".json":
            with open(path, "rb") as fh:
                data = json.load(fh)
        else:
            raise ScenarioError(
                f"{path}: unsupported spec format {suffix!r}; use .toml or .json"
            )
    except (tomllib.TOMLDecodeError, json.JSONDecodeError) as exc:
        raise ScenarioError(f"{path}: not valid {suffix[1:].upper()}: {exc}") from exc
    try:
        return parse_scenario(data, name=path.stem, base_dir=path.parent)
    except ScenarioError as exc:
        raise ScenarioError(f"{path}: {exc}") from None
