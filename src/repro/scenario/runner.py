"""Build and run one scenario; reduce the outcome to a report.

``build_manager`` turns a validated :class:`ScenarioSpec` into a wired
:class:`~repro.union.manager.WorkloadManager` (catalog apps, translated
DSL sources, background-traffic injectors, arrival times, per-job
overrides) recording into one :class:`~repro.telemetry.Telemetry`
session shaped by the spec's ``[metrics]`` table.  ``run_scenario``
executes it and reduces the per-job rows of the plain-data
:class:`ScenarioResult` **from the telemetry store** (the
``mpi.job.<name>.*`` gauges the runtime and scheduler publish), then
drives the spec's sinks: a JSONL metric-row stream and/or a summary
dict embedded in the result document.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.harness.configs import default_counter_window, make_topology
from repro.harness.report import format_bytes, format_seconds, render_table
from repro.mpi.engine import job_key
from repro.registry import RegistryError, build_topology
from repro.scenario.spec import JobEntry, ScenarioError, ScenarioSpec, TrafficEntry
from repro.telemetry import RESULT_SCHEMA_VERSION, JsonlSink, SummarySink, Telemetry
from repro.union.manager import Job, RunOutcome, WorkloadManager
from repro.union.translator import translate
from repro.workloads.catalog import app_catalog
from repro.workloads.hotspot import hotspot
from repro.workloads.uniform_random import uniform_random

_TRAFFIC_PROGRAMS = {"uniform": uniform_random, "hotspot": hotspot}


def _build_job(entry: JobEntry, scale: str, base_dir: Path | None) -> Job:
    common = dict(
        params=dict(entry.params),
        routing=entry.routing,
        arrival=entry.arrival,
        placement=entry.placement,
    )
    if entry.app is not None:
        spec = app_catalog(scale)[entry.app]
        params = dict(spec.params)
        params.update(entry.params)
        common["params"] = params
        nranks = entry.nranks or spec.nranks
        dims = params.get("dims")
        if dims is not None:
            total = 1
            for d in dims:
                total *= int(d)
            if total != nranks:
                raise ScenarioError(
                    f"job {entry.name!r}: nranks={nranks} does not match the "
                    f"{entry.app!r} grid dims {tuple(dims)} (= {total} ranks); "
                    "override params.dims alongside nranks"
                )
        if spec.kind == "skeleton":
            return Job(entry.name, nranks, skeleton=spec.skeleton_factory(), **common)
        return Job(entry.name, nranks, program=spec.program, **common)
    path = Path(entry.source)
    if not path.is_absolute() and base_dir is not None:
        path = base_dir / path
    if not path.is_file():
        raise ScenarioError(
            f"job {entry.name!r}: source file not found: {path} "
            "(relative paths resolve against the spec file)"
        )
    skeleton = translate(path.read_text(), entry.name)
    return Job(entry.name, entry.nranks, skeleton=skeleton, **common)


def _build_traffic(entry: TrafficEntry, seed: int) -> Job:
    params = {
        "msg_bytes": entry.msg_bytes,
        "interval_s": entry.interval_s,
        "iters": entry.iters,
        "seed": seed,
    }
    if entry.pattern == "hotspot":
        params["hot_ranks"] = entry.hot_ranks
    return Job(
        entry.name,
        entry.nranks,
        program=_TRAFFIC_PROGRAMS[entry.pattern],
        params=params,
        routing=entry.routing,
        arrival=entry.arrival,
        placement=entry.placement,
        background=True,
    )


def build_scenario_topology(spec: ScenarioSpec):
    """Instantiate the spec's topology (sugar or explicit registry form)."""
    if spec.topology is None:
        return make_topology(spec.network, spec.scale)
    try:
        return build_topology(spec.topology)
    except RegistryError as exc:
        raise ScenarioError(str(exc)) from None
    except ValueError as exc:
        # Structural constraints only the model itself can check
        # (fat-tree k must be even, slim fly q must be a 4w+1 prime...).
        raise ScenarioError(f"topology: {exc}") from None


def build_telemetry(spec: ScenarioSpec) -> Telemetry:
    """The run's telemetry session, shaped by the ``[metrics]`` table."""
    enable = spec.metrics.enable_families() if spec.metrics is not None else ()
    return Telemetry(enable=enable)


def build_manager(spec: ScenarioSpec) -> WorkloadManager:
    """Wire a :class:`WorkloadManager` exactly as the spec describes."""
    topo = build_scenario_topology(spec)
    window = (
        spec.counter_window
        if spec.counter_window is not None
        else default_counter_window()
    )
    storage_nodes = None
    if spec.storage is not None:
        if spec.storage.servers > topo.n_nodes:
            raise ScenarioError(
                f"storage.servers: {spec.storage.servers} servers do not fit "
                f"the topology's {topo.n_nodes} nodes"
            )
        # The last N terminal nodes host the servers, exactly as
        # ``union-sim simulate --storage-servers`` attaches them.
        storage_nodes = [topo.n_nodes - 1 - i for i in range(spec.storage.servers)]
    mgr = WorkloadManager(
        topo,
        routing=spec.routing,
        placement=spec.placement,
        seed=spec.seed,
        counter_window=window,
        storage_nodes=storage_nodes,
        telemetry=build_telemetry(spec),
        engine=dict(spec.engine) if spec.engine is not None else None,
        faults=spec.faults,
    )
    for entry in spec.jobs:
        mgr.add_job(_build_job(entry, spec.scale, spec.base_dir))
    for i, entry in enumerate(spec.traffic):
        # Salt the seed per injector so every injector emits an
        # independent stream.  The stride must dominate the per-pattern
        # salts workload_rng folds into the same scalar (uniform 7,
        # hotspot 11), or injectors of different patterns at nearby
        # indices would alias onto one stream.
        mgr.add_job(_build_traffic(entry, spec.seed + 1009 * i))
    return mgr


@dataclass
class JobReport:
    """Per-job metrics of one scenario run, as plain data."""

    name: str
    nranks: int
    background: bool
    arrival: float
    started: bool
    finished: bool
    #: Background injector with no natural end (iters = 0): "running"
    #: at the horizon is its expected state, not a truncation.
    endless: bool = False
    avg_latency: float = 0.0
    max_latency: float = 0.0
    max_comm_time: float = 0.0
    messages: int = 0
    bytes_sent: int = 0
    n_groups: int = 0
    skip_reason: str = ""


@dataclass
class ScenarioResult:
    """Everything one scenario run reports (JSON-serializable core)."""

    scenario: str
    network: str
    scale: str
    routing: str
    placement: str
    seed: int
    horizon: float
    end_time: float
    events: int
    jobs: list[JobReport]
    link_summary: dict[str, float]
    #: Canonical explicit ``[topology]`` table; ``None`` for legacy
    #: dragonfly sugar specs (whose JSON form stays unchanged).
    topology: dict[str, Any] | None = None
    #: The spec's ``[engine]`` table plus the resolved execution stats
    #: (partitions, lookahead, windows); ``None`` for the sequential
    #: default, keeping those runs' JSON form unchanged.
    engine: dict[str, Any] | None = None
    #: Telemetry summary (the ``[metrics] summary = true`` sink output);
    #: ``None`` unless the spec asked for it.
    metrics: dict[str, Any] | None = None
    #: Episode record when the run went through ``repro.env`` (policy,
    #: steps, rewards); ``None`` for plain scenario runs, keeping their
    #: JSON form unchanged.
    env: dict[str, Any] | None = None
    #: Fault record: the spec's ``[[faults]]`` entries plus the plane's
    #: transition/avoidance counters; ``None`` for fault-free runs,
    #: keeping their JSON form unchanged.
    faults: dict[str, Any] | None = None
    #: The live outcome (fabric, counters) -- in-process callers only,
    #: excluded from the JSON form.
    outcome: RunOutcome | None = field(default=None, repr=False, compare=False)

    @property
    def telemetry(self) -> Telemetry | None:
        """The run's live telemetry session (in-process callers only)."""
        return self.outcome.manager.telemetry if self.outcome is not None else None

    def to_json_dict(self) -> dict[str, Any]:
        # Not dataclasses.asdict: that would deep-copy the live outcome.
        out = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "scenario": self.scenario,
            "network": self.network,
            "scale": self.scale,
            "routing": self.routing,
            "placement": self.placement,
            "seed": self.seed,
            "horizon": self.horizon,
            "end_time": self.end_time,
            "events": self.events,
            "jobs": [asdict(j) for j in self.jobs],
            "link_summary": dict(self.link_summary),
        }
        if self.topology is not None:
            out["topology"] = dict(self.topology)
        if self.engine is not None:
            out["engine"] = dict(self.engine)
        if self.metrics is not None:
            out["metrics"] = dict(self.metrics)
        if self.env is not None:
            out["env"] = dict(self.env)
        if self.faults is not None:
            out["faults"] = dict(self.faults)
        return out

    def job(self, name: str) -> JobReport:
        for j in self.jobs:
            if j.name == name:
                return j
        raise KeyError(f"no job named {name!r}; have {[j.name for j in self.jobs]}")


def _job_report_from_store(t: Telemetry, job: Job, endless: bool,
                           skip_reason: str) -> JobReport:
    """One :class:`JobReport` row, read from the ``mpi.job.<name>.*``
    gauges the runtime and scheduler published into the store."""
    base = job_key(job.name)

    def val(metric: str, default: float = 0.0) -> float:
        inst = t.get(f"{base}.{metric}")
        return inst.value if inst is not None else default

    started = bool(val("started"))
    return JobReport(
        name=job.name,
        nranks=int(val("ranks")) if started else job.nranks,
        background=job.background,
        arrival=job.arrival,
        started=started,
        finished=bool(val("finished")),
        endless=endless,
        avg_latency=val("avg_msg_latency"),
        max_latency=val("max_msg_latency"),
        max_comm_time=val("max_comm_time"),
        messages=int(val("msgs_recvd")),
        bytes_sent=int(val("bytes_sent")),
        n_groups=int(val("n_groups")),
        skip_reason=skip_reason,
    )


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Run one scenario end to end and reduce it to a result.

    The per-job rows come from the telemetry store (one probe/sink
    pipeline for every measurement); the spec's ``[metrics]`` sinks are
    driven here -- a JSONL row stream to ``metrics.jsonl`` and/or the
    embedded summary dict.
    """
    mgr = build_manager(spec)
    outcome = mgr.run(until=spec.horizon)
    return reduce_scenario_result(spec, outcome)


def reduce_scenario_result(spec: ScenarioSpec, outcome: RunOutcome) -> ScenarioResult:
    """Reduce a finalized :class:`RunOutcome` to a :class:`ScenarioResult`.

    Shared tail of every run path -- the monolithic :func:`run_scenario`
    and a stepwise :class:`repro.env.SimulationEnv` episode both end
    here, which is what keeps their result JSON bit-identical (modulo
    the env's own ``env`` record).  Drives the spec's ``[metrics]``
    sinks as a side effect.
    """
    mgr = outcome.manager
    t = mgr.telemetry
    skipped = dict(outcome.not_started)
    reports = [
        _job_report_from_store(
            t, job,
            endless=job.background and int(job.params.get("iters", 0)) == 0,
            skip_reason=skipped.get(job.name, ""),
        )
        for job in mgr.jobs
    ]
    engine_info = None
    if spec.engine is not None:
        # The spec's table plus what the run resolved: the partitioned
        # engine reports its derived lookahead, plan scheme and window
        # count (sequential runs add only the engine name).
        engine_info = dict(spec.engine)
        eng = outcome.fabric.engine
        if hasattr(eng, "windows_executed"):
            engine_info["partitions"] = eng.n_partitions
            engine_info["lookahead"] = eng.lookahead
            engine_info["windows"] = eng.windows_executed
            plan = getattr(eng, "plan", None)
            if plan is not None:
                engine_info["scheme"] = plan.scheme
        mode = getattr(eng, "execution_mode", None)
        if mode is not None:
            # mp-conservative: whether the run actually distributed, and
            # if not, the user-facing reason it fell back.
            engine_info["mode"] = mode
            engine_info["fallback"] = eng.fallback_reason
        backend = getattr(eng, "backend", None)
        if backend is not None:
            # accel engines: which backend actually ran ('compiled' or
            # 'python'), and the user-facing reason when it is not the
            # compiled kernel.
            engine_info["backend"] = backend
            engine_info["backend_reason"] = eng.backend_reason or None
    faults_info = None
    if spec.faults:
        def fault_val(metric: str) -> int:
            inst = t.get(f"net.fault.{metric}")
            return int(inst.value) if inst is not None else 0

        faults_info = {
            "entries": [f.to_dict() for f in spec.faults],
            "transitions": fault_val("transitions"),
            "avoided_paths": fault_val("avoided"),
            "unavoidable_paths": fault_val("unavoidable"),
        }
    metrics_summary = None
    m = spec.metrics
    if m is not None:
        pattern = m.filter or None
        meta = {"scenario": spec.name, "seed": spec.seed, "horizon": spec.horizon}
        if m.jsonl:
            t.export(JsonlSink(m.jsonl), pattern, meta=meta)
        if m.summary:
            metrics_summary = t.export(SummarySink(), pattern, meta=meta).summary
    return ScenarioResult(
        scenario=spec.name,
        network=spec.network,
        scale=spec.scale,
        routing=spec.routing,
        placement=spec.placement,
        seed=spec.seed,
        horizon=spec.horizon,
        end_time=outcome.end_time,
        events=outcome.fabric.engine.events_processed,
        jobs=reports,
        link_summary=outcome.link_load_summary(),
        topology=spec.topology,
        engine=engine_info,
        metrics=metrics_summary,
        faults=faults_info,
        outcome=outcome,
    )


def render_scenario_report(result: ScenarioResult) -> str:
    """The ``union-sim scenario`` table: one row per job."""
    rows = []
    for j in result.jobs:
        if not j.started:
            status = "skipped"
        elif j.finished:
            status = "done"
        else:
            # A finite injector truncated by the horizon is "cut off"
            # like any app; only endless ones are expected to be running.
            status = "running" if j.endless else "cut off"
        rows.append((
            j.name,
            "traffic" if j.background else "app",
            j.nranks,
            format_seconds(j.arrival) if j.arrival else "0",
            status,
            format_seconds(j.avg_latency),
            format_seconds(j.max_latency),
            format_seconds(j.max_comm_time),
            j.messages,
        ))
    if result.topology is None:
        where = f"{result.network} {result.scale} dragonfly"
    else:
        extras = ", ".join(
            f"{k}={v}" for k, v in result.topology.items() if k != "type"
        )
        where = result.topology["type"] + (f" ({extras})" if extras else "")
    table = render_table(
        ["job", "kind", "ranks", "arrival", "status",
         "avg msg lat", "max msg lat", "max comm time", "msgs"],
        rows,
        title=(f"scenario {result.scenario!r} on {where} "
               f"({result.placement}-{result.routing}, seed {result.seed})"),
    )
    ls = result.link_summary
    lines = [table]
    for j in result.jobs:
        if j.skip_reason:
            lines.append(f"  note: {j.name}: {j.skip_reason}")
    lines.append(
        f"end time {format_seconds(result.end_time)} of "
        f"{format_seconds(result.horizon)} horizon; "
        f"{result.events} events; link loads: "
        f"global={format_bytes(ls['global_total_bytes'])} "
        f"local={format_bytes(ls['local_total_bytes'])} "
        f"(global fraction {ls['global_fraction']:.1%})"
    )
    e = result.engine
    if e is not None:
        line = f"engine: {e['type']}"
        if "windows" in e:
            line += (f", {e['partitions']} partitions "
                     f"({e.get('scheme', '?')}-partitioned), lookahead "
                     f"{format_seconds(e['lookahead'])}, {e['windows']} windows")
        lines.append(line)
    f = result.faults
    if f is not None:
        kinds = ", ".join(f"{x['name']} ({x['kind']})" for x in f["entries"])
        lines.append(
            f"faults: {kinds}; {f['transitions']} transitions, "
            f"{f['avoided_paths']} paths re-routed, "
            f"{f['unavoidable_paths']} unavoidable"
        )
    return "\n".join(lines)
