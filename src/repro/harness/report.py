"""Plain-text rendering of tables and series (the benches' output)."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def render_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    srows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in srows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_series(series: np.ndarray, width: int = 60, label: str = "") -> str:
    """Render a numeric series as a unicode sparkline (plus peak value)."""
    blocks = " .:-=+*#%@"
    arr = np.asarray(series, dtype=np.float64)
    if arr.size == 0:
        return f"{label} (empty)"
    if arr.size > width:
        # Downsample by max within buckets to keep peaks visible.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].max() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])])
    peak = arr.max()
    if peak <= 0:
        line = " " * arr.size
    else:
        idx = np.minimum((arr / peak * (len(blocks) - 1)).astype(int), len(blocks) - 1)
        line = "".join(blocks[i] for i in idx)
    return f"{label}|{line}| peak={format_bytes(peak)}"


def format_bytes(n: float) -> str:
    """Human-readable byte count."""
    n = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{n:.0f} B"
        n /= 1024.0
    raise AssertionError("unreachable")  # pragma: no cover


def format_seconds(s: float) -> str:
    """Human-readable duration (auto us/ms/s)."""
    if s == 0:
        return "0"
    if abs(s) < 1e-3:
        return f"{s * 1e6:.2f} us"
    if abs(s) < 1.0:
        return f"{s * 1e3:.3f} ms"
    return f"{s:.3f} s"
