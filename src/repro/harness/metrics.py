"""Metric helpers: boxplot summaries and slowdowns."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary + mean, the content of one Figure 7 box."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    n: int

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.minimum, self.q1, self.median, self.q3, self.maximum)


def boxplot_stats(values) -> BoxStats:
    """Five-number summary of a sample (empty samples become all-zero)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return BoxStats(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    return BoxStats(
        float(arr.min()), float(q1), float(med), float(q3), float(arr.max()), float(arr.mean()), int(arr.size)
    )


def slowdown(value: float, baseline: float) -> float:
    """Relative slowdown of ``value`` against ``baseline``.

    Returns 0 for equal, 1.0 for 2x, matching the paper's "x% delay" /
    "Nx slowdown" phrasing (``63x slowdown`` = factor 64 here would be
    off-by-one; the paper's usage is factor-style, so we report
    ``value/baseline - 1``).

    Degenerate baselines: a non-positive baseline with a positive value
    is an infinite slowdown; with both non-positive there is nothing to
    compare (0.0).  A positive baseline always takes the ratio path --
    a zero-latency value against a real baseline is a full speedup
    (-1.0), not "equal".
    """
    if baseline <= 0:
        return 0.0 if value <= 0 else float("inf")
    return value / baseline - 1.0
