"""Experiment harness: configurations, sweeps, metrics and reports.

Everything needed to regenerate the paper's evaluation (Tables I-VI,
Figures 7-9) at mini scale: experiment configs and a cached runner
(:mod:`repro.harness.experiment`), boxplot/slowdown metrics
(:mod:`repro.harness.metrics`), the placement x routing sweeps
(:mod:`repro.harness.sweeps`) and ASCII table/series renderers
(:mod:`repro.harness.report`).
"""

from repro.harness.configs import (
    ALL_TOPOLOGIES,
    COMBOS,
    NETWORKS,
    PLACEMENTS,
    ROUTINGS,
    make_topology,
    topology_spec,
    default_horizon,
    default_counter_window,
)
from repro.harness.experiment import ExperimentConfig, ExperimentResult, AppStats, run_experiment, clear_cache
from repro.harness.metrics import boxplot_stats, slowdown
from repro.harness.sweeps import latency_sweep, fig8_series, table6_loads
from repro.harness.report import render_table, render_series, format_bytes, format_seconds

__all__ = [
    "ALL_TOPOLOGIES",
    "COMBOS",
    "NETWORKS",
    "PLACEMENTS",
    "ROUTINGS",
    "make_topology",
    "topology_spec",
    "default_horizon",
    "default_counter_window",
    "ExperimentConfig",
    "ExperimentResult",
    "AppStats",
    "run_experiment",
    "clear_cache",
    "boxplot_stats",
    "slowdown",
    "latency_sweep",
    "fig8_series",
    "table6_loads",
    "render_table",
    "render_series",
    "format_bytes",
    "format_seconds",
]
