"""High-level sweeps: the data behind Figures 7-9 and Table VI.

Every function is a thin loop over :func:`run_experiment`, so repeated
calls (and different benches in one pytest session) share cached runs.
"""

from __future__ import annotations

import numpy as np

from repro.harness.configs import COMBOS, NETWORKS
from repro.harness.experiment import AppStats, ExperimentConfig, ExperimentResult, run_experiment
from repro.workloads.catalog import WORKLOADS, PANEL_APPS

#: Which workloads each panel application participates in (Figure 7's
#: legend): baseline plus every Table III workload containing the app.
def workloads_of(app: str) -> list[str]:
    return [w for w, spec in WORKLOADS.items() if app in spec.apps]


def latency_sweep(
    networks: tuple[str, ...] = NETWORKS,
    combos: tuple[str, ...] = COMBOS,
    workloads: tuple[str, ...] | None = None,
    apps: tuple[str, ...] | None = None,
    scale: str = "mini",
    seed: int = 1,
    jobs: int = 1,
) -> dict[tuple[str, str, str], ExperimentResult]:
    """Run the full placement x routing x workload sweep.

    Returns ``{(network, combo, workload): ExperimentResult}`` where
    ``workload`` includes ``baseline:<app>`` entries for every panel
    application, exactly the data Figures 7 and 9 plot.

    ``jobs > 1`` fans the not-yet-cached cells out over a process pool
    (sweep cells are independent simulations, same fan-out as
    ``union-sim batch``); results are primed into the in-process memo
    cache, so a parallel sweep and a sequential one leave the caller in
    the identical state.
    """
    from repro.harness.experiment import _CACHE, prime_cache
    from repro.scenario.batch import pool_map

    apps = apps if apps is not None else tuple(PANEL_APPS)
    wl: list[str] = [f"baseline:{a}" for a in apps]
    wl += list(workloads if workloads is not None else tuple(WORKLOADS))
    cells: dict[tuple[str, str, str], ExperimentConfig] = {}
    for network in networks:
        for combo in combos:
            placement, routing = combo.split("-")
            for w in wl:
                cells[(network, combo, w)] = ExperimentConfig(
                    network=network,
                    workload=w,
                    placement=placement,
                    routing=routing,
                    scale=scale,
                    seed=seed,
                )
    if jobs > 1:
        pending = [cfg for cfg in cells.values() if cfg not in _CACHE]
        for cfg, res in zip(pending, pool_map(run_experiment, pending, jobs)):
            prime_cache(cfg, res)
    return {key: run_experiment(cfg) for key, cfg in cells.items()}


def panel_stats(
    sweep: dict[tuple[str, str, str], ExperimentResult],
    app: str,
    network: str,
    combo: str,
) -> dict[str, AppStats]:
    """One Figure 7/9 panel cell: baseline + each workload's stats for ``app``."""
    out: dict[str, AppStats] = {}
    base = sweep.get((network, combo, f"baseline:{app}"))
    if base is not None:
        out["baseline"] = base.app(app)
    for w in workloads_of(app):
        res = sweep.get((network, combo, w))
        if res is not None and app in res.apps:
            out[w] = res.app(app)
    return out


def fig8_series(
    scale: str = "mini",
    seed: int = 1,
    serving: str = "alexnet",
    network: str = "1d",
    workload: str = "workload3",
) -> dict[str, dict[str, np.ndarray]]:
    """Figure 8: traffic received by ``serving``'s routers, per source app,
    under RR-ADP vs RG-ADP on the 1D system."""
    out: dict[str, dict[str, np.ndarray]] = {}
    for placement in ("rr", "rg"):
        cfg = ExperimentConfig(
            network=network, workload=workload, placement=placement, routing="adp",
            scale=scale, seed=seed,
        )
        res = run_experiment(cfg)
        out[placement] = {
            src: res.router_series[(serving, src)]
            for src in res.apps
        }
    return out


def table6_loads(scale: str = "mini", seed: int = 1, workload: str = "workload3") -> dict[str, dict[str, float]]:
    """Table VI: link-class loads for both systems (workload3, RG-ADP)."""
    out: dict[str, dict[str, float]] = {}
    for network in NETWORKS:
        cfg = ExperimentConfig(
            network=network, workload=workload, placement="rg", routing="adp", scale=scale, seed=seed
        )
        out[network] = run_experiment(cfg).link_summary
    return out
