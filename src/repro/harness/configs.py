"""Canonical experiment dimensions (Section IV)."""

from __future__ import annotations

from repro.network.dragonfly import Dragonfly1D
from repro.network.dragonfly2d import Dragonfly2D
from repro.network.topology import Topology

#: Networks under study.
NETWORKS = ("1d", "2d")

#: Placement policies, in the paper's panel order.
PLACEMENTS = ("rg", "rr", "rn")

#: Routing algorithms.
ROUTINGS = ("min", "adp")

#: The six placement-routing combinations, in Figure 7/9 axis order.
COMBOS = tuple(f"{p}-{r}" for r in ROUTINGS for p in PLACEMENTS)


def make_topology(network: str, scale: str = "mini") -> Topology:
    """Instantiate one of the two systems at the requested scale."""
    cls = {"1d": Dragonfly1D, "2d": Dragonfly2D}.get(network.lower())
    if cls is None:
        raise ValueError(f"unknown network {network!r}; expected '1d' or '2d'")
    if scale == "paper":
        return cls.paper()
    if scale == "mini":
        return cls.mini()
    raise ValueError(f"unknown scale {scale!r}; expected 'paper' or 'mini'")


def default_horizon(scale: str = "mini") -> float:
    """Simulation horizon in seconds.

    The paper simulates long enough for every finite job to complete;
    at mini scale 50 ms comfortably covers the catalog's job lengths
    while keeping a full sweep in minutes.
    """
    return 0.05 if scale == "mini" else 0.5


def default_counter_window(scale: str = "mini") -> float:
    """Per-app router counter window (paper: 0.5 ms)."""
    return 0.5e-3
