"""Canonical experiment dimensions (Section IV), registry-derived.

The tuples here used to be frozen literals; they are now derived from
:mod:`repro.registry` **once, at import time** -- they are the paper's
fixed sweep dimensions, with the original names and panel orders
(``1d``/``2d``, ``rg``/``rr``/``rn``, ``min``/``adp``) preserved
bit-for-bit by registration order.  Surfaces that must see components
registered later (the CLI, the scenario parser, ``make_topology``)
query the registry live instead of these snapshots.
"""

from __future__ import annotations

from repro.registry import (
    RegistryError,
    SCALES,
    TopologySpec,
    build_topology,
    placement_registry,
    topology_registry,
)

#: Dragonfly-class systems under study (legacy aliases, Figure 7/9 order).
NETWORKS = tuple(
    alias
    for alias, name in topology_registry.aliases().items()
    if getattr(topology_registry.get(name), "has_groups", False)
)

#: Every registered fabric model, by canonical registry name.
ALL_TOPOLOGIES = topology_registry.names()

#: Placement policies, in the paper's panel order.
PLACEMENTS = placement_registry.names()

#: Routing algorithms of the dragonfly-class systems (the paper's sweep).
ROUTINGS = topology_registry.get("dragonfly1d").routings

#: The six placement-routing combinations, in Figure 7/9 axis order.
COMBOS = tuple(f"{p}-{r}" for r in ROUTINGS for p in PLACEMENTS)


def make_topology(network: str, scale: str = "mini"):
    """Instantiate a registered fabric model at the requested scale.

    ``network`` is any registry name or alias (``"1d"``, ``"2d"``,
    ``"fattree"``, ``"torus"``, ``"slimfly"``); ``scale`` picks the
    model's ``"mini"`` or ``"paper"`` preset.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {list(SCALES)}")
    try:
        return build_topology({"type": network, "scale": scale})
    except RegistryError:
        raise ValueError(
            f"unknown network {network!r}; expected one of "
            f"{sorted(set(ALL_TOPOLOGIES) | set(topology_registry.aliases()))}"
        ) from None


def topology_spec(network: str) -> TopologySpec:
    """The registry spec behind a network name or alias."""
    spec = topology_registry.get(network)
    assert isinstance(spec, TopologySpec)
    return spec


def default_horizon(scale: str = "mini") -> float:
    """Simulation horizon in seconds.

    The paper simulates long enough for every finite job to complete;
    at mini scale 50 ms comfortably covers the catalog's job lengths
    while keeping a full sweep in minutes.
    """
    return 0.05 if scale == "mini" else 0.5


def default_counter_window() -> float:
    """Per-app router counter window (paper: 0.5 ms, all scales)."""
    return 0.5e-3
