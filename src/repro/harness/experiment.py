"""Cached experiment runner.

One :class:`ExperimentConfig` = one simulated system under one workload
with one placement-routing combination -- a single cell of the paper's
sweep.  Results are reduced to plain data (:class:`ExperimentResult`)
and memoized per process so Figure 7, Figure 9 and Table VI benches can
share the same runs instead of re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.harness.configs import default_counter_window, default_horizon, make_topology
from repro.harness.metrics import BoxStats, boxplot_stats
from repro.telemetry import Telemetry
from repro.union.manager import WorkloadManager
from repro.workloads.catalog import app_catalog, build_baseline_job, build_jobs


@dataclass(frozen=True)
class ExperimentConfig:
    """One sweep cell.

    ``workload`` is a Table III name (``workload1``..``workload3``) or
    ``baseline:<app>`` for a single application running alone.
    ``engine`` names a registered execution engine (``None`` keeps the
    sequential default); ``partitions`` parameterizes a partitioned
    engine and is part of the cache key like every other field.
    """

    network: str = "1d"  # any registry topology name or alias ("1d", "2d", "fattree", "torus", "slimfly")
    workload: str = "workload3"
    placement: str = "rg"
    routing: str = "adp"
    scale: str = "mini"
    seed: int = 1
    horizon: float | None = None
    engine: str | None = None
    partitions: int | None = None

    def engine_table(self) -> dict | None:
        """The ``[engine]``-style table this cell's manager consumes."""
        if self.engine is None:
            return None
        table: dict = {"type": self.engine}
        if self.partitions is not None:
            table["partitions"] = self.partitions
        return table

    @property
    def combo(self) -> str:
        return f"{self.placement}-{self.routing}"

    def resolved_horizon(self) -> float:
        return self.horizon if self.horizon is not None else default_horizon(self.scale)


@dataclass
class AppStats:
    """Reduced per-application metrics of one run."""

    name: str
    ml: bool
    nranks: int
    finished: bool
    max_latency_box: BoxStats  # distribution over ranks of per-rank max latency
    avg_latency: float
    max_comm_time: float
    mean_comm_time: float
    messages: int
    bytes_sent: int
    groups: tuple[int, ...]
    routers: tuple[int, ...]


@dataclass
class ExperimentResult:
    """Everything the table/figure builders need, as plain data."""

    config: ExperimentConfig
    apps: dict[str, AppStats]
    end_time: float
    events: int
    link_summary: dict[str, float]
    counter_window: float
    # (serving_app, source_app) -> bytes-per-window series
    router_series: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)

    def app(self, name: str) -> AppStats:
        return self.apps[name]


_CACHE: dict[ExperimentConfig, ExperimentResult] = {}


def clear_cache() -> None:
    _CACHE.clear()


def prime_cache(cfg: ExperimentConfig, result: ExperimentResult) -> None:
    """Seed the memo cache with an externally computed result.

    Used by the sweep fan-out: worker processes each run
    :func:`run_experiment` with their own (empty) cache, and the parent
    primes its cache with the returned results so every later in-process
    lookup -- ``panel_stats``, the figure builders -- hits.
    """
    _CACHE.setdefault(cfg, result)


def run_experiment(cfg: ExperimentConfig, telemetry: Telemetry | None = None) -> ExperimentResult:
    """Run (or fetch from cache) one sweep cell.

    Passing a :class:`~repro.telemetry.Telemetry` session forces a
    fresh simulation recorded into it (a memoized result carries no
    live instruments to export), bypassing the cache read.
    """
    if telemetry is None:
        hit = _CACHE.get(cfg)
        if hit is not None:
            return hit
    topo = make_topology(cfg.network, cfg.scale)
    window = default_counter_window()
    mgr = WorkloadManager(
        topo,
        routing=cfg.routing,
        placement=cfg.placement,
        seed=cfg.seed,
        counter_window=window,
        telemetry=telemetry,
        engine=cfg.engine_table(),
    )
    if cfg.workload.startswith("baseline:"):
        mgr.add_job(build_baseline_job(cfg.workload.split(":", 1)[1], cfg.scale))
    else:
        for job in build_jobs(cfg.workload, cfg.scale):
            mgr.add_job(job)
    horizon = cfg.resolved_horizon()
    # Explicit session lifecycle (build / step / finalize) -- the same
    # path mgr.run() wraps, spelled out where the harness is the
    # canonical in-repo example of driving a run.
    session = mgr.session()
    session.build()
    session.step(until=horizon)
    outcome = session.finalize()

    catalog = app_catalog(cfg.scale)
    apps: dict[str, AppStats] = {}
    for a in outcome.apps:
        r = a.result
        apps[a.name] = AppStats(
            name=a.name,
            ml=catalog[a.name].ml if a.name in catalog else False,
            nranks=r.nranks,
            finished=r.finished,
            max_latency_box=boxplot_stats(r.max_latencies_per_rank()),
            avg_latency=r.avg_latency(),
            max_comm_time=r.max_comm_time(),
            mean_comm_time=r.mean_comm_time(),
            messages=sum(s.msgs_recvd for s in r.rank_stats),
            bytes_sent=r.total_bytes_sent(),
            groups=tuple(sorted(a.groups)),
            routers=tuple(sorted(a.routers)),
        )
    series: dict[tuple[str, str], np.ndarray] = {}
    for serving in outcome.apps:
        for source in outcome.apps:
            series[(serving.name, source.name)] = outcome.fabric.app_counter.series(
                serving.routers, source.app_id, horizon
            )
    result = ExperimentResult(
        config=cfg,
        apps=apps,
        end_time=outcome.end_time,
        events=outcome.fabric.engine.events_processed,
        link_summary=outcome.link_load_summary(),
        counter_window=window,
        router_series=series,
    )
    if telemetry is None:
        # A custom session may disable instrument families, zeroing the
        # measured series/link summary -- memoizing that would poison
        # later plain calls for the same cell.
        _CACHE[cfg] = result
    return result
