"""SimMPI: drives rank generators over a NetworkFabric.

The execution model mirrors the paper's Argobots arrangement: every rank
is a lightweight coroutine; it runs until it issues a blocking operation,
then yields control to the simulator; when the simulated network
completes the operation, the simulator resumes the coroutine at the
completion timestamp.

Jobs either start at t=0 (:meth:`SimMPI.add_job`) or arrive
mid-simulation (:meth:`SimMPI.submit_job` with an ``arrival`` time and,
optionally, a deferred :class:`JobSpec` factory so rank placement can be
decided against whatever nodes are free at the arrival instant).

Metric definitions (Section IV-D):

* *message latency* -- time from send post to complete arrival at the
  destination terminal, recorded per delivered message on the receiving
  rank;
* *communication time* -- total wall-clock the rank spends blocked in
  MPI operations (waits, blocking send/recv, collectives), excluding
  Compute/Sleep delays.

Per-job telemetry: the runtime shares the fabric's
:class:`~repro.telemetry.Telemetry` session and publishes each job's
metrics under ``mpi.job.<name>.*`` (see :func:`job_key`) -- lifecycle
gauges (``launched_at``/``finished_at``) recorded live, the full
per-job reduction (``avg_msg_latency``, ``max_comm_time``, ...)
published once at the end of :meth:`SimMPI.run`, and an opt-in
streaming message-latency histogram per job
(``mpi.job.<name>.msg_latency``; enable the family key
``mpi.job.msg_latency``) recorded on the delivery path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.mpi.types import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    Irecv,
    Isend,
    Message,
    MessageHook,
    Request,
    Sleep,
    Wait,
    Waitall,
)
from repro.network.fabric import NetworkFabric
from repro.pdes.event import Event, Priority
from repro.pdes.lp import LP
from repro.telemetry import Telemetry, metric_segment

_BLOCKED = object()  # sentinel: rank suspended, stop advancing

#: Family key gating the per-job message-latency histograms (they are
#: opt-in: one bisect per delivered message is cheap but not free).
LATENCY_HISTOGRAM_FAMILY = "mpi.job.msg_latency"


def job_key(name: str, metric: str = "") -> str:
    """The ``mpi.job.<name>`` telemetry key prefix for a job.

    Dots and whitespace in the job name are folded to underscores
    (:func:`repro.telemetry.metric_segment`) so the name occupies
    exactly one key segment; the scheduler layers reject job rosters
    whose names collide after folding.
    """
    safe = metric_segment(name)
    return f"mpi.job.{safe}.{metric}" if metric else f"mpi.job.{safe}"


class RankStats:
    """Per-rank metrics accumulated during simulation."""

    __slots__ = (
        "comm_time",
        "compute_time",
        "latencies",
        "msgs_sent",
        "msgs_recvd",
        "bytes_sent",
        "counters",
        "log_rows",
        "finished_at",
    )

    def __init__(self) -> None:
        self.comm_time = 0.0
        self.compute_time = 0.0
        self.latencies: list[float] = []
        self.msgs_sent = 0
        self.msgs_recvd = 0
        self.bytes_sent = 0
        self.counters: dict[str, int] = {}
        self.log_rows: list[tuple[str, float]] = []
        self.finished_at = -1.0

    def count(self, fn: str, n: int = 1) -> None:
        self.counters[fn] = self.counters.get(fn, 0) + n

    def latency_summary(self) -> tuple[float, float, float]:
        """(min, mean, max) message latency over received messages."""
        if not self.latencies:
            return (0.0, 0.0, 0.0)
        return (
            min(self.latencies),
            sum(self.latencies) / len(self.latencies),
            max(self.latencies),
        )


class _RankState:
    __slots__ = (
        "job",
        "rank",
        "node",
        "driver_lp",
        "gen",
        "stats",
        "posted_recvs",
        "unexpected",
        "blocked",
        "pending_reqs",
        "wait_group",
        "block_start",
        "finished",
        "epoch_start",
    )

    def __init__(self, job: "_Job", rank: int, node: int) -> None:
        self.job = job
        self.rank = rank
        self.node = node
        #: LP id of the driver serving this rank's partition (resolved
        #: at job start, so wakeups stay partition-local).
        self.driver_lp = -1
        self.gen: Generator | None = None
        self.stats = RankStats()
        self.posted_recvs: list[Request] = []
        self.unexpected: list[Message] = []
        self.blocked = False
        self.pending_reqs = 0
        self.wait_group: list[Request] | None = None
        self.block_start = 0.0
        self.finished = False
        self.epoch_start = 0.0  # set by "resets its counters"


@dataclass
class JobSpec:
    """A job to co-schedule on the fabric.

    Attributes
    ----------
    name:
        Human-readable application name.
    nranks:
        Number of MPI ranks.
    program:
        ``program(ctx) -> generator`` producing the rank's operations.
    rank_to_node:
        Global node id for each rank (from a placement policy).
    params:
        Free-form parameters forwarded to the program via the ctx.
    """

    name: str
    nranks: int
    program: Callable[..., Generator]
    rank_to_node: list[int]
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError(f"job {self.name!r} needs at least 1 rank")
        if len(self.rank_to_node) != self.nranks:
            raise ValueError(
                f"job {self.name!r}: rank_to_node has {len(self.rank_to_node)} "
                f"entries for {self.nranks} ranks"
            )


class _Job:
    def __init__(self, spec: JobSpec, app_id: int) -> None:
        self.spec = spec
        self.app_id = app_id
        self.ranks: list[_RankState] = [
            _RankState(self, r, spec.rank_to_node[r]) for r in range(spec.nranks)
        ]
        self.done_ranks = 0

    @property
    def finished(self) -> bool:
        return self.done_ranks == len(self.ranks)


@dataclass
class JobResult:
    """Final metrics of one job."""

    name: str
    app_id: int
    nranks: int
    rank_stats: list[RankStats]
    finished: bool

    def max_comm_time(self) -> float:
        return max((s.comm_time for s in self.rank_stats), default=0.0)

    def mean_comm_time(self) -> float:
        if not self.rank_stats:
            return 0.0
        return sum(s.comm_time for s in self.rank_stats) / len(self.rank_stats)

    def all_latencies(self) -> list[float]:
        out: list[float] = []
        for s in self.rank_stats:
            out.extend(s.latencies)
        return out

    def max_latencies_per_rank(self) -> list[float]:
        return [max(s.latencies) for s in self.rank_stats if s.latencies]

    def avg_latency(self) -> float:
        lats = self.all_latencies()
        return sum(lats) / len(lats) if lats else 0.0

    def total_bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.rank_stats)

    def event_counts(self) -> dict[str, int]:
        total: dict[str, int] = {}
        for s in self.rank_stats:
            for k, v in s.counters.items():
                total[k] = total.get(k, 0) + v
        return total


class _DriverLP(LP):
    """Driver LP for MPI engine events (start, launches, rank starts,
    compute wakeups).

    On an unpartitioned engine there is exactly one; a partitioned
    engine gets one driver *per partition*, each registered into its
    partition, so a rank's control events (its start, its compute
    wakeups) are handled in the same partition as the rank's terminal
    and never cross a partition boundary with sub-lookahead delay.
    """

    __slots__ = ("mpi",)

    def __init__(self, mpi: "SimMPI") -> None:
        super().__init__()
        self.mpi = mpi

    def handle(self, event: Event) -> None:
        if event.kind == "start":
            self.mpi._start_all()
        elif event.kind == "wake":
            self.mpi._on_wake(event.data)
        elif event.kind == "rank_start":
            self.mpi._begin_rank(event.data)
        elif event.kind == "launch":
            self.mpi._launch_submission(event.data)
        else:  # pragma: no cover - defensive
            raise ValueError(f"MPI driver got unknown event kind {event.kind!r}")


class SimMPI:
    """The simulated MPI runtime.

    Typical use::

        fabric = NetworkFabric(Dragonfly1D.mini(), routing="adp")
        mpi = SimMPI(fabric)
        mpi.add_job(JobSpec("pingpong", 2, pingpong_program, [0, 1]))
        mpi.run(until=0.01)
        results = mpi.results()
    """

    def __init__(self, fabric: NetworkFabric, telemetry: Telemetry | None = None) -> None:
        from repro.mpi.process import RankCtx  # local import to avoid a cycle

        self._ctx_cls = RankCtx
        self.fabric = fabric
        self.engine = fabric.engine
        #: Shared metric store; defaults to the fabric's session so
        #: network and MPI metrics land in one place.
        self.telemetry = telemetry if telemetry is not None else fabric.telemetry
        # Per-app latency-histogram record hooks, populated per job at
        # launch.  None when the family is off: the delivery hot path
        # then pays one is-None check, nothing more.
        self._lat_rec: dict[int, Callable[[float], None]] | None = (
            {} if self.telemetry.enabled(LATENCY_HISTOGRAM_FAMILY, default=False)
            else None
        )
        self.jobs: list[_Job] = []
        # One driver per engine partition (a single driver on the
        # sequential/optimistic engines), each pinned to its partition.
        # drivers[0] doubles as the control anchor for the start event
        # and pending-submission launches.
        self._drivers: list[_DriverLP] = []
        for p in range(self.engine.n_partitions):
            d = _DriverLP(self)
            self.engine.register(d, partition=p)
            self._drivers.append(d)
        self._driver = self._drivers[0]
        fabric.set_delivery_callback(self._on_delivery)
        fabric.set_injection_callback(self._on_injected)
        self._started = False
        #: Jobs submitted with a future arrival time:
        #: (arrival, spec-or-factory, on_launch-callback).
        self._pending: list[tuple[float, Any, Callable[[int], None] | None]] = []
        #: Invoked as ``cb(job_result)`` whenever the last rank of a job
        #: finishes (lets a scheduler return the job's nodes to a free pool).
        self.job_end_callback: Callable[[JobResult], None] | None = None
        #: Extension dispatch: op type -> handler(mpi, rank_state, op).
        #: A handler returns the value sent back into the generator, or
        #: blocks the rank itself and returns :data:`BLOCKED`.
        self.op_handlers: dict[type, Callable] = {}
        # Exact-type fast dispatch for the canonical ops, bound through
        # ``self`` so subclass overrides of _op_* are honored.
        self._op_dispatch: dict[type, Callable] = {
            Isend: self._op_isend,
            Irecv: self._op_irecv,
            Wait: self._op_wait,
            Waitall: self._op_waitall,
            Compute: self._op_compute,
            Sleep: self._op_compute,
        }

    def register_op_handler(self, op_type: type, handler: Callable) -> None:
        """Let a subsystem (e.g. storage) handle a new yieldable op type."""
        if op_type in self.op_handlers:
            raise ValueError(f"handler for {op_type.__name__} already registered")
        self.op_handlers[op_type] = handler

    # -- job management -------------------------------------------------------
    def _check_nodes(self, spec: JobSpec) -> None:
        n_nodes = self.fabric.topo.n_nodes
        for node in spec.rank_to_node:
            if not 0 <= node < n_nodes:
                raise ValueError(f"job {spec.name!r}: node {node} outside system of {n_nodes}")

    def add_job(self, spec: JobSpec) -> int:
        """Register a job that starts at t=0; returns its app id."""
        if self._started:
            raise RuntimeError("cannot add jobs after the simulation started")
        self._check_nodes(spec)
        app_id = len(self.jobs)
        self.jobs.append(_Job(spec, app_id))
        return app_id

    def submit_job(
        self,
        spec: JobSpec | Callable[[], JobSpec | None],
        arrival: float = 0.0,
        on_launch: Callable[[int], None] | None = None,
    ) -> None:
        """Submit a job that launches mid-simulation at ``arrival`` seconds.

        ``spec`` is either a ready :class:`JobSpec` or a zero-argument
        factory invoked *at the arrival time* -- the deferred form lets a
        scheduler place ranks against whatever nodes are free at that
        moment rather than at submission time.  A factory may return
        ``None`` to decline the launch (e.g. placement no longer fits).
        App ids are assigned in launch order, after every t=0 job;
        ``on_launch(app_id)`` fires after the id is assigned but *before*
        the first rank runs, so callers can install per-app routing
        overrides ahead of the job's first send.
        """
        if self._started:
            raise RuntimeError("cannot submit jobs after the simulation started")
        if arrival < 0:
            raise ValueError(f"arrival time must be >= 0, got {arrival}")
        self._pending.append((arrival, spec, on_launch))

    # -- execution ----------------------------------------------------------------
    def start(self) -> None:
        """Arm the runtime: schedule the t=0 bootstrap event.

        Idempotent; after the first call the job roster is frozen
        (:meth:`add_job`/:meth:`submit_job` raise).  Splitting this out
        of :meth:`run` is what makes the stepwise session lifecycle
        possible: ``start()`` once, then :meth:`step` in windows.
        """
        if not self.jobs and not self._pending:
            raise RuntimeError("no jobs added")
        if not self._started:
            self._started = True
            self.engine.schedule_at(0.0, self._driver.lp_id, "start", None, Priority.MPI)

    def step(self, until: float = float("inf")) -> float:
        """Advance the started simulation to ``until`` (absolute time).

        Unlike :meth:`run` this performs *no* end-of-run metric
        publication, so a caller may interleave steps with observation
        and control decisions; call :meth:`publish_job_metrics` (or let
        the session's ``finalize()`` do it) when the run is over.
        Stepping commits the identical event sequence as one monolithic
        ``run`` over the same horizon.
        """
        self.start()
        return self.engine.step(until=until)

    def run(self, until: float = float("inf")) -> float:
        """Run the co-scheduled jobs until the horizon (or until drained)."""
        self.start()
        end = self.engine.run(until=until)
        self.publish_job_metrics()
        return end

    def publish_job_metrics(self) -> None:
        """Publish every job's reduced metrics into the telemetry store.

        One gauge per value under ``mpi.job.<name>.*`` -- the same
        reductions :class:`JobResult` exposes, so consumers (the
        scenario runner, metric sinks) read them from the store instead
        of re-deriving rows.  Idempotent; called automatically at the
        end of :meth:`run`.
        """
        t = self.telemetry
        for j in self.jobs:
            r = self._result_of(j)
            base = job_key(r.name)
            lat = r.max_latencies_per_rank()
            values = (
                ("ranks", r.nranks, "ranks", "rank count"),
                ("app_id", r.app_id, "", "app id on the fabric"),
                ("finished", int(r.finished), "", "1 when every rank completed"),
                ("msgs_recvd", sum(s.msgs_recvd for s in r.rank_stats),
                 "messages", "messages received across ranks"),
                ("msgs_sent", sum(s.msgs_sent for s in r.rank_stats),
                 "messages", "messages sent across ranks"),
                ("bytes_sent", r.total_bytes_sent(), "bytes",
                 "payload bytes sent across ranks"),
                ("avg_msg_latency", r.avg_latency(), "seconds",
                 "mean latency over received messages"),
                ("max_msg_latency", max(lat) if lat else 0.0, "seconds",
                 "worst per-rank max message latency"),
                ("max_comm_time", r.max_comm_time(), "seconds",
                 "worst per-rank blocked-in-MPI time"),
                ("mean_comm_time", r.mean_comm_time(), "seconds",
                 "mean per-rank blocked-in-MPI time"),
            )
            for metric, value, unit, doc in values:
                t.gauge(f"{base}.{metric}", unit=unit, doc=doc).set(value)

    def _start_all(self) -> None:
        for arrival, spec, on_launch in self._pending:
            self.engine.schedule_at(
                arrival, self._driver.lp_id, "launch", (spec, on_launch), Priority.MPI
            )
        self._pending = []
        for job in self.jobs:
            self._start_job(job)

    def _driver_lp_for_node(self, node: int) -> int:
        """The driver LP serving ``node``'s partition."""
        drivers = self._drivers
        if len(drivers) == 1:
            return drivers[0].lp_id
        return drivers[self.engine.partition_of(self.fabric.terminal_lp_id(node))].lp_id

    def _start_job(self, job: "_Job") -> None:
        base = job_key(job.spec.name)
        self.telemetry.gauge(f"{base}.launched_at", unit="seconds",
                             doc="simulated time the job's ranks started").set(self.engine.now)
        if self._lat_rec is not None:
            # replace=True: a job relaunched on a shared session (e.g. a
            # manager re-run) gets a fresh histogram, matching how the
            # fabric's instruments supersede -- never merges two runs.
            hist = self.telemetry.histogram(
                f"{base}.msg_latency", unit="seconds",
                doc="per-message latency distribution", replace=True,
            )
            if hist.enabled:
                self._lat_rec[job.app_id] = hist.record
        # Fan the launch out as one rank_start event per rank, addressed
        # to the rank's partition driver, via the contract-safe control
        # path (this handler may be executing in a different partition
        # than the ranks it launches).  Scheduled in rank order at the
        # launch instant, the events commit in rank order on every
        # engine, so rank generators advance -- and draw from shared
        # routing/workload RNG streams -- in the same order everywhere.
        now = self.engine.now
        sched = self.engine.schedule_control
        for rs in job.ranks:
            rs.driver_lp = self._driver_lp_for_node(rs.node)
            sched(now, rs.driver_lp, "rank_start", rs, Priority.MPI)

    def _begin_rank(self, rs: _RankState) -> None:
        ctx = self._ctx_cls(self, rs)
        rs.gen = rs.job.spec.program(ctx)
        self._advance(rs, None)

    def _launch_submission(self, item) -> None:
        spec, on_launch = item
        if callable(spec) and not isinstance(spec, JobSpec):
            spec = spec()
            if spec is None:  # factory declined (e.g. no free nodes)
                return
        self._check_nodes(spec)
        job = _Job(spec, len(self.jobs))
        self.jobs.append(job)
        if on_launch is not None:
            on_launch(job.app_id)
        self._start_job(job)

    def all_finished(self) -> bool:
        return all(j.finished for j in self.jobs)

    def _result_of(self, j: "_Job") -> JobResult:
        return JobResult(
            name=j.spec.name,
            app_id=j.app_id,
            nranks=len(j.ranks),
            rank_stats=[rs.stats for rs in j.ranks],
            finished=j.finished,
        )

    def results(self) -> list[JobResult]:
        return [self._result_of(j) for j in self.jobs]

    # -- generator driving ------------------------------------------------------------
    def _advance(self, rs: _RankState, value: Any) -> None:
        gen = rs.gen
        assert gen is not None
        while True:
            try:
                op = gen.send(value)
            except StopIteration:
                rs.finished = True
                rs.stats.finished_at = self.engine.now
                rs.job.done_ranks += 1
                if rs.job.finished:
                    self.telemetry.gauge(
                        job_key(rs.job.spec.name, "finished_at"), unit="seconds",
                        doc="simulated time the job's last rank finished",
                    ).set(self.engine.now)
                    if self.job_end_callback is not None:
                        self.job_end_callback(self._result_of(rs.job))
                return
            value = self._dispatch(rs, op)
            if value is _BLOCKED:
                return

    def _dispatch(self, rs: _RankState, op: Any) -> Any:
        # Exact-type method table first (the hot path for the canonical
        # ops); op subclasses and extension ops fall back to the
        # isinstance chain below.
        handler = self._op_dispatch.get(type(op))
        if handler is not None:
            return handler(rs, op)
        if isinstance(op, Isend):
            return self._op_isend(rs, op)
        if isinstance(op, Irecv):
            return self._op_irecv(rs, op)
        if isinstance(op, Wait):
            return self._op_wait(rs, op)
        if isinstance(op, Waitall):
            return self._op_waitall(rs, op)
        if isinstance(op, Compute):  # Sleep subclasses Compute
            return self._op_compute(rs, op)
        handler = self.op_handlers.get(type(op))
        if handler is not None:
            return handler(self, rs, op)
        raise TypeError(f"rank program yielded unsupported object {op!r}")

    def _op_isend(self, rs: _RankState, op: Isend) -> Request:
        now = self.engine.now
        if not 0 <= op.dst < len(rs.job.ranks):
            raise ValueError(
                f"rank {rs.rank} of {rs.job.spec.name!r} sends to invalid rank {op.dst}"
            )
        req = Request("send", rs.rank, op.nbytes, op.dst, op.tag, now)
        rs.stats.msgs_sent += 1
        rs.stats.bytes_sent += op.nbytes
        meta = (rs.job.app_id, rs.rank, op.dst, op.tag, op.nbytes, now, req)
        self.fabric.send_message(
            rs.job.app_id, rs.node, rs.job.spec.rank_to_node[op.dst], op.nbytes, meta
        )
        return req

    def _op_irecv(self, rs: _RankState, op: Irecv) -> Request:
        req = Request("recv", rs.rank, op.nbytes or 0, op.src, op.tag, self.engine.now)
        msg = self._match_unexpected(rs, op.src, op.tag)
        if msg is not None:
            req.complete = True
            req.result = msg
        else:
            rs.posted_recvs.append(req)
        return req

    def _op_wait(self, rs: _RankState, op: Wait) -> Any:
        req = op.request
        if req.complete:
            return req.result
        req.waiter = rs
        rs.wait_group = None
        rs.pending_reqs = 1
        self._block(rs)
        return _BLOCKED

    def _op_waitall(self, rs: _RankState, op: Waitall) -> Any:
        pending = [r for r in op.requests if not r.complete]
        if not pending:
            return [r.result for r in op.requests]
        for r in pending:
            r.waiter = rs
        rs.wait_group = op.requests
        rs.pending_reqs = len(pending)
        self._block(rs)
        return _BLOCKED

    def _op_compute(self, rs: _RankState, op: Compute) -> Any:
        rs.stats.compute_time += op.seconds
        self.engine.schedule(op.seconds, rs.driver_lp, "wake", rs, Priority.WAKEUP)
        rs.blocked = False  # not comm-blocked; just descheduled
        return _BLOCKED

    def _block(self, rs: _RankState) -> None:
        rs.blocked = True
        rs.block_start = self.engine.now

    def _unblock(self, rs: _RankState, value: Any) -> None:
        rs.blocked = False
        rs.stats.comm_time += self.engine.now - rs.block_start
        self._advance(rs, value)

    def _on_wake(self, rs: _RankState) -> None:
        self._advance(rs, None)

    # -- completion plumbing -----------------------------------------------------------
    def _match_unexpected(self, rs: _RankState, src: int, tag: int) -> Message | None:
        for i, msg in enumerate(rs.unexpected):
            if (src == ANY_SOURCE or msg.src == src) and (tag == ANY_TAG or msg.tag == tag):
                return rs.unexpected.pop(i)
        return None

    def _on_delivery(self, msg_id: int, meta: Any, time: float) -> None:
        if isinstance(meta, MessageHook):
            meta.on_delivered(time)
            return
        app_id, src_rank, dst_rank, tag, nbytes, posted_at, _send_req = meta
        job = self.jobs[app_id]
        rs = job.ranks[dst_rank]
        rs.stats.msgs_recvd += 1
        latency = time - posted_at
        rs.stats.latencies.append(latency)
        if self._lat_rec is not None:
            rec = self._lat_rec.get(app_id)
            if rec is not None:
                rec(latency)
        msg = Message(src_rank, tag, nbytes, posted_at, time)
        for i, req in enumerate(rs.posted_recvs):
            if (req.peer == ANY_SOURCE or req.peer == src_rank) and (
                req.tag == ANY_TAG or req.tag == tag
            ):
                rs.posted_recvs.pop(i)
                self._complete_request(req, msg)
                return
        rs.unexpected.append(msg)

    def _on_injected(self, msg_id: int, meta: Any, time: float) -> None:
        if isinstance(meta, MessageHook):
            meta.on_injected(time)
            return
        send_req: Request = meta[6]
        self._complete_request(send_req, None)

    def _complete_request(self, req: Request, result: Any) -> None:
        req.complete = True
        req.result = result
        rs = req.waiter
        if rs is None or not rs.blocked:
            return
        req.waiter = None
        rs.pending_reqs -= 1
        if rs.pending_reqs > 0:
            return
        if rs.wait_group is not None:
            value = [r.result for r in rs.wait_group]
            rs.wait_group = None
        else:
            value = result
        self._unblock(rs, value)

