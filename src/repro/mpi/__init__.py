"""Simulated MPI runtime over the packet-level fabric (SWM substitute).

Each MPI rank is a Python generator -- the analogue of the Argobots
user-level threads CODES uses to co-schedule SWM skeletons with the
simulation (Section II-B).  Rank code yields primitive operations
(:class:`~repro.mpi.types.Isend`, :class:`~repro.mpi.types.Recv`,
:class:`~repro.mpi.types.Compute`, ...) and composes collectives from
the generator helpers on its :class:`~repro.mpi.process.RankCtx`.
"""

from repro.mpi.types import (
    ANY_SOURCE,
    ANY_TAG,
    Request,
    Message,
    Isend,
    Irecv,
    Wait,
    Waitall,
    Compute,
    Sleep,
)
from repro.mpi.engine import SimMPI, JobSpec, JobResult, RankStats
from repro.mpi.process import RankCtx

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Request",
    "Message",
    "Isend",
    "Irecv",
    "Wait",
    "Waitall",
    "Compute",
    "Sleep",
    "SimMPI",
    "JobSpec",
    "JobResult",
    "RankStats",
    "RankCtx",
]
