"""RankCtx: the per-rank API surface that rank programs code against.

A rank program is ``def program(ctx): ...`` yielding operations::

    def pingpong(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 1024)
            msg = yield from ctx.recv(1)
        elif ctx.rank == 1:
            msg = yield from ctx.recv(0)
            yield from ctx.send(0, 1024)

Blocking helpers (``send``, ``recv``, collectives) are generators and
must be driven with ``yield from``; nonblocking primitives (``isend``,
``irecv``) are plain ops to ``yield`` directly.

The ctx also carries the counters used for skeleton validation: every
call increments an ``MPI_<Name>``-style counter, while the internal
point-to-point messages of collectives are *not* double counted (they
go through the private ``_isend_raw``/``_irecv_raw`` channel).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.mpi import collectives as coll
from repro.mpi.types import ANY_SOURCE, ANY_TAG, Compute, Irecv, Isend, Message, Request, Sleep, Wait, Waitall

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.engine import SimMPI, _RankState


class RankCtx:
    """Execution context of one MPI rank inside the simulation."""

    __slots__ = ("_mpi", "_rs", "_coll_seq")

    def __init__(self, mpi: "SimMPI", rs: "_RankState") -> None:
        self._mpi = mpi
        self._rs = rs
        self._coll_seq = 0

    # -- identity ------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rs.rank

    @property
    def size(self) -> int:
        return len(self._rs.job.ranks)

    @property
    def job_name(self) -> str:
        return self._rs.job.spec.name

    @property
    def params(self) -> dict[str, Any]:
        return self._rs.job.spec.params

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._mpi.engine.now

    @property
    def stats(self):
        return self._rs.stats

    # -- nonblocking primitives (yield the returned op) --------------------------
    def isend(self, dst: int, nbytes: int, tag: int = 0) -> Isend:
        self._rs.stats.count("MPI_Isend")
        return Isend(dst, nbytes, tag)

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Irecv:
        self._rs.stats.count("MPI_Irecv")
        return Irecv(src, None, tag)

    def wait(self, request: Request) -> Wait:
        self._rs.stats.count("MPI_Wait")
        return Wait(request)

    def waitall(self, requests: list[Request]) -> Waitall:
        self._rs.stats.count("MPI_Waitall")
        return Waitall(requests)

    # Internal channel used by the collective algorithms: no counters.
    def _isend_raw(self, dst: int, nbytes: int, tag: int) -> Isend:
        return Isend(dst, nbytes, tag)

    def _irecv_raw(self, src: int, tag: int) -> Irecv:
        return Irecv(src, None, tag)

    def _next_coll_seq(self) -> int:
        seq = self._coll_seq
        self._coll_seq += 1
        return seq

    # -- blocking helpers (drive with ``yield from``) ------------------------------
    def send(self, dst: int, nbytes: int, tag: int = 0) -> Generator:
        """Blocking send: returns once the message left the NIC."""
        self._rs.stats.count("MPI_Send")
        req = yield Isend(dst, nbytes, tag)
        yield Wait(req)

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive: returns the :class:`Message`."""
        self._rs.stats.count("MPI_Recv")
        req = yield Irecv(src, None, tag)
        msg = yield Wait(req)
        return msg

    def sendrecv(self, dst: int, src: int, nbytes: int, tag: int = 0) -> Generator:
        """Simultaneous blocking send+recv (deadlock-free exchange)."""
        self._rs.stats.count("MPI_Sendrecv")
        sreq = yield Isend(dst, nbytes, tag)
        rreq = yield Irecv(src, None, tag)
        res = yield Waitall([sreq, rreq])
        return res[1]

    # -- timing -----------------------------------------------------------------
    def compute(self, seconds: float) -> Compute:
        """Local computation delay (yield the returned op)."""
        return Compute(seconds)

    def sleep(self, seconds: float) -> Sleep:
        return Sleep(seconds)

    # -- collectives (drive with ``yield from``) -------------------------------------
    def barrier(self) -> Generator:
        self._rs.stats.count("MPI_Barrier")
        yield from coll.barrier(self)

    def bcast(self, nbytes: int, root: int = 0) -> Generator:
        self._rs.stats.count("MPI_Bcast")
        yield from coll.bcast(self, nbytes, root)

    def reduce(self, nbytes: int, root: int = 0) -> Generator:
        self._rs.stats.count("MPI_Reduce")
        yield from coll.reduce(self, nbytes, root)

    def allreduce(self, nbytes: int, algorithm: str = "auto") -> Generator:
        self._rs.stats.count("MPI_Allreduce")
        yield from coll.allreduce(self, nbytes, algorithm)

    def allgather(self, nbytes: int) -> Generator:
        self._rs.stats.count("MPI_Allgather")
        yield from coll.allgather(self, nbytes)

    def alltoall(self, nbytes: int) -> Generator:
        self._rs.stats.count("MPI_Alltoall")
        yield from coll.alltoall(self, nbytes)

    def gather(self, nbytes: int, root: int = 0) -> Generator:
        self._rs.stats.count("MPI_Gather")
        yield from coll.gather(self, nbytes, root)

    def scatter(self, nbytes: int, root: int = 0) -> Generator:
        self._rs.stats.count("MPI_Scatter")
        yield from coll.scatter(self, nbytes, root)

    # -- logging / bookkeeping ---------------------------------------------------------
    def reset_counters(self) -> None:
        """coNCePTuaL's "resets its counters": restart the elapsed clock."""
        self._rs.epoch_start = self._mpi.engine.now

    @property
    def elapsed_usecs(self) -> float:
        """Microseconds since the last :meth:`reset_counters` (or start)."""
        return (self._mpi.engine.now - self._rs.epoch_start) * 1e6

    def log(self, label: str, value: float) -> None:
        """Record a labelled value (coNCePTuaL's "logs ... as ...")."""
        self._rs.stats.log_rows.append((label, float(value)))
