"""Primitive operation and request types of the simulated MPI runtime."""

from __future__ import annotations

from typing import Any

ANY_SOURCE = -1
ANY_TAG = -1


class Message:
    """A delivered message as seen by the receiving rank."""

    __slots__ = ("src", "tag", "nbytes", "sent_at", "arrived_at")

    def __init__(self, src: int, tag: int, nbytes: int, sent_at: float, arrived_at: float) -> None:
        self.src = src
        self.tag = tag
        self.nbytes = nbytes
        self.sent_at = sent_at
        self.arrived_at = arrived_at

    @property
    def latency(self) -> float:
        return self.arrived_at - self.sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message(src={self.src}, tag={self.tag}, nbytes={self.nbytes})"


class Request:
    """Handle for a nonblocking operation."""

    __slots__ = ("kind", "complete", "result", "rank", "nbytes", "peer", "tag", "posted_at", "waiter")

    def __init__(self, kind: str, rank: int, nbytes: int, peer: int, tag: int, posted_at: float) -> None:
        self.kind = kind  # "send" | "recv"
        self.complete = False
        self.result: Any = None
        self.rank = rank
        self.nbytes = nbytes
        self.peer = peer
        self.tag = tag
        self.posted_at = posted_at
        self.waiter: Any = None  # rank state blocked on this request

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.complete else "pending"
        return f"Request({self.kind}, rank={self.rank}, peer={self.peer}, tag={self.tag}, {state})"


# ---------------------------------------------------------------------------
# Operations yielded by rank generators.  Each is a tiny tagged record; the
# engine dispatches on the class.
# ---------------------------------------------------------------------------


class Isend:
    """Nonblocking send; the engine resumes immediately with a Request.

    The request completes when the message's last packet has left the
    source NIC, so a blocking Send (Isend+Wait) stalls under injection
    contention -- the behaviour that makes LAMMPS's blocking sends
    sensitive to interference in the paper.
    """

    __slots__ = ("dst", "nbytes", "tag")

    def __init__(self, dst: int, nbytes: int, tag: int = 0) -> None:
        self.dst = dst
        self.nbytes = nbytes
        self.tag = tag


class Irecv:
    """Nonblocking receive; resumes immediately with a Request."""

    __slots__ = ("src", "nbytes", "tag")

    def __init__(self, src: int = ANY_SOURCE, nbytes: int | None = None, tag: int = ANY_TAG) -> None:
        self.src = src
        self.nbytes = nbytes
        self.tag = tag


class Wait:
    """Block until the request completes; resumes with its result."""

    __slots__ = ("request",)

    def __init__(self, request: Request) -> None:
        self.request = request


class Waitall:
    """Block until all requests complete; resumes with their results."""

    __slots__ = ("requests",)

    def __init__(self, requests: list[Request]) -> None:
        self.requests = list(requests)


class Compute:
    """Local computation: advance this rank's clock without traffic.

    Does not count towards communication time.  This is the delay model
    that replaces real computation in a skeleton (``UNION_Compute``).
    """

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"compute time must be >= 0, got {seconds}")
        self.seconds = seconds


class Sleep(Compute):
    """Idle wait; timing-wise identical to Compute."""

    __slots__ = ()


class MessageHook:
    """Extension point for fabric messages owned by non-MPI subsystems.

    A message sent with a :class:`MessageHook` as its ``meta`` bypasses
    the MPI rank-matching machinery: the engine calls
    :meth:`on_injected` when the last packet leaves the source NIC and
    :meth:`on_delivered` when the message fully arrives.  The storage
    subsystem uses this to ship I/O requests and responses over the same
    simulated network as MPI traffic.
    """

    __slots__ = ()

    def on_injected(self, time: float) -> None:
        """Last packet left the source NIC."""

    def on_delivered(self, time: float) -> None:
        """Message fully arrived at the destination terminal."""
