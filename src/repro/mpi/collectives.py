"""Collective algorithms composed from point-to-point primitives.

Real MPI libraries build collectives from point-to-point messages; doing
the same here means collective traffic exercises the network exactly
like application point-to-point traffic -- every constituent message
gets a latency sample, congestion stretches collectives, and the ML
workloads' "super-intensive blocking Allreduces" (Section VI-B) behave
as they do in the paper.

Algorithms (mirroring MPICH/Horovod choices):

* barrier  -- dissemination, ceil(log2 n) rounds;
* bcast    -- binomial tree;
* reduce   -- binomial tree (leaves towards root);
* allreduce -- recursive doubling for small payloads, ring
  (Horovod-style, 2(n-1) steps of size/n chunks) for large ones;
* allgather -- ring;
* alltoall  -- pairwise exchange;
* gather/scatter -- linear (root-sequential), adequate for the small
  fan-ins the workloads use.

All generators must be driven with ``yield from`` inside a rank program.
Tag isolation: each collective invocation draws a fresh sequence number
from the ctx; ranks call collectives in the same program order (SPMD),
so sequence numbers agree across ranks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mpi.types import Wait, Waitall

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.process import RankCtx

_COLL_TAG_BASE = 1 << 24
_MAX_STEPS = 4096  # per-collective tag sub-space


def _tag(seq: int, step: int) -> int:
    if step >= _MAX_STEPS:  # pragma: no cover - defensive
        raise ValueError(f"collective exceeded {_MAX_STEPS} steps")
    return _COLL_TAG_BASE + seq * _MAX_STEPS + step


def barrier(ctx: "RankCtx"):
    """Dissemination barrier."""
    n, r = ctx.size, ctx.rank
    if n == 1:
        return
    seq = ctx._next_coll_seq()
    mask, step = 1, 0
    while mask < n:
        dst = (r + mask) % n
        src = (r - mask) % n
        sreq = yield ctx._isend_raw(dst, 0, _tag(seq, step))
        rreq = yield ctx._irecv_raw(src, _tag(seq, step))
        yield Waitall([sreq, rreq])
        mask <<= 1
        step += 1


def bcast(ctx: "RankCtx", nbytes: int, root: int = 0):
    """Binomial-tree broadcast of ``nbytes`` from ``root``."""
    n, r = ctx.size, ctx.rank
    if n == 1:
        return
    seq = ctx._next_coll_seq()
    rel = (r - root) % n
    mask = 1
    while mask < n:
        if rel & mask:
            src = (r - mask) % n
            req = yield ctx._irecv_raw(src, _tag(seq, 0))
            yield Wait(req)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rel + mask < n:
            dst = (r + mask) % n
            req = yield ctx._isend_raw(dst, nbytes, _tag(seq, 0))
            yield Wait(req)
        mask >>= 1


def reduce(ctx: "RankCtx", nbytes: int, root: int = 0):
    """Binomial-tree reduction of ``nbytes`` to ``root``."""
    n, r = ctx.size, ctx.rank
    if n == 1:
        return
    seq = ctx._next_coll_seq()
    rel = (r - root) % n
    mask = 1
    while mask < n:
        if rel & mask:
            dst = (r - mask) % n
            req = yield ctx._isend_raw(dst, nbytes, _tag(seq, 0))
            yield Wait(req)
            break
        else:
            src_rel = rel | mask
            if src_rel < n:
                src = (src_rel + root) % n
                req = yield ctx._irecv_raw(src, _tag(seq, 0))
                yield Wait(req)
        mask <<= 1


def _sendrecv(ctx: "RankCtx", dst: int, src: int, nbytes: int, tag: int):
    sreq = yield ctx._isend_raw(dst, nbytes, tag)
    rreq = yield ctx._irecv_raw(src, tag)
    yield Waitall([sreq, rreq])


def allreduce_recursive_doubling(ctx: "RankCtx", nbytes: int):
    """Recursive-doubling allreduce with the MPICH non-power-of-two fixup."""
    n, r = ctx.size, ctx.rank
    if n == 1:
        return
    seq = ctx._next_coll_seq()
    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2
    # Phase 1: fold the extra ranks into the power-of-two core.
    if r < 2 * rem:
        if r % 2 == 0:
            req = yield ctx._isend_raw(r + 1, nbytes, _tag(seq, 0))
            yield Wait(req)
            newrank = -1
        else:
            req = yield ctx._irecv_raw(r - 1, _tag(seq, 0))
            yield Wait(req)
            newrank = r // 2
    else:
        newrank = r - rem
    # Phase 2: recursive doubling among the pof2 core ranks.
    if newrank >= 0:
        mask, step = 1, 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = partner_new * 2 + 1 if partner_new < rem else partner_new + rem
            yield from _sendrecv(ctx, partner, partner, nbytes, _tag(seq, step))
            mask <<= 1
            step += 1
    # Phase 3: hand results back to the folded ranks.
    if r < 2 * rem:
        if r % 2 == 0:
            req = yield ctx._irecv_raw(r + 1, _tag(seq, _MAX_STEPS - 1))
            yield Wait(req)
        else:
            req = yield ctx._isend_raw(r - 1, nbytes, _tag(seq, _MAX_STEPS - 1))
            yield Wait(req)


def allreduce_ring(ctx: "RankCtx", nbytes: int):
    """Ring allreduce (Horovod): 2(n-1) steps of ceil(nbytes/n) chunks."""
    n, r = ctx.size, ctx.rank
    if n == 1:
        return
    seq = ctx._next_coll_seq()
    chunk = max(1, (nbytes + n - 1) // n)
    nxt, prv = (r + 1) % n, (r - 1) % n
    for step in range(2 * (n - 1)):
        yield from _sendrecv(ctx, nxt, prv, chunk, _tag(seq, step))


#: Payload size (bytes) above which allreduce switches to the ring algorithm.
RING_THRESHOLD = 64 * 1024


def allreduce(ctx: "RankCtx", nbytes: int, algorithm: str = "auto"):
    """Allreduce ``nbytes`` across the job.

    ``algorithm`` is ``"auto"`` (ring above :data:`RING_THRESHOLD`),
    ``"ring"`` or ``"rd"`` (recursive doubling).
    """
    if algorithm == "auto":
        algorithm = "ring" if (nbytes >= RING_THRESHOLD and ctx.size > 2) else "rd"
    if algorithm == "ring":
        yield from allreduce_ring(ctx, nbytes)
    elif algorithm == "rd":
        yield from allreduce_recursive_doubling(ctx, nbytes)
    else:
        raise ValueError(f"unknown allreduce algorithm {algorithm!r}")


def allgather(ctx: "RankCtx", nbytes: int):
    """Ring allgather: n-1 steps, each forwarding an ``nbytes`` block."""
    n, r = ctx.size, ctx.rank
    if n == 1:
        return
    seq = ctx._next_coll_seq()
    nxt, prv = (r + 1) % n, (r - 1) % n
    for step in range(n - 1):
        yield from _sendrecv(ctx, nxt, prv, nbytes, _tag(seq, step))


def alltoall(ctx: "RankCtx", nbytes: int):
    """Pairwise-exchange alltoall: n-1 shifted sendrecv steps."""
    n, r = ctx.size, ctx.rank
    if n == 1:
        return
    seq = ctx._next_coll_seq()
    for step in range(1, n):
        dst = (r + step) % n
        src = (r - step) % n
        yield from _sendrecv(ctx, dst, src, nbytes, _tag(seq, step - 1))


def gather(ctx: "RankCtx", nbytes: int, root: int = 0):
    """Linear gather: every non-root rank sends ``nbytes`` to root."""
    n, r = ctx.size, ctx.rank
    if n == 1:
        return
    seq = ctx._next_coll_seq()
    if r == root:
        reqs = []
        for src in range(n):
            if src != root:
                reqs.append((yield ctx._irecv_raw(src, _tag(seq, 0))))
        yield Waitall(reqs)
    else:
        req = yield ctx._isend_raw(root, nbytes, _tag(seq, 0))
        yield Wait(req)


def scatter(ctx: "RankCtx", nbytes: int, root: int = 0):
    """Linear scatter: root sends ``nbytes`` to every other rank."""
    n, r = ctx.size, ctx.rank
    if n == 1:
        return
    seq = ctx._next_coll_seq()
    if r == root:
        reqs = []
        for dst in range(n):
            if dst != root:
                reqs.append((yield ctx._isend_raw(dst, nbytes, _tag(seq, 0))))
        yield Waitall(reqs)
    else:
        req = yield ctx._irecv_raw(root, _tag(seq, 0))
        yield Wait(req)
