"""Terminal (NIC) logical process: injection, segmentation, reassembly.

The terminal serializes outgoing packets onto its uplink at the terminal
bandwidth (so a rank's sends contend at its own NIC before they contend
in the network), selects each packet's route at the moment the packet
leaves (so adaptive routing sees fresh queue depths) and reassembles
arriving packets into messages, notifying the fabric when a message is
complete.

Like the router's output ports, the injection channel is tracked as a
``busy_until`` timestamp instead of per-packet ``inj_free`` self-events:
a message injected while the NIC is idle starts transmitting
synchronously, and a single ``drain`` event is scheduled only when the
injection FIFO transitions empty -> non-empty.  The invariant is: *a
drain event is pending iff the injection FIFO is non-empty*, and it
fires exactly at ``busy_until``.

Queued packets are plain ``(msg_id, app_id, dst_node, size, is_tail)``
tuples -- the NIC churns through one per packet transmission, and a
tuple allocates and unpacks measurably faster than a slotted object.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.network.config import NetworkConfig
from repro.network.packet import Packet
from repro.network.topology import Topology
from repro.pdes.event import Event, Priority
from repro.pdes.lp import LP

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.fabric import NetworkFabric

_NETWORK = Priority.NETWORK


class TerminalLP(LP):
    """One compute node's network interface."""

    __slots__ = (
        "node",
        "topo",
        "config",
        "fabric",
        "inj_queue",
        "busy_until",
        "_src_router",
        "_router_lp",
        "_inject_latency",
        "_uplink_id",
        "_terminal_bw",
        "_router_of_node",
        "_sched",
        "_next_pkt_id",
        "_load_record",
        "_dispatch",
    )

    def __init__(self, node: int, topo: Topology, config: NetworkConfig, fabric: "NetworkFabric") -> None:
        super().__init__()
        self.node = node
        self.topo = topo
        self.config = config
        self.fabric = fabric
        self.inj_queue: deque[tuple[int, int, int, int, bool]] = deque()
        #: Timestamp until which the injection channel is occupied.
        self.busy_until: float = 0.0
        self._src_router = topo.router_of_node(node)
        # Uplink shares the terminal link's load accounting with the downlink.
        uplink = topo.router_ports[self._src_router][topo.port_to_node[self._src_router][node]]
        self._uplink_id = uplink.link_id
        self._inject_latency = config.terminal_latency + config.router_delay
        self._terminal_bw = config.terminal_bw
        # Bound method, not an inlined division: custom topologies
        # duck-type the fabric contract through router_of_node().
        self._router_of_node = topo.router_of_node
        self._router_lp = -1  # resolved by wire_ports()
        self._sched = None
        self._next_pkt_id = None
        # Telemetry hook; None when link accounting is disabled.
        self._load_record = fabric.load_record
        # Interned-kind method table bound through ``self`` (one dict
        # lookup replaces the chain of string comparisons on the
        # per-packet hot path, and subclass overrides are honored).
        self._dispatch = {
            "pkt": self._on_pkt,
            "inj_done": self._on_inj_done,
            "drain": self._on_drain,
            "loopback": self._on_loopback,
        }

    def wire_ports(self) -> None:
        """Resolve hot-path constants (called by the fabric after every
        router and terminal LP has been registered)."""
        self._router_lp = self.fabric.router_lp_id(self._src_router)
        self._sched = self.engine.schedule_fast
        self._next_pkt_id = self.fabric.next_packet_id

    def accel_export(self):
        """Hot-path table for the compiled kernel (:mod:`repro.accel`).

        Only the dominant ``pkt`` (delivery) kind is handled natively --
        the kernel calls the bound :meth:`_on_pkt` without building an
        Event or walking the dispatch dict; every other kind goes
        through :meth:`handle` unchanged.  Subclasses opt out wholesale.
        """
        if type(self) is not TerminalLP:
            return None
        return ("terminal", self, self.handle, self._on_pkt)

    # -- sending ---------------------------------------------------------
    def inject_message(self, msg_id: int, app_id: int, dst_node: int, size: int) -> None:
        """Segment a message into packets and queue them for injection.

        Called synchronously by the fabric from within an event handler.
        """
        q = self.inj_queue
        drain_pending = bool(q)
        psize = self.config.packet_bytes
        remaining = size
        first = True
        while remaining > 0 or first:
            chunk = psize if remaining > psize else (remaining if remaining > 0 else 0)
            remaining -= chunk
            q.append((msg_id, app_id, dst_node, chunk, remaining <= 0))
            first = False
        if drain_pending:
            return
        if self.engine.now >= self.busy_until:
            # NIC idle: the first packet starts transmitting right now.
            self._start_next()
            if q:
                self._sched(self.busy_until, self.lp_id, "drain", None, _NETWORK, self.lp_id)
        else:
            # Mid-transmission with an empty FIFO: the queue just became
            # non-empty, so schedule the one drain at the busy boundary.
            self._sched(self.busy_until, self.lp_id, "drain", None, _NETWORK, self.lp_id)

    def _start_next(self) -> None:
        msg_id, app_id, dst_node, size, is_tail = self.inj_queue.popleft()
        fab = self.fabric
        src_router = self._src_router
        path, nonmin = fab.routing_for(app_id).select_path(
            src_router, self._router_of_node(dst_node)
        )
        fab.on_packet_routed(app_id, nonmin)
        pkt = Packet(
            self._next_pkt_id(self.node), msg_id, app_id, self.node, dst_node, size, path, nonmin
        )
        done = self.engine.now + size / self._terminal_bw
        self.busy_until = done
        sched = self._sched
        sched(done + self._inject_latency, self._router_lp, "pkt", pkt, _NETWORK, self.lp_id)
        rec = self._load_record
        if rec is not None:
            rec(self._uplink_id, size)
        if is_tail:
            # Injection-complete notification must fire *at* `done`, not now.
            sched(done, self.lp_id, "inj_done", msg_id, _NETWORK, self.lp_id)

    # -- event handling ------------------------------------------------------
    def handle(self, event: Event) -> None:
        handler = self._dispatch.get(event.kind)
        if handler is None:  # pragma: no cover - defensive
            raise ValueError(f"terminal {self.node} got unknown event kind {event.kind!r}")
        handler(event.data)

    def _on_pkt(self, pkt: Packet) -> None:
        self.fabric.on_packet_delivered(pkt, self.engine.now)

    def _on_inj_done(self, msg_id: int) -> None:
        self.fabric.on_message_injected(msg_id, self.engine.now)

    def _on_drain(self, _data: None) -> None:
        self._start_next()
        if self.inj_queue:
            self._sched(self.busy_until, self.lp_id, "drain", None, _NETWORK, self.lp_id)

    def _on_loopback(self, msg_id: int) -> None:
        self.fabric.on_loopback(msg_id, self.engine.now)
