"""Terminal (NIC) logical process: injection, segmentation, reassembly.

The terminal serializes outgoing packets onto its uplink at the terminal
bandwidth (so a rank's sends contend at its own NIC before they contend
in the network), selects each packet's route at the moment the packet
leaves (so adaptive routing sees fresh queue depths) and reassembles
arriving packets into messages, notifying the fabric when a message is
complete.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.network.config import NetworkConfig
from repro.network.packet import Packet
from repro.network.topology import Topology
from repro.pdes.event import Event, Priority
from repro.pdes.lp import LP

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.fabric import NetworkFabric


class _PendingPacket:
    """A packet waiting in the NIC injection queue (route not yet chosen)."""

    __slots__ = ("msg_id", "app_id", "dst_node", "size", "is_tail")

    def __init__(self, msg_id: int, app_id: int, dst_node: int, size: int, is_tail: bool) -> None:
        self.msg_id = msg_id
        self.app_id = app_id
        self.dst_node = dst_node
        self.size = size
        self.is_tail = is_tail


class TerminalLP(LP):
    """One compute node's network interface."""

    __slots__ = ("node", "topo", "config", "fabric", "inj_queue", "inj_busy")

    def __init__(self, node: int, topo: Topology, config: NetworkConfig, fabric: "NetworkFabric") -> None:
        super().__init__()
        self.node = node
        self.topo = topo
        self.config = config
        self.fabric = fabric
        self.inj_queue: deque[_PendingPacket] = deque()
        self.inj_busy = False

    # -- sending ---------------------------------------------------------
    def inject_message(self, msg_id: int, app_id: int, dst_node: int, size: int) -> None:
        """Segment a message into packets and queue them for injection.

        Called synchronously by the fabric from within an event handler.
        """
        psize = self.config.packet_bytes
        remaining = size
        first = True
        while remaining > 0 or first:
            chunk = min(psize, remaining) if remaining > 0 else 0
            remaining -= chunk
            self.inj_queue.append(
                _PendingPacket(msg_id, app_id, dst_node, chunk, is_tail=(remaining <= 0))
            )
            first = False
        if not self.inj_busy:
            self._start_next()

    def _start_next(self) -> None:
        pend = self.inj_queue.popleft()
        self.inj_busy = True
        src_router = self.topo.router_of_node(self.node)
        dst_router = self.topo.router_of_node(pend.dst_node)
        path, nonmin = self.fabric.routing_for(pend.app_id).select_path(src_router, dst_router)
        self.fabric.on_packet_routed(pend.app_id, nonmin)
        pkt = Packet(
            self.fabric.next_packet_id(),
            pend.msg_id,
            pend.app_id,
            self.node,
            pend.dst_node,
            pend.size,
            path,
            nonmin,
        )
        tx = pend.size / self.config.terminal_bw
        done = self.engine.now + tx
        arrive = done + self.config.terminal_latency + self.config.router_delay
        self.engine.schedule_at(
            arrive, self.fabric.router_lp_id(src_router), "pkt", pkt, Priority.NETWORK, self.lp_id
        )
        # Uplink shares the terminal link's load accounting with the downlink.
        uplink = self.topo.router_ports[src_router][self.topo.port_to_node[src_router][self.node]]
        self.fabric.link_loads.record(uplink.link_id, pend.size)
        if pend.is_tail:
            # Injection-complete notification must fire *at* `done`, not now.
            self.engine.schedule_at(done, self.lp_id, "inj_done", pend.msg_id, Priority.NETWORK, self.lp_id)
        self.engine.schedule_at(done, self.lp_id, "inj_free", None, Priority.NETWORK, self.lp_id)

    # -- event handling ------------------------------------------------------
    def handle(self, event: Event) -> None:
        if event.kind == "pkt":
            self.fabric.on_packet_delivered(event.data, self.engine.now)
        elif event.kind == "inj_done":
            self.fabric.on_message_injected(event.data, self.engine.now)
        elif event.kind == "inj_free":
            if self.inj_queue:
                self._start_next()
            else:
                self.inj_busy = False
        elif event.kind == "loopback":
            self.fabric.on_loopback(event.data, self.engine.now)
        else:  # pragma: no cover - defensive
            raise ValueError(f"terminal {self.node} got unknown event kind {event.kind!r}")
