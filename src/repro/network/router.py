"""Router logical process: output-queued, per-port serialized forwarding.

Each output port transmits one packet at a time at the link's bandwidth;
packets arriving while the port is busy wait in the port's FIFO.  This
serialization is the sole source of queueing delay in the model -- and
therefore of all congestion phenomena the paper measures (message-latency
inflation under interference, adaptive routing's reaction to queue
depth, hot links under random-node placement).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.network.config import LinkClass, NetworkConfig
from repro.network.packet import Packet
from repro.network.topology import Topology
from repro.pdes.event import Event, Priority
from repro.pdes.lp import LP

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.fabric import NetworkFabric


class RouterLP(LP):
    """One dragonfly router."""

    __slots__ = ("rid", "topo", "config", "fabric", "queues", "busy", "packets_forwarded")

    def __init__(self, rid: int, topo: Topology, config: NetworkConfig, fabric: "NetworkFabric") -> None:
        super().__init__()
        self.rid = rid
        self.topo = topo
        self.config = config
        self.fabric = fabric
        n_ports = len(topo.router_ports[rid])
        self.queues: list[deque[Packet]] = [deque() for _ in range(n_ports)]
        self.busy: list[bool] = [False] * n_ports
        self.packets_forwarded = 0

    # -- queue sensing (used by adaptive routing) ---------------------------
    def queue_depth(self, port: int) -> int:
        return len(self.queues[port]) + (1 if self.busy[port] else 0)

    # -- event handling ------------------------------------------------------
    def handle(self, event: Event) -> None:
        if event.kind == "pkt":
            self._on_arrival(event.data)
        elif event.kind == "free":
            self._on_port_free(event.data)
        else:  # pragma: no cover - defensive
            raise ValueError(f"router {self.rid} got unknown event kind {event.kind!r}")

    def _on_arrival(self, pkt: Packet) -> None:
        self.fabric.app_counter.record(self.rid, pkt.app_id, self.engine.now, pkt.size)
        port = self._select_port(pkt)
        if self.busy[port]:
            self.queues[port].append(pkt)
        else:
            self._transmit(port, pkt)

    def _select_port(self, pkt: Packet) -> int:
        if pkt.at_last_router():
            return self.topo.port_to_node[self.rid][pkt.dst_node]
        next_router = pkt.path[pkt.hop + 1]
        candidates = self.topo.ports_to_router[self.rid][next_router]
        if len(candidates) == 1:
            return candidates[0]
        # Parallel links to the same neighbour: take the shallowest queue.
        return min(candidates, key=self.queue_depth)

    def _transmit(self, port: int, pkt: Packet) -> None:
        self.busy[port] = True
        p = self.topo.router_ports[self.rid][port]
        bw = self.config.bandwidth(p.link_class)
        tx = pkt.size / bw
        done = self.engine.now + tx
        self.fabric.link_loads.record(p.link_id, pkt.size)
        self.packets_forwarded += 1
        if p.link_class == LinkClass.TERMINAL:
            arrive = done + self.config.terminal_latency
            self.engine.schedule_at(
                arrive, self.fabric.terminal_lp_id(p.peer_node), "pkt", pkt, Priority.NETWORK, self.lp_id
            )
        else:
            pkt.hop += 1
            arrive = done + self.config.latency(p.link_class) + self.config.router_delay
            self.engine.schedule_at(
                arrive, self.fabric.router_lp_id(p.peer_router), "pkt", pkt, Priority.NETWORK, self.lp_id
            )
        self.engine.schedule_at(done, self.lp_id, "free", port, Priority.NETWORK, self.lp_id)

    def _on_port_free(self, port: int) -> None:
        q = self.queues[port]
        if q:
            self._transmit(port, q.popleft())
        else:
            self.busy[port] = False
