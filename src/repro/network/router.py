"""Router logical process: output-queued, per-port serialized forwarding.

Each output port transmits one packet at a time at the link's bandwidth;
packets arriving while the port is busy wait in the port's FIFO.  This
serialization is the sole source of queueing delay in the model -- and
therefore of all congestion phenomena the paper measures (message-latency
inflation under interference, adaptive routing's reaction to queue
depth, hot links under random-node placement).

The forwarding path is *event-free* beyond the packet arrivals
themselves.  The output port is chosen at arrival (as in the original
CODES-style model), the FIFO discipline admits no preemption, and the
link bandwidth is fixed -- so a packet's transmit start is fully
determined the moment it arrives: ``start = max(now, busy_until)``.
The router therefore schedules the downstream arrival immediately and
advances ``busy_until`` by the packet's serialization time; no ``free``
or ``drain`` self-events exist at all.  The seed model spent one
self-event per forwarded packet on this bookkeeping -- half of all
router event traffic.

Queue depth (sensed by adaptive routing) is derived from the recorded
transmit-start times: a packet occupies the FIFO until its start time,
so the depth at ``now`` is the number of pending start times still in
the future, plus one while the transmitter is serializing
(``now < busy_until``).  Start times already passed are pruned lazily
on access.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.network.config import LinkClass, NetworkConfig
from repro.network.packet import Packet
from repro.network.topology import Topology
from repro.pdes.event import Event, Priority
from repro.pdes.lp import LP

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.fabric import NetworkFabric

_NETWORK = Priority.NETWORK


class RouterLP(LP):
    """One dragonfly router."""

    __slots__ = (
        "rid",
        "topo",
        "config",
        "fabric",
        "pending_starts",
        "busy_until",
        "packets_forwarded",
        "_ports",
        "_port_to_node",
        "_ports_to_router",
        "_sched",
        "_app_record",
        "_load_record",
        "_queue_record",
    )

    def __init__(self, rid: int, topo: Topology, config: NetworkConfig, fabric: "NetworkFabric") -> None:
        super().__init__()
        self.rid = rid
        self.topo = topo
        self.config = config
        self.fabric = fabric
        n_ports = len(topo.router_ports[rid])
        #: Per-port transmit-start times of packets still waiting in the
        #: FIFO (ascending; pruned lazily once they pass).
        self.pending_starts: list[deque[float]] = [deque() for _ in range(n_ports)]
        #: Per-port timestamp until which the port's transmitter is occupied.
        self.busy_until: list[float] = [0.0] * n_ports
        self.packets_forwarded = 0
        self._port_to_node = topo.port_to_node[rid]
        self._ports_to_router = topo.ports_to_router[rid]
        # (peer_lp, bandwidth, post_tx_latency, link_id, hop_increment) per
        # port; resolved by wire_ports() once all LPs are registered.
        self._ports: list[tuple[int, float, float, int, int]] = []
        self._sched = None
        # Telemetry hooks; None when the family is disabled (the hot
        # path then skips the call entirely -- a disabled family costs
        # one is-None check per packet, nothing more).
        self._app_record = fabric.app_record
        self._load_record = fabric.load_record
        self._queue_record = fabric.queue_record

    def wire_ports(self) -> None:
        """Resolve per-port forwarding constants (called by the fabric
        after every router and terminal LP has been registered)."""
        cfg = self.config
        self._ports = []
        for p in self.topo.router_ports[self.rid]:
            bw = cfg.bandwidth(p.link_class)
            if p.link_class == LinkClass.TERMINAL:
                peer = self.fabric.terminal_lp_id(p.peer_node)
                extra = cfg.terminal_latency
                hop_inc = 0
            else:
                peer = self.fabric.router_lp_id(p.peer_router)
                extra = cfg.latency(p.link_class) + cfg.router_delay
                hop_inc = 1
            self._ports.append((peer, bw, extra, p.link_id, hop_inc))
        self._sched = self.engine.schedule_fast

    def accel_export(self):
        """Hot-path table for the compiled kernel (:mod:`repro.accel`).

        The kernel replays :meth:`_on_arrival` natively against these
        very containers (``_ports`` entries are re-read per event, so
        fault-plane bandwidth rescaling takes effect exactly as in
        Python).  Subclasses opt out wholesale -- an override anywhere
        could change the arrival semantics, so only the exact base
        class exports a table and everything else dispatches through
        :meth:`handle`.
        """
        if type(self) is not RouterLP:
            return None
        return (
            "router", self, self.handle, self._on_arrival, self._ports,
            self.busy_until, self.pending_starts, self._port_to_node,
            self._ports_to_router, self._app_record, self._load_record,
            self._queue_record, self.rid,
        )

    # -- fault hooks (used by repro.faults) ---------------------------------
    def scale_port_bandwidth(self, port: int, factor: float) -> tuple:
        """Scale one output port's link bandwidth; returns the previous
        port state for :meth:`restore_port`.

        The per-port forwarding constants are read per arrival, so a
        rewrite takes effect for every packet that starts serializing
        after it -- packets already on the wire keep their departure
        times, exactly as a mid-flight physical degradation would.
        """
        state = self._ports[port]
        peer, bw, extra, link_id, hop_inc = state
        self._ports[port] = (peer, bw * factor, extra, link_id, hop_inc)
        return state

    def restore_port(self, port: int, state: tuple) -> None:
        """Restore a port state saved by :meth:`scale_port_bandwidth`."""
        self._ports[port] = state

    # -- queue sensing (used by adaptive routing) ---------------------------
    def queue_depth(self, port: int) -> int:
        """Packets occupying the port: waiting in the FIFO or on the wire."""
        now = self.engine.now
        dq = self.pending_starts[port]
        while dq and dq[0] <= now:
            dq.popleft()
        occupied = 1 if now < self.busy_until[port] else 0
        return len(dq) + occupied

    # -- event handling ------------------------------------------------------
    def handle(self, event: Event) -> None:
        if event.kind != "pkt":  # pragma: no cover - defensive
            raise ValueError(f"router {self.rid} got unknown event kind {event.kind!r}")
        self._on_arrival(event.data)

    def _on_arrival(self, pkt: Packet) -> None:
        now = self.engine.now
        size = pkt.size
        rec = self._app_record
        if rec is not None:
            rec(self.rid, pkt.app_id, now, size)
        port = self._select_port(pkt)
        peer_lp, bw, extra, link_id, hop_inc = self._ports[port]
        start = self.busy_until[port]
        if start > now:
            # Port busy: the packet waits in the FIFO until its
            # (already determined) transmit start.  Prune starts that
            # have passed so the deque stays bounded by the actual FIFO
            # depth even when no probe ever reads this port.
            dq = self.pending_starts[port]
            while dq and dq[0] <= now:
                dq.popleft()
            dq.append(start)
        else:
            start = now
        done = start + size / bw
        self.busy_until[port] = done
        rec = self._load_record
        if rec is not None:
            rec(link_id, size)
        rec = self._queue_record
        if rec is not None:
            # Packets occupying the port right after this arrival: the
            # FIFO backlog plus the one on the wire (busy_until > now
            # always holds here -- this packet is at least serializing).
            # Prune passed starts first; the idle-arrival path above
            # does not, and stale entries would inflate the sample.
            dq = self.pending_starts[port]
            while dq and dq[0] <= now:
                dq.popleft()
            rec((self.rid, port), now, len(dq) + 1)
        self.packets_forwarded += 1
        pkt.hop += hop_inc
        self._sched(done + extra, peer_lp, "pkt", pkt, _NETWORK, self.lp_id)

    def _select_port(self, pkt: Packet) -> int:
        path = pkt.path
        if pkt.hop == len(path) - 1:
            return self._port_to_node[pkt.dst_node]
        next_router = path[pkt.hop + 1]
        candidates = self._ports_to_router[next_router]
        if len(candidates) == 1:
            return candidates[0]
        # Parallel links to the same neighbour: take the shallowest queue.
        return min(candidates, key=self.queue_depth)
