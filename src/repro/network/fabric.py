"""NetworkFabric: ties topology, routers, terminals and stats together.

The fabric is the message-level facade the MPI layer talks to: it
assigns message ids, segments/injects via the source terminal, tracks
reassembly, and invokes a delivery callback when the last byte of a
message reaches the destination terminal.

Measurement goes through one :class:`~repro.telemetry.Telemetry`
session (created here unless the caller shares its own): the classic
Section IV-D instruments -- per-app windowed router counters
(``net.router.app.bytes``) and link-load accounting
(``net.link.bytes``) -- are registered as telemetry instruments, with
``fabric.app_counter`` / ``fabric.link_loads`` kept as thin accessors
so existing experiments read them exactly as before.  Fabric-level
message totals are published as observable gauges (``net.fabric.*``),
and an opt-in per-port queue-occupancy series (``net.router.queue``,
off by default) samples FIFO depth at every packet arrival.  Disabled
families cost strictly nothing: the LPs bind ``None`` and skip the
record call entirely.

Construction wires every Router/Terminal LP onto one PDES engine and
resolves their per-port forwarding constants up front; from then on all
link serialization is tracked by the LPs' ``busy_until`` timestamps
(see ``router.py``/``terminal.py`` -- there are no per-packet
``free``-style bookkeeping self-events anywhere in the fabric).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.network.config import NetworkConfig
from repro.network.router import RouterLP
from repro.network.routing import FaultAwareRouting, make_routing
from repro.network.stats import LinkLoadAccounting, WindowedAppCounter
from repro.network.terminal import TerminalLP
from repro.network.topology import Topology
from repro.pdes.engine import Engine
from repro.pdes.event import Priority
from repro.pdes.sequential import SequentialEngine
from repro.telemetry import Telemetry

# Called as callback(msg_id, meta, completion_time)
DeliveryCallback = Callable[[int, Any, float], None]


class _MsgState:
    __slots__ = ("size", "remaining", "meta", "app_id", "injected_at", "dst_node")

    def __init__(self, size: int, meta: Any, app_id: int, dst_node: int) -> None:
        self.size = size
        self.remaining = size
        self.meta = meta
        self.app_id = app_id
        self.injected_at = -1.0
        self.dst_node = dst_node


class NetworkFabric:
    """A simulated interconnect instance.

    Parameters
    ----------
    topo:
        Topology (1D or 2D dragonfly).
    config:
        Link/packet parameters.
    routing:
        ``"min"`` / ``"adp"`` (dragonfly policies), or a callable
        ``factory(topo, config, probe, stream_id) -> policy`` for other
        topologies (e.g. :func:`repro.network.torus.torus_routing_factory`).
    engine:
        PDES engine; a fresh :class:`SequentialEngine` by default.
    counter_window:
        Aggregation window of the per-app router counters (the paper
        uses 0.5 ms; mini-scale experiments shrink it proportionally).
    telemetry:
        The :class:`~repro.telemetry.Telemetry` session to register the
        fabric's instruments in.  A private all-defaults session is
        created when omitted (the historical behaviour); pass a shared
        one to co-locate network metrics with MPI/job metrics and to
        enable/disable metric families.
    """

    def __init__(
        self,
        topo: Topology,
        config: NetworkConfig | None = None,
        routing: str = "adp",
        engine: Engine | None = None,
        counter_window: float = 0.5e-3,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.topo = topo
        self.config = config or NetworkConfig()
        self.engine = engine or SequentialEngine()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        # The two Section IV-D instruments stay plain attributes (the
        # seed API), but live in the telemetry session like any other
        # instrument.  When a family is disabled the object still
        # exists -- series()/summary() read as empty -- yet the LPs
        # bind None below and never pay for the record call.
        # ``replace=True`` throughout: a fresh fabric on a shared
        # session supersedes a previous (finished) fabric's instruments
        # instead of crashing, so managers can re-run.
        self.app_counter = WindowedAppCounter(counter_window)
        self.link_loads = LinkLoadAccounting(topo)
        self.app_record = (
            self.app_counter.record
            if self.telemetry.register(self.app_counter, replace=True).enabled
            else None
        )
        self.load_record = (
            self.link_loads.record
            if self.telemetry.register(self.link_loads, replace=True).enabled
            else None
        )
        # Opt-in (off by default): per-port queue occupancy, sampled at
        # each packet arrival, aggregated per window by max.
        queue_series = self.telemetry.windowed(
            "net.router.queue", window=counter_window, unit="packets",
            doc="peak per-port FIFO depth per window, sampled at arrivals",
            agg="max", template="net.router.{}.port.{}.queue", default=False,
            replace=True,
        )
        self.queue_series = queue_series
        self.queue_record = queue_series.record if queue_series.enabled else None

        self.routers: list[RouterLP] = []
        self.terminals: list[TerminalLP] = []
        for r in range(topo.n_routers):
            lp = RouterLP(r, topo, self.config, self)
            self.engine.register(lp)
            self.routers.append(lp)
        for n in range(topo.n_nodes):
            lp = TerminalLP(n, topo, self.config, self)
            self.engine.register(lp)
            self.terminals.append(lp)
        # All LP ids exist now: let every LP resolve its forwarding
        # constants (peer LP ids, bandwidths, latencies) once, instead of
        # re-deriving them per packet on the hot path.
        for r_lp in self.routers:
            r_lp.wire_ports()
        for t_lp in self.terminals:
            t_lp.wire_ports()

        routers = self.routers

        def probe(router: int, port: int) -> int:
            return routers[router].queue_depth(port)

        if callable(routing):
            self.routing = routing(topo, self.config, probe, stream_id=1)
        else:
            self.routing = make_routing(routing, topo, self.config, probe, stream_id=1)
        self.routing_name = self.routing.name
        self._probe = probe
        # Per-application routing overrides ("routing police" per job, as
        # the paper's concurrent-workload support allows).
        self._app_routing: dict[int, Any] = {}
        #: Fault plane steering paths around dead elements; ``None``
        #: (the default) leaves every policy unwrapped.
        self.fault_plane = None

        self._msgs: dict[int, _MsgState] = {}
        # Message/packet ids are scoped per source node (node+1 in the
        # high bits, that node's own count in the low 32): each node's
        # id sequence depends only on its own send order, so a
        # partitioned run (repro.parallel.mp) assigns the exact ids the
        # sequential run would without any global counter.
        self._msg_seq = [0] * topo.n_nodes
        self._pkt_seq = [0] * topo.n_nodes
        #: Per-application count of packets routed non-minimally.
        self.nonmin_packets: dict[int, int] = {}
        self.total_packets: dict[int, int] = {}
        self._on_delivery: DeliveryCallback | None = None
        self._on_injected: Callable[[int, Any, float], None] | None = None
        self.messages_sent = 0
        self.messages_delivered = 0
        self.bytes_sent = 0
        # Message totals as observable gauges: evaluated at export, so
        # publishing them costs nothing per message.  replace=True, or
        # a second fabric on the session would keep reading the first
        # fabric's (dead) closures.
        t = self.telemetry
        t.gauge("net.fabric.messages_sent", unit="messages", replace=True,
                doc="messages injected", fn=lambda: self.messages_sent)
        t.gauge("net.fabric.messages_delivered", unit="messages", replace=True,
                doc="messages fully delivered", fn=lambda: self.messages_delivered)
        t.gauge("net.fabric.bytes_sent", unit="bytes", replace=True,
                doc="payload bytes injected", fn=lambda: self.bytes_sent)
        # Partitioned engines publish their window/partition stats as
        # pdes.conservative.* observable gauges; no-op for the others.
        from repro.parallel.runtime import bind_engine_telemetry

        bind_engine_telemetry(self.engine, t)

    # -- LP id mapping ----------------------------------------------------
    def router_lp_id(self, router: int) -> int:
        return self.routers[router].lp_id

    def terminal_lp_id(self, node: int) -> int:
        return self.terminals[node].lp_id

    def next_packet_id(self, node: int) -> int:
        seq = self._pkt_seq
        pid = ((node + 1) << 32) | seq[node]
        seq[node] += 1
        return pid

    # -- fault injection --------------------------------------------------------
    def attach_fault_plane(self, plane) -> None:
        """Steer this fabric's path selection around ``plane``'s dead
        elements (:class:`repro.faults.FaultPlane` with down-kind
        faults).

        Wraps the fabric-wide policy and every existing and future
        per-app override in :class:`FaultAwareRouting`.  Fabrics without
        a plane attached are untouched -- same objects, same RNG draw
        sequence.
        """
        self.fault_plane = plane
        self.routing = FaultAwareRouting(self.routing, plane)
        self._app_routing = {
            app_id: FaultAwareRouting(policy, plane)
            for app_id, policy in self._app_routing.items()
        }

    # -- per-application routing -----------------------------------------------
    def set_app_routing(self, app_id: int, routing) -> None:
        """Override the routing policy for one application's traffic.

        ``routing`` is a policy name (``"min"``/``"adp"``) or a factory
        like the constructor's ``routing`` parameter.  Each override gets
        its own RNG stream so adding one job's override never perturbs
        another job's path choices.
        """
        stream_id = 101 + app_id
        if callable(routing):
            policy = routing(self.topo, self.config, self._probe, stream_id=stream_id)
        else:
            policy = make_routing(routing, self.topo, self.config, self._probe, stream_id=stream_id)
        if self.fault_plane is not None:
            policy = FaultAwareRouting(policy, self.fault_plane)
        self._app_routing[app_id] = policy

    def routing_for(self, app_id: int):
        """The routing policy used by ``app_id``'s packets."""
        return self._app_routing.get(app_id, self.routing)

    # -- callbacks -----------------------------------------------------------
    def set_delivery_callback(self, cb: DeliveryCallback) -> None:
        """Invoked as ``cb(msg_id, meta, time)`` when a message completes."""
        self._on_delivery = cb

    def set_injection_callback(self, cb: Callable[[int, Any, float], None]) -> None:
        """Invoked when a message's last packet leaves the source NIC."""
        self._on_injected = cb

    # -- message API -----------------------------------------------------------
    def send_message(self, app_id: int, src_node: int, dst_node: int, size: int, meta: Any = None) -> int:
        """Inject one message; returns its id.

        Must be called from within an event handler (engine time must be
        current).  ``size`` may be zero (control message).
        """
        if not 0 <= src_node < self.topo.n_nodes:
            raise ValueError(f"src_node {src_node} out of range")
        if not 0 <= dst_node < self.topo.n_nodes:
            raise ValueError(f"dst_node {dst_node} out of range")
        if size < 0:
            raise ValueError(f"message size must be >= 0, got {size}")
        seq = self._msg_seq
        msg_id = ((src_node + 1) << 32) | seq[src_node]
        seq[src_node] += 1
        self._msgs[msg_id] = _MsgState(size, meta, app_id, dst_node)
        self.messages_sent += 1
        self.bytes_sent += size
        if src_node == dst_node:
            # Self-send: a local memory copy, modeled at terminal bandwidth
            # plus one terminal latency, bypassing the network entirely.
            delay = size / self.config.terminal_bw + self.config.terminal_latency
            self.engine.schedule_fast(
                self.engine.now + delay,
                self.terminal_lp_id(dst_node),
                "loopback",
                msg_id,
                Priority.NETWORK,
            )
        else:
            self.terminals[src_node].inject_message(msg_id, app_id, dst_node, size)
        return msg_id

    # -- notifications from LPs ---------------------------------------------------
    def on_message_injected(self, msg_id: int, time: float) -> None:
        st = self._msgs[msg_id]
        st.injected_at = time
        if self._on_injected is not None:
            self._on_injected(msg_id, st.meta, time)

    def on_packet_delivered(self, pkt, time: float) -> None:
        st = self._msgs.get(pkt.msg_id)
        if st is None:  # pragma: no cover - defensive
            raise KeyError(f"packet for unknown message {pkt.msg_id}")
        st.remaining -= pkt.size
        if st.remaining <= 0:
            self._complete(pkt.msg_id, st, time)

    def on_loopback(self, msg_id: int, time: float) -> None:
        st = self._msgs[msg_id]
        st.injected_at = time
        if self._on_injected is not None:
            self._on_injected(msg_id, st.meta, time)
        self._complete(msg_id, st, time)

    def _complete(self, msg_id: int, st: _MsgState, time: float) -> None:
        del self._msgs[msg_id]
        self.messages_delivered += 1
        if self._on_delivery is not None:
            self._on_delivery(msg_id, st.meta, time)

    def on_packet_routed(self, app_id: int, nonmin: bool) -> None:
        """Terminal notification: one packet's route was chosen."""
        self.total_packets[app_id] = self.total_packets.get(app_id, 0) + 1
        if nonmin:
            self.nonmin_packets[app_id] = self.nonmin_packets.get(app_id, 0) + 1

    # -- inspection -------------------------------------------------------------
    def in_flight(self) -> int:
        """Messages injected but not yet fully delivered."""
        return len(self._msgs)

    def nonmin_fraction(self, app_id: int) -> float:
        """Fraction of ``app_id``'s packets that took a Valiant detour."""
        total = self.total_packets.get(app_id, 0)
        return self.nonmin_packets.get(app_id, 0) / total if total else 0.0
