"""Slim Fly (MMS graph) topology and diameter-2 routing.

Slim Fly [Besta & Hoefler, SC'14] arranges routers as a McKay-Miller-
Siran (MMS) graph: a degree-optimal diameter-2 network.  CODES ships a
slim fly model (Section II-B); this module provides the equivalent for
our fabric, completing the topology roster (dragonfly 1D/2D, torus,
fat-tree, slim fly).

Construction (primes ``q = 4w + 1`` only -- the delta = +1 family the
Slim Fly paper deploys in practice, and plenty for the sizes a laptop
simulation can hold): split ``2 q^2`` routers into two halves A and B.

* A-router ``(0, x, y)`` and ``(0, x, y')`` are linked iff ``y - y'`` is
  in the generator set ``X``;
* B-router ``(1, m, c)`` and ``(1, m, c')`` are linked iff ``c - c'`` is
  in ``X'``;
* ``(0, x, y)`` and ``(1, m, c)`` are linked iff ``y == m*x + c (mod q)``.

With a primitive root ``xi`` of ``GF(q)``, ``X = {1, xi^2, xi^4, ...}``
and ``X' = {xi, xi^3, ...}``; the graph has diameter 2 and router
degree ``(3q - 1) / 2``.

All links are class LOCAL (a slim fly is flat, like the torus), so the
link-load instrument reports a zero global fraction.
"""

from __future__ import annotations

from repro.network.config import LinkClass, NetworkConfig
from repro.network.topology import Port
from repro.network.routing import per_router_stream
from repro.pdes.rng import SplitMix


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def _primitive_root(q: int) -> int:
    """Smallest primitive root modulo prime ``q``."""
    if q == 2:
        return 1
    # factor q-1
    n = q - 1
    factors = set()
    m = n
    f = 2
    while f * f <= m:
        while m % f == 0:
            factors.add(f)
            m //= f
        f += 1
    if m > 1:
        factors.add(m)
    for g in range(2, q):
        if all(pow(g, n // p, q) != 1 for p in factors):
            return g
    raise ArithmeticError(f"no primitive root found for {q}")  # pragma: no cover


def generator_sets(q: int) -> tuple[frozenset[int], frozenset[int]]:
    """The MMS generator sets ``(X, X')`` for prime ``q = 4w + 1``.

    ``X`` holds the even powers of a primitive root (the quadratic
    residues), ``X'`` the odd powers (non-residues).  For ``q = 4w + 1``
    the exponent of ``-1`` is even, so both sets are closed under
    negation and the two Cayley graphs are undirected.
    """
    if q % 4 != 1:
        raise ValueError(f"generator sets need a prime q = 4w + 1, got {q}")
    xi = _primitive_root(q)
    X = {pow(xi, e, q) for e in range(0, q - 1, 2)}
    Xp = {pow(xi, e, q) for e in range(1, q - 1, 2)}
    return frozenset(X), frozenset(Xp)


class SlimFlyTopology:
    """An MMS-graph slim fly of ``2 q^2`` routers (``q`` prime).

    Router ids: A-half router ``(x, y)`` is ``x * q + y``; B-half router
    ``(m, c)`` is ``q^2 + m * q + c``.

    Parameters
    ----------
    q:
        Prime congruent to 1 mod 4; ``q in {5, 13, 17, 29, ...}``.
        ``q = 5`` gives 50 routers of degree 7.
    nodes_per_router:
        Compute nodes per router (Slim Fly's paper suggests about half
        the network degree).
    """

    name = "slim fly"

    def __init__(self, q: int = 5, nodes_per_router: int = 2) -> None:
        if not _is_prime(q) or q % 4 != 1:
            raise ValueError(f"slim fly requires a prime q = 4w + 1 (5, 13, 17, ...), got {q}")
        if nodes_per_router < 1:
            raise ValueError(f"nodes_per_router must be >= 1, got {nodes_per_router}")
        self.q = q
        self.delta = 1
        self.nodes_per_router = nodes_per_router
        self.n_routers = 2 * q * q
        self.n_nodes = self.n_routers * nodes_per_router
        self.X, self.Xp = generator_sets(q)

        self.router_ports: list[list[Port]] = [[] for _ in range(self.n_routers)]
        self.ports_to_router: list[dict[int, list[int]]] = [dict() for _ in range(self.n_routers)]
        self.port_to_node: list[dict[int, int]] = [dict() for _ in range(self.n_routers)]
        self.n_links = 0
        self.link_class_of: list[LinkClass] = []
        self.adj: list[set[int]] = [set() for _ in range(self.n_routers)]
        self._build()

    # -- identities ---------------------------------------------------------
    def router_of_node(self, node: int) -> int:
        return node // self.nodes_per_router

    def nodes_of_router(self, router: int) -> range:
        base = router * self.nodes_per_router
        return range(base, base + self.nodes_per_router)

    def a_router(self, x: int, y: int) -> int:
        return x * self.q + y

    def b_router(self, m: int, c: int) -> int:
        return self.q * self.q + m * self.q + c

    def label(self, router: int) -> tuple[int, int, int]:
        """(half, i, j) label of a router: half 0 is A, half 1 is B."""
        q = self.q
        if router < q * q:
            return (0, router // q, router % q)
        r = router - q * q
        return (1, r // q, r % q)

    # -- construction ----------------------------------------------------------
    def _new_link(self, link_class: LinkClass) -> int:
        lid = self.n_links
        self.n_links += 1
        self.link_class_of.append(link_class)
        return lid

    def _add_edge(self, r1: int, r2: int) -> None:
        for a, b in ((r1, r2), (r2, r1)):
            pid = len(self.router_ports[a])
            lid = self._new_link(LinkClass.LOCAL)
            self.router_ports[a].append(Port(pid, LinkClass.LOCAL, peer_router=b, link_id=lid))
            self.ports_to_router[a].setdefault(b, []).append(pid)
            self.adj[a].add(b)

    def _build(self) -> None:
        q = self.q
        for r in range(self.n_routers):
            for node in self.nodes_of_router(r):
                pid = len(self.router_ports[r])
                lid = self._new_link(LinkClass.TERMINAL)
                self.router_ports[r].append(Port(pid, LinkClass.TERMINAL, peer_node=node, link_id=lid))
                self.port_to_node[r][node] = pid
        # Intra-half Cayley edges.
        for x in range(q):
            for y in range(q):
                for yp in range(y + 1, q):
                    if (y - yp) % q in self.X:
                        self._add_edge(self.a_router(x, y), self.a_router(x, yp))
        for m in range(q):
            for c in range(q):
                for cp in range(c + 1, q):
                    if (c - cp) % q in self.Xp:
                        self._add_edge(self.b_router(m, c), self.b_router(m, cp))
        # Bipartite A-B edges: y = m x + c.
        for x in range(q):
            for m in range(q):
                for c in range(q):
                    y = (m * x + c) % q
                    self._add_edge(self.a_router(x, y), self.b_router(m, c))

    # -- descriptive ---------------------------------------------------------------
    def degree(self) -> int:
        """Network degree (router-to-router links per router)."""
        return max(len(self.adj[r]) for r in range(self.n_routers))

    def radix(self) -> int:
        return max(len(p) for p in self.router_ports)

    def diameter(self) -> int:
        return 2

    def describe(self) -> dict[str, object]:
        return {
            "topology": f"slim fly MMS({self.q})",
            "radix": self.radix(),
            "network_degree": self.degree(),
            "routers": self.n_routers,
            "nodes_per_router": self.nodes_per_router,
            "system_size": self.n_nodes,
            "diameter": self.diameter(),
        }


class SlimFlyRouting:
    """Minimal (diameter <= 2) routing with optional adaptive detours.

    ``"min"`` picks the direct link when one exists, otherwise a random
    common neighbour.  ``"adaptive"`` applies a UGAL-style comparison
    between the best minimal candidate and a Valiant detour through a
    random intermediate router (each leg itself minimal, so detours are
    at most 4 hops).
    """

    def __init__(
        self,
        topo: SlimFlyTopology,
        config: NetworkConfig,
        probe,
        stream_id: int = 0,
        mode: str = "min",
    ) -> None:
        if mode not in ("min", "adaptive"):
            raise ValueError(f"unknown slim fly mode {mode!r}")
        self.topo = topo
        self.config = config
        self.probe = probe
        self.mode = mode
        # One tie-break stream per source router (see
        # repro.network.routing.per_router_stream).
        self._streams = [
            SplitMix(config.seed, per_router_stream(stream_id, r))
            for r in range(topo.n_routers)
        ]
        self.rng = self._streams[0]
        self.name = f"slimfly-{mode}"
        self._common: dict[tuple[int, int], tuple[int, ...]] = {}

    def _common_neighbors(self, a: int, b: int) -> tuple[int, ...]:
        key = (a, b) if a < b else (b, a)
        hit = self._common.get(key)
        if hit is None:
            hit = tuple(sorted(self.topo.adj[a] & self.topo.adj[b]))
            self._common[key] = hit
        return hit

    def _queue_to(self, router: int, peer: int) -> int:
        ports = self.topo.ports_to_router[router][peer]
        return min(self.probe(router, p) for p in ports)

    def _minimal(self, src: int, dst: int) -> list[int]:
        if src == dst:
            return [src]
        if dst in self.topo.adj[src]:
            return [src, dst]
        mids = self._common_neighbors(src, dst)
        if not mids:  # pragma: no cover - MMS graphs have diameter 2
            raise RuntimeError(f"no 2-hop path between routers {src} and {dst}")
        if self.mode == "adaptive" and len(mids) > 1:
            best = min(mids, key=lambda m: self._queue_to(src, m))
            return [src, best, dst]
        return [src, self.rng.choice(list(mids)), dst]

    def select_path(self, src_router: int, dst_router: int) -> tuple[list[int], bool]:
        self.rng = self._streams[src_router]
        mpath = self._minimal(src_router, dst_router)
        if self.mode != "adaptive" or src_router == dst_router:
            return mpath, False
        # Valiant candidate through a random intermediate router.
        inter = self.rng.randint(self.topo.n_routers)
        while inter == src_router or inter == dst_router:
            inter = self.rng.randint(self.topo.n_routers)
        head = self._minimal(src_router, inter)
        tail = self._minimal(inter, dst_router)
        vpath = head + tail[1:]
        if len(vpath) <= len(mpath):
            return mpath, False
        q_min = self._queue_to(src_router, mpath[1]) if len(mpath) > 1 else 0
        q_non = self._queue_to(src_router, vpath[1])
        h_min, h_non = len(mpath) - 1, len(vpath) - 1
        if q_min * h_min > q_non * h_non + self.config.adaptive_bias:
            return vpath, True
        return mpath, False


def slimfly_routing_factory(mode: str = "min"):
    """Routing factory for :class:`NetworkFabric`'s ``routing=`` parameter."""

    def factory(topo, config, probe, stream_id=0):
        return SlimFlyRouting(topo, config, probe, stream_id, mode=mode)

    return factory
