"""Packet objects flowing through the fabric.

A rank-level message is segmented into packets at the source terminal;
packets carry the full router path (selected at injection by the routing
policy) and are reassembled into the message at the destination
terminal.
"""

from __future__ import annotations


class Packet:
    """One network packet.

    Attributes
    ----------
    pid:
        Globally unique packet id.
    msg_id:
        Id of the message this packet belongs to.
    app_id:
        Id of the application (job) that produced the message; used by
        the per-application router counters.
    src_node / dst_node:
        Endpoint compute nodes.
    size:
        Payload bytes carried by this packet (the tail packet of a
        message may be short; zero-byte control messages travel as one
        zero-size packet and still pay per-hop latency).
    path:
        Sequence of router ids from the source's router to the
        destination's router, inclusive.
    hop:
        Index into ``path`` of the router the packet currently occupies
        (or is in flight towards).
    """

    __slots__ = (
        "pid",
        "msg_id",
        "app_id",
        "src_node",
        "dst_node",
        "size",
        "path",
        "hop",
        "nonminimal",
    )

    def __init__(
        self,
        pid: int,
        msg_id: int,
        app_id: int,
        src_node: int,
        dst_node: int,
        size: int,
        path: list[int],
        nonminimal: bool = False,
    ) -> None:
        self.pid = pid
        self.msg_id = msg_id
        self.app_id = app_id
        self.src_node = src_node
        self.dst_node = dst_node
        self.size = size
        self.path = path
        self.hop = 0
        self.nonminimal = nonminimal

    @property
    def dst_router(self) -> int:
        return self.path[-1]

    def at_last_router(self) -> bool:
        return self.hop == len(self.path) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(pid={self.pid}, msg={self.msg_id}, app={self.app_id}, "
            f"{self.src_node}->{self.dst_node}, size={self.size}, "
            f"hop={self.hop}/{len(self.path) - 1})"
        )
