"""Network configuration parameters.

Bandwidths default to the paper's Section IV-A values: 16 GiB/s terminal
links, 4.69 GiB/s local (intra-group) links and 5.25 GiB/s global
(inter-group) links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

GiB = float(1 << 30)
MiB = float(1 << 20)
KiB = float(1 << 10)


class LinkClass(IntEnum):
    """Physical link classes of a dragonfly."""

    TERMINAL = 0  # router <-> compute node
    LOCAL = 1     # router <-> router, same group
    GLOBAL = 2    # router <-> router, different groups


@dataclass(frozen=True)
class NetworkConfig:
    """Tunable parameters of the packet-level network model.

    Attributes
    ----------
    packet_bytes:
        Maximum payload carried by one packet; messages are segmented
        into ceil(size / packet_bytes) packets.
    terminal_bw / local_bw / global_bw:
        Link bandwidths in bytes/second, per link class.
    terminal_latency / local_latency / global_latency:
        Propagation delay (seconds) added per traversal of a link of the
        given class.  Global links are long optical cables and carry an
        order of magnitude more latency than local electrical links.
    router_delay:
        Per-hop routing/arbitration pipeline delay (seconds).
    adaptive_bias:
        UGAL bias (packets) favouring the minimal path; the non-minimal
        path is taken only when its weighted queue estimate beats the
        minimal estimate by more than this margin.
    seed:
        Seed for all routing tie-break randomness.
    """

    packet_bytes: int = 4096
    terminal_bw: float = 16.0 * GiB
    local_bw: float = 4.69 * GiB
    global_bw: float = 5.25 * GiB
    terminal_latency: float = 30e-9
    local_latency: float = 60e-9
    global_latency: float = 600e-9
    router_delay: float = 50e-9
    adaptive_bias: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.packet_bytes <= 0:
            raise ValueError(f"packet_bytes must be positive, got {self.packet_bytes}")
        for name in ("terminal_bw", "local_bw", "global_bw"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in (
            "terminal_latency",
            "local_latency",
            "global_latency",
            "router_delay",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        # Per-class lookup tuples, indexed by LinkClass (an IntEnum):
        # bandwidth()/latency() sit on the per-packet hot path, where a
        # tuple index beats an if-chain.  The dataclass is frozen, so
        # the caches are installed via object.__setattr__ and stay
        # consistent with the (immutable) fields.
        object.__setattr__(
            self, "_bw_of_class", (self.terminal_bw, self.local_bw, self.global_bw)
        )
        object.__setattr__(
            self,
            "_latency_of_class",
            (self.terminal_latency, self.local_latency, self.global_latency),
        )

    def bandwidth(self, link_class: LinkClass) -> float:
        """Bandwidth (bytes/s) for a link class."""
        return self._bw_of_class[link_class]

    def latency(self, link_class: LinkClass) -> float:
        """Propagation latency (s) for a link class."""
        return self._latency_of_class[link_class]
