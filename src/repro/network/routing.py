"""Routing policies: minimal (MIN) and UGAL-style adaptive (ADP).

Paths are selected per packet at injection time, at router granularity;
the forwarding router picks the least-loaded port among parallel links
to the chosen next router.  Adaptive routing implements UGAL-L: compare
the queue depth of the first hop of a candidate minimal path against a
candidate Valiant (non-minimal) path, weighted by path length, with a
configurable bias towards minimal (Section IV-C).
"""

from __future__ import annotations

from typing import Callable

from repro.network.config import NetworkConfig
from repro.network.topology import Topology
from repro.pdes.rng import SplitMix

# queue_probe(router_id, port_id) -> packets queued on that output port
QueueProbe = Callable[[int, int], int]


def per_router_stream(stream_id: int, router: int) -> int:
    """Derived SplitMix stream id for one source router's tie-breaks.

    Every routing policy keys its RNG streams this way (policy stream id
    in the high bits, source router + 1 in the low 20), so a policy's
    draws are partitionable by source router: the draw sequence observed
    by router ``r`` depends only on ``r``'s own injection order.
    """
    return (stream_id << 20) | (router + 1)


class RoutingPolicy:
    """Base class: selects the router-level path of one packet."""

    name = "abstract"

    def __init__(self, topo: Topology, config: NetworkConfig, probe: QueueProbe, stream_id: int = 0) -> None:
        self.topo = topo
        self.config = config
        self.probe = probe
        # One tie-break stream *per source router*, derived from the
        # policy's stream id: every draw a select_path(src, ...) call
        # makes -- including the draws of the Valiant tail through a
        # remote entry router -- comes from src's stream.  The draw
        # sequence of a router is therefore a function of that router's
        # injection order alone, which is what lets a partitioned run
        # (repro.parallel.mp) reproduce the sequential draw-for-draw:
        # all of router r's injections commit inside r's partition.
        self._streams = [
            SplitMix(config.seed, per_router_stream(stream_id, r))
            for r in range(topo.n_routers)
        ]
        self.rng = self._streams[0] if self._streams else SplitMix(config.seed, stream_id)
        # Per-packet hot-path caches: intra-group candidate path lists are
        # static, so memoize them instead of re-enumerating per packet.
        # ``_min_full`` caches complete same-group candidate paths; the
        # cached lists are shared across packets and must not be mutated.
        self._routers_per_group = topo.routers_per_group
        self._draw = self.rng.next_u64  # rebound to the source's stream per call
        self._local_paths: dict[tuple[int, int], list[list[int]]] = {}
        # (src, dst) -> (candidate full paths, rng draws consumed): 0 draws
        # for the trivial same-router path, 1 for a same-group selection.
        self._min_full: dict[tuple[int, int], tuple[list[list[int]], int]] = {}

    def _bind_source(self, src_router: int) -> None:
        """Point ``self._draw`` at ``src_router``'s tie-break stream."""
        self.rng = self._streams[src_router]
        self._draw = self.rng.next_u64

    def select_path(self, src_router: int, dst_router: int) -> tuple[list[int], bool]:
        """Return ``(path, nonminimal)``; path includes src and dst routers."""
        raise NotImplementedError

    def _local_paths_cached(self, src_router: int, dst_router: int) -> list[list[int]]:
        key = (src_router, dst_router)
        paths = self._local_paths.get(key)
        if paths is None:
            paths = self._local_paths[key] = self.topo.local_paths(src_router, dst_router)
        return paths

    # -- shared path construction -------------------------------------------
    def _minimal_candidate(self, src_router: int, dst_router: int) -> list[int]:
        """One randomly chosen minimal path (router ids, src..dst).

        Same-group (and same-router) requests return a *shared* cached
        path list -- one rng draw, zero allocation; callers must treat
        paths as immutable (packets only ever read them).  The draw
        sequence is identical to enumerating the candidates on the fly.
        """
        topo = self.topo
        key = (src_router, dst_router)
        cached = self._min_full.get(key)
        if cached is not None:
            full, draws = cached
            if draws:
                # Consume exactly the draw the uncached path would have.
                return full[self._draw() % len(full)]
            return full[0]
        if src_router == dst_router:
            self._min_full[key] = ([[src_router]], 0)
            return self._min_full[key][0][0]
        draw = self._draw
        g1 = src_router // self._routers_per_group
        g2 = dst_router // self._routers_per_group
        if g1 == g2:
            tails = self._local_paths_cached(src_router, dst_router)
            full = [[src_router] + tail for tail in tails]
            self._min_full[key] = (full, 1)
            return full[draw() % len(full)]
        gws = topo.gateways[g1][g2]
        gw1 = gws[draw() % len(gws)]
        ports = topo.global_ports_to_group[gw1][g2]
        port = ports[draw() % len(ports)]
        gw2 = topo.router_ports[gw1][port].peer_router
        path = [src_router]
        if gw1 != src_router:
            tails = self._local_paths_cached(src_router, gw1)
            path += tails[draw() % len(tails)]
        path.append(gw2)
        if gw2 != dst_router:
            tails = self._local_paths_cached(gw2, dst_router)
            path += tails[draw() % len(tails)]
        return path

    def _valiant_candidate(self, src_router: int, dst_router: int) -> list[int]:
        """One non-minimal path through a random intermediate group."""
        topo = self.topo
        draw = self._draw
        g1 = src_router // self._routers_per_group
        g2 = dst_router // self._routers_per_group
        if topo.n_groups <= 2 or g1 == g2:
            # No useful intermediate group exists; fall back to minimal.
            return self._minimal_candidate(src_router, dst_router)
        n_groups = topo.n_groups
        gi = draw() % n_groups
        while gi == g1 or gi == g2:
            gi = draw() % n_groups
        gws = topo.gateways[g1][gi]
        gw1 = gws[draw() % len(gws)]
        ports = topo.global_ports_to_group[gw1][gi]
        port = ports[draw() % len(ports)]
        entry = topo.router_ports[gw1][port].peer_router
        head = [src_router]
        if gw1 != src_router:
            tails = self._local_paths_cached(src_router, gw1)
            head += tails[draw() % len(tails)]
        head.append(entry)
        tail = self._minimal_candidate(entry, dst_router)
        return head + tail[1:]

    def _first_hop_queue(self, path: list[int]) -> int:
        """Depth of the output queue the packet would first join."""
        if len(path) < 2:
            return 0
        src = path[0]
        ports = self.topo.ports_to_router[src][path[1]]
        if len(ports) == 1:
            return self.probe(src, ports[0])
        return min(self.probe(src, p) for p in ports)


class MinimalRouting(RoutingPolicy):
    """Always route along a (randomly tie-broken) minimal path."""

    name = "min"

    def select_path(self, src_router: int, dst_router: int) -> tuple[list[int], bool]:
        self._bind_source(src_router)
        return self._minimal_candidate(src_router, dst_router), False


class AdaptiveRouting(RoutingPolicy):
    """UGAL-L: pick minimal unless a Valiant detour looks less congested.

    Decision rule (per packet, using source-router queue depths only):
    take the non-minimal path iff

        q_min * h_min > q_non * h_non + bias
    """

    name = "adp"

    def __init__(self, topo: Topology, config: NetworkConfig, probe: QueueProbe, stream_id: int = 0) -> None:
        super().__init__(topo, config, probe, stream_id)
        self._bias = config.adaptive_bias

    def select_path(self, src_router: int, dst_router: int) -> tuple[list[int], bool]:
        self._bind_source(src_router)
        min_path = self._minimal_candidate(src_router, dst_router)
        if src_router == dst_router:
            return min_path, False
        non_path = self._valiant_candidate(src_router, dst_router)
        if len(non_path) <= len(min_path):
            return min_path, False
        q_min = self._first_hop_queue(min_path)
        q_non = self._first_hop_queue(non_path)
        h_min = len(min_path) - 1
        h_non = len(non_path) - 1
        if q_min * h_min > q_non * h_non + self._bias:
            return non_path, True
        return min_path, False


class FaultAwareRouting:
    """Wrap any routing policy to steer around dead fabric elements.

    ``plane`` is duck-typed (:class:`repro.faults.FaultPlane`): it
    exposes ``blocked(path)`` plus the ``avoided``/``unavoidable``
    counters.  When the inner policy's choice crosses a dead link or a
    failed transit router, the selection is re-drawn -- path choice is
    randomized (tie-breaks) and congestion-sensitive on every policy
    this wrapper is installed for, so repeated draws yield alternative
    candidates.  When the candidate set itself has no live member (an
    intra-group pair whose only minimal path is the dead link), the
    wrapper splices a one-router detour around each dead element using
    the topology's adjacency -- routers forward along any adjacent
    sequence, so the repaired path is always deliverable.  Only after
    both fail is the original choice sent anyway (counted
    ``unavoidable``): delivery stays guaranteed, which keeps byte
    conservation checkable under faults.

    The fabric installs this wrapper only when a fault plane with
    down-kind faults is attached; fault-free runs keep the unwrapped
    policy and its exact RNG draw sequence.
    """

    __slots__ = ("_inner", "_plane", "_tries", "name")

    def __init__(self, inner, plane, tries: int = 8) -> None:
        self._inner = inner
        self._plane = plane
        self._tries = tries
        self.name = inner.name

    def select_path(self, src_router: int, dst_router: int) -> tuple[list[int], bool]:
        path, nonmin = self._inner.select_path(src_router, dst_router)
        plane = self._plane
        if not plane.blocked(path):
            return path, nonmin
        for _ in range(self._tries):
            cand, nm = self._inner.select_path(src_router, dst_router)
            if not plane.blocked(cand):
                plane.avoided += 1
                return cand, nm
        repaired = self._repair(path)
        if repaired is not None:
            plane.avoided += 1
            return repaired, True
        plane.unavoidable += 1
        return path, nonmin

    def _repair(self, path: list[int]) -> list[int] | None:
        """Splice live detours around each dead element of ``path``.

        A dead link ``u -> v`` becomes ``u -> w -> v`` through a live
        neighbour ``w`` of both; a failed transit router is bypassed by
        bridging its predecessor to its successor (directly when they
        are adjacent).  Returns ``None`` when no live detour exists.
        """
        plane = self._plane
        adj = self._inner.topo.ports_to_router
        dead, failed = plane.dead_links, plane.failed_routers
        out = [path[0]]
        i, n = 0, len(path)
        while i < n - 1:
            u, v = out[-1], path[i + 1]
            if v in failed and i + 1 < n - 1:
                # Bypass the failed transit router entirely.
                t = path[i + 2]
                if t in adj[u] and (u, t) not in dead:
                    out.append(t)
                else:
                    w = self._bridge(u, t, adj, dead, failed)
                    if w is None:
                        return None
                    out.extend((w, t))
                i += 2
                continue
            if (u, v) in dead:
                w = self._bridge(u, v, adj, dead, failed)
                if w is None:
                    return None
                out.extend((w, v))
            else:
                out.append(v)
            i += 1
        return out if not plane.blocked(out) else None

    def _bridge(self, u: int, t: int, adj, dead, failed) -> int | None:
        """A live router adjacent to both ``u`` and ``t``, or ``None``."""
        for w in adj[u]:
            if w == t or w in failed:
                continue
            if (u, w) in dead or (w, t) in dead:
                continue
            if t in adj[w]:
                return w
        return None


_POLICIES = {"min": MinimalRouting, "adp": AdaptiveRouting}


def make_routing(
    name: str, topo: Topology, config: NetworkConfig, probe: QueueProbe, stream_id: int = 0
) -> RoutingPolicy:
    """Construct a routing policy by short name (``"min"`` or ``"adp"``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown routing policy {name!r}; expected one of {sorted(_POLICIES)}") from None
    return cls(topo, config, probe, stream_id)
