"""Measurement machinery: per-app router counters and link loads.

Implements the two instruments described in Section IV-D:

* a per-application packet counter on every router, aggregated over a
  configurable time window (the paper uses 0.5 ms) -- drives Figure 8;
* end-of-simulation per-link byte totals by link class -- drives
  Table VI.

Both are :mod:`repro.telemetry` instruments: the fabric registers them
in its :class:`~repro.telemetry.Telemetry` session under the family
keys ``net.router.app.bytes`` and ``net.link.bytes``, and they expand
to hierarchical metric rows (``net.router.12.app.0.bytes``,
``net.link.37.bytes``) for the telemetry sinks.  Their bespoke
``record`` signatures are kept verbatim -- they are the hot-path
contract the router/terminal LPs bind to.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterator

import numpy as np

from repro.network.config import LinkClass
from repro.network.topology import Topology
from repro.telemetry.instruments import Instrument, WindowedSeries


class WindowedAppCounter(WindowedSeries):
    """Counts bytes received by each router, per application, per window.

    ``record`` is on the packet-arrival hot path; it does two dict
    lookups and an integer add.  Queries aggregate lazily.

    A :class:`~repro.telemetry.WindowedSeries` under (router, app)
    label tuples -- row expansion (``net.router.<r>.app.<a>.bytes``)
    is inherited; ``record`` is overridden with the bespoke hot-path
    signature the router LPs bind, plus the exact-boundary side
    channel ``series`` needs for the closed-horizon fold.
    """

    def __init__(self, window: float, key: str = "net.router.app.bytes") -> None:
        super().__init__(key, window, unit="bytes",
                         doc="bytes received per router, per app, per window",
                         template="net.router.{}.app.{}.bytes")
        # (router, app) -> {bin_index: bytes recorded at *exactly* the
        # bin's start time}.  Rare in practice (event times are
        # continuous), but it lets ``series`` fold precisely the bytes
        # committed at ``time == horizon`` -- and nothing later -- into
        # the final bin.
        self._edge_bins: dict[tuple[int, int], dict[int, int]] = defaultdict(dict)

    def record(self, router: int, app_id: int, time: float, nbytes: int) -> None:  # type: ignore[override]
        b = int(time / self.window)
        bins = self._bins[(router, app_id)]
        try:
            bins[b] += nbytes
        except KeyError:
            bins[b] = nbytes
        if time == b * self.window:
            edge = self._edge_bins[(router, app_id)]
            edge[b] = edge.get(b, 0) + nbytes

    def apps_seen(self) -> set[int]:
        return {app for (_r, app) in self._bins}

    def routers_seen(self) -> set[int]:
        return {r for (r, _app) in self._bins}

    def series(self, routers: set[int] | list[int], app_id: int, horizon: float) -> np.ndarray:
        """Total bytes per window received by ``routers`` from ``app_id``.

        Returns an array of length ``ceil(horizon / window)``.  The
        horizon boundary is closed: bytes recorded at exactly
        ``time == horizon`` land in bin ``int(horizon / window)``, which
        equals ``n_bins`` when the horizon is an exact multiple of the
        window (the common case -- a run to ``until=horizon`` commits
        events *at* the horizon); those bytes are folded into the final
        bin rather than silently dropped.  Bytes recorded strictly
        after the horizon are excluded, even when they share the
        boundary bin (the exact-boundary side channel kept by
        ``record`` makes the fold precise).
        """
        n_bins = max(1, int(np.ceil(horizon / self.window)))
        # Same float semantics as ``record``'s int(time / window): the
        # bin whose start lies exactly at the horizon is the fold source.
        hb = int(horizon / self.window)
        fold_edge = hb >= n_bins
        out = np.zeros(n_bins, dtype=np.int64)
        for r in routers:
            bins = self._bins.get((r, app_id))
            if not bins:
                continue
            for b, v in bins.items():
                if b < n_bins:
                    out[b] += v
            if fold_edge:
                edge = self._edge_bins.get((r, app_id))
                if edge:
                    out[n_bins - 1] += edge.get(hb, 0)
        return out

    def total(self, routers: set[int] | list[int], app_id: int) -> int:
        return int(
            sum(
                sum(bins.values())
                for r in routers
                if (bins := self._bins.get((r, app_id)))
            )
        )


class LinkLoadAccounting(Instrument):
    """Accumulates bytes pushed over every directed link.

    Queried at end of simulation for the Table VI rows: total load per
    link class and average load per link.  ``record`` is on the
    per-transmit hot path, so the accumulator is a plain Python list
    (a scalar ``+=`` on an int64 ndarray costs several times a list
    index-add); queries convert lazily.

    Semantics: bytes are recorded when a packet *commits* to a link --
    at arrival for router forwarding (the event-free forwarding path
    fixes the transmit schedule at arrival), at transmit start for NIC
    injection.  For runs that drain, this equals bytes transmitted; a
    run truncated at a horizon additionally counts packets whose
    (already scheduled) transmission starts after the cutoff.
    """

    kind = "counter"

    def __init__(self, topo: Topology, key: str = "net.link.bytes") -> None:
        super().__init__(key, unit="bytes", doc="byte total per directed link")
        self.topo = topo
        self._bytes: list[int] = [0] * topo.n_links
        self._class_index = np.asarray(topo.link_class_of, dtype=np.int8)

    def record(self, link_id: int, nbytes: int) -> None:
        self._bytes[link_id] += nbytes

    @property
    def bytes_per_link(self) -> np.ndarray:
        """Per-link byte totals as an int64 array (snapshot)."""
        return np.asarray(self._bytes, dtype=np.int64)

    def class_total(self, link_class: LinkClass) -> int:
        mask = self._class_index == int(link_class)
        return int(self.bytes_per_link[mask].sum())

    def class_link_count(self, link_class: LinkClass) -> int:
        return int((self._class_index == int(link_class)).sum())

    def class_mean_per_link(self, link_class: LinkClass) -> float:
        n = self.class_link_count(link_class)
        return self.class_total(link_class) / n if n else 0.0

    def class_max_per_link(self, link_class: LinkClass) -> int:
        mask = self._class_index == int(link_class)
        return int(self.bytes_per_link[mask].max()) if mask.any() else 0

    def global_fraction(self) -> float:
        """Fraction of all router-to-router traffic on global links."""
        g = self.class_total(LinkClass.GLOBAL)
        l = self.class_total(LinkClass.LOCAL)
        return g / (g + l) if (g + l) else 0.0

    def summary(self) -> dict[str, float]:
        """Table VI row for this system."""
        return {
            "global_total_bytes": self.class_total(LinkClass.GLOBAL),
            "local_total_bytes": self.class_total(LinkClass.LOCAL),
            "global_per_link_bytes": self.class_mean_per_link(LinkClass.GLOBAL),
            "local_per_link_bytes": self.class_mean_per_link(LinkClass.LOCAL),
            "global_fraction": self.global_fraction(),
        }

    def rows(self) -> Iterator[dict[str, Any]]:
        """Per-class totals first, then one row per *loaded* link.

        Idle links are skipped to keep exports proportional to traffic,
        not to system size (a paper-scale fabric has tens of thousands
        of links); the class totals always appear, even when zero.
        """
        for lc in LinkClass:
            row = self._base_row(f"net.link.class.{lc.name.lower()}.bytes")
            row["value"] = self.class_total(lc)
            row["links"] = self.class_link_count(lc)
            yield row
        class_names = {int(lc): lc.name.lower() for lc in LinkClass}
        for link_id, n in enumerate(self._bytes):
            if not n:
                continue
            row = self._base_row(f"net.link.{link_id}.bytes")
            row["value"] = n
            row["link_class"] = class_names[int(self._class_index[link_id])]
            yield row
