"""2D dragonfly: Cray Cascade / XC-style groups (Faanes et al., SC'12).

Routers within a group sit on a ``rows x cols`` grid; routers sharing a
row or a column are all-to-all connected, so an intra-group move takes
up to 2 local hops (row then column, or column then row) and the minimal
inter-group path is up to 2 + 1 + 2 = 5 hops.  The paper's 2D system
(Table II): 22 groups x 96 routers (6 x 16) x 4 nodes = 8,448 nodes,
7 global channels per router.
"""

from __future__ import annotations

from repro.network.config import LinkClass
from repro.network.topology import Topology


class Dragonfly2D(Topology):
    """Two-dimensional (row/column all-to-all) dragonfly group."""

    name = "2D dragonfly"

    def __init__(
        self,
        n_groups: int = 22,
        rows: int = 6,
        cols: int = 16,
        nodes_per_router: int = 4,
        global_per_router: int = 7,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"rows and cols must be >= 1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        super().__init__(n_groups, rows * cols, nodes_per_router, global_per_router)

    @classmethod
    def paper(cls) -> "Dragonfly2D":
        """The exact Table II 2D configuration (8,448 nodes)."""
        return cls(n_groups=22, rows=6, cols=16, nodes_per_router=4, global_per_router=7)

    @classmethod
    def mini(cls) -> "Dragonfly2D":
        """Scaled-down configuration matching :meth:`Dragonfly1D.mini`.

        Same node count (144) as the mini 1D system so the two networks
        host identical workloads, and the same structural relations as
        the paper-scale pair: the 2D system has twice the routers (via
        fewer nodes per router), larger groups, and more local *and*
        global links than the 1D system -- the Table VI preconditions.
        """
        return cls(n_groups=6, rows=4, cols=6, nodes_per_router=1, global_per_router=2)

    # -- grid helpers --------------------------------------------------------
    def row_col(self, router: int) -> tuple[int, int]:
        """Grid coordinates of a router within its group."""
        li = self.local_index(router)
        return li // self.cols, li % self.cols

    def router_at(self, group: int, row: int, col: int) -> int:
        return self.router_id(group, row * self.cols + col)

    def _build_local_links(self) -> None:
        for g in range(self.n_groups):
            for row in range(self.rows):
                for c1 in range(self.cols):
                    for c2 in range(self.cols):
                        if c1 != c2:
                            self._add_router_port(
                                self.router_at(g, row, c1),
                                LinkClass.LOCAL,
                                self.router_at(g, row, c2),
                            )
            for col in range(self.cols):
                for r1 in range(self.rows):
                    for r2 in range(self.rows):
                        if r1 != r2:
                            self._add_router_port(
                                self.router_at(g, r1, col),
                                LinkClass.LOCAL,
                                self.router_at(g, r2, col),
                            )

    def local_paths(self, src_router: int, dst_router: int) -> list[list[int]]:
        g = self.group_of(src_router)
        if g != self.group_of(dst_router):
            raise ValueError(
                f"local_paths requires same-group routers, got {src_router} and {dst_router}"
            )
        if src_router == dst_router:
            return [[]]
        r1, c1 = self.row_col(src_router)
        r2, c2 = self.row_col(dst_router)
        if r1 == r2 or c1 == c2:
            return [[dst_router]]
        # Dimension change: go through one of the two corner routers.
        corner_a = self.router_at(g, r1, c2)  # row first
        corner_b = self.router_at(g, r2, c1)  # column first
        return [[corner_a, dst_router], [corner_b, dst_router]]

    def local_diameter(self) -> int:
        return 2 if (self.rows > 1 and self.cols > 1) else 1
