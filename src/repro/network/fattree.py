"""Three-level k-ary fat-tree topology and nearest-common-ancestor routing.

CODES's network module is an abstraction layer that many topology models
plug into (Section II-B lists dragonfly, torus, fat-tree, slim fly).
This module adds the classic k-ary fat-tree (Clos) so that fabric-level
experiments can compare the dragonfly results against a full-bisection
network.

Structure (for even ``k``):

* ``k`` pods, each with ``k/2`` edge switches and ``k/2`` aggregation
  switches;
* each edge switch serves ``k/2`` compute nodes and uplinks to every
  aggregation switch in its pod;
* ``(k/2)^2`` core switches; core switch ``c`` connects to aggregation
  switch ``c // (k/2)`` of every pod.

Total: ``k^3/4`` nodes, ``5k^2/4`` switches.

Like :class:`~repro.network.torus.TorusTopology`, this implements the
structural duck-type the :class:`~repro.network.fabric.NetworkFabric`
consumes rather than subclassing the dragonfly-specific ``Topology``
base.  Edge<->aggregation links are class LOCAL and aggregation<->core
links are class GLOBAL, so the link-load instrument distinguishes the
two tiers the same way it distinguishes dragonfly link classes.
"""

from __future__ import annotations

from repro.network.config import LinkClass, NetworkConfig
from repro.network.topology import Port
from repro.network.routing import per_router_stream
from repro.pdes.rng import SplitMix


class FatTreeTopology:
    """A three-level k-ary fat-tree of switches.

    Parameters
    ----------
    k:
        Switch radix; must be even and >= 2.  The network has ``k`` pods
        and ``k^3/4`` compute nodes.

    Switch numbering (``n_routers = 5k^2/4`` total):

    * edge switches: ``pod * (k/2) + i`` for ``i in [0, k/2)``,
      occupying ids ``[0, k^2/2)``;
    * aggregation switches: ``k^2/2 + pod * (k/2) + j``;
    * core switches: ``k^2 + c`` for ``c in [0, (k/2)^2)``.
    """

    name = "fat-tree"

    def __init__(self, k: int = 4) -> None:
        if k < 2 or k % 2 != 0:
            raise ValueError(f"fat-tree arity k must be even and >= 2, got {k}")
        self.k = k
        half = k // 2
        self.half = half
        self.n_pods = k
        self.edge_per_pod = half
        self.agg_per_pod = half
        self.nodes_per_edge = half
        self.n_edge = k * half
        self.n_agg = k * half
        self.n_core = half * half
        self.n_routers = self.n_edge + self.n_agg + self.n_core
        self.n_nodes = self.n_edge * half
        self.nodes_per_router = half  # only edge switches host nodes

        self.router_ports: list[list[Port]] = [[] for _ in range(self.n_routers)]
        self.ports_to_router: list[dict[int, list[int]]] = [dict() for _ in range(self.n_routers)]
        self.port_to_node: list[dict[int, int]] = [dict() for _ in range(self.n_routers)]
        self.n_links = 0
        self.link_class_of: list[LinkClass] = []
        self._build()

    # -- switch id helpers ---------------------------------------------------
    def edge_id(self, pod: int, i: int) -> int:
        return pod * self.half + i

    def agg_id(self, pod: int, j: int) -> int:
        return self.n_edge + pod * self.half + j

    def core_id(self, c: int) -> int:
        return self.n_edge + self.n_agg + c

    def is_edge(self, router: int) -> bool:
        return router < self.n_edge

    def is_agg(self, router: int) -> bool:
        return self.n_edge <= router < self.n_edge + self.n_agg

    def is_core(self, router: int) -> bool:
        return router >= self.n_edge + self.n_agg

    def pod_of(self, router: int) -> int:
        """Pod of an edge or aggregation switch (-1 for core switches)."""
        if self.is_edge(router):
            return router // self.half
        if self.is_agg(router):
            return (router - self.n_edge) // self.half
        return -1

    def router_of_node(self, node: int) -> int:
        return node // self.nodes_per_edge

    def nodes_of_router(self, router: int) -> range:
        if not self.is_edge(router):
            return range(0)
        base = router * self.nodes_per_edge
        return range(base, base + self.nodes_per_edge)

    # -- construction ----------------------------------------------------------
    def _new_link(self, link_class: LinkClass) -> int:
        lid = self.n_links
        self.n_links += 1
        self.link_class_of.append(link_class)
        return lid

    def _add_port(self, router: int, link_class: LinkClass, peer: int) -> None:
        pid = len(self.router_ports[router])
        lid = self._new_link(link_class)
        self.router_ports[router].append(Port(pid, link_class, peer_router=peer, link_id=lid))
        self.ports_to_router[router].setdefault(peer, []).append(pid)

    def _build(self) -> None:
        half = self.half
        # Terminal ports on edge switches.
        for e in range(self.n_edge):
            for node in self.nodes_of_router(e):
                pid = len(self.router_ports[e])
                lid = self._new_link(LinkClass.TERMINAL)
                self.router_ports[e].append(Port(pid, LinkClass.TERMINAL, peer_node=node, link_id=lid))
                self.port_to_node[e][node] = pid
        # Edge <-> aggregation (intra-pod, LOCAL).
        for pod in range(self.n_pods):
            for i in range(half):
                for j in range(half):
                    e, a = self.edge_id(pod, i), self.agg_id(pod, j)
                    self._add_port(e, LinkClass.LOCAL, a)
                    self._add_port(a, LinkClass.LOCAL, e)
        # Aggregation <-> core (GLOBAL).  Core c talks to agg c // half.
        for c in range(self.n_core):
            j = c // half
            core = self.core_id(c)
            for pod in range(self.n_pods):
                a = self.agg_id(pod, j)
                self._add_port(a, LinkClass.GLOBAL, core)
                self._add_port(core, LinkClass.GLOBAL, a)

    # -- descriptive ---------------------------------------------------------------
    def radix(self) -> int:
        return max(len(p) for p in self.router_ports)

    def diameter(self) -> int:
        return 4  # edge -> agg -> core -> agg -> edge

    def describe(self) -> dict[str, object]:
        return {
            "topology": f"{self.k}-ary fat-tree",
            "radix": self.radix(),
            "pods": self.n_pods,
            "switches": self.n_routers,
            "system_size": self.n_nodes,
            "diameter": self.diameter(),
        }


class FatTreeNCARouting:
    """Route up to the nearest common ancestor tier, then down.

    The upward switch at each tier is chosen per packet: ``"dmodk"``
    picks it deterministically from the destination node id (the classic
    D-mod-k scheme, giving static load balance with per-destination path
    stability), ``"random"`` picks uniformly, and ``"adaptive"`` picks
    the upward port with the shallowest output queue.
    """

    name = "fattree-nca"

    def __init__(
        self,
        topo: FatTreeTopology,
        config: NetworkConfig,
        probe,
        stream_id: int = 0,
        mode: str = "dmodk",
    ) -> None:
        if mode not in ("dmodk", "random", "adaptive"):
            raise ValueError(f"unknown fat-tree mode {mode!r}")
        self.topo = topo
        self.config = config
        self.probe = probe
        self.mode = mode
        # One tie-break stream per source router (see
        # repro.network.routing.per_router_stream): keeps the draw
        # sequence a function of each router's own injection order.
        self._streams = [
            SplitMix(config.seed, per_router_stream(stream_id, r))
            for r in range(topo.n_routers)
        ]
        self.rng = self._streams[0]
        self.name = f"fattree-{mode}"

    def _pick_up(self, router: int, candidates: list[int], salt: int) -> int:
        if self.mode == "dmodk":
            return candidates[salt % len(candidates)]
        if self.mode == "random":
            return self.rng.choice(candidates)
        # adaptive: shallowest first-hop queue, random tie-break
        topo = self.topo
        depths = []
        for peer in candidates:
            ports = topo.ports_to_router[router][peer]
            depths.append(min(self.probe(router, p) for p in ports))
        best = min(depths)
        choices = [c for c, d in zip(candidates, depths) if d == best]
        return choices[0] if len(choices) == 1 else self.rng.choice(choices)

    def select_path(self, src_router: int, dst_router: int) -> tuple[list[int], bool]:
        topo = self.topo
        if src_router == dst_router:
            return [src_router], False
        self.rng = self._streams[src_router]
        half = self.half = topo.half
        src_pod, dst_pod = topo.pod_of(src_router), topo.pod_of(dst_router)
        # salt for D-mod-k: spread by destination edge switch id
        salt = dst_router
        if src_pod == dst_pod:
            # NCA is an aggregation switch of the shared pod.
            aggs = [topo.agg_id(src_pod, j) for j in range(half)]
            via = self._pick_up(src_router, aggs, salt)
            return [src_router, via, dst_router], False
        # NCA is a core switch: edge -> agg -> core -> agg -> edge.
        aggs = [topo.agg_id(src_pod, j) for j in range(half)]
        agg_up = self._pick_up(src_router, aggs, salt)
        j = (agg_up - topo.n_edge) % half
        cores = [topo.core_id(j * half + m) for m in range(half)]
        core = self._pick_up(agg_up, cores, salt)
        agg_down = topo.agg_id(dst_pod, j)
        return [src_router, agg_up, core, agg_down, dst_router], False


def fattree_routing_factory(mode: str = "dmodk"):
    """Routing factory for :class:`NetworkFabric`'s ``routing=`` parameter."""

    def factory(topo, config, probe, stream_id=0):
        return FatTreeNCARouting(topo, config, probe, stream_id, mode=mode)

    return factory
