"""Torus topology and dimension-order routing.

CODES's network module is an abstraction layer that many topology models
plug into (Section II-B lists dragonfly, torus, fat-tree, slim fly).
This module demonstrates the same property of our fabric: a k-ary
n-dimensional torus with dimension-order routing that runs under the
unchanged :class:`~repro.network.fabric.NetworkFabric`, router and
terminal models.

All torus links are class LOCAL (a torus has no link hierarchy), so the
link-load instrument reports a zero global fraction -- correct, not a
gap.
"""

from __future__ import annotations

from repro.network.config import LinkClass, NetworkConfig
from repro.network.topology import Port
from repro.network.routing import per_router_stream
from repro.pdes.rng import SplitMix


class TorusTopology:
    """A k-ary n-dimensional torus of routers.

    Implements the structural interface the fabric consumes
    (``router_ports``, ``ports_to_router``, ``port_to_node``,
    ``router_of_node``, ``n_links``/``link_class_of``); it is *not* a
    dragonfly, so it deliberately does not subclass
    :class:`~repro.network.topology.Topology`.
    """

    name = "torus"

    def __init__(self, dims: tuple[int, ...] = (4, 4, 4), nodes_per_router: int = 1) -> None:
        if not dims or any(d < 2 for d in dims):
            raise ValueError(f"every torus dimension must be >= 2, got {dims}")
        if nodes_per_router < 1:
            raise ValueError(f"nodes_per_router must be >= 1, got {nodes_per_router}")
        self.dims = tuple(int(d) for d in dims)
        self.nodes_per_router = nodes_per_router
        self.n_routers = 1
        for d in self.dims:
            self.n_routers *= d
        self.n_nodes = self.n_routers * nodes_per_router

        self.router_ports: list[list[Port]] = [[] for _ in range(self.n_routers)]
        self.ports_to_router: list[dict[int, list[int]]] = [dict() for _ in range(self.n_routers)]
        self.port_to_node: list[dict[int, int]] = [dict() for _ in range(self.n_routers)]
        self.n_links = 0
        self.link_class_of: list[LinkClass] = []
        self._build()

    # -- identities ---------------------------------------------------------
    def router_of_node(self, node: int) -> int:
        return node // self.nodes_per_router

    def nodes_of_router(self, router: int) -> range:
        base = router * self.nodes_per_router
        return range(base, base + self.nodes_per_router)

    def coords(self, router: int) -> tuple[int, ...]:
        out = []
        for d in self.dims:
            out.append(router % d)
            router //= d
        return tuple(out)

    def router_at(self, coords: tuple[int, ...]) -> int:
        rank = 0
        stride = 1
        for c, d in zip(coords, self.dims):
            rank += (c % d) * stride
            stride *= d
        return rank

    # -- construction ----------------------------------------------------------
    def _new_link(self, link_class: LinkClass) -> int:
        lid = self.n_links
        self.n_links += 1
        self.link_class_of.append(link_class)
        return lid

    def _build(self) -> None:
        for r in range(self.n_routers):
            for node in self.nodes_of_router(r):
                pid = len(self.router_ports[r])
                lid = self._new_link(LinkClass.TERMINAL)
                self.router_ports[r].append(Port(pid, LinkClass.TERMINAL, peer_node=node, link_id=lid))
                self.port_to_node[r][node] = pid
        for r in range(self.n_routers):
            c = self.coords(r)
            for axis in range(len(self.dims)):
                for delta in (1, -1):
                    if self.dims[axis] == 2 and delta == -1:
                        continue  # avoid double links on 2-rings
                    nc = list(c)
                    nc[axis] = (nc[axis] + delta) % self.dims[axis]
                    peer = self.router_at(tuple(nc))
                    pid = len(self.router_ports[r])
                    lid = self._new_link(LinkClass.LOCAL)
                    self.router_ports[r].append(Port(pid, LinkClass.LOCAL, peer_router=peer, link_id=lid))
                    self.ports_to_router[r].setdefault(peer, []).append(pid)

    # -- descriptive ---------------------------------------------------------------
    def radix(self) -> int:
        return max(len(p) for p in self.router_ports)

    def diameter(self) -> int:
        return sum(d // 2 for d in self.dims)

    def describe(self) -> dict[str, object]:
        return {
            "topology": f"{'x'.join(map(str, self.dims))} torus",
            "radix": self.radix(),
            "routers": self.n_routers,
            "nodes_per_router": self.nodes_per_router,
            "system_size": self.n_nodes,
            "diameter": self.diameter(),
        }


class TorusDORRouting:
    """Dimension-order routing with shortest-direction wrap selection.

    Deterministic (given the seed) and minimal; deadlock questions do
    not arise in this simulator because router queues are unbounded.
    """

    name = "torus-dor"

    def __init__(self, topo: TorusTopology, config: NetworkConfig, probe, stream_id: int = 0) -> None:
        self.topo = topo
        self.config = config
        self.probe = probe
        # One tie-break stream per source router (see
        # repro.network.routing.per_router_stream).
        self._streams = [
            SplitMix(config.seed, per_router_stream(stream_id, r))
            for r in range(topo.n_routers)
        ]
        self.rng = self._streams[0]

    def _step(self, cur: tuple[int, ...], axis: int, dst_c: int) -> int:
        """Next coordinate along ``axis`` moving the short way to dst."""
        d = self.topo.dims[axis]
        cc = cur[axis]
        fwd = (dst_c - cc) % d
        bwd = (cc - dst_c) % d
        if fwd < bwd or (fwd == bwd and self.rng.randint(2) == 0):
            return (cc + 1) % d
        return (cc - 1) % d

    def select_path(self, src_router: int, dst_router: int) -> tuple[list[int], bool]:
        topo = self.topo
        self.rng = self._streams[src_router]
        path = [src_router]
        cur = list(topo.coords(src_router))
        dst = topo.coords(dst_router)
        for axis in range(len(topo.dims)):
            while cur[axis] != dst[axis]:
                cur[axis] = self._step(tuple(cur), axis, dst[axis])
                path.append(topo.router_at(tuple(cur)))
        return path, False


def torus_routing_factory(name: str = "dor"):
    """Routing factory for :class:`NetworkFabric`'s ``routing=`` parameter."""
    if name != "dor":
        raise ValueError(f"unknown torus routing {name!r}; only 'dor' is implemented")

    def factory(topo, config, probe, stream_id=0):
        return TorusDORRouting(topo, config, probe, stream_id)

    return factory
