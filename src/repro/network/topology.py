"""Topology base class: routers, ports, links and group wiring.

Both dragonfly variants share the two-level structure of Section IV-A:
nodes attach to routers, routers form *groups*, and groups are all-to-all
connected through global links.  Subclasses only provide the intra-group
(local) wiring and the intra-group path enumeration; the global-link
construction, port tables and lookup indices live here.
"""

from __future__ import annotations

from repro.network.config import LinkClass


class Port:
    """One output port of a router (a directed physical link)."""

    __slots__ = ("pid", "link_class", "peer_router", "peer_node", "link_id")

    def __init__(
        self,
        pid: int,
        link_class: LinkClass,
        peer_router: int = -1,
        peer_node: int = -1,
        link_id: int = -1,
    ) -> None:
        self.pid = pid
        self.link_class = link_class
        self.peer_router = peer_router
        self.peer_node = peer_node
        self.link_id = link_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = f"node {self.peer_node}" if self.peer_node >= 0 else f"router {self.peer_router}"
        return f"Port({self.pid}, {self.link_class.name}, -> {peer}, link {self.link_id})"


class Topology:
    """Abstract dragonfly-class topology.

    Parameters
    ----------
    n_groups:
        Number of groups.
    routers_per_group:
        Routers in each group.
    nodes_per_router:
        Compute nodes attached to each router.
    global_per_router:
        Global (inter-group) channels per router (``h`` in dragonfly
        terminology).
    """

    name = "abstract"

    def __init__(
        self,
        n_groups: int,
        routers_per_group: int,
        nodes_per_router: int,
        global_per_router: int,
    ) -> None:
        if n_groups < 2:
            raise ValueError(f"need at least 2 groups, got {n_groups}")
        if routers_per_group < 1 or nodes_per_router < 1 or global_per_router < 1:
            raise ValueError("routers_per_group, nodes_per_router and global_per_router must be >= 1")
        self.n_groups = n_groups
        self.routers_per_group = routers_per_group
        self.nodes_per_router = nodes_per_router
        self.global_per_router = global_per_router
        self.n_routers = n_groups * routers_per_group
        self.n_nodes = self.n_routers * nodes_per_router
        self.nodes_per_group = routers_per_group * nodes_per_router

        global_slots = routers_per_group * global_per_router
        peers = n_groups - 1
        self.links_per_group_pair = global_slots // peers
        if self.links_per_group_pair < 1:
            raise ValueError(
                f"{global_slots} global channels per group cannot connect "
                f"{peers} peer groups (need at least one link per pair)"
            )

        # Port tables, populated by _build().
        self.router_ports: list[list[Port]] = [[] for _ in range(self.n_routers)]
        self.ports_to_router: list[dict[int, list[int]]] = [dict() for _ in range(self.n_routers)]
        self.port_to_node: list[dict[int, int]] = [dict() for _ in range(self.n_routers)]
        self.global_ports_to_group: list[dict[int, list[int]]] = [dict() for _ in range(self.n_routers)]
        # gateways[g][g2] -> routers in g owning a global link towards g2
        self.gateways: list[dict[int, list[int]]] = [dict() for _ in range(n_groups)]
        self.n_links = 0  # directed links
        self.link_class_of: list[LinkClass] = []

        self._build()

    # -- identity helpers ---------------------------------------------------
    def group_of(self, router: int) -> int:
        return router // self.routers_per_group

    def local_index(self, router: int) -> int:
        return router % self.routers_per_group

    def router_id(self, group: int, local_idx: int) -> int:
        return group * self.routers_per_group + local_idx

    def router_of_node(self, node: int) -> int:
        return node // self.nodes_per_router

    def group_of_node(self, node: int) -> int:
        return self.router_of_node(node) // self.routers_per_group

    def nodes_of_router(self, router: int) -> range:
        base = router * self.nodes_per_router
        return range(base, base + self.nodes_per_router)

    def nodes_of_group(self, group: int) -> range:
        base = group * self.nodes_per_group
        return range(base, base + self.nodes_per_group)

    def routers_of_group(self, group: int) -> range:
        base = group * self.routers_per_group
        return range(base, base + self.routers_per_group)

    # -- construction ------------------------------------------------------
    def _new_link(self, link_class: LinkClass) -> int:
        lid = self.n_links
        self.n_links += 1
        self.link_class_of.append(link_class)
        return lid

    def _add_router_port(self, router: int, link_class: LinkClass, peer_router: int) -> None:
        pid = len(self.router_ports[router])
        lid = self._new_link(link_class)
        self.router_ports[router].append(Port(pid, link_class, peer_router=peer_router, link_id=lid))
        self.ports_to_router[router].setdefault(peer_router, []).append(pid)
        if link_class == LinkClass.GLOBAL:
            peer_group = self.group_of(peer_router)
            self.global_ports_to_group[router].setdefault(peer_group, []).append(pid)

    def _build(self) -> None:
        # Terminal ports first so ejection lookup is O(1).
        for r in range(self.n_routers):
            for node in self.nodes_of_router(r):
                pid = len(self.router_ports[r])
                lid = self._new_link(LinkClass.TERMINAL)
                self.router_ports[r].append(
                    Port(pid, LinkClass.TERMINAL, peer_node=node, link_id=lid)
                )
                self.port_to_node[r][node] = pid
        self._build_local_links()
        self._build_global_links()

    def _build_local_links(self) -> None:
        raise NotImplementedError

    def _build_global_links(self) -> None:
        """Wire groups all-to-all with ``links_per_group_pair`` links each.

        Global port slots inside a group are consumed router-by-router
        (router 0's ``h`` slots first), which yields the classic
        "consecutive" global-channel arrangement.  Any remainder slots
        left by uneven division stay unused, exactly like dark fiber.
        """
        h = self.global_per_router
        cursor = [0] * self.n_groups  # next free global slot in each group

        def take_slot(group: int) -> int:
            """Claim the next free (router, slot) in ``group``; return router id."""
            slot = cursor[group]
            if slot >= self.routers_per_group * h:
                raise AssertionError(f"group {group} ran out of global slots")
            cursor[group] = slot + 1
            return self.router_id(group, slot // h)

        for g1 in range(self.n_groups):
            for g2 in range(g1 + 1, self.n_groups):
                for _ in range(self.links_per_group_pair):
                    r1 = take_slot(g1)
                    r2 = take_slot(g2)
                    self._add_router_port(r1, LinkClass.GLOBAL, r2)
                    self._add_router_port(r2, LinkClass.GLOBAL, r1)
                    self.gateways[g1].setdefault(g2, []).append(r1)
                    self.gateways[g2].setdefault(g1, []).append(r2)

    # -- routing support ------------------------------------------------------
    def local_paths(self, src_router: int, dst_router: int) -> list[list[int]]:
        """Enumerate candidate intra-group paths from ``src`` to ``dst``.

        Each path is the list of routers *after* ``src`` up to and
        including ``dst``.  ``src`` and ``dst`` must share a group.
        Returns ``[[]]`` when ``src == dst``.
        """
        raise NotImplementedError

    def local_diameter(self) -> int:
        """Maximum intra-group hop count."""
        raise NotImplementedError

    def diameter(self) -> int:
        """Maximum router-to-router hop count under minimal routing."""
        # local to gateway + global + local to destination
        return 2 * self.local_diameter() + 1

    # -- descriptive ----------------------------------------------------------
    def radix(self) -> int:
        """Maximum number of ports on any router."""
        return max(len(ports) for ports in self.router_ports)

    def link_census(self) -> dict[LinkClass, int]:
        """Number of directed links per class."""
        census: dict[LinkClass, int] = {c: 0 for c in LinkClass}
        for c in self.link_class_of:
            census[c] += 1
        return census

    def describe(self) -> dict[str, object]:
        """Table II-style row describing this system."""
        return {
            "topology": self.name,
            "radix": self.radix(),
            "groups": self.n_groups,
            "routers_per_group": self.routers_per_group,
            "nodes_per_router": self.nodes_per_router,
            "nodes_per_group": self.nodes_per_group,
            "global_per_router": self.global_per_router,
            "system_size": self.n_nodes,
        }
