"""Packet-level interconnect models (CODES substitute).

Implements 1D and 2D dragonfly topologies with output-queued routers,
bandwidth/latency link serialization, minimal and UGAL-style adaptive
routing, per-application router counters and link-class load accounting
-- the measurement machinery behind the paper's Figures 7-9 and
Table VI.  Torus, fat-tree and slim fly models plug into the same
fabric (the CODES network-layer roster of Section II-B).
"""

from repro.network.config import NetworkConfig, LinkClass
from repro.network.topology import Topology, Port
from repro.network.dragonfly import Dragonfly1D
from repro.network.dragonfly2d import Dragonfly2D
from repro.network.torus import TorusTopology, torus_routing_factory
from repro.network.fattree import FatTreeTopology, fattree_routing_factory
from repro.network.slimfly import SlimFlyTopology, slimfly_routing_factory
from repro.network.routing import RoutingPolicy, MinimalRouting, AdaptiveRouting, make_routing
from repro.network.fabric import NetworkFabric
from repro.network.packet import Packet
from repro.network.stats import LinkLoadAccounting, WindowedAppCounter

__all__ = [
    "NetworkConfig",
    "LinkClass",
    "Topology",
    "Port",
    "Dragonfly1D",
    "Dragonfly2D",
    "TorusTopology",
    "torus_routing_factory",
    "FatTreeTopology",
    "fattree_routing_factory",
    "SlimFlyTopology",
    "slimfly_routing_factory",
    "RoutingPolicy",
    "MinimalRouting",
    "AdaptiveRouting",
    "make_routing",
    "NetworkFabric",
    "Packet",
    "LinkLoadAccounting",
    "WindowedAppCounter",
]
