"""1D dragonfly: fully-connected groups (Kim et al., ISCA'08).

Routers within a group are all-to-all connected, so any intra-group move
is one local hop and the minimal inter-group path is at most
local + global + local = 3 router-to-router hops.  The paper's 1D system
(Table II): 33 groups x 32 routers x 8 nodes = 8,448 nodes, 4 global
channels per router.
"""

from __future__ import annotations

from repro.network.config import LinkClass
from repro.network.topology import Topology


class Dragonfly1D(Topology):
    """Classic single-level dragonfly group."""

    name = "1D dragonfly"

    def __init__(
        self,
        n_groups: int = 33,
        routers_per_group: int = 32,
        nodes_per_router: int = 8,
        global_per_router: int = 4,
    ) -> None:
        super().__init__(n_groups, routers_per_group, nodes_per_router, global_per_router)

    @classmethod
    def paper(cls) -> "Dragonfly1D":
        """The exact Table II 1D configuration (8,448 nodes)."""
        return cls(n_groups=33, routers_per_group=32, nodes_per_router=8, global_per_router=4)

    @classmethod
    def mini(cls) -> "Dragonfly1D":
        """Scaled-down configuration used by the simulation sweeps.

        Preserves the 1D balance rules (all-to-all groups, about one
        global link per router pair of groups) at ~1/60 the node count.
        """
        return cls(n_groups=9, routers_per_group=8, nodes_per_router=2, global_per_router=2)

    def _build_local_links(self) -> None:
        a = self.routers_per_group
        for g in range(self.n_groups):
            base = g * a
            for i in range(a):
                for j in range(a):
                    if i != j:
                        self._add_router_port(base + i, LinkClass.LOCAL, base + j)

    def local_paths(self, src_router: int, dst_router: int) -> list[list[int]]:
        if self.group_of(src_router) != self.group_of(dst_router):
            raise ValueError(
                f"local_paths requires same-group routers, got {src_router} and {dst_router}"
            )
        if src_router == dst_router:
            return [[]]
        return [[dst_router]]

    def local_diameter(self) -> int:
        return 1
