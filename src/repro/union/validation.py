"""Skeleton validation (Section V): skeleton vs full application.

"In order to use a skeleton in place of an application, the runtime
behavior of the skeleton has to match the application's behavior both in
terms of control flow and communication pattern."

This module runs both backends on the same program and compares:

* MPI event counts grouped by function (Table IV);
* bytes transmitted by each rank (Table V);
* per-rank control-flow traces of MPI operations (Figure 6);
* communication-buffer footprint (the quantitative half of Table I:
  the application allocates real buffers, the skeleton none).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.conceptual.interpreter import ApplicationRun, run_application
from repro.union.event_generator import run_skeleton_counting
from repro.union.skeleton import Skeleton
from repro.union.translator import translate


@dataclass
class ValidationReport:
    """Outcome of one application-vs-skeleton comparison."""

    name: str
    n_tasks: int
    app: ApplicationRun
    skel: ApplicationRun
    event_counts_match: bool
    bytes_match: bool
    traces_match: bool | None  # None when traces were not recorded
    mismatches: list[str]

    @property
    def ok(self) -> bool:
        return (
            self.event_counts_match
            and self.bytes_match
            and (self.traces_match is not False)
        )

    # -- table builders ------------------------------------------------------
    def table4_rows(self) -> list[tuple[str, int, int]]:
        """(function, application count, skeleton count) rows, Table IV style."""
        fns = sorted(set(self.app.event_counts()) | set(self.skel.event_counts()))
        a, s = self.app.event_counts(), self.skel.event_counts()
        return [(fn, a.get(fn, 0), s.get(fn, 0)) for fn in fns]

    def table5_rows(self, max_rows: int = 8) -> list[tuple[str, int, int]]:
        """(rank-range, app bytes, skeleton bytes) rows, Table V style.

        Consecutive ranks with identical byte counts are folded into one
        row, as the paper folds ranks 1..511.
        """
        a, s = self.app.bytes_by_rank(), self.skel.bytes_by_rank()
        rows: list[tuple[str, int, int]] = []
        i = 0
        n = self.n_tasks
        while i < n and len(rows) < max_rows:
            j = i
            while j + 1 < n and a[j + 1] == a[i] and s[j + 1] == s[i]:
                j += 1
            label = str(i) if i == j else f"{i} to {j}"
            rows.append((label, int(a[i]), int(s[i])))
            i = j + 1
        return rows

    def memory_comparison(self) -> tuple[int, int]:
        """(application peak buffer bytes, skeleton peak buffer bytes)."""
        return self.app.peak_buffer_bytes(), self.skel.peak_buffer_bytes()


def _compare_traces(app: ApplicationRun, skel: ApplicationRun, mismatches: list[str]) -> bool:
    assert app.traces is not None and skel.traces is not None
    ok = True
    for r, (ta, ts) in enumerate(zip(app.traces, skel.traces)):
        if ta != ts:
            ok = False
            # Locate the first divergence for the report.
            for i, (x, y) in enumerate(zip(ta, ts)):
                if x != y:
                    mismatches.append(
                        f"rank {r}: control flow diverges at op {i}: app={x}, skeleton={y}"
                    )
                    break
            else:
                mismatches.append(
                    f"rank {r}: trace lengths differ: app={len(ta)}, skeleton={len(ts)}"
                )
            if len(mismatches) >= 5:
                break
    return ok


def validate_skeleton(
    source_or_skeleton: str | Skeleton,
    n_tasks: int,
    params: dict[str, Any] | None = None,
    seed: int = 0,
    record_trace: bool = True,
    name: str = "app",
) -> ValidationReport:
    """Run the Section V validation for one program.

    Accepts either coNCePTuaL source text (translated on the fly) or an
    already-translated :class:`Skeleton`.
    """
    skeleton = (
        source_or_skeleton
        if isinstance(source_or_skeleton, Skeleton)
        else translate(source_or_skeleton, name)
    )
    app = run_application(skeleton.program, n_tasks, params, seed, record_trace)
    skel = run_skeleton_counting(skeleton, n_tasks, params, seed, record_trace)

    mismatches: list[str] = []
    a_counts, s_counts = app.event_counts(), skel.event_counts()
    counts_ok = a_counts == s_counts
    if not counts_ok:
        for fn in sorted(set(a_counts) | set(s_counts)):
            if a_counts.get(fn, 0) != s_counts.get(fn, 0):
                mismatches.append(
                    f"event count {fn}: app={a_counts.get(fn, 0)}, skeleton={s_counts.get(fn, 0)}"
                )
    bytes_ok = bool(np.array_equal(app.bytes_by_rank(), skel.bytes_by_rank()))
    if not bytes_ok:
        diff = np.nonzero(app.bytes_by_rank() != skel.bytes_by_rank())[0]
        for r in diff[:5]:
            mismatches.append(
                f"bytes rank {r}: app={int(app.bytes_sent[r])}, skeleton={int(skel.bytes_sent[r])}"
            )
    io_ok = bool(np.array_equal(app.bytes_io, skel.bytes_io))
    if not io_ok:
        diff = np.nonzero(app.bytes_io != skel.bytes_io)[0]
        for r in diff[:5]:
            mismatches.append(
                f"I/O bytes rank {r}: app={int(app.bytes_io[r])}, skeleton={int(skel.bytes_io[r])}"
            )
    bytes_ok = bytes_ok and io_ok
    traces_ok: bool | None = None
    if record_trace:
        traces_ok = _compare_traces(app, skel, mismatches)
    return ValidationReport(
        skeleton.name, n_tasks, app, skel, counts_ok, bytes_ok, traces_ok, mismatches
    )
