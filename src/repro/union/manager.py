"""WorkloadManager: co-schedule skeleton and SWM jobs on one network.

The top of the Union stack: give it a topology, a routing algorithm, a
placement policy and a list of jobs (Union skeletons from the registry
or SWM-style Python programs), and it wires up the fabric, maps ranks to
nodes, runs the co-scheduled simulation and returns per-application
metrics plus the fabric's measurement instruments -- everything the
paper's Figures 7-9 and Tables IV-VI consume.

Jobs need not all start at t=0: a :class:`Job` may carry an ``arrival``
time (it is then placed at that simulated instant against the residual
free-node set, reusing nodes of finished jobs), a per-job ``placement``
policy override, and a ``background`` flag marking traffic injectors.
Declarative access to all of this lives in :mod:`repro.scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.mpi.engine import JobResult, JobSpec, SimMPI, job_key
from repro.network.config import NetworkConfig
from repro.network.fabric import NetworkFabric
from repro.network.topology import Topology
from repro.pdes.engine import Engine
from repro.placement.policies import PlacementError
from repro.registry import (
    build_engine,
    check_placement,
    resolve_routing,
    spec_for_instance,
)
from repro.telemetry import Telemetry
from repro.union.event_generator import SimUnionAPI, SkeletonShared
from repro.union.registry import get_skeleton
from repro.union.skeleton import Skeleton


def _placement_name(placement) -> str:
    """Name of a placement given as a string or a registry spec object."""
    return placement if isinstance(placement, str) else placement.name


@dataclass
class Job:
    """One application instance to co-schedule.

    Exactly one of ``skeleton``/``program`` is set: ``skeleton`` runs a
    Union-translated coNCePTuaL application, ``program`` a hand-written
    SWM-style generator ``program(ctx)``.  ``routing`` optionally
    overrides the fabric-wide routing policy for this job's traffic
    (the paper's per-job "routing police").

    ``arrival`` schedules the job's launch mid-simulation: its ranks are
    placed at that simulated time against the then-free node set (nodes
    of already-finished jobs are reused).  ``placement`` overrides the
    manager-wide policy for this one job.  ``background`` marks traffic
    injectors that load the fabric but are not themselves the measured
    applications (scenario reports separate the two).
    """

    name: str
    nranks: int
    skeleton: Skeleton | None = None
    program: Callable | None = None
    params: dict[str, Any] = field(default_factory=dict)
    routing: str | Callable | None = None  # name or routing factory
    arrival: float = 0.0
    placement: str | Any | None = None  # name or registry PlacementSpec
    background: bool = False

    def __post_init__(self) -> None:
        if (self.skeleton is None) == (self.program is None):
            raise ValueError(f"job {self.name!r}: set exactly one of skeleton/program")
        if self.nranks < 1:
            raise ValueError(f"job {self.name!r}: nranks must be >= 1")
        if self.arrival < 0:
            raise ValueError(f"job {self.name!r}: arrival must be >= 0, got {self.arrival}")


@dataclass
class AppMetrics:
    """Per-application results joined with its placement."""

    name: str
    app_id: int
    result: JobResult
    nodes: list[int]
    routers: set[int]
    groups: set[int]
    arrival: float = 0.0
    background: bool = False


class RunOutcome:
    """Everything measured in one co-scheduled simulation.

    ``not_started`` lists ``(job_name, reason)`` for jobs whose arrival
    never happened inside the horizon or whose placement did not fit the
    free-node set at arrival time.
    """

    def __init__(
        self,
        manager: "WorkloadManager",
        apps: list[AppMetrics],
        end_time: float,
        not_started: list[tuple[str, str]] | None = None,
    ) -> None:
        self.manager = manager
        self.apps = apps
        self.end_time = end_time
        self.fabric = manager.fabric
        self.not_started = not_started or []

    def app(self, name: str) -> AppMetrics:
        for a in self.apps:
            if a.name == name:
                return a
        raise KeyError(f"no application named {name!r}; have {[a.name for a in self.apps]}")

    def router_traffic_series(self, serving: str, source: str, horizon: float | None = None):
        """Figure 8 series: bytes/window received by ``serving``'s routers
        from application ``source``."""
        srv = self.app(serving)
        src = self.app(source)
        h = horizon if horizon is not None else self.end_time
        return self.fabric.app_counter.series(srv.routers, src.app_id, h)

    def link_load_summary(self) -> dict[str, float]:
        """Table VI row."""
        return self.fabric.link_loads.summary()


class WorkloadManager:
    """Build and run one hybrid-workload simulation.

    Parameters
    ----------
    topo:
        Network topology instance -- any registered fabric model
        (dragonfly 1D/2D, fat-tree, torus, slim fly) or a duck-typed
        custom topology.
    routing:
        A routing name resolved against the topology through
        :mod:`repro.registry` (``"min"``/``"adp"`` on dragonflies,
        ``"dmodk"`` on fat-trees, ``"dor"`` on tori, ...), or a resolved
        component: a ``factory(topo, config, probe, stream_id)``
        callable.  Individual jobs may override it via
        ``Job(routing=...)``.  A name that is not available on the
        topology fails fast with the registry's capability error.
    config:
        Link-level parameters (defaults to the paper's bandwidths).
    placement:
        A placement name (``"rn"``, ``"rr"`` or ``"rg"``) or a registry
        :class:`~repro.registry.PlacementSpec`; policies whose declared
        requirements (group structure, uniform node attachment) the
        topology cannot satisfy fail fast with a clear error.
    seed:
        Master seed for placement shuffles and routing tie-breaks.
    counter_window:
        Window of the per-app router counters (paper: 0.5 ms).
    storage_nodes:
        Compute nodes hosting storage servers; enables the DSL's I/O
        statements and program-level ``IORead``/``IOWrite`` ops
        (Section VII extension).  ``None`` means no storage.
    storage_config:
        :class:`~repro.storage.config.StorageConfig` device parameters.
    telemetry:
        The :class:`~repro.telemetry.Telemetry` session every layer of
        this run records into (fabric instruments, per-job MPI metrics).
        A fresh all-defaults session is created when omitted.
    engine:
        The PDES engine executing the run: an engine name
        (``"sequential"``/``"conservative"``), a parameter table like a
        scenario's ``[engine]`` section (``{"type": "conservative",
        "partitions": 8}``), a ready :class:`~repro.pdes.engine.Engine`
        instance, or ``None`` for the sequential default.  Names/tables
        resolve through :mod:`repro.registry` against this manager's
        topology and link config, fresh per :meth:`run` (engines hold
        per-run LP state); a ready instance is single-use for the same
        reason.
    """

    def __init__(
        self,
        topo: Topology,
        config: NetworkConfig | None = None,
        routing: str = "adp",
        placement: str = "rn",
        seed: int = 0,
        counter_window: float = 0.5e-3,
        storage_nodes: list[int] | None = None,
        storage_config=None,
        telemetry: Telemetry | None = None,
        engine: str | dict | Engine | None = None,
    ) -> None:
        self.topo = topo
        self.config = config or NetworkConfig(seed=seed)
        self.routing = routing
        self.placement = placement
        self.engine = engine
        self.seed = seed
        self.counter_window = counter_window
        self.storage_nodes = list(storage_nodes) if storage_nodes else None
        self.storage_config = storage_config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.jobs: list[Job] = []
        self.fabric: NetworkFabric | None = None
        self.mpi: SimMPI | None = None
        self.storage = None

    # -- job assembly ------------------------------------------------------
    def add_job(self, job: Job) -> "WorkloadManager":
        self.jobs.append(job)
        return self

    def add_skeleton_job(
        self, name: str, nranks: int, params: dict[str, Any] | None = None, job_name: str | None = None
    ) -> "WorkloadManager":
        """Add a job running the registered Union skeleton ``name``."""
        skel = get_skeleton(name)
        return self.add_job(Job(job_name or name, nranks, skeleton=skel, params=params or {}))

    def add_program_job(
        self, name: str, nranks: int, program: Callable, params: dict[str, Any] | None = None
    ) -> "WorkloadManager":
        """Add an SWM-style Python generator job."""
        return self.add_job(Job(name, nranks, program=program, params=params or {}))

    # -- execution -------------------------------------------------------------
    def _skeleton_program(self, job: Job) -> Callable:
        skel = job.skeleton
        assert skel is not None
        resolved = skel.resolve_params(job.params)
        shared = SkeletonShared(job.nranks, self.seed, storage=self.storage)

        def program(ctx):
            api = SimUnionAPI(ctx, shared)
            yield from skel.main(api, resolved)

        return program

    def run(self, until: float = float("inf")) -> RunOutcome:
        """Place jobs, run the co-scheduled simulation, collect metrics.

        Jobs whose ``arrival`` is zero and that carry no per-job
        ``placement`` override are placed together up front (one draw of
        the manager-wide policy, the paper's static co-schedule).  As
        soon as any job has an arrival time or a placement override, the
        manager switches to *dynamic* mode: t=0 jobs are placed one at a
        time, arriving jobs are placed at their arrival instants against
        the residual free-node set, and nodes of finished jobs return to
        the pool.
        """
        if not self.jobs:
            raise RuntimeError("no jobs to run")
        self._validate_components()
        self.fabric = NetworkFabric(
            self.topo,
            self.config,
            routing=self._routing_component(self.routing),
            engine=self._engine_component(),
            counter_window=self.counter_window,
            telemetry=self.telemetry,
        )
        self.mpi = SimMPI(self.fabric)
        if self.storage_nodes:
            from repro.storage.system import StorageSystem

            self.storage = StorageSystem(self.mpi, self.storage_nodes, self.storage_config)
        n = len(self.jobs)
        self._job_nodes: list[list[int] | None] = [None] * n
        self._job_footprint: list[set[int] | None] = [None] * n
        self._job_app: list[int | None] = [None] * n
        self._job_skip: list[str | None] = [None] * n
        self._nodes_by_app: dict[int, set[int]] = {}
        dynamic = any(j.arrival > 0 or j.placement is not None for j in self.jobs)
        if dynamic:
            self._setup_dynamic()
        else:
            self._setup_static()
        end = self.mpi.run(until=until)
        apps = []
        not_started: list[tuple[str, str]] = []
        results = self.mpi.results()
        for i, job in enumerate(self.jobs):
            app_id = self._job_app[i]
            if app_id is None:
                reason = self._job_skip[i] or (
                    f"arrival t={job.arrival:g}s is beyond the end of the "
                    f"simulation (t={end:g}s)"
                )
                not_started.append((job.name, reason))
                self._publish_job_placement(job, started=False)
                continue
            nodes = self._job_nodes[i]
            assert nodes is not None
            routers = {self.topo.router_of_node(n) for n in nodes}
            # Group-less fabrics (torus, fat-tree, slim fly) report an
            # empty group set rather than faking a hierarchy.
            group_of = getattr(self.topo, "group_of", None)
            groups = {group_of(r) for r in routers} if group_of else set()
            apps.append(AppMetrics(
                job.name, app_id, results[app_id], nodes, routers, groups,
                arrival=job.arrival, background=job.background,
            ))
            self._publish_job_placement(job, started=True, nodes=nodes,
                                        routers=routers, groups=groups)
        return RunOutcome(self, apps, end, not_started)

    def _publish_job_placement(
        self,
        job: Job,
        started: bool,
        nodes: list[int] | None = None,
        routers: set[int] | None = None,
        groups: set[int] | None = None,
    ) -> None:
        """Publish scheduler-side job metrics (``mpi.job.<name>.*``).

        Complements :meth:`SimMPI.publish_job_metrics` with what only
        the scheduler knows: whether the job started at all, its
        arrival time, its placement footprint, and whether it is a
        background injector.
        """
        t = self.telemetry
        base = job_key(job.name)
        values = (
            ("started", int(started), "", "1 when the job's ranks launched"),
            ("arrival", job.arrival, "seconds", "requested arrival time"),
            ("background", int(job.background), "",
             "1 for background-traffic injectors"),
            ("n_nodes", len(nodes or ()), "nodes", "nodes the ranks occupy"),
            ("n_routers", len(routers or ()), "routers",
             "distinct routers under the placement"),
            ("n_groups", len(groups or ()), "groups",
             "distinct dragonfly groups under the placement"),
        )
        for metric, value, unit, doc in values:
            t.gauge(f"{base}.{metric}", unit=unit, doc=doc).set(value)

    def _engine_component(self) -> Engine | None:
        """Resolve the ``engine`` argument to what the fabric consumes.

        Names and tables build a *fresh* engine through the registry
        (validated against this manager's topology and link config, so a
        bad partition count fails with the registry's clear error before
        any LP exists); ready instances pass through; ``None`` lets the
        fabric default to a sequential engine.
        """
        e = self.engine
        if e is None or isinstance(e, Engine):
            return e
        if isinstance(e, str):
            e = {"type": e}
        return build_engine(e, self.topo, self.config)

    def _routing_component(self, routing):
        """Resolve a routing argument to what the fabric consumes.

        Names are resolved against the topology through the registry
        (raising the capability-mismatch error when the policy cannot
        run there); factories/policies pass through untouched.  Raw
        duck-typed topologies keep the historical string path (the
        fabric's dragonfly ``make_routing``).
        """
        if not isinstance(routing, str) or spec_for_instance(self.topo) is None:
            return routing
        return resolve_routing(routing, self.topo)

    def _validate_components(self) -> None:
        """Fail fast on topology/routing/placement capability mismatches."""
        # Job names must stay distinct after metric-key folding, or two
        # jobs would publish into one mpi.job.<name>.* namespace and
        # silently overwrite each other's telemetry.
        seen: dict[str, str] = {}
        for job in self.jobs:
            key = job_key(job.name)
            other = seen.setdefault(key, job.name)
            if other != job.name:
                raise ValueError(
                    f"job names {other!r} and {job.name!r} collide on telemetry "
                    f"key {key!r} (dots/whitespace fold to underscores); rename one"
                )
        if isinstance(self.routing, str):
            self._routing_component(self.routing)
        for job in self.jobs:
            if isinstance(job.routing, str):
                self._routing_component(job.routing)
        dynamic = any(j.arrival > 0 or j.placement is not None for j in self.jobs)
        if dynamic:
            effective = {
                _placement_name(j.placement or self.placement) for j in self.jobs
            }
        else:
            effective = {_placement_name(self.placement)}
        for name in sorted(effective):
            check_placement(name, self.topo)

    def _placement_fn(self, name: str):
        """The policy callable behind a placement name.

        Resolution goes through the registry (so placements added via
        ``register_placement`` work here like everywhere else) and
        re-checks the topology's capabilities, which also produces the
        clear error for dynamic per-job overrides.
        """
        return check_placement(name, self.topo).func

    def _job_spec(self, i: int, job: Job, nodes: list[int]) -> JobSpec:
        program = self._skeleton_program(job) if job.skeleton is not None else job.program
        self._job_nodes[i] = nodes
        return JobSpec(job.name, job.nranks, program, nodes, dict(job.params))

    def _record_launch(self, i: int, job: Job, app_id: int) -> None:
        self._job_app[i] = app_id
        # The footprint (whole routers/groups under RR/RG) is what the
        # job occupies and what returns to the pool when it finishes.
        self._nodes_by_app[app_id] = (
            self._job_footprint[i] or set(self._job_nodes[i] or ())
        )
        if job.routing is not None:
            self.fabric.set_app_routing(app_id, self._routing_component(job.routing))

    def _setup_static(self) -> None:
        """Historical path: one placement draw covering every job."""
        fn = self._placement_fn(_placement_name(self.placement).lower())
        placements = fn(self.topo, [j.nranks for j in self.jobs], self.seed)
        for i, (job, nodes) in enumerate(zip(self.jobs, placements)):
            app_id = self.mpi.add_job(self._job_spec(i, job, nodes))
            self._record_launch(i, job, app_id)

    def _setup_dynamic(self) -> None:
        """Arrival-aware path: place per job against the free-node set."""
        self._free: set[int] = set(range(self.topo.n_nodes))
        self.mpi.job_end_callback = self._on_job_end
        for i, job in enumerate(self.jobs):
            if job.arrival <= 0:
                nodes = self._place_one(i, job)  # t=0 jobs must fit: raises
                app_id = self.mpi.add_job(self._job_spec(i, job, nodes))
                self._record_launch(i, job, app_id)
            else:
                self.mpi.submit_job(
                    self._arrival_factory(i, job),
                    arrival=job.arrival,
                    on_launch=lambda app_id, i=i, job=job: self._record_launch(i, job, app_id),
                )

    def _place_one(self, i: int, job: Job) -> list[int]:
        policy = _placement_name(job.placement or self.placement).lower()
        nodes = self._placement_fn(policy)(
            self.topo, [job.nranks], self.seed + i, allowed_nodes=self._free
        )[0]
        # Under RR/RG the job owns its whole routers/groups: reserve the
        # unused tail nodes too, or a later arrival would be co-located
        # inside the "isolated" router/group.
        footprint = set(nodes)
        if policy == "rr":
            for node in nodes:
                footprint.update(self.topo.nodes_of_router(self.topo.router_of_node(node)))
        elif policy == "rg":
            for node in nodes:
                group = self.topo.group_of(self.topo.router_of_node(node))
                footprint.update(self.topo.nodes_of_group(group))
        self._free.difference_update(footprint)
        self._job_footprint[i] = footprint
        return nodes

    def _arrival_factory(self, i: int, job: Job) -> Callable:
        def factory() -> JobSpec | None:
            try:
                nodes = self._place_one(i, job)
            except PlacementError as exc:
                self._job_skip[i] = (
                    f"placement failed at arrival t={job.arrival:g}s: {exc}"
                )
                return None
            return self._job_spec(i, job, nodes)

        return factory

    def _on_job_end(self, result: JobResult) -> None:
        """Return a finished job's nodes to the free pool."""
        self._free.update(self._nodes_by_app.get(result.app_id, ()))
