"""WorkloadManager: co-schedule skeleton and SWM jobs on one network.

The top of the Union stack: give it a topology, a routing algorithm, a
placement policy and a list of jobs (Union skeletons from the registry
or SWM-style Python programs), and it wires up the fabric, maps ranks to
nodes, runs the co-scheduled simulation and returns per-application
metrics plus the fabric's measurement instruments -- everything the
paper's Figures 7-9 and Tables IV-VI consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.mpi.engine import JobResult, JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.fabric import NetworkFabric
from repro.network.topology import Topology
from repro.placement.policies import make_placement
from repro.union.event_generator import SimUnionAPI, SkeletonShared
from repro.union.registry import get_skeleton
from repro.union.skeleton import Skeleton


@dataclass
class Job:
    """One application instance to co-schedule.

    Exactly one of ``skeleton``/``program`` is set: ``skeleton`` runs a
    Union-translated coNCePTuaL application, ``program`` a hand-written
    SWM-style generator ``program(ctx)``.  ``routing`` optionally
    overrides the fabric-wide routing policy for this job's traffic
    (the paper's per-job "routing police").
    """

    name: str
    nranks: int
    skeleton: Skeleton | None = None
    program: Callable | None = None
    params: dict[str, Any] = field(default_factory=dict)
    routing: str | None = None

    def __post_init__(self) -> None:
        if (self.skeleton is None) == (self.program is None):
            raise ValueError(f"job {self.name!r}: set exactly one of skeleton/program")
        if self.nranks < 1:
            raise ValueError(f"job {self.name!r}: nranks must be >= 1")


@dataclass
class AppMetrics:
    """Per-application results joined with its placement."""

    name: str
    app_id: int
    result: JobResult
    nodes: list[int]
    routers: set[int]
    groups: set[int]


class RunOutcome:
    """Everything measured in one co-scheduled simulation."""

    def __init__(self, manager: "WorkloadManager", apps: list[AppMetrics], end_time: float) -> None:
        self.manager = manager
        self.apps = apps
        self.end_time = end_time
        self.fabric = manager.fabric

    def app(self, name: str) -> AppMetrics:
        for a in self.apps:
            if a.name == name:
                return a
        raise KeyError(f"no application named {name!r}; have {[a.name for a in self.apps]}")

    def router_traffic_series(self, serving: str, source: str, horizon: float | None = None):
        """Figure 8 series: bytes/window received by ``serving``'s routers
        from application ``source``."""
        srv = self.app(serving)
        src = self.app(source)
        h = horizon if horizon is not None else self.end_time
        return self.fabric.app_counter.series(srv.routers, src.app_id, h)

    def link_load_summary(self) -> dict[str, float]:
        """Table VI row."""
        return self.fabric.link_loads.summary()


class WorkloadManager:
    """Build and run one hybrid-workload simulation.

    Parameters
    ----------
    topo:
        Network topology instance.
    config:
        Link-level parameters (defaults to the paper's bandwidths).
    routing:
        ``"min"`` or ``"adp"``; the fabric-wide default (the paper's
        placement x routing sweep uses one policy per run).  Individual
        jobs may override it via ``Job(routing=...)``.
    placement:
        ``"rn"``, ``"rr"`` or ``"rg"``.
    seed:
        Master seed for placement shuffles and routing tie-breaks.
    counter_window:
        Window of the per-app router counters (paper: 0.5 ms).
    storage_nodes:
        Compute nodes hosting storage servers; enables the DSL's I/O
        statements and program-level ``IORead``/``IOWrite`` ops
        (Section VII extension).  ``None`` means no storage.
    storage_config:
        :class:`~repro.storage.config.StorageConfig` device parameters.
    """

    def __init__(
        self,
        topo: Topology,
        config: NetworkConfig | None = None,
        routing: str = "adp",
        placement: str = "rn",
        seed: int = 0,
        counter_window: float = 0.5e-3,
        storage_nodes: list[int] | None = None,
        storage_config=None,
    ) -> None:
        self.topo = topo
        self.config = config or NetworkConfig(seed=seed)
        self.routing = routing
        self.placement = placement
        self.seed = seed
        self.counter_window = counter_window
        self.storage_nodes = list(storage_nodes) if storage_nodes else None
        self.storage_config = storage_config
        self.jobs: list[Job] = []
        self.fabric: NetworkFabric | None = None
        self.mpi: SimMPI | None = None
        self.storage = None

    # -- job assembly ------------------------------------------------------
    def add_job(self, job: Job) -> "WorkloadManager":
        self.jobs.append(job)
        return self

    def add_skeleton_job(
        self, name: str, nranks: int, params: dict[str, Any] | None = None, job_name: str | None = None
    ) -> "WorkloadManager":
        """Add a job running the registered Union skeleton ``name``."""
        skel = get_skeleton(name)
        return self.add_job(Job(job_name or name, nranks, skeleton=skel, params=params or {}))

    def add_program_job(
        self, name: str, nranks: int, program: Callable, params: dict[str, Any] | None = None
    ) -> "WorkloadManager":
        """Add an SWM-style Python generator job."""
        return self.add_job(Job(name, nranks, program=program, params=params or {}))

    # -- execution -------------------------------------------------------------
    def _skeleton_program(self, job: Job) -> Callable:
        skel = job.skeleton
        assert skel is not None
        resolved = skel.resolve_params(job.params)
        shared = SkeletonShared(job.nranks, self.seed, storage=self.storage)

        def program(ctx):
            api = SimUnionAPI(ctx, shared)
            yield from skel.main(api, resolved)

        return program

    def run(self, until: float = float("inf")) -> RunOutcome:
        """Place jobs, run the co-scheduled simulation, collect metrics."""
        if not self.jobs:
            raise RuntimeError("no jobs to run")
        placements = make_placement(
            self.placement, self.topo, [j.nranks for j in self.jobs], self.seed
        )
        self.fabric = NetworkFabric(
            self.topo,
            self.config,
            routing=self.routing,
            counter_window=self.counter_window,
        )
        self.mpi = SimMPI(self.fabric)
        if self.storage_nodes:
            from repro.storage.system import StorageSystem

            self.storage = StorageSystem(self.mpi, self.storage_nodes, self.storage_config)
        for job, nodes in zip(self.jobs, placements):
            program = self._skeleton_program(job) if job.skeleton is not None else job.program
            app_id = self.mpi.add_job(
                JobSpec(job.name, job.nranks, program, nodes, dict(job.params))
            )
            if job.routing is not None:
                self.fabric.set_app_routing(app_id, job.routing)
        end = self.mpi.run(until=until)
        apps = []
        for job, nodes, result in zip(self.jobs, placements, self.mpi.results()):
            routers = {self.topo.router_of_node(n) for n in nodes}
            groups = {self.topo.group_of(r) for r in routers}
            apps.append(AppMetrics(job.name, result.app_id, result, nodes, routers, groups))
        return RunOutcome(self, apps, end)
