"""WorkloadManager: co-schedule skeleton and SWM jobs on one network.

The top of the Union stack: give it a topology, a routing algorithm, a
placement policy and a list of jobs (Union skeletons from the registry
or SWM-style Python programs), and it wires up the fabric, maps ranks to
nodes, runs the co-scheduled simulation and returns per-application
metrics plus the fabric's measurement instruments -- everything the
paper's Figures 7-9 and Tables IV-VI consume.

Jobs need not all start at t=0: a :class:`Job` may carry an ``arrival``
time (it is then placed at that simulated instant against the residual
free-node set, reusing nodes of finished jobs), a per-job ``placement``
policy override, and a ``background`` flag marking traffic injectors.
Declarative access to all of this lives in :mod:`repro.scenario`.

Execution is delegated to the session lifecycle
(:class:`~repro.union.session.SimulationSession`): :meth:`WorkloadManager.run`
is ``session().build() -> step(horizon) -> finalize()`` in one call,
while :meth:`WorkloadManager.session` hands out the stepwise form --
advance in windows, ``observe()`` the live state, let a control policy
intervene at the placement/admission/routing decision points.  Managers
are **single-use** (the engine underneath holds per-run LP state): a
second ``run()``/``session()`` raises, and :meth:`reset` explicitly
clears the spent state for deliberate re-runs on a shared telemetry
session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.mpi.engine import JobResult, SimMPI, job_key
from repro.network.config import NetworkConfig
from repro.network.fabric import NetworkFabric
from repro.network.topology import Topology
from repro.pdes.engine import Engine
from repro.registry import (
    build_engine,
    check_placement,
    resolve_routing,
    spec_for_instance,
)
from repro.telemetry import Telemetry
from repro.union.event_generator import SimUnionAPI, SkeletonShared
from repro.union.registry import get_skeleton
from repro.union.session import SimulationSession
from repro.union.skeleton import Skeleton


def _placement_name(placement) -> str:
    """Name of a placement given as a string or a registry spec object."""
    return placement if isinstance(placement, str) else placement.name


@dataclass
class Job:
    """One application instance to co-schedule.

    Exactly one of ``skeleton``/``program`` is set: ``skeleton`` runs a
    Union-translated coNCePTuaL application, ``program`` a hand-written
    SWM-style generator ``program(ctx)``.  ``routing`` optionally
    overrides the fabric-wide routing policy for this job's traffic
    (the paper's per-job "routing police").

    ``arrival`` schedules the job's launch mid-simulation: its ranks are
    placed at that simulated time against the then-free node set (nodes
    of already-finished jobs are reused).  ``placement`` overrides the
    manager-wide policy for this one job.  ``background`` marks traffic
    injectors that load the fabric but are not themselves the measured
    applications (scenario reports separate the two).
    """

    name: str
    nranks: int
    skeleton: Skeleton | None = None
    program: Callable | None = None
    params: dict[str, Any] = field(default_factory=dict)
    routing: str | Callable | None = None  # name or routing factory
    arrival: float = 0.0
    placement: str | Any | None = None  # name or registry PlacementSpec
    background: bool = False

    def __post_init__(self) -> None:
        if (self.skeleton is None) == (self.program is None):
            raise ValueError(f"job {self.name!r}: set exactly one of skeleton/program")
        if self.nranks < 1:
            raise ValueError(f"job {self.name!r}: nranks must be >= 1")
        if self.arrival < 0:
            raise ValueError(f"job {self.name!r}: arrival must be >= 0, got {self.arrival}")


@dataclass
class AppMetrics:
    """Per-application results joined with its placement."""

    name: str
    app_id: int
    result: JobResult
    nodes: list[int]
    routers: set[int]
    groups: set[int]
    arrival: float = 0.0
    background: bool = False


class RunOutcome:
    """Everything measured in one co-scheduled simulation.

    ``not_started`` lists ``(job_name, reason)`` for jobs whose arrival
    never happened inside the horizon, whose placement did not fit the
    free-node set at arrival time, or whose launch the session's
    control policy deferred.
    """

    def __init__(
        self,
        manager: "WorkloadManager",
        apps: list[AppMetrics],
        end_time: float,
        not_started: list[tuple[str, str]] | None = None,
    ) -> None:
        self.manager = manager
        self.apps = apps
        self.end_time = end_time
        self.fabric = manager.fabric
        self.not_started = not_started or []

    def app(self, name: str) -> AppMetrics:
        for a in self.apps:
            if a.name == name:
                return a
        raise KeyError(f"no application named {name!r}; have {[a.name for a in self.apps]}")

    def router_traffic_series(self, serving: str, source: str, horizon: float | None = None):
        """Figure 8 series: bytes/window received by ``serving``'s routers
        from application ``source``."""
        srv = self.app(serving)
        src = self.app(source)
        h = horizon if horizon is not None else self.end_time
        return self.fabric.app_counter.series(srv.routers, src.app_id, h)

    def link_load_summary(self) -> dict[str, float]:
        """Table VI row."""
        return self.fabric.link_loads.summary()

    def __repr__(self) -> str:
        finished = sum(1 for a in self.apps if a.result.finished)
        out = (f"<RunOutcome t={self.end_time:g}s: {len(self.apps)} jobs "
               f"started, {finished} finished")
        if self.not_started:
            out += f", {len(self.not_started)} not started"
        return out + ">"


class WorkloadManager:
    """Build and run one hybrid-workload simulation.

    Parameters
    ----------
    topo:
        Network topology instance -- any registered fabric model
        (dragonfly 1D/2D, fat-tree, torus, slim fly) or a duck-typed
        custom topology.
    routing:
        A routing name resolved against the topology through
        :mod:`repro.registry` (``"min"``/``"adp"`` on dragonflies,
        ``"dmodk"`` on fat-trees, ``"dor"`` on tori, ...), or a resolved
        component: a ``factory(topo, config, probe, stream_id)``
        callable.  Individual jobs may override it via
        ``Job(routing=...)``.  A name that is not available on the
        topology fails fast with the registry's capability error.
    config:
        Link-level parameters (defaults to the paper's bandwidths).
    placement:
        A placement name (``"rn"``, ``"rr"`` or ``"rg"``) or a registry
        :class:`~repro.registry.PlacementSpec`; policies whose declared
        requirements (group structure, uniform node attachment) the
        topology cannot satisfy fail fast with a clear error.
    seed:
        Master seed for placement shuffles and routing tie-breaks.
    counter_window:
        Window of the per-app router counters (paper: 0.5 ms).
    storage_nodes:
        Compute nodes hosting storage servers; enables the DSL's I/O
        statements and program-level ``IORead``/``IOWrite`` ops
        (Section VII extension).  ``None`` means no storage.
    storage_config:
        :class:`~repro.storage.config.StorageConfig` device parameters.
    faults:
        Scheduled fabric/storage faults
        (:class:`~repro.scenario.spec.FaultEntry`-shaped entries); the
        session lowers them onto the engine control plane through a
        :class:`~repro.faults.FaultPlane` at build time.  ``None``/empty
        leaves the run fault-free and bit-identical to before.
    telemetry:
        The :class:`~repro.telemetry.Telemetry` session every layer of
        this run records into (fabric instruments, per-job MPI metrics).
        A fresh all-defaults session is created when omitted.
    engine:
        The PDES engine executing the run: an engine name
        (``"sequential"``/``"conservative"``), a parameter table like a
        scenario's ``[engine]`` section (``{"type": "conservative",
        "partitions": 8}``), a ready :class:`~repro.pdes.engine.Engine`
        instance, or ``None`` for the sequential default.  Names/tables
        resolve through :mod:`repro.registry` against this manager's
        topology and link config, fresh per :meth:`run` (engines hold
        per-run LP state); a ready instance is single-use for the same
        reason.
    """

    def __init__(
        self,
        topo: Topology,
        config: NetworkConfig | None = None,
        routing: str = "adp",
        placement: str = "rn",
        seed: int = 0,
        counter_window: float = 0.5e-3,
        storage_nodes: list[int] | None = None,
        storage_config=None,
        telemetry: Telemetry | None = None,
        engine: str | dict | Engine | None = None,
        faults: list | None = None,
    ) -> None:
        self.topo = topo
        self.config = config or NetworkConfig(seed=seed)
        self.routing = routing
        self.placement = placement
        self.engine = engine
        self.seed = seed
        self.counter_window = counter_window
        self.storage_nodes = list(storage_nodes) if storage_nodes else None
        self.storage_config = storage_config
        self.faults = list(faults) if faults else []
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.jobs: list[Job] = []
        self.fabric: NetworkFabric | None = None
        self.mpi: SimMPI | None = None
        self.storage = None
        self._session: SimulationSession | None = None

    # -- job assembly ------------------------------------------------------
    def add_job(self, job: Job) -> "WorkloadManager":
        self.jobs.append(job)
        return self

    def add_skeleton_job(
        self, name: str, nranks: int, params: dict[str, Any] | None = None, job_name: str | None = None
    ) -> "WorkloadManager":
        """Add a job running the registered Union skeleton ``name``."""
        skel = get_skeleton(name)
        return self.add_job(Job(job_name or name, nranks, skeleton=skel, params=params or {}))

    def add_program_job(
        self, name: str, nranks: int, program: Callable, params: dict[str, Any] | None = None
    ) -> "WorkloadManager":
        """Add an SWM-style Python generator job."""
        return self.add_job(Job(name, nranks, program=program, params=params or {}))

    # -- execution -------------------------------------------------------------
    def _skeleton_program(self, job: Job) -> Callable:
        skel = job.skeleton
        assert skel is not None
        resolved = skel.resolve_params(job.params)
        shared = SkeletonShared(job.nranks, self.seed, storage=self.storage)

        def program(ctx):
            api = SimUnionAPI(ctx, shared)
            yield from skel.main(api, resolved)

        return program

    def session(self, policy=None) -> SimulationSession:
        """Open this manager's (single) session lifecycle.

        ``policy`` resolves through the ``policy`` registry family (a
        name like ``"load-aware"``, a ``{"type": ...}`` table, a ready
        :class:`~repro.union.policy.ControlPolicy`, or ``None`` for the
        scripted baseline).  A manager runs exactly once -- the engine
        underneath holds per-run LP state -- so a second call raises;
        create a fresh manager or call :meth:`reset` to run again.
        """
        if self._session is not None:
            raise RuntimeError(
                "this WorkloadManager already has a session (managers are "
                "single-use: the engine underneath holds per-run LP state); "
                "create a fresh WorkloadManager or call reset() to run again"
            )
        self._session = SimulationSession(self, policy)
        return self._session

    def reset(self) -> "WorkloadManager":
        """Clear the spent run state so this manager can run again.

        The telemetry session, job roster and configuration survive --
        the next run's instruments supersede the finished run's on the
        shared session (``register(replace=True)``), which is the
        supported re-run idiom.  A manager built on a *ready*
        :class:`~repro.pdes.engine.Engine` instance cannot be reset
        (the instance holds spent LP state); pass an engine name/table
        instead, which rebuilds fresh per run.
        """
        if isinstance(self.engine, Engine):
            raise RuntimeError(
                "cannot reset(): this manager was built on a ready Engine "
                "instance, which holds spent per-run LP state; pass an "
                "engine name or table (rebuilt fresh per run) instead"
            )
        self._session = None
        self.fabric = None
        self.mpi = None
        self.storage = None
        return self

    def run(self, until: float = float("inf")) -> RunOutcome:
        """Place jobs, run the co-scheduled simulation, collect metrics.

        Jobs whose ``arrival`` is zero and that carry no per-job
        ``placement`` override are placed together up front (one draw of
        the manager-wide policy, the paper's static co-schedule).  As
        soon as any job has an arrival time or a placement override, the
        manager switches to *dynamic* mode: t=0 jobs are placed one at a
        time, arriving jobs are placed at their arrival instants against
        the residual free-node set, and nodes of finished jobs return to
        the pool.

        One-shot form of the session lifecycle: equivalent to
        ``session().build()``, ``step(until)``, ``finalize()``.
        """
        return self.session().run(until=until)

    def _publish_job_placement(
        self,
        job: Job,
        started: bool,
        nodes: list[int] | None = None,
        routers: set[int] | None = None,
        groups: set[int] | None = None,
    ) -> None:
        """Publish scheduler-side job metrics (``mpi.job.<name>.*``).

        Complements :meth:`SimMPI.publish_job_metrics` with what only
        the scheduler knows: whether the job started at all, its
        arrival time, its placement footprint, and whether it is a
        background injector.
        """
        t = self.telemetry
        base = job_key(job.name)
        values = (
            ("started", int(started), "", "1 when the job's ranks launched"),
            ("arrival", job.arrival, "seconds", "requested arrival time"),
            ("background", int(job.background), "",
             "1 for background-traffic injectors"),
            ("n_nodes", len(nodes or ()), "nodes", "nodes the ranks occupy"),
            ("n_routers", len(routers or ()), "routers",
             "distinct routers under the placement"),
            ("n_groups", len(groups or ()), "groups",
             "distinct dragonfly groups under the placement"),
        )
        for metric, value, unit, doc in values:
            t.gauge(f"{base}.{metric}", unit=unit, doc=doc).set(value)

    def _engine_component(self) -> Engine | None:
        """Resolve the ``engine`` argument to what the fabric consumes.

        Names and tables build a *fresh* engine through the registry
        (validated against this manager's topology and link config, so a
        bad partition count fails with the registry's clear error before
        any LP exists); ready instances pass through; ``None`` lets the
        fabric default to a sequential engine.
        """
        e = self.engine
        if e is None or isinstance(e, Engine):
            return e
        if isinstance(e, str):
            e = {"type": e}
        return build_engine(e, self.topo, self.config)

    def _routing_component(self, routing):
        """Resolve a routing argument to what the fabric consumes.

        Names are resolved against the topology through the registry
        (raising the capability-mismatch error when the policy cannot
        run there); factories/policies pass through untouched.  Raw
        duck-typed topologies keep the historical string path (the
        fabric's dragonfly ``make_routing``).
        """
        if not isinstance(routing, str) or spec_for_instance(self.topo) is None:
            return routing
        return resolve_routing(routing, self.topo)

    def _validate_components(self) -> None:
        """Fail fast on topology/routing/placement capability mismatches."""
        # Job names must stay distinct after metric-key folding, or two
        # jobs would publish into one mpi.job.<name>.* namespace and
        # silently overwrite each other's telemetry.
        seen: dict[str, str] = {}
        for job in self.jobs:
            key = job_key(job.name)
            other = seen.setdefault(key, job.name)
            if other != job.name:
                raise ValueError(
                    f"job names {other!r} and {job.name!r} collide on telemetry "
                    f"key {key!r} (dots/whitespace fold to underscores); rename one"
                )
        if isinstance(self.routing, str):
            self._routing_component(self.routing)
        for job in self.jobs:
            if isinstance(job.routing, str):
                self._routing_component(job.routing)
        dynamic = any(j.arrival > 0 or j.placement is not None for j in self.jobs)
        if dynamic:
            effective = {
                _placement_name(j.placement or self.placement) for j in self.jobs
            }
        else:
            effective = {_placement_name(self.placement)}
        for name in sorted(effective):
            check_placement(name, self.topo)

    def _placement_fn(self, name: str):
        """The policy callable behind a placement name.

        Resolution goes through the registry (so placements added via
        ``register_placement`` work here like everywhere else) and
        re-checks the topology's capabilities, which also produces the
        clear error for dynamic per-job overrides.
        """
        return check_placement(name, self.topo).func
