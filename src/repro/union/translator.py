"""The Union translator: coNCePTuaL AST to skeleton code (Section III-C).

Mirrors the paper's three steps for adding an application:

1. *initialization* -- build a :class:`~repro.union.skeleton.Skeleton`
   object (name + main function) and hand it to the registry;
2. *skeletonization* -- communication buffers become null (the generated
   code carries only byte counts), computation collapses into
   ``UNION_Compute`` delay instructions;
3. *interception* -- every communication operation is rewritten to the
   ``UNION_MPI_*`` message-passing interface of the event generator.

Unlike the original (which subclasses coNCePTuaL's C backend), we emit
Python source, ``compile()`` it, and return the ``union_main`` generator
function.  The generated source is kept on the skeleton for inspection
-- it is the direct analogue of the paper's Figure 5 listing.

Communication-pattern resolution: statements like ``all tasks t sends
... to task f(t)`` require each rank to know who sends to it.  The
generated code delegates to ``u.pattern(...)``, which computes the full
communication matrix for one statement instance once per *job* (not once
per rank) and shares it across ranks -- SPMD control flow guarantees all
ranks reach the same instances in the same order.
"""

from __future__ import annotations

from typing import Any

from repro.conceptual import ast_nodes as A
from repro.conceptual.builtins import FUNCTIONS, c_div, range_seq
from repro.conceptual.errors import SemanticError
from repro.conceptual.evaluator import Env, evaluate
from repro.conceptual.parser import parse
from repro.conceptual.semantics import check
from repro.union.skeleton import Skeleton

_HEADER = '''\
# Auto-generated Union skeleton for {name!r} -- DO NOT EDIT.
#
# Produced by repro.union.translator from the coNCePTuaL source of the
# same name.  Skeletonization applied:
#   * message buffers are null: only byte counts survive;
#   * computation is replaced by UNION_Compute() delay models;
#   * all communication is intercepted via the UNION_MPI_* interface.
def union_main(u, params):
    n = u.num_tasks
    rank = u.rank
'''


class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 1

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def push(self) -> None:
        self.indent += 1

    def pop(self) -> None:
        self.indent -= 1


class _CodeGen:
    def __init__(self, program: A.Program, name: str) -> None:
        self.program = program
        self.name = name
        self.w = _Writer()
        self._loop_id = 0
        self._stmt_id = 0

    # -- expression compilation ----------------------------------------------
    def expr(self, e: A.Expr, rename: dict[str, str] | None = None, task_var: str = "rank") -> str:
        """Compile an expression to Python source.

        ``rename`` maps coNCePTuaL variable names to Python names (used
        for the ``_s``/``_t`` arguments of pattern lambdas);
        ``task_var`` is the Python expression for "the task evaluating
        this", which seeds ``random_task``'s per-task stream.
        """
        rename = rename or {}
        c = lambda sub: self.expr(sub, rename, task_var)  # noqa: E731
        if isinstance(e, A.Num):
            return repr(e.value)
        if isinstance(e, A.Var):
            if e.name == "num_tasks":
                return "n"
            if e.name == "elapsed_usecs":
                return "u.elapsed_usecs()"
            return rename.get(e.name, f"v_{e.name}")
        if isinstance(e, A.UnOp):
            return f"({e.op}{c(e.operand)})"
        if isinstance(e, A.BinOp):
            l, r = c(e.left), c(e.right)
            if e.op == "/":
                return f"_div({l}, {r})"
            if e.op == "mod":
                return f"(({l}) % ({r}))"
            if e.op in (">>", "<<", "&", "|", "^"):
                return f"(int({l}) {e.op} int({r}))"
            return f"(({l}) {e.op} ({r}))"
        if isinstance(e, A.Compare):
            l, r = c(e.left), c(e.right)
            if e.op == "divides":
                return f"((({r}) % ({l})) == 0)"
            op = {"=": "==", "<>": "!="}.get(e.op, e.op)
            return f"(({l}) {op} ({r}))"
        if isinstance(e, A.BoolOp):
            l, r = c(e.left), c(e.right)
            if e.op == "xor":
                return f"(bool({l}) != bool({r}))"
            return f"(({l}) {e.op} ({r}))"
        if isinstance(e, A.Not):
            return f"(not ({c(e.operand)}))"
        if isinstance(e, A.Parity):
            op = "==" if e.even else "!="
            return f"((({c(e.operand)}) % 2) {op} 0)"
        if isinstance(e, A.Call):
            args = ", ".join(c(a) for a in e.args)
            name = e.name.lower()
            if name in ("random_task", "random_uniform"):
                return f"u.random_task_for({task_var}, {args})"
            return f"_fn_{name}({args})"
        raise SemanticError(f"cannot compile expression {type(e).__name__}", getattr(e, "line", -1), 0)

    def _size(self, size: A.Expr, unit: float, rename: dict[str, str] | None = None, task_var: str = "rank") -> str:
        src = self.expr(size, rename, task_var)
        if unit == 1.0:
            return f"int({src})"
        return f"int(({src}) * {unit!r})"

    def _next_loop_var(self) -> str:
        v = f"_i{self._loop_id}"
        self._loop_id += 1
        return v

    def _next_stmt_id(self) -> int:
        sid = self._stmt_id
        self._stmt_id += 1
        return sid

    # -- program -------------------------------------------------------------------
    def generate(self) -> str:
        w = self.w
        for p in self.program.params:
            w.emit(f"v_{p.name} = params.get({p.name!r}, {self.expr(p.default)})")
        for a in self.program.asserts:
            w.emit(f"if not ({self.expr(a.cond)}):")
            w.push()
            w.emit(f"raise AssertionError({a.text!r})")
            w.pop()
        w.emit("yield from u.UNION_MPI_Init()")
        self.seq(self.program.body)
        w.emit("yield from u.UNION_MPI_Finalize()")
        return _HEADER.format(name=self.name) + "\n".join(w.lines) + "\n"

    def seq(self, seq: A.StmtSeq) -> None:
        for stmt in seq.stmts:
            self.stmt(stmt)

    # -- membership conditionals --------------------------------------------------------
    def _open_membership(self, texpr: A.TaskExpr) -> tuple[bool, str | None]:
        """Emit the ``if`` guard for a subject task expression.

        Returns ``(opened_block, binding_var)``; callers must ``pop()``
        when ``opened_block`` is true.
        """
        w = self.w
        if isinstance(texpr, A.AllTasks):
            if texpr.var:
                w.emit(f"v_{texpr.var} = rank")
            return False, texpr.var
        if isinstance(texpr, A.TaskN):
            w.emit(f"if rank == int({self.expr(texpr.expr)}):")
            w.push()
            return True, None
        if isinstance(texpr, A.SuchThat):
            w.emit(f"v_{texpr.var} = rank")
            w.emit(f"if {self.expr(texpr.cond)}:")
            w.push()
            return True, texpr.var
        raise SemanticError(f"unsupported subject {type(texpr).__name__}", texpr.line, 0)

    # -- statements ------------------------------------------------------------------------
    def stmt(self, stmt: A.Stmt) -> None:
        w = self.w
        if isinstance(stmt, A.StmtSeq):
            self.seq(stmt)
        elif isinstance(stmt, A.ForReps):
            v = self._next_loop_var()
            w.emit(f"for {v} in range(int({self.expr(stmt.count)})):")
            w.push()
            self.seq(stmt.body)
            w.pop()
        elif isinstance(stmt, A.ForEach):
            spec = stmt.ranges[0]
            exprs = ", ".join(self.expr(e) for e in spec.exprs)
            if spec.ellipsis_to is None:
                iterable = f"[{exprs}]"
            else:
                iterable = f"_range_seq([{exprs}], {self.expr(spec.ellipsis_to)})"
            w.emit(f"for v_{stmt.var} in {iterable}:")
            w.push()
            self.seq(stmt.body)
            w.pop()
        elif isinstance(stmt, A.While):
            w.emit(f"while {self.expr(stmt.cond)}:")
            w.push()
            self.seq(stmt.body)
            w.pop()
        elif isinstance(stmt, A.If):
            w.emit(f"if {self.expr(stmt.cond)}:")
            w.push()
            self.seq(stmt.then)
            w.pop()
            if stmt.otherwise is not None:
                w.emit("else:")
                w.push()
                self.seq(stmt.otherwise)
                w.pop()
        elif isinstance(stmt, A.Let):
            for name, expr in stmt.bindings:
                w.emit(f"v_{name} = {self.expr(expr)}")
            self.seq(stmt.body)
        elif isinstance(stmt, A.Send):
            self._send(stmt)
        elif isinstance(stmt, A.Receive):
            self._receive(stmt)
        elif isinstance(stmt, A.Multicast):
            w.emit(f"yield from u.UNION_MPI_Bcast({self._size(stmt.size, stmt.unit)}, int({self.expr(stmt.sender.expr)}))")
        elif isinstance(stmt, A.ReduceStmt):
            if isinstance(stmt.target, A.AllTasks):
                w.emit(f"yield from u.UNION_MPI_Allreduce({self._size(stmt.size, stmt.unit)})")
            else:
                w.emit(
                    f"yield from u.UNION_MPI_Reduce({self._size(stmt.size, stmt.unit)}, int({self.expr(stmt.target.expr)}))"
                )
        elif isinstance(stmt, A.Synchronize):
            w.emit("yield from u.UNION_MPI_Barrier()")
        elif isinstance(stmt, A.ResetCounters):
            opened, _ = self._open_membership(stmt.tasks)
            w.emit("u.reset_counters()")
            if opened:
                w.pop()
        elif isinstance(stmt, A.ComputeStmt):
            opened, _ = self._open_membership(stmt.tasks)
            w.emit(f"yield from u.UNION_Compute(({self.expr(stmt.amount)}) * {stmt.unit!r})")
            if opened:
                w.pop()
        elif isinstance(stmt, A.SleepStmt):
            opened, _ = self._open_membership(stmt.tasks)
            w.emit(f"yield from u.UNION_Sleep(({self.expr(stmt.amount)}) * {stmt.unit!r})")
            if opened:
                w.pop()
        elif isinstance(stmt, A.AwaitCompletion):
            opened, _ = self._open_membership(stmt.tasks)
            w.emit("yield from u.UNION_MPI_Waitall()")
            if opened:
                w.pop()
        elif isinstance(stmt, A.LogStmt):
            opened, _ = self._open_membership(stmt.tasks)
            for item in stmt.items:
                agg = repr(item.aggregate)
                w.emit(f"u.log({item.label!r}, ({self.expr(item.expr)}), {agg})")
            if opened:
                w.pop()
        elif isinstance(stmt, A.ComputeAggregates):
            opened, _ = self._open_membership(stmt.tasks)
            w.emit("u.compute_aggregates()")
            if opened:
                w.pop()
        elif isinstance(stmt, A.OutputStmt):
            opened, _ = self._open_membership(stmt.tasks)
            if stmt.text is not None:
                w.emit(f"u.output({stmt.text!r})")
            else:
                w.emit(f"u.output(str({self.expr(stmt.expr)}))")
            if opened:
                w.pop()
        elif isinstance(stmt, A.TouchStmt):
            opened, _ = self._open_membership(stmt.tasks)
            w.emit(f"u.touch({self._size(stmt.size, stmt.unit)})")
            if opened:
                w.pop()
        elif isinstance(stmt, A.IOStmt):
            opened, _ = self._open_membership(stmt.tasks)
            fn = "UNION_IO_Write" if stmt.write else "UNION_IO_Read"
            srv = "None" if stmt.server is None else f"int({self.expr(stmt.server)})"
            w.emit(f"yield from u.{fn}({self._size(stmt.size, stmt.unit)}, {srv})")
            if opened:
                w.pop()
        else:  # pragma: no cover - defensive
            raise SemanticError(f"cannot translate {type(stmt).__name__}", stmt.line, 0)

    # -- point-to-point statements -----------------------------------------------------------
    def _target_spec(self, target: A.TaskExpr, var: str | None) -> str:
        """Compile a target task expression into a pattern-mode tuple."""
        if isinstance(target, A.TaskN):
            body = self.expr(target.expr, rename={var: "_s"} if var else {}, task_var="_s")
            return f"('expr', lambda _s: int({body}))"
        if isinstance(target, A.AllOtherTasks):
            return "('others', None)"
        if isinstance(target, A.AllTasks):
            return "('all', None)"
        if isinstance(target, A.SuchThat):
            body = self.expr(target.cond, rename={target.var: "_t"}, task_var="_t")
            return f"('filter', lambda _t: bool({body}))"
        raise SemanticError(f"unsupported target {type(target).__name__}", target.line, 0)

    def _send(self, stmt: A.Send) -> None:
        w = self.w
        sid = self._next_stmt_id()
        send_call = "UNION_MPI_Send" if stmt.blocking else "UNION_MPI_Isend"
        recv_call = "UNION_MPI_Recv" if stmt.blocking else "UNION_MPI_Irecv"
        sender = stmt.sender
        if isinstance(sender, A.AllTasks):
            pred = "None"
            var = sender.var
        elif isinstance(sender, A.SuchThat):
            body = self.expr(sender.cond, rename={sender.var: "_s"}, task_var="_s")
            pred = f"(lambda _s: bool({body}))"
            var = sender.var
        elif isinstance(sender, A.TaskN):
            body = self.expr(sender.expr)
            pred = f"(lambda _s, _v=int({body}): _s == _v)"
            var = None
        else:
            raise SemanticError(f"unsupported sender {type(sender).__name__}", stmt.line, 0)
        tgt = self._target_spec(stmt.target, var)
        if stmt.count is None:
            cnt = "None"
        else:
            body = self.expr(stmt.count, rename={var: "_s"} if var else {}, task_var="_s")
            cnt = f"(lambda _s: int({body}))"
        w.emit(f"_snd, _rcv = u.pattern({sid}, {pred}, {tgt}, {cnt})")
        if var:
            w.emit(f"v_{var} = rank")
        w.emit("if _snd:")
        w.push()
        w.emit(f"_sz = {self._size(stmt.size, stmt.unit)}")
        w.emit("for _t in _snd:")
        w.push()
        w.emit(f"yield from u.{send_call}(_t, _sz)")
        w.pop()
        w.pop()
        w.emit("for _s in _rcv:")
        w.push()
        w.emit(f"yield from u.{recv_call}(_s)")
        w.pop()

    def _receive(self, stmt: A.Receive) -> None:
        """Explicit receive: post matching receives, no send side."""
        w = self.w
        sid = self._next_stmt_id()
        recv_call = "UNION_MPI_Recv" if stmt.blocking else "UNION_MPI_Irecv"
        receiver = stmt.receiver
        if isinstance(receiver, A.AllTasks):
            pred = "None"
            var = receiver.var
        elif isinstance(receiver, A.SuchThat):
            body = self.expr(receiver.cond, rename={receiver.var: "_s"}, task_var="_s")
            pred = f"(lambda _s: bool({body}))"
            var = receiver.var
        elif isinstance(receiver, A.TaskN):
            body = self.expr(receiver.expr)
            pred = f"(lambda _s, _v=int({body}): _s == _v)"
            var = None
        else:
            raise SemanticError(f"unsupported receiver {type(receiver).__name__}", stmt.line, 0)
        src = self._target_spec(stmt.source, var)
        w.emit(f"_rf, _ = u.pattern({sid}, {pred}, {src}, None)")
        w.emit("for _s in _rf:")
        w.push()
        w.emit(f"yield from u.{recv_call}(_s)")
        w.pop()


def generate_python(program: A.Program, name: str) -> str:
    """Generate Union-skeleton Python source for a checked program."""
    return _CodeGen(program, name).generate()


def _exec_namespace() -> dict[str, Any]:
    ns: dict[str, Any] = {f"_fn_{k}": v[0] for k, v in FUNCTIONS.items()}
    ns["_div"] = c_div
    ns["_range_seq"] = range_seq
    return ns


def translate(source: str, name: str) -> Skeleton:
    """Translate coNCePTuaL source text into a registered-ready Skeleton.

    Runs the full pipeline: lex/parse, semantic check, skeleton code
    generation, compilation.  Parameter defaults are evaluated eagerly
    so callers can inspect/override them.
    """
    program = check(parse(source, name))
    py_src = generate_python(program, name)
    ns = _exec_namespace()
    code = compile(py_src, f"<union-skeleton:{name}>", "exec")
    exec(code, ns)
    base_env = Env({}, num_tasks=1)
    defaults = {p.name: evaluate(p.default, base_env) for p in program.params}
    return Skeleton(
        name=name,
        main=ns["union_main"],
        conceptual_source=source,
        python_source=py_src,
        program=program,
        defaults=defaults,
    )
