"""The session lifecycle: build / step / observe / finalize one run.

This module decomposes the historical monolithic
``WorkloadManager.run()`` into an explicit :class:`SimulationSession`:

* :meth:`SimulationSession.build` wires the fabric, the MPI runtime and
  storage, places the t=0 jobs (through the session's control policy)
  and arms the engine;
* :meth:`SimulationSession.step` advances the committed simulation to
  an absolute time -- repeatedly, in windows, with the same event
  sequence as one monolithic run (the engines' stepping-parity
  contract);
* :meth:`SimulationSession.observe` assembles a versioned
  :class:`Observation` snapshot from the run's telemetry session and
  live fabric state (clock, link loads, per-router queue depths, job
  lifecycle);
* :meth:`SimulationSession.finalize` publishes the end-of-run metrics
  and reduces the :class:`~repro.union.manager.RunOutcome`.

Decision points -- admission, placement of a pending arrival, per-job
routing selection -- are hooks on the session's
:class:`~repro.union.policy.ControlPolicy` (resolved through the
``policy`` registry family).  With the default scripted policy the
session is bit-identical to the pre-session run path; a controller
(e.g. the ``load-aware`` policy, or a ``repro.env`` agent) reads
``observe()`` between steps and intervenes at the hooks.

``WorkloadManager.run()`` is now a thin convenience over this class;
managers are single-use (one session per manager) -- build a fresh
manager or call ``manager.reset()`` to run again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.mpi.engine import SimMPI
from repro.network.fabric import NetworkFabric
from repro.placement.policies import PlacementError
from repro.telemetry.schema import OBSERVATION_SCHEMA
from repro.union.policy import (
    AdmissionRequest,
    ControlPolicy,
    PlacementRequest,
    RoutingRequest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.engine import JobResult, JobSpec
    from repro.union.manager import Job, RunOutcome, WorkloadManager


def _placement_name(placement) -> str:
    return placement if isinstance(placement, str) else placement.name


@dataclass
class Observation:
    """One versioned snapshot of a running session's observable state.

    Assembled by :meth:`SimulationSession.observe` from the run's
    telemetry store and live fabric state; plain data, safe to keep
    after the session advances (lists are copies).  ``to_vector()``
    flattens the numeric fields for box-style observation spaces.
    """

    #: Snapshot format tag (:data:`repro.telemetry.OBSERVATION_SCHEMA`).
    schema: str
    #: Monotonic snapshot counter within the session (1-based).
    version: int
    #: Current simulated time in seconds.
    clock: float
    #: Events committed by the engine so far.
    events: int
    #: Jobs on the manager's roster (measured apps + injectors).
    jobs_total: int
    #: Jobs whose ranks have launched.
    jobs_started: int
    #: Jobs whose last rank finished.
    jobs_finished: int
    #: Names of jobs not yet launched (future arrivals / deferred).
    pending: tuple[str, ...]
    #: ``{job name: "pending" | "skipped" | "running" | "finished"}``.
    job_states: dict[str, str]
    #: Compute nodes currently unoccupied.
    free_nodes: int
    #: Messages injected but not yet fully delivered.
    in_flight: int
    #: Instruments registered in the run's telemetry session.
    n_instruments: int
    #: Link-load roll-up (``global_total_bytes``, ``local_total_bytes``,
    #: ``global_per_link_bytes``, ``local_per_link_bytes``,
    #: ``global_fraction`` -- the Table VI row, live).
    link_summary: dict[str, float]
    #: Cumulative bytes on each router's outgoing links (terminal
    #: deliveries included), indexed by router id.
    router_load: list[float]
    #: Current peak per-port FIFO depth of each router, indexed by
    #: router id (live probe, not a windowed series).
    router_queue: list[int]

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (tuples become lists)."""
        return {
            "schema": self.schema,
            "version": self.version,
            "clock": self.clock,
            "events": self.events,
            "jobs_total": self.jobs_total,
            "jobs_started": self.jobs_started,
            "jobs_finished": self.jobs_finished,
            "pending": list(self.pending),
            "job_states": dict(self.job_states),
            "free_nodes": self.free_nodes,
            "in_flight": self.in_flight,
            "n_instruments": self.n_instruments,
            "link_summary": dict(self.link_summary),
            "router_load": list(self.router_load),
            "router_queue": list(self.router_queue),
        }

    def to_vector(self) -> list[float]:
        """Flat numeric feature vector: the scalar fields in declaration
        order, then per-router load and queue depth.  Length is fixed
        for a fixed topology, matching the env's observation space."""
        return [
            self.clock,
            float(self.events),
            float(self.jobs_total),
            float(self.jobs_started),
            float(self.jobs_finished),
            float(len(self.pending)),
            float(self.free_nodes),
            float(self.in_flight),
            *[float(x) for x in self.router_load],
            *[float(x) for x in self.router_queue],
        ]

    def __repr__(self) -> str:
        return (
            f"<Observation v{self.version} t={self.clock:g}s: "
            f"{self.jobs_started}/{self.jobs_total} jobs started, "
            f"{self.jobs_finished} finished, "
            f"{self.n_instruments} instruments>"
        )


class SimulationSession:
    """One run of a :class:`~repro.union.manager.WorkloadManager`,
    exposed as an explicit build/step/observe/finalize lifecycle.

    Obtained via :meth:`WorkloadManager.session`; sessions (like the
    engines underneath them) are single-use.  ``policy`` is a control
    policy resolved through :mod:`repro.registry.policies` (name, table,
    ready instance, or ``None`` for the scripted baseline).
    """

    def __init__(self, manager: "WorkloadManager",
                 policy: str | dict | ControlPolicy | None = None) -> None:
        from repro.registry import build_policy

        self.manager = manager
        self.policy = build_policy(policy)
        self.fabric: NetworkFabric | None = None
        self.mpi: SimMPI | None = None
        self.storage = None
        self.fault_plane = None
        self._built = False
        self._outcome: "RunOutcome | None" = None
        self._obs_version = 0
        self._free: set[int] = set()

    # -- lifecycle ---------------------------------------------------------
    def build(self) -> "SimulationSession":
        """Wire the fabric/runtime, place t=0 jobs, arm the engine.

        After this the session can :meth:`step` and :meth:`observe`.
        Calling it twice raises: the engine underneath holds per-run LP
        state (build a fresh manager, or ``manager.reset()``).
        """
        if self._built:
            raise RuntimeError(
                "this session is already built (sessions are single-use, "
                "like the engine state they own); create a fresh manager "
                "or call manager.reset() to run again"
            )
        mgr = self.manager
        if not mgr.jobs:
            raise RuntimeError("no jobs to run")
        mgr._validate_components()
        self.policy.bind(self)
        self.fabric = NetworkFabric(
            mgr.topo,
            mgr.config,
            routing=mgr._routing_component(mgr.routing),
            engine=mgr._engine_component(),
            counter_window=mgr.counter_window,
            telemetry=mgr.telemetry,
        )
        self.mpi = SimMPI(self.fabric)
        if mgr.storage_nodes:
            from repro.storage.system import StorageSystem

            self.storage = StorageSystem(self.mpi, mgr.storage_nodes,
                                         mgr.storage_config)
        # Mirror the live stack onto the manager: RunOutcome and every
        # historical caller read ``mgr.fabric`` / ``mgr.mpi``.
        mgr.fabric = self.fabric
        mgr.mpi = self.mpi
        mgr.storage = self.storage
        n = len(mgr.jobs)
        self._job_nodes: list[list[int] | None] = [None] * n
        self._job_footprint: list[set[int] | None] = [None] * n
        self._job_app: list[int | None] = [None] * n
        self._job_skip: list[str | None] = [None] * n
        self._nodes_by_app: dict[int, set[int]] = {}
        self._free = set(range(mgr.topo.n_nodes))
        if mgr.faults:
            from repro.faults import FaultPlane

            self.fault_plane = FaultPlane(mgr.faults, self.fabric,
                                          storage=self.storage, session=self)
            self.fault_plane.install()
        # A policy that may intervene in admission/placement needs the
        # per-job dynamic path even for all-t=0 workloads; the scripted
        # baseline keeps the historical static draw bit for bit.
        dynamic = any(j.arrival > 0 or j.placement is not None for j in mgr.jobs)
        if dynamic or not self.policy.scripted:
            self._setup_dynamic()
        else:
            self._setup_static()
        self.mpi.start()
        # Distributing engines (repro.parallel.mp) need the built model
        # distilled into a worker recipe -- or the reason that is
        # impossible, which becomes their single-process fallback reason.
        engine = self.fabric.engine
        if hasattr(engine, "bind_model_source"):
            from repro.parallel.mp.recipe import extract_recipe

            recipe_blob, reason = extract_recipe(self)
            engine.bind_model_source(self, recipe_blob, reason)
        self._built = True
        return self

    @property
    def engine(self):
        """The run's PDES engine (after :meth:`build`)."""
        assert self.fabric is not None
        return self.fabric.engine

    def _require_built(self, what: str) -> None:
        if not self._built:
            raise RuntimeError(f"cannot {what} before build(): call "
                               "session.build() first")

    def step(self, until: float = float("inf")) -> float:
        """Advance the simulation to absolute time ``until``.

        Resumable: ``step(t1); step(horizon)`` commits the identical
        event sequence as one ``step(horizon)``.  Returns the reached
        simulated time.  Stepping a finalized session raises.
        """
        self._require_built("step")
        if self._outcome is not None:
            raise RuntimeError("session is finalized; create a fresh manager "
                               "or call manager.reset() to run again")
        assert self.mpi is not None
        return self.mpi.step(until=until)

    def observe(self) -> Observation:
        """A fresh versioned :class:`Observation` of the current state.

        Legal as soon as the fabric exists -- policy hooks observe
        *during* ``build()`` when placing t=0 jobs (link loads are
        simply all zero then).
        """
        if self.fabric is None:
            raise RuntimeError("cannot observe before build(): call "
                               "session.build() first")
        assert self.mpi is not None
        mgr = self.manager
        topo = mgr.topo
        self._obs_version += 1
        link_bytes = self.fabric.link_loads.bytes_per_link
        router_load: list[float] = []
        router_queue: list[int] = []
        for r, ports in enumerate(topo.router_ports):
            router_load.append(float(sum(int(link_bytes[p.link_id]) for p in ports)))
            lp = self.fabric.routers[r]
            router_queue.append(max((lp.queue_depth(p.pid) for p in ports),
                                    default=0))
        states: dict[str, str] = {}
        pending: list[str] = []
        started = finished = 0
        for i, job in enumerate(mgr.jobs):
            app_id = self._job_app[i]
            if app_id is None:
                if self._job_skip[i]:
                    states[job.name] = "skipped"
                else:
                    states[job.name] = "pending"
                    pending.append(job.name)
                continue
            started += 1
            if self.mpi.jobs[app_id].finished:
                finished += 1
                states[job.name] = "finished"
            else:
                states[job.name] = "running"
        return Observation(
            schema=OBSERVATION_SCHEMA,
            version=self._obs_version,
            clock=self.engine.now,
            events=self.engine.events_processed,
            jobs_total=len(mgr.jobs),
            jobs_started=started,
            jobs_finished=finished,
            pending=tuple(pending),
            job_states=states,
            free_nodes=len(self._free),
            in_flight=self.fabric.in_flight(),
            n_instruments=len(mgr.telemetry.instruments()),
            link_summary=self.fabric.link_loads.summary(),
            router_load=router_load,
            router_queue=router_queue,
        )

    def finalize(self) -> "RunOutcome":
        """Publish end-of-run metrics and reduce the :class:`RunOutcome`.

        Idempotent: repeated calls return the same outcome object.
        """
        from repro.union.manager import AppMetrics, RunOutcome

        self._require_built("finalize")
        if self._outcome is not None:
            return self._outcome
        assert self.mpi is not None
        mgr = self.manager
        end = self.engine.now
        self.mpi.publish_job_metrics()
        # A distributed engine has merged all worker state by now; its
        # processes only need releasing.
        shutdown = getattr(self.engine, "shutdown_workers", None)
        if shutdown is not None:
            shutdown()
        apps = []
        not_started: list[tuple[str, str]] = []
        results = self.mpi.results()
        for i, job in enumerate(mgr.jobs):
            app_id = self._job_app[i]
            if app_id is None:
                reason = self._job_skip[i] or (
                    f"arrival t={job.arrival:g}s is beyond the end of the "
                    f"simulation (t={end:g}s)"
                )
                not_started.append((job.name, reason))
                mgr._publish_job_placement(job, started=False)
                continue
            nodes = self._job_nodes[i]
            assert nodes is not None
            routers = {mgr.topo.router_of_node(n) for n in nodes}
            # Group-less fabrics (torus, fat-tree, slim fly) report an
            # empty group set rather than faking a hierarchy.
            group_of = getattr(mgr.topo, "group_of", None)
            groups = {group_of(r) for r in routers} if group_of else set()
            apps.append(AppMetrics(
                job.name, app_id, results[app_id], nodes, routers, groups,
                arrival=job.arrival, background=job.background,
            ))
            mgr._publish_job_placement(job, started=True, nodes=nodes,
                                       routers=routers, groups=groups)
        self._outcome = RunOutcome(mgr, apps, end, not_started)
        return self._outcome

    def run(self, until: float = float("inf")) -> "RunOutcome":
        """Convenience: build (if needed), step to ``until``, finalize."""
        if not self._built:
            self.build()
        self.step(until)
        return self.finalize()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = ("finalized" if self._outcome is not None
                 else "built" if self._built else "new")
        return (f"<SimulationSession {state}, policy {self.policy.name!r}, "
                f"{len(self.manager.jobs)} jobs>")

    # -- job placement (scripted draws + policy hooks) ---------------------
    def _job_spec(self, i: int, job: "Job") -> "JobSpec":
        from repro.mpi.engine import JobSpec

        mgr = self.manager
        program = (mgr._skeleton_program(job) if job.skeleton is not None
                   else job.program)
        nodes = self._job_nodes[i]
        assert nodes is not None
        return JobSpec(job.name, job.nranks, program, nodes, dict(job.params))

    def _record_launch(self, i: int, job: "Job", app_id: int) -> None:
        self._job_app[i] = app_id
        # The footprint (whole routers/groups under RR/RG) is what the
        # job occupies and what returns to the pool when it finishes.
        self._nodes_by_app[app_id] = (
            self._job_footprint[i] or set(self._job_nodes[i] or ())
        )
        routing = job.routing
        override = self.policy.route(RoutingRequest(
            job.name, app_id, routing if isinstance(routing, str) else None))
        if override is not None:
            routing = override
        if routing is not None:
            assert self.fabric is not None
            self.fabric.set_app_routing(app_id, self.manager._routing_component(routing))

    def _setup_static(self) -> None:
        """Historical path: one placement draw covering every job."""
        mgr = self.manager
        fn = mgr._placement_fn(_placement_name(mgr.placement).lower())
        placements = fn(mgr.topo, [j.nranks for j in mgr.jobs], mgr.seed)
        for i, (job, nodes) in enumerate(zip(mgr.jobs, placements)):
            self._job_nodes[i] = nodes
            self._free.difference_update(nodes)
            app_id = self.mpi.add_job(self._job_spec(i, job))
            self._record_launch(i, job, app_id)

    def _setup_dynamic(self) -> None:
        """Arrival-aware path: place per job against the free-node set,
        consulting the policy's admission/placement hooks."""
        mgr = self.manager
        self.mpi.job_end_callback = self._on_job_end
        for i, job in enumerate(mgr.jobs):
            if job.arrival <= 0:
                if not self._admitted(i, job):
                    continue
                self._place_one(i, job)  # t=0 jobs must fit: raises
                app_id = self.mpi.add_job(self._job_spec(i, job))
                self._record_launch(i, job, app_id)
            else:
                self.mpi.submit_job(
                    self._arrival_factory(i, job),
                    arrival=job.arrival,
                    on_launch=lambda app_id, i=i, job=job: self._record_launch(i, job, app_id),
                )

    def _admitted(self, i: int, job: "Job") -> bool:
        now = self.engine.now
        ok = self.policy.admit(AdmissionRequest(
            job.name, job.nranks, job.arrival, now, frozenset(self._free)))
        if not ok:
            self._job_skip[i] = (
                f"deferred by policy {self.policy.name!r} at t={now:g}s"
            )
        return ok

    def _place_one(self, i: int, job: "Job") -> list[int]:
        mgr = self.manager
        policy_name = _placement_name(job.placement or mgr.placement).lower()
        chosen = self.policy.place(PlacementRequest(
            job.name, job.nranks, policy_name, job.arrival, self.engine.now,
            frozenset(self._free)))
        if chosen is not None:
            nodes = self._check_policy_nodes(job, chosen)
            # A controller picked exact nodes: reserve those and only
            # those (no RR/RG whole-router expansion -- the controller
            # owns the decision).
            footprint = set(nodes)
        else:
            nodes = mgr._placement_fn(policy_name)(
                mgr.topo, [job.nranks], mgr.seed + i, allowed_nodes=self._free
            )[0]
            # Under RR/RG the job owns its whole routers/groups: reserve
            # the unused tail nodes too, or a later arrival would be
            # co-located inside the "isolated" router/group.
            footprint = set(nodes)
            if policy_name == "rr":
                for node in nodes:
                    footprint.update(
                        mgr.topo.nodes_of_router(mgr.topo.router_of_node(node)))
            elif policy_name == "rg":
                for node in nodes:
                    group = mgr.topo.group_of(mgr.topo.router_of_node(node))
                    footprint.update(mgr.topo.nodes_of_group(group))
        self._free.difference_update(footprint)
        self._job_footprint[i] = footprint
        self._job_nodes[i] = nodes
        return nodes

    def _check_policy_nodes(self, job: "Job", nodes: list[int]) -> list[int]:
        nodes = [int(n) for n in nodes]
        if len(nodes) != job.nranks:
            raise PlacementError(
                f"policy {self.policy.name!r} placed job {job.name!r} on "
                f"{len(nodes)} nodes for {job.nranks} ranks"
            )
        if len(set(nodes)) != len(nodes):
            raise PlacementError(
                f"policy {self.policy.name!r} placed job {job.name!r} on "
                f"duplicate nodes"
            )
        busy = [n for n in nodes if n not in self._free]
        if busy:
            raise PlacementError(
                f"policy {self.policy.name!r} placed job {job.name!r} on "
                f"occupied/unknown node(s) {sorted(busy)[:4]}"
            )
        return nodes

    def _arrival_factory(self, i: int, job: "Job"):
        def factory() -> "JobSpec | None":
            if not self._admitted(i, job):
                return None
            try:
                self._place_one(i, job)
            except PlacementError as exc:
                reason = f"placement failed at arrival t={job.arrival:g}s: {exc}"
                if self.fault_plane is not None:
                    active = self.fault_plane.describe_active()
                    if active:
                        reason += f" (active fault(s): {active})"
                self._job_skip[i] = reason
                return None
            return self._job_spec(i, job)

        return factory

    def _on_job_end(self, result: "JobResult") -> None:
        """Return a finished job's nodes to the free pool.

        Under an active ``router-down`` fault, nodes attached to the
        failed router stay masked (the fault plane captures them and
        releases them at its ``fault_off``)."""
        freed = self._nodes_by_app.get(result.app_id, ())
        if self.fault_plane is not None:
            freed = self.fault_plane.absorb_freed(freed)
        self._free.update(freed)

    # -- fault-plane hooks (placement masking under router-down) -----------
    def fault_mask_nodes(self, nodes: set[int]) -> set[int]:
        """Withhold ``nodes`` from placement; returns the ones actually
        taken (nodes occupied by running jobs are untouched -- their
        jobs run to completion; :meth:`_on_job_end` re-masks them)."""
        taken = nodes & self._free
        self._free -= taken
        return taken

    def fault_unmask_nodes(self, nodes: set[int]) -> None:
        """Return previously masked nodes to the free pool."""
        self._free |= nodes
