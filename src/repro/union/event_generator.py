"""Union event generator: the UNION_MPI_* abstraction layer (Section III-B).

One generated skeleton, two interchangeable backends:

* :class:`SimUnionAPI` emits the skeleton's communication as simulation
  events through a :class:`~repro.mpi.process.RankCtx` -- the in-situ
  workload path that drives CODES-style network simulation;
* :class:`CountingUnionAPI` executes the skeleton standalone, counting
  MPI events, transmitted bytes and control flow -- the validation path
  behind Tables IV/V and Figure 6.

Both share :class:`SkeletonShared`, which resolves communication
patterns ("all tasks t sends ... to task f(t)") once per statement
instance per *job* and shares the result across ranks; entries are
reference-counted and discarded once every rank has consumed them, so
memory stays bounded by the spread between the fastest and slowest rank.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.conceptual.interpreter import ApplicationRun
from repro.mpi.process import RankCtx
from repro.pdes.rng import SplitMix

TargetSpec = tuple[str, Callable[[int], Any] | None]


class SkeletonShared:
    """Per-job shared state: pattern cache and deterministic streams.

    Stream layout matches the application interpreter so that programs
    using ``random_task`` validate bit-for-bit: stream ``r+1`` is rank
    ``r``'s own stream, stream ``n+1+r`` is rank ``r``'s pattern-target
    stream (drawn while resolving communication patterns).
    """

    def __init__(self, n_tasks: int, seed: int = 0, storage=None) -> None:
        if n_tasks < 1:
            raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
        self.n = n_tasks
        self.seed = seed
        self.cache: dict[tuple[int, int], list] = {}
        self.own_rngs = [SplitMix(seed, r + 1) for r in range(n_tasks)]
        self.pattern_rngs = [SplitMix(seed, n_tasks + 1 + r) for r in range(n_tasks)]
        self.in_pattern = False
        #: StorageSystem backing the DSL's I/O statements (None when the
        #: job was launched without storage; I/O statements then raise).
        self.storage = storage

    def compute(self, pred, tgt: TargetSpec, cnt) -> tuple[dict, dict]:
        """Resolve one statement instance into sender/receiver maps."""
        n = self.n
        mode, fn = tgt
        self.in_pattern = True
        try:
            senders = range(n) if pred is None else [s for s in range(n) if pred(s)]
            flt: list[int] | None = None
            if mode == "filter":
                flt = [t for t in range(n) if fn(t)]
            by_sender: dict[int, list[int]] = {}
            by_receiver: dict[int, list[int]] = {}
            for s in senders:
                c = cnt(s) if cnt is not None else 1
                if c <= 0:
                    continue
                if mode == "expr":
                    t0 = fn(s)
                    if t0 < 0:
                        continue  # e.g. mesh_neighbor off the edge
                    if t0 >= n:
                        raise ValueError(f"send target {t0} outside 0..{n - 1}")
                    ts = [t0]
                elif mode == "others":
                    ts = [t for t in range(n) if t != s]
                elif mode == "all":
                    ts = list(range(n))
                elif mode == "filter":
                    ts = flt  # type: ignore[assignment]
                else:
                    raise ValueError(f"unknown target mode {mode!r}")
                for t in ts:
                    by_sender.setdefault(s, []).extend([t] * c)
                    by_receiver.setdefault(t, []).extend([s] * c)
            return by_sender, by_receiver
        finally:
            self.in_pattern = False


class UnionAPIBase:
    """State and helpers common to both event-generator backends."""

    def __init__(self, rank: int, shared: SkeletonShared) -> None:
        self.rank = rank
        self.num_tasks = shared.n
        self.shared = shared
        self._inst: dict[int, int] = {}
        self._outstanding: list = []
        self.outputs: list[str] = []

    # -- communication-pattern resolution --------------------------------
    def pattern(self, sid: int, pred, tgt: TargetSpec, cnt) -> tuple[list[int], list[int]]:
        """Targets this rank sends to / sources it receives from, for the
        current instance of statement ``sid``."""
        idx = self._inst.get(sid, 0)
        self._inst[sid] = idx + 1
        key = (sid, idx)
        entry = self.shared.cache.get(key)
        if entry is None:
            by_sender, by_receiver = self.shared.compute(pred, tgt, cnt)
            entry = [by_sender, by_receiver, self.shared.n]
            self.shared.cache[key] = entry
        entry[2] -= 1
        if entry[2] == 0:
            del self.shared.cache[key]
        return entry[0].get(self.rank, []), entry[1].get(self.rank, [])

    def random_task_for(self, task: int, lo, hi) -> int:
        """Deterministic ``random_task`` draw on ``task``'s stream."""
        lo, hi = int(lo), int(hi)
        if hi < lo:
            raise ValueError(f"random_task: empty range [{lo}, {hi}]")
        rngs = self.shared.pattern_rngs if self.shared.in_pattern else self.shared.own_rngs
        return lo + rngs[task].randint(hi - lo + 1)

    # -- trivial hooks shared by backends ----------------------------------
    def compute_aggregates(self) -> None:
        """coNCePTuaL's "computes aggregates" -- aggregation is lazy here."""

    def output(self, text: str) -> None:
        self.outputs.append(text)

    def touch(self, nbytes: int) -> None:
        """Memory touch: skeletonized away (buffers are null)."""


class SimUnionAPI(UnionAPIBase):
    """Backend that emits skeleton communication as simulation events.

    Wraps a :class:`RankCtx`; every UNION_MPI_* call turns into real
    point-to-point traffic on the simulated fabric (collectives expand
    through the MPI layer's algorithms).
    """

    def __init__(self, ctx: RankCtx, shared: SkeletonShared) -> None:
        super().__init__(ctx.rank, shared)
        self.ctx = ctx

    # -- lifecycle ------------------------------------------------------------
    def UNION_MPI_Init(self):
        self.ctx.stats.count("MPI_Init")
        return ()

    def UNION_MPI_Finalize(self):
        self.ctx.stats.count("MPI_Finalize")
        return ()

    # -- point-to-point ----------------------------------------------------------
    def UNION_MPI_Send(self, dst: int, nbytes: int):
        return self.ctx.send(dst, nbytes, tag=0)

    def UNION_MPI_Recv(self, src: int):
        return self.ctx.recv(src, tag=0)

    def UNION_MPI_Isend(self, dst: int, nbytes: int):
        req = yield self.ctx.isend(dst, nbytes, tag=0)
        self._outstanding.append(req)

    def UNION_MPI_Irecv(self, src: int):
        req = yield self.ctx.irecv(src, tag=0)
        self._outstanding.append(req)

    def UNION_MPI_Waitall(self):
        if self._outstanding:
            yield self.ctx.waitall(self._outstanding)
            self._outstanding = []

    # -- collectives -----------------------------------------------------------------
    def UNION_MPI_Barrier(self):
        return self.ctx.barrier()

    def UNION_MPI_Bcast(self, nbytes: int, root: int):
        return self.ctx.bcast(nbytes, root)

    def UNION_MPI_Reduce(self, nbytes: int, root: int):
        return self.ctx.reduce(nbytes, root)

    def UNION_MPI_Allreduce(self, nbytes: int):
        return self.ctx.allreduce(nbytes)

    # -- I/O (Section VII extension) ---------------------------------------------------
    def _resolve_server(self, server: int | None) -> int:
        storage = self.shared.storage
        if storage is None:
            raise RuntimeError(
                "skeleton issues I/O but the job has no storage attached "
                "(pass storage_nodes= to WorkloadManager)"
            )
        n_srv = len(storage.servers)
        return (self.rank if server is None else int(server)) % n_srv

    def UNION_IO_Write(self, nbytes: int, server: int | None = None):
        from repro.storage.ops import write_file

        sid = self._resolve_server(server)
        yield from write_file(self.ctx, self.shared.storage, sid, nbytes)

    def UNION_IO_Read(self, nbytes: int, server: int | None = None):
        from repro.storage.ops import read_file

        sid = self._resolve_server(server)
        yield from read_file(self.ctx, self.shared.storage, sid, nbytes)

    # -- computation / bookkeeping ------------------------------------------------------
    def UNION_Compute(self, seconds: float):
        yield self.ctx.compute(seconds)

    def UNION_Sleep(self, seconds: float):
        yield self.ctx.sleep(seconds)

    def reset_counters(self) -> None:
        self.ctx.reset_counters()

    def elapsed_usecs(self) -> float:
        return self.ctx.elapsed_usecs

    def log(self, label: str, value: float, aggregate: str | None = None) -> None:
        self.ctx.log(label, value)


class CountingUnionAPI(UnionAPIBase):
    """Backend that executes a skeleton standalone, counting everything.

    Shares :class:`~repro.conceptual.interpreter.ApplicationRun` with the
    application interpreter so validation compares like with like.  The
    byte-accounting rules are identical by construction: sends charge the
    sender, bcasts the root, allreduces every rank, reduces every
    non-root rank.  Note ``ApplicationRun.buffer_bytes`` stays zero here
    -- the skeleton allocates no communication buffers, which *is* the
    memory-footprint claim of Table I.
    """

    def __init__(self, rank: int, shared: SkeletonShared, run: ApplicationRun) -> None:
        super().__init__(rank, shared)
        self.run = run

    # -- lifecycle ------------------------------------------------------------
    def UNION_MPI_Init(self):
        self.run.count_rank("MPI_Init", self.rank)
        self.run.trace("MPI_Init", self.rank)
        return ()

    def UNION_MPI_Finalize(self):
        self.run.count_rank("MPI_Finalize", self.rank)
        self.run.trace("MPI_Finalize", self.rank)
        return ()

    # -- point-to-point ----------------------------------------------------------
    def UNION_MPI_Send(self, dst: int, nbytes: int):
        self.run.count_rank("MPI_Send", self.rank)
        self.run.bytes_sent[self.rank] += nbytes
        self.run.trace("MPI_Send", self.rank)
        return ()

    def UNION_MPI_Recv(self, src: int):
        self.run.count_rank("MPI_Recv", self.rank)
        self.run.trace("MPI_Recv", self.rank)
        return ()

    def UNION_MPI_Isend(self, dst: int, nbytes: int):
        self.run.count_rank("MPI_Isend", self.rank)
        self.run.bytes_sent[self.rank] += nbytes
        self.run.trace("MPI_Isend", self.rank)
        self._outstanding.append(None)
        return ()

    def UNION_MPI_Irecv(self, src: int):
        self.run.count_rank("MPI_Irecv", self.rank)
        self.run.trace("MPI_Irecv", self.rank)
        self._outstanding.append(None)
        return ()

    def UNION_MPI_Waitall(self):
        if self._outstanding:
            self.run.count_rank("MPI_Waitall", self.rank)
            self.run.trace("MPI_Waitall", self.rank)
            self._outstanding = []
        return ()

    # -- collectives -----------------------------------------------------------------
    def UNION_MPI_Barrier(self):
        self.run.count_rank("MPI_Barrier", self.rank)
        self.run.trace("MPI_Barrier", self.rank)
        return ()

    def UNION_MPI_Bcast(self, nbytes: int, root: int):
        self.run.count_rank("MPI_Bcast", self.rank)
        self.run.trace("MPI_Bcast", self.rank)
        if self.rank == root:
            self.run.bytes_sent[self.rank] += nbytes
        return ()

    def UNION_MPI_Reduce(self, nbytes: int, root: int):
        self.run.count_rank("MPI_Reduce", self.rank)
        self.run.trace("MPI_Reduce", self.rank)
        if self.rank != root:
            self.run.bytes_sent[self.rank] += nbytes
        return ()

    def UNION_MPI_Allreduce(self, nbytes: int):
        self.run.count_rank("MPI_Allreduce", self.rank)
        self.run.trace("MPI_Allreduce", self.rank)
        self.run.bytes_sent[self.rank] += nbytes
        return ()

    # -- I/O (Section VII extension) ---------------------------------------------------
    def UNION_IO_Write(self, nbytes: int, server: int | None = None):
        self.run.count_rank("IO_Write", self.rank)
        self.run.trace("IO_Write", self.rank)
        self.run.bytes_io[self.rank] += nbytes
        return ()

    def UNION_IO_Read(self, nbytes: int, server: int | None = None):
        self.run.count_rank("IO_Read", self.rank)
        self.run.trace("IO_Read", self.rank)
        self.run.bytes_io[self.rank] += nbytes
        return ()

    # -- computation / bookkeeping ------------------------------------------------------
    def UNION_Compute(self, seconds: float):
        self.run.clock[self.rank] += seconds
        return ()

    def UNION_Sleep(self, seconds: float):
        self.run.clock[self.rank] += seconds
        return ()

    def reset_counters(self) -> None:
        self.run.epoch[self.rank] = self.run.clock[self.rank]

    def elapsed_usecs(self) -> float:
        return (self.run.clock[self.rank] - self.run.epoch[self.rank]) * 1e6

    def log(self, label: str, value: float, aggregate: str | None = None) -> None:
        self.run.logs.setdefault((self.rank, label), []).append(float(value))


def run_skeleton_counting(
    skeleton,
    n_tasks: int,
    params: dict[str, Any] | None = None,
    seed: int = 0,
    record_trace: bool = False,
) -> ApplicationRun:
    """Execute a Union skeleton in counting mode across ``n_tasks`` ranks.

    Rank generators run to exhaustion one after another (control flow is
    data-independent, so sequential execution is exact for counting).
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    resolved = skeleton.resolve_params(params)
    run = ApplicationRun(n_tasks, record_trace)
    shared = SkeletonShared(n_tasks, seed)
    for rank in range(n_tasks):
        api = CountingUnionAPI(rank, shared, run)
        for _ in skeleton.main(api, resolved):  # pragma: no branch
            raise AssertionError(
                "counting backend must not yield simulation operations"
            )
    return run
