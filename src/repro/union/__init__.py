"""Union: automatic workload manager for the network simulation (Section III).

The paper's contribution, reimplemented in full:

* :mod:`repro.union.translator` -- compiles a coNCePTuaL program into a
  *Union skeleton*: generated Python source in which communication
  buffers are nulled (only sizes remain), computation is replaced by
  ``UNION_Compute`` delay models, and every communication call is
  intercepted through the ``UNION_MPI_*`` interface (Figure 5);
* :mod:`repro.union.skeleton` / :mod:`repro.union.registry` -- the
  skeleton object and the list of available skeletons (Figure 4);
* :mod:`repro.union.event_generator` -- the abstraction layer that lets
  skeletons run as pluggable in-situ workloads: one backend drives the
  packet-level simulation, another executes in counting mode for
  validation;
* :mod:`repro.union.manager` -- co-schedules multiple skeleton and
  SWM-style jobs on one simulated network with per-job placement;
* :mod:`repro.union.validation` -- the Section V methodology: compare a
  skeleton against the full application (event counts, bytes per rank,
  control flow).
"""

from repro.union.skeleton import Skeleton
from repro.union.translator import translate, generate_python
from repro.union.registry import register_skeleton, get_skeleton, available_skeletons, clear_registry
from repro.union.event_generator import SimUnionAPI, CountingUnionAPI, SkeletonShared, run_skeleton_counting
from repro.union.manager import WorkloadManager, Job
from repro.union.validation import validate_skeleton, ValidationReport

__all__ = [
    "Skeleton",
    "translate",
    "generate_python",
    "register_skeleton",
    "get_skeleton",
    "available_skeletons",
    "clear_registry",
    "SimUnionAPI",
    "CountingUnionAPI",
    "SkeletonShared",
    "run_skeleton_counting",
    "WorkloadManager",
    "Job",
    "validate_skeleton",
    "ValidationReport",
]
