"""The Union skeleton object (paper Figure 4).

A skeleton bundles the program name, the entry point of the generated
code, and enough provenance (original coNCePTuaL source, generated
Python source, parameter defaults) to validate and re-deploy it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.conceptual import ast_nodes as A


@dataclass
class Skeleton:
    """One translated application, ready for in-situ simulation.

    Attributes
    ----------
    name:
        Program name (registry key).
    main:
        ``union_main(u, params)`` generator function produced by the
        translator; ``u`` is a Union event-generator API object.
    conceptual_source:
        The original coNCePTuaL program text.
    python_source:
        The generated skeleton source (Figure 5 analogue).
    program:
        The parsed/checked AST the skeleton was generated from.
    defaults:
        Evaluated command-line parameter defaults.
    """

    name: str
    main: Callable[..., Any]
    conceptual_source: str
    python_source: str
    program: A.Program
    defaults: dict[str, Any] = field(default_factory=dict)

    def resolve_params(self, overrides: dict[str, Any] | None = None) -> dict[str, Any]:
        """Merge parameter overrides onto the declared defaults."""
        params = dict(self.defaults)
        if overrides:
            unknown = set(overrides) - set(params)
            if unknown:
                raise ValueError(
                    f"skeleton {self.name!r} has no parameters {sorted(unknown)}; "
                    f"declared: {sorted(params)}"
                )
            params.update(overrides)
        return params

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Skeleton({self.name!r}, params={sorted(self.defaults)})"
