"""Control policies: pluggable decision hooks on the session lifecycle.

Every decision the workload manager used to bake in before ``run()`` --
where an arriving job's ranks land, whether it launches at all, which
routing its traffic uses -- is now a *hook* on a
:class:`ControlPolicy`, invoked by the
:class:`~repro.union.session.SimulationSession` at the simulated
instant the decision is due.  A hook that declines (returns ``None`` /
``True``) falls through to the scripted behaviour, so the default
:class:`ScriptedPolicy` is bit-identical to the historical run path:
the existing ``rn``/``rr``/``rg`` placement draws *are* its scripted
baselines.

Policies resolve by name through the ``policy`` registry family
(:mod:`repro.registry.policies`) -- ``"scripted"``, ``"load-aware"``,
``"admission"`` -- exactly like topologies, routings and engines; the
``repro.env`` control surface and the scenario ``[env]`` table build on
the same roster.

Hook contract (all optional; the base class declines everything):

``admit(AdmissionRequest) -> bool``
    ``False`` defers the launch: the job lands in ``not_started`` with
    a reason naming the policy.  Called before any placement draw.
``place(PlacementRequest) -> list[int] | None``
    Explicit node ids for the job's ranks (must be free, one per rank);
    ``None`` falls through to the scripted placement draw.
``route(RoutingRequest) -> str | None``
    A routing name overriding the job's configured routing; ``None``
    keeps it.

A policy that may intervene in placement/admission forces the session
onto the *dynamic* (arrival-aware) placement path even for all-t=0
workloads; scripted policies declare ``scripted = True`` and keep the
historical static path, preserving placement draws bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.union.session import SimulationSession


@dataclass(frozen=True)
class AdmissionRequest:
    """Should this job launch now?  (``admit`` hook input.)"""

    job: str
    nranks: int
    arrival: float  # requested arrival time (0 for t=0 jobs)
    now: float  # current simulated time
    free_nodes: frozenset[int]


@dataclass(frozen=True)
class PlacementRequest:
    """Where should this job's ranks land?  (``place`` hook input.)"""

    job: str
    nranks: int
    policy: str  # placement name the scripted draw would use
    arrival: float
    now: float
    free_nodes: frozenset[int]


@dataclass(frozen=True)
class RoutingRequest:
    """Which routing should this job's traffic use?  (``route`` hook input.)"""

    job: str
    app_id: int
    routing: str | None  # the job's configured routing override, if any


class ControlPolicy:
    """Base policy: every hook declines, yielding the scripted run.

    Subclasses override any subset of :meth:`admit` / :meth:`place` /
    :meth:`route`.  The session calls :meth:`bind` once at ``build()``;
    hooks may then read the live state through
    ``self.session.observe()`` (link loads, per-router queue depths,
    job lifecycle) -- that is the whole point of the step/observe
    refactor.
    """

    #: Registry name (set on instances built through the registry).
    name = "policy"
    #: ``True`` for policies that never intervene in admission or
    #: placement: the session then keeps the historical *static*
    #: placement path for all-t=0 workloads, so draws stay bit-identical
    #: to the pre-session manager.
    scripted = False

    def __init__(self) -> None:
        self.session: "SimulationSession | None" = None

    def bind(self, session: "SimulationSession") -> None:
        self.session = session

    # -- decision hooks ----------------------------------------------------
    def admit(self, req: AdmissionRequest) -> bool:
        return True

    def place(self, req: PlacementRequest) -> list[int] | None:
        return None

    def route(self, req: RoutingRequest) -> str | None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class ScriptedPolicy(ControlPolicy):
    """The baseline: replay the configured placement/routing verbatim.

    Wraps the existing registry placements (``rn``/``rr``/``rg``/...)
    as scripted draws -- with this policy (or no policy at all) a
    session commits the identical placement, event sequence and metrics
    as the monolithic ``WorkloadManager.run()`` always did.
    """

    name = "scripted"
    scripted = True


class LoadAwarePolicy(ControlPolicy):
    """Place arrivals on the routers with the least observed traffic.

    At each placement decision the policy reads the session's
    observation (cumulative outgoing bytes per router, assembled from
    the fabric's link-load accounting) and fills the job's ranks from
    the free nodes of the least-loaded routers, ties broken by router
    id.  Against a hotspot background this measurably steers arriving
    jobs away from the hot routers -- the pinned behavioural test of
    the policy family.  Falls back to the scripted draw when fewer
    free nodes than ranks exist (the scripted path then reports the
    placement failure).
    """

    name = "load-aware"

    def place(self, req: PlacementRequest) -> list[int] | None:
        assert self.session is not None, "policy used before bind()"
        if len(req.free_nodes) < req.nranks:
            return None
        obs = self.session.observe()
        topo = self.session.manager.topo
        by_router: dict[int, list[int]] = {}
        for node in req.free_nodes:
            by_router.setdefault(topo.router_of_node(node), []).append(node)
        load = obs.router_load
        order = sorted(by_router, key=lambda r: (load[r], r))
        nodes: list[int] = []
        for r in order:
            for node in sorted(by_router[r]):
                nodes.append(node)
                if len(nodes) == req.nranks:
                    return nodes
        return None  # pragma: no cover - guarded by the free-node check


class AdmissionPolicy(ControlPolicy):
    """Defer arrivals when the machine is too full.

    Declines a launch whenever fewer than ``min_free`` nodes are free
    at the decision instant (after reserving the job's own ranks) --
    the simplest useful admission controller, and the built-in
    exerciser of the ``admit`` hook.  ``min_free = 0`` admits
    everything.
    """

    name = "admission"

    def __init__(self, min_free: int = 0) -> None:
        super().__init__()
        self.min_free = min_free

    def admit(self, req: AdmissionRequest) -> bool:
        return len(req.free_nodes) - req.nranks >= self.min_free
