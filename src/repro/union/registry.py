"""Registry of available Union skeletons (paper Figure 4).

The original Union keeps a C array of skeleton objects compiled into
CODES; here the registry is a process-level dict that the workload
manager consults by name.  Registration happens automatically when a
source is translated through :func:`register_source`.
"""

from __future__ import annotations

from repro.union.skeleton import Skeleton
from repro.union.translator import translate

_REGISTRY: dict[str, Skeleton] = {}


def register_skeleton(skeleton: Skeleton, replace: bool = False) -> Skeleton:
    """Add a skeleton to the available list; returns it for chaining."""
    if skeleton.name in _REGISTRY and not replace:
        raise ValueError(
            f"skeleton {skeleton.name!r} is already registered; pass replace=True to overwrite"
        )
    _REGISTRY[skeleton.name] = skeleton
    return skeleton


def register_source(source: str, name: str, replace: bool = False) -> Skeleton:
    """Translate coNCePTuaL source and register the resulting skeleton."""
    return register_skeleton(translate(source, name), replace=replace)


def get_skeleton(name: str) -> Skeleton:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no skeleton named {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_skeletons() -> list[str]:
    return sorted(_REGISTRY)


def clear_registry() -> None:
    """Forget all registered skeletons (used by tests)."""
    _REGISTRY.clear()
