"""Property-based fuzzing of the simulator (``union-sim fuzz``).

Sweeps generated scenarios (:mod:`repro.generate`) over a seed range
and checks every run against the named invariant roster -- byte
conservation, no stuck jobs, determinism, engine parity, monotone
clocks (:mod:`repro.fuzz.invariants`).  Failing cases are shrunk to a
minimal TOML reproduction (:mod:`repro.fuzz.harness`).
"""

from repro.fuzz.harness import (
    FuzzCase,
    FuzzReport,
    check_mapping,
    fuzz_seeds,
    render_fuzz_report,
    shrink_mapping,
)
from repro.fuzz.invariants import INVARIANTS, FuzzContext

__all__ = [
    "FuzzCase",
    "FuzzContext",
    "FuzzReport",
    "INVARIANTS",
    "check_mapping",
    "fuzz_seeds",
    "render_fuzz_report",
    "shrink_mapping",
]
