"""Seed-sweep fuzzing: generate, run, check, shrink.

:func:`fuzz_seeds` drives one generator over a contiguous seed range,
checks every :data:`~repro.fuzz.invariants.INVARIANTS` property on each
generated scenario (fanning cases across a process pool via the batch
runner's :func:`~repro.scenario.batch.pool_map`), and greedily shrinks
every failing case to a minimal TOML reproduction on disk -- the
artifact a human (or CI) picks up to debug.

Shrinking is classic delta-debugging greed: repeatedly try dropping one
traffic entry, one fault, one job (never the last) or halving the
horizon, keeping any candidate that still fails some invariant.
Candidates that no longer *parse* are rejected -- an invalid spec is
not a smaller reproduction, it is a different bug.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.generate import generate_mapping
from repro.scenario import ScenarioError, dump_toml, pool_map
from repro.fuzz.invariants import INVARIANTS, FuzzContext

#: Floor below which the shrinker stops halving the horizon.
_MIN_HORIZON = 1e-4


@dataclass
class FuzzCase:
    """Outcome of one fuzzed seed."""

    seed: int
    name: str
    violations: list[str]
    parity_checked: bool
    #: The generated scenario mapping (kept for shrinking/repros).
    mapping: dict[str, Any] = field(repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class FuzzReport:
    """One ``fuzz_seeds`` sweep, as plain data."""

    generator: str
    base_seed: int
    seeds: int
    cases: list[FuzzCase]
    #: Failing seed -> path of the shrunken TOML repro (when written).
    repros: dict[int, str] = field(default_factory=dict)

    @property
    def failures(self) -> list[FuzzCase]:
        return [c for c in self.cases if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "generator": self.generator,
            "base_seed": self.base_seed,
            "seeds": self.seeds,
            "failures": len(self.failures),
            "invariants": list(INVARIANTS),
            "cases": [
                {"seed": c.seed, "name": c.name, "ok": c.ok,
                 "parity_checked": c.parity_checked,
                 "violations": list(c.violations)}
                for c in self.cases
            ],
            "repros": {str(s): p for s, p in self.repros.items()},
        }


def check_mapping(mapping: Mapping[str, Any], parity: bool = False,
                  invariants: "Mapping[str, Callable] | None" = None) -> list[str]:
    """Every invariant violation one scenario mapping exhibits.

    A check that *raises* is itself recorded as a violation -- a
    crashing simulation is precisely what fuzzing exists to catch --
    except for :class:`ScenarioError`, which propagates: the mapping
    never made it into a simulation.
    """
    ctx = FuzzContext(mapping, parity=parity)
    violations = []
    for name, check in (invariants or INVARIANTS).items():
        try:
            violations.extend(f"{name}: {v}" for v in check(ctx))
        except ScenarioError:
            raise
        except Exception as exc:  # noqa: BLE001 - the point of fuzzing
            violations.append(f"{name}: raised {type(exc).__name__}: {exc}")
    return violations


def _fuzz_case(args: tuple) -> dict[str, Any]:
    """Pool worker: generate one seed's scenario and check it."""
    generator, seed, parity = args
    mapping = generate_mapping(generator, seed)
    return {
        "seed": seed,
        "name": mapping.get("name", f"fuzz-{seed}"),
        "parity": parity,
        "mapping": mapping,
        "violations": check_mapping(mapping, parity=parity),
    }


def _crashed_case(args: tuple) -> dict[str, Any]:
    """A seed whose worker process died is a *failing* case, not a
    hole in the sweep (the crash is precisely what fuzzing hunts)."""
    generator, seed, parity = args
    return {
        "seed": seed,
        "name": f"fuzz-{seed}",
        "parity": parity,
        "mapping": {},
        "violations": ["worker process died while checking this seed "
                       "(killed or out of memory)"],
    }


# -- shrinking ---------------------------------------------------------------

def _shrink_candidates(mapping: dict[str, Any]):
    """Smaller mappings to try, most-aggressive-first."""
    for key in ("traffic", "faults", "jobs"):
        entries = mapping.get(key, [])
        floor = 1 if key == "jobs" else 0
        for i in range(len(entries)):
            if len(entries) <= floor:
                break
            cand = copy.deepcopy(mapping)
            del cand[key][i]
            if key in ("traffic", "faults") and not cand[key]:
                del cand[key]
                if key == "faults":
                    cand.pop("storage", None)
            yield cand
    horizon = mapping.get("horizon")
    if isinstance(horizon, float) and horizon / 2 >= _MIN_HORIZON:
        cand = copy.deepcopy(mapping)
        cand["horizon"] = horizon / 2
        yield cand


def _still_fails(mapping: dict[str, Any], parity: bool,
                 invariants: "Mapping[str, Callable] | None") -> bool:
    try:
        return bool(check_mapping(mapping, parity=parity,
                                  invariants=invariants))
    except ScenarioError:
        # Shrinking made the spec invalid: reject the candidate.
        return False


def shrink_mapping(mapping: Mapping[str, Any], parity: bool = False,
                   max_steps: int = 200,
                   invariants: "Mapping[str, Callable] | None" = None) -> dict[str, Any]:
    """Greedily reduce a failing mapping while it keeps failing.

    ``invariants`` restricts the per-candidate re-check (normally to the
    invariants that failed originally -- re-proving the passing ones on
    every candidate would multiply the shrink cost for nothing).
    """
    current = copy.deepcopy(dict(mapping))
    for _ in range(max_steps):
        for cand in _shrink_candidates(current):
            if _still_fails(cand, parity, invariants):
                current = cand
                break
        else:
            return current
    return current


# -- the sweep ---------------------------------------------------------------

def fuzz_seeds(
    generator: "str | Mapping[str, Any]" = "random-mix",
    seeds: int = 50,
    base_seed: int = 0,
    jobs: int = 1,
    parity_stride: int = 5,
    repro_dir: "str | Path | None" = None,
    shrink: bool = True,
) -> FuzzReport:
    """Fuzz ``seeds`` consecutive seeds of one generator.

    Every ``parity_stride``-th case additionally runs the (2x-cost)
    engine-parity invariant.  Failing cases are shrunk to minimal
    mappings; when ``repro_dir`` is given each shrunken repro is
    written there as ``repro-<name>.toml`` for offline replay via
    ``union-sim scenario``.
    """
    gen_name = generator if isinstance(generator, str) else \
        str(generator.get("type", "generator"))
    work = [(generator, base_seed + i, parity_stride > 0 and i % parity_stride == 0)
            for i in range(seeds)]
    raw = pool_map(_fuzz_case, work, workers=jobs, on_crash=_crashed_case)
    cases = [FuzzCase(seed=r["seed"], name=r["name"], violations=r["violations"],
                      parity_checked=r["parity"], mapping=r["mapping"])
             for r in raw]
    report = FuzzReport(generator=gen_name, base_seed=base_seed,
                        seeds=seeds, cases=cases)
    if shrink:
        for case in report.failures:
            failed = {v.split(":", 1)[0] for v in case.violations}
            subset = {k: f for k, f in INVARIANTS.items() if k in failed}
            small = shrink_mapping(case.mapping, parity=case.parity_checked,
                                   invariants=subset or None)
            case.mapping = small
            if repro_dir is not None:
                out = Path(repro_dir)
                out.mkdir(parents=True, exist_ok=True)
                path = out / f"repro-{case.name}.toml"
                path.write_text(dump_toml(small))
                report.repros[case.seed] = str(path)
    return report


def render_fuzz_report(report: FuzzReport) -> str:
    """Human-readable sweep summary for the CLI."""
    lines = [
        f"fuzz: generator={report.generator} seeds={report.seeds} "
        f"(base {report.base_seed}), invariants: {', '.join(INVARIANTS)}",
    ]
    parity_n = sum(1 for c in report.cases if c.parity_checked)
    lines.append(f"  {len(report.cases) - len(report.failures)}/{len(report.cases)} "
                 f"cases clean ({parity_n} with engine parity)")
    for case in report.failures:
        lines.append(f"  FAIL seed {case.seed} ({case.name}):")
        lines.extend(f"    - {v}" for v in case.violations)
        if case.seed in report.repros:
            lines.append(f"    shrunken repro: {report.repros[case.seed]}")
    return "\n".join(lines)
