"""The fuzz harness's property checks, as named invariants.

Each invariant is a function ``check(ctx) -> list[str]``: an empty list
means the property holds for the case's scenario; each string describes
one violation.  The roster lives in :data:`INVARIANTS` -- keyed by the
names ``union-sim fuzz`` reports and ``docs/faults.md`` documents --
so tests (and mutation drills) can monkeypatch a single entry without
touching the harness.

``conservation``
    Every payload byte injected into the fabric is attributed to
    exactly one job/injector, and every message injected is either
    delivered or still in flight at the horizon.  Skipped when the
    scenario configures ``[storage]``: burst-buffer I/O rides the same
    fabric but is deliberately not attributed to job gauges.
``no_stuck_jobs``
    A started, unfinished, non-endless job is legal only when the run
    was cut off by the horizon; if the event queue drained early with
    such a job outstanding, it is deadlocked.  Jobs that never started
    must carry a skip reason.
``determinism``
    Running the identical spec twice yields bit-identical result JSON.
``parity``
    The conservative engine (2 partitions), the multi-process
    ``mp-conservative`` engine (inline backend -- fuzz pool workers are
    daemonic and cannot spawn) and the ``accel-sequential`` engine
    (default backend plus a forced-python run, so fallback parity never
    goes vacuous) all reproduce the sequential result exactly, modulo
    the ``engine`` stanza.  Checked on sampled cases only (each engine
    adds a full run); :attr:`FuzzContext.parity` gates it.
``checkpoint_resume``
    Checkpointing mid-horizon, abandoning the session (the fuzz
    stand-in for a killed worker) and resuming from the cursor yields
    result JSON bit-identical to the straight-through run -- the
    property :mod:`repro.service` stakes its durability story on.
    Sampled with the parity cases (it re-runs the scenario ~1.5x).
``monotone_clocks``
    All reported times are finite and non-negative, the run clock never
    exceeds the horizon, and per-job max latency dominates the average.
"""

from __future__ import annotations

import copy
import json
import math
from typing import Any, Callable, Mapping

from repro.scenario import parse_scenario
from repro.scenario.runner import ScenarioResult, run_scenario

#: Slack for float comparisons on reported clocks.
_EPS = 1e-9


class FuzzContext:
    """One fuzz case: a scenario mapping plus memoized runs.

    ``run()`` parses and executes the mapping once per distinct engine
    table and caches the result -- most invariants share the baseline
    run.  ``run_fresh()`` bypasses the cache for the determinism check.
    ``parity`` marks the case as sampled for the (expensive) engine
    parity invariant.
    """

    def __init__(self, mapping: Mapping[str, Any], parity: bool = False) -> None:
        self.mapping = dict(mapping)
        self.parity = parity
        self._cache: dict[str, ScenarioResult] = {}

    def run_fresh(self, engine: Mapping[str, Any] | None = None) -> ScenarioResult:
        data = copy.deepcopy(self.mapping)
        if engine is not None:
            data["engine"] = dict(engine)
        name = data.get("name", "fuzz-case")
        return run_scenario(parse_scenario(data, name=name))

    def run(self, engine: Mapping[str, Any] | None = None) -> ScenarioResult:
        key = json.dumps(engine, sort_keys=True) if engine else ""
        if key not in self._cache:
            self._cache[key] = self.run_fresh(engine)
        return self._cache[key]


def check_conservation(ctx: FuzzContext) -> list[str]:
    if "storage" in ctx.mapping:
        return []
    r = ctx.run()
    fabric = r.outcome.fabric
    out = []
    attributed = sum(j.bytes_sent for j in r.jobs)
    if fabric.bytes_sent != attributed:
        out.append(f"fabric injected {fabric.bytes_sent} payload bytes but "
                   f"jobs account for {attributed}")
    settled = fabric.messages_delivered + fabric.in_flight()
    if fabric.messages_sent != settled:
        out.append(f"{fabric.messages_sent} messages sent but only {settled} "
                   "delivered or in flight")
    return out


def check_no_stuck_jobs(ctx: FuzzContext) -> list[str]:
    r = ctx.run()
    out = []
    cut_off = r.end_time >= r.horizon - _EPS
    for j in r.jobs:
        if j.started and not j.finished and not j.endless and not cut_off:
            out.append(f"job {j.name!r} started but is stuck: the event "
                       f"queue drained at t={r.end_time!r} before the "
                       f"horizon {r.horizon!r}")
        if not j.started and not j.skip_reason:
            out.append(f"job {j.name!r} never started and reports no "
                       "skip reason")
    return out


def check_determinism(ctx: FuzzContext) -> list[str]:
    first = json.dumps(ctx.run().to_json_dict(), sort_keys=True)
    second = json.dumps(ctx.run_fresh().to_json_dict(), sort_keys=True)
    if first != second:
        return ["two runs of the identical spec produced different "
                "result JSON"]
    return []


def check_parity(ctx: FuzzContext) -> list[str]:
    if not ctx.parity:
        return []
    out = []
    seq = ctx.run().to_json_dict()
    seq.pop("engine", None)
    seq_key = json.dumps(seq, sort_keys=True)
    con = ctx.run(engine={"type": "conservative", "partitions": 2}).to_json_dict()
    con.pop("engine", None)
    if json.dumps(con, sort_keys=True) != seq_key:
        out.append("conservative(partitions=2) run diverged from the "
                   "sequential result")
    # The multi-process engine is held to the same bar.  The fuzz pool's
    # own workers are daemonic and cannot spawn children, so the inline
    # backend exercises the full worker protocol (recipe, window
    # exchange, merge) in-process; generated scenarios that cannot
    # distribute exercise the fallback path, which must also match.
    mp = ctx.run(engine={"type": "mp-conservative", "partitions": 2,
                         "backend": "inline"}).to_json_dict()
    mp.pop("engine", None)
    if json.dumps(mp, sort_keys=True) != seq_key:
        out.append("mp-conservative(partitions=2, backend=inline) run "
                   "diverged from the sequential result")
    # The accel engine, twice: the default backend (the compiled kernel
    # wherever this host can build one, else its recorded fallback) and
    # the forced python backend -- the latter unconditionally, so the
    # fallback-parity guarantee can never go vacuous on a host where
    # every default-backend run happens to compile.
    acc = ctx.run(engine={"type": "accel-sequential"}).to_json_dict()
    backend = (acc.pop("engine", None) or {}).get("backend", "?")
    if json.dumps(acc, sort_keys=True) != seq_key:
        out.append(f"accel-sequential (backend={backend}) run diverged "
                   "from the sequential result")
    pyb = ctx.run(engine={"type": "accel-sequential",
                          "backend": "python"}).to_json_dict()
    pyb.pop("engine", None)
    if json.dumps(pyb, sort_keys=True) != seq_key:
        out.append("accel-sequential(backend=python) run diverged from "
                   "the sequential result")
    return out


def check_checkpoint_resume(ctx: FuzzContext) -> list[str]:
    if not ctx.parity:
        return []
    import tempfile
    from pathlib import Path

    from repro.service.checkpoint import (
        resume_from_checkpoint,
        run_checkpointed,
    )

    baseline = json.dumps(ctx.run().to_json_dict(), sort_keys=True)
    data = copy.deepcopy(ctx.mapping)
    name = data.get("name", "fuzz-case")
    spec = parse_scenario(data, name=name)
    with tempfile.TemporaryDirectory() as td:
        path = Path(td) / "cursor.json"
        # Checkpoint at mid-horizon, abandon, resume -- the killed-
        # worker lifecycle without the nondeterministic SIGKILL timing.
        aborted = run_checkpointed(spec, path, interval=spec.horizon / 2,
                                   stop_after=1)
        if aborted is not None or not path.is_file():
            return ["run_checkpointed(stop_after=1) failed to leave a "
                    "mid-horizon checkpoint cursor"]
        resumed = resume_from_checkpoint(path)
    if json.dumps(resumed.to_json_dict(), sort_keys=True) != baseline:
        return ["checkpoint/resume produced result JSON different from "
                "the straight-through run"]
    return []


def check_monotone_clocks(ctx: FuzzContext) -> list[str]:
    r = ctx.run()
    out = []
    if not (0.0 <= r.end_time <= r.horizon + _EPS) or not math.isfinite(r.end_time):
        out.append(f"run clock {r.end_time!r} outside [0, horizon={r.horizon!r}]")
    for j in r.jobs:
        for label, value in (("avg_latency", j.avg_latency),
                             ("max_latency", j.max_latency),
                             ("max_comm_time", j.max_comm_time),
                             ("arrival", j.arrival)):
            if not math.isfinite(value) or value < 0.0:
                out.append(f"job {j.name!r} {label} is {value!r}")
        if j.max_latency < j.avg_latency - _EPS:
            out.append(f"job {j.name!r} max latency {j.max_latency!r} below "
                       f"its average {j.avg_latency!r}")
        if j.bytes_sent < 0 or j.messages < 0:
            out.append(f"job {j.name!r} reports negative traffic counters")
    return out


#: The named property roster ``union-sim fuzz`` checks, in report order.
INVARIANTS: dict[str, Callable[[FuzzContext], list[str]]] = {
    "conservation": check_conservation,
    "no_stuck_jobs": check_no_stuck_jobs,
    "determinism": check_determinism,
    "parity": check_parity,
    "checkpoint_resume": check_checkpoint_resume,
    "monotone_clocks": check_monotone_clocks,
}
