"""repro: reproduction of "Union: An Automatic Workload Manager for
Accelerating Network Simulation" (Wang et al., IPDPS 2020).

Layer map (bottom up):

* :mod:`repro.pdes` -- discrete-event engines (ROSS substitute);
* :mod:`repro.network` -- packet-level dragonfly models (CODES substitute);
* :mod:`repro.mpi` -- simulated MPI runtime over the fabric (SWM substitute);
* :mod:`repro.conceptual` -- the coNCePTuaL DSL front end + application backend;
* :mod:`repro.union` -- the paper's contribution: translator, event
  generator, registry, workload manager, validation;
* :mod:`repro.workloads` -- the Section IV-B applications + I/O patterns;
* :mod:`repro.storage` -- storage servers and I/O ops over the fabric
  (the Section VII extension);
* :mod:`repro.trace` -- DUMPI-style trace record/replay (Table I substrate);
* :mod:`repro.placement` -- RN/RR/RG job placement;
* :mod:`repro.harness` -- experiment configs, sweeps, metrics, reports.

Besides the two dragonflies, :mod:`repro.network` ships torus, fat-tree
and slim fly models that run on the same fabric.
"""

__version__ = "1.0.0"
