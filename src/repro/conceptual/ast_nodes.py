"""AST node classes for the coNCePTuaL front end.

Plain dataclasses; every node carries its source line for diagnostics.
Statement nodes correspond 1:1 to the grammar in the package docstring
of :mod:`repro.conceptual.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = field(default=-1, kw_only=True)


@dataclass
class Num(Expr):
    value: int | float


@dataclass
class Var(Expr):
    name: str


@dataclass
class BinOp(Expr):
    op: str  # + - * / mod ** >> << & | ^
    left: Expr
    right: Expr


@dataclass
class UnOp(Expr):
    op: str  # - +
    operand: Expr


@dataclass
class Compare(Expr):
    op: str  # = <> < > <= >= divides
    left: Expr
    right: Expr


@dataclass
class BoolOp(Expr):
    op: str  # and or xor
    left: Expr
    right: Expr


@dataclass
class Not(Expr):
    operand: Expr


@dataclass
class Parity(Expr):
    """``<expr> is even`` / ``<expr> is odd``."""

    operand: Expr
    even: bool


@dataclass
class Call(Expr):
    name: str
    args: list[Expr]


# ---------------------------------------------------------------------------
# Task expressions
# ---------------------------------------------------------------------------


@dataclass
class TaskExpr:
    line: int = field(default=-1, kw_only=True)


@dataclass
class AllTasks(TaskExpr):
    """``all tasks`` / ``all tasks t`` (binds ``t`` to the rank)."""

    var: Optional[str] = None


@dataclass
class AllOtherTasks(TaskExpr):
    """``all other tasks`` (relative to the statement's peer task)."""


@dataclass
class TaskN(TaskExpr):
    """``task <expr>``."""

    expr: Expr = None  # type: ignore[assignment]


@dataclass
class SuchThat(TaskExpr):
    """``tasks t such that <cond>`` (binds ``t``)."""

    var: str = ""
    cond: Expr = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = field(default=-1, kw_only=True)


@dataclass
class StmtSeq(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class ForReps(Stmt):
    count: Expr = None  # type: ignore[assignment]
    body: StmtSeq = None  # type: ignore[assignment]


@dataclass
class ForEach(Stmt):
    var: str = ""
    ranges: list["RangeSpec"] = field(default_factory=list)
    body: StmtSeq = None  # type: ignore[assignment]


@dataclass
class RangeSpec:
    """One comma-group in a ``for each`` list.

    ``{a, b, ..., z}`` enumerates an arithmetic progression whose step is
    ``b - a`` (or 1 when only ``a`` is given before the ellipsis);
    ``{a, b, c}`` without an ellipsis enumerates the listed values.
    """

    exprs: list[Expr]
    ellipsis_to: Optional[Expr]  # None for an explicit list


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: StmtSeq = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: StmtSeq = None  # type: ignore[assignment]
    otherwise: Optional[StmtSeq] = None


@dataclass
class Let(Stmt):
    bindings: list[tuple[str, Expr]] = field(default_factory=list)
    body: StmtSeq = None  # type: ignore[assignment]


@dataclass
class Send(Stmt):
    sender: TaskExpr = None  # type: ignore[assignment]
    count: Optional[Expr] = None  # messages per sender (default 1)
    size: Expr = None  # type: ignore[assignment]
    unit: float = 1.0  # bytes multiplier
    blocking: bool = True
    target: TaskExpr = None  # type: ignore[assignment]


@dataclass
class Receive(Stmt):
    receiver: TaskExpr = None  # type: ignore[assignment]
    count: Optional[Expr] = None
    size: Expr = None  # type: ignore[assignment]
    unit: float = 1.0
    blocking: bool = True
    source: TaskExpr = None  # type: ignore[assignment]


@dataclass
class Multicast(Stmt):
    """``task R multicasts a <size> byte message to all other tasks``."""

    sender: TaskExpr = None  # type: ignore[assignment]
    size: Expr = None  # type: ignore[assignment]
    unit: float = 1.0
    target: TaskExpr = None  # type: ignore[assignment]


@dataclass
class ReduceStmt(Stmt):
    """``all tasks reduce a <size> byte value to {task R | all tasks}``."""

    senders: TaskExpr = None  # type: ignore[assignment]
    size: Expr = None  # type: ignore[assignment]
    unit: float = 1.0
    target: TaskExpr = None  # type: ignore[assignment]


@dataclass
class Synchronize(Stmt):
    tasks: TaskExpr = None  # type: ignore[assignment]


@dataclass
class ResetCounters(Stmt):
    tasks: TaskExpr = None  # type: ignore[assignment]


@dataclass
class ComputeStmt(Stmt):
    tasks: TaskExpr = None  # type: ignore[assignment]
    amount: Expr = None  # type: ignore[assignment]
    unit: float = 1.0  # seconds multiplier


@dataclass
class SleepStmt(Stmt):
    tasks: TaskExpr = None  # type: ignore[assignment]
    amount: Expr = None  # type: ignore[assignment]
    unit: float = 1.0


@dataclass
class AwaitCompletion(Stmt):
    tasks: TaskExpr = None  # type: ignore[assignment]


@dataclass
class LogItem:
    aggregate: Optional[str]  # mean/median/minimum/maximum/sum/variance
    expr: Expr
    label: str


@dataclass
class LogStmt(Stmt):
    tasks: TaskExpr = None  # type: ignore[assignment]
    items: list[LogItem] = field(default_factory=list)


@dataclass
class ComputeAggregates(Stmt):
    tasks: TaskExpr = None  # type: ignore[assignment]


@dataclass
class OutputStmt(Stmt):
    tasks: TaskExpr = None  # type: ignore[assignment]
    text: Optional[str] = None
    expr: Optional[Expr] = None


@dataclass
class TouchStmt(Stmt):
    """``task T touches <size> bytes of memory`` -- a memory-traffic
    no-op in the skeleton; counted as allocation in the application."""

    tasks: TaskExpr = None  # type: ignore[assignment]
    size: Expr = None  # type: ignore[assignment]
    unit: float = 1.0


@dataclass
class IOStmt(Stmt):
    """``task T writes a <size> <unit> file [to server <expr>]`` or
    ``... reads a <size> <unit> file [from server <expr>]``.

    The Section VII I/O extension: in simulation the operation ships
    data to/from a storage server over the interconnect; ``server`` is
    evaluated per task (default: round-robin by rank)."""

    tasks: TaskExpr = None  # type: ignore[assignment]
    write: bool = True
    size: Expr = None  # type: ignore[assignment]
    unit: float = 1.0
    server: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Headers / program
# ---------------------------------------------------------------------------


@dataclass
class Require:
    version: str
    line: int = -1


@dataclass
class ParamDecl:
    """``reps is "..." and comes from "--reps" or "-r" with default 1000.``"""

    name: str
    description: str
    flags: list[str]
    default: Expr
    line: int = -1


@dataclass
class AssertDecl:
    text: str
    cond: Expr
    line: int = -1


@dataclass
class Program:
    requires: list[Require]
    params: list[ParamDecl]
    asserts: list[AssertDecl]
    body: StmtSeq
    source_name: str = "<string>"

    def param_defaults(self) -> dict[str, Expr]:
        return {p.name: p.default for p in self.params}
