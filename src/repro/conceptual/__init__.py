"""coNCePTuaL: the network-testing DSL Union translates (Pakin, TPDS'07).

This package reimplements the subset of coNCePTuaL the paper relies on:
an English-like language for describing communication patterns
("task 0 sends a 1024 byte message to task 1"), with command-line
parameter declarations, assertions, repetition/conditional control flow,
timing primitives, logging, and the built-in virtual-topology functions
(mesh/torus neighbours, n-ary and k-nomial trees) that make patterns
like nearest-neighbour halo exchanges one-liners.

Components mirror the original compiler pipeline (Section II-A):

* :mod:`repro.conceptual.lexer` -- source text to token list;
* :mod:`repro.conceptual.parser` -- token list to AST;
* :mod:`repro.conceptual.semantics` -- static checks;
* :mod:`repro.conceptual.interpreter` -- the *application* backend: runs
  the full program with real buffer allocation and per-rank event/byte
  accounting (what the paper obtains by executing the compiled C+MPI
  program); Union's skeleton backend lives in :mod:`repro.union`.
"""

from repro.conceptual.errors import (
    ConceptualError,
    LexError,
    ParseError,
    SemanticError,
    EvalError,
)
from repro.conceptual.lexer import tokenize
from repro.conceptual.parser import parse
from repro.conceptual.semantics import check
from repro.conceptual.interpreter import ApplicationRun, run_application

__all__ = [
    "ConceptualError",
    "LexError",
    "ParseError",
    "SemanticError",
    "EvalError",
    "tokenize",
    "parse",
    "check",
    "ApplicationRun",
    "run_application",
]
