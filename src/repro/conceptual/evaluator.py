"""Expression evaluation for the coNCePTuaL AST.

Used by the application interpreter and by the Union translator when it
needs compile-time constants (parameter defaults, assertions).  The
semantics match the original language: integer arithmetic stays integral
('/' truncates towards zero on integers), comparisons yield 0/1, and the
``random_task`` built-in draws from a deterministic per-rank stream.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.conceptual import ast_nodes as A
from repro.conceptual.builtins import FUNCTIONS, c_div, c_mod
from repro.conceptual.errors import EvalError
from repro.pdes.rng import SplitMix


class Env:
    """Variable/runtime environment for expression evaluation.

    Parameters
    ----------
    variables:
        Name to value bindings (command-line parameters, loop variables,
        task bindings).
    num_tasks:
        Value of the built-in ``num_tasks`` variable.
    rng:
        Deterministic stream for ``random_task``; optional.
    elapsed_usecs:
        Callable returning the rank's elapsed timer, for the
        ``elapsed_usecs`` pseudo-variable; optional.
    """

    __slots__ = ("variables", "num_tasks", "rng", "elapsed_usecs")

    def __init__(
        self,
        variables: Mapping[str, Any] | None = None,
        num_tasks: int = 1,
        rng: SplitMix | None = None,
        elapsed_usecs=None,
    ) -> None:
        self.variables = dict(variables or {})
        self.num_tasks = num_tasks
        self.rng = rng
        self.elapsed_usecs = elapsed_usecs

    def child(self, **bindings: Any) -> "Env":
        env = Env(self.variables, self.num_tasks, self.rng, self.elapsed_usecs)
        env.variables.update(bindings)
        return env

    def lookup(self, name: str, line: int) -> Any:
        if name == "num_tasks":
            return self.num_tasks
        if name == "elapsed_usecs":
            if self.elapsed_usecs is None:
                raise EvalError("elapsed_usecs is not available in this context", line, 0)
            return self.elapsed_usecs()
        try:
            return self.variables[name]
        except KeyError:
            raise EvalError(f"undefined variable {name!r}", line, 0) from None


def evaluate(expr: A.Expr, env: Env) -> Any:
    """Evaluate ``expr`` in ``env``; returns an int, float or bool-int."""
    if isinstance(expr, A.Num):
        return expr.value
    if isinstance(expr, A.Var):
        return env.lookup(expr.name, expr.line)
    if isinstance(expr, A.UnOp):
        v = evaluate(expr.operand, env)
        return -v if expr.op == "-" else +v
    if isinstance(expr, A.BinOp):
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        op = expr.op
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return c_div(left, right)
            if op == "mod":
                return c_mod(left, right)
            if op == "**":
                return left**right
            if op == ">>":
                return int(left) >> int(right)
            if op == "<<":
                return int(left) << int(right)
            if op == "&":
                return int(left) & int(right)
            if op == "|":
                return int(left) | int(right)
            if op == "^":
                return int(left) ^ int(right)
        except EvalError:
            raise
        except Exception as exc:
            raise EvalError(f"arithmetic error in {op!r}: {exc}", expr.line, 0) from exc
        raise EvalError(f"unknown operator {op!r}", expr.line, 0)
    if isinstance(expr, A.Compare):
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        op = expr.op
        if op == "=":
            return int(left == right)
        if op == "<>":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == ">":
            return int(left > right)
        if op == "<=":
            return int(left <= right)
        if op == ">=":
            return int(left >= right)
        if op == "divides":
            if left == 0:
                raise EvalError("0 divides nothing", expr.line, 0)
            return int(right % left == 0)
        raise EvalError(f"unknown comparison {op!r}", expr.line, 0)
    if isinstance(expr, A.Parity):
        v = evaluate(expr.operand, env)
        even = int(v) % 2 == 0
        return int(even if expr.even else not even)
    if isinstance(expr, A.BoolOp):
        left = evaluate(expr.left, env)
        if expr.op == "and":
            if not left:
                return 0
            return int(bool(evaluate(expr.right, env)))
        if expr.op == "or":
            if left:
                return 1
            return int(bool(evaluate(expr.right, env)))
        if expr.op == "xor":
            return int(bool(left) != bool(evaluate(expr.right, env)))
        raise EvalError(f"unknown boolean operator {expr.op!r}", expr.line, 0)
    if isinstance(expr, A.Not):
        return int(not evaluate(expr.operand, env))
    if isinstance(expr, A.Call):
        name = expr.name.lower()
        args = [evaluate(a, env) for a in expr.args]
        if name in ("random_task", "random_uniform"):
            if env.rng is None:
                raise EvalError(f"{name} is unavailable: no random stream in this context", expr.line, 0)
            if len(args) != 2:
                raise EvalError(f"{name} expects 2 arguments, got {len(args)}", expr.line, 0)
            lo, hi = int(args[0]), int(args[1])
            if hi < lo:
                raise EvalError(f"{name}: empty range [{lo}, {hi}]", expr.line, 0)
            return lo + env.rng.randint(hi - lo + 1)
        spec = FUNCTIONS.get(name)
        if spec is None:
            raise EvalError(f"unknown function {expr.name!r}", expr.line, 0)
        fn, lo_ar, hi_ar = spec
        if not lo_ar <= len(args) <= hi_ar:
            raise EvalError(
                f"{name} expects {lo_ar}..{hi_ar} arguments, got {len(args)}", expr.line, 0
            )
        try:
            return fn(*args)
        except EvalError:
            raise
        except Exception as exc:
            raise EvalError(f"error in {name}: {exc}", expr.line, 0) from exc
    raise EvalError(f"cannot evaluate node {type(expr).__name__}", getattr(expr, "line", -1), 0)


def expand_range(spec: A.RangeSpec, env: Env, line: int = -1) -> list[int]:
    """Expand a ``for each`` range spec into a concrete value list."""
    values = [int(evaluate(e, env)) for e in spec.exprs]
    if spec.ellipsis_to is None:
        return values
    stop = int(evaluate(spec.ellipsis_to, env))
    if len(values) == 1:
        prefix: list[int] = []
        start = values[0]
        step = 1 if stop >= start else -1
    else:
        # {a, b, ..., z}: explicit prefix, then continue with step b-a.
        step = values[-1] - values[-2]
        if step == 0:
            raise EvalError("range step of 0 in 'for each'", line, 0)
        prefix = values[:-1]
        start = values[-1]
    seq = list(prefix)
    v = start
    if step > 0:
        while v <= stop:
            seq.append(v)
            v += step
    else:
        while v >= stop:
            seq.append(v)
            v += step
    return seq
