"""Recursive-descent parser: token list to :class:`Program` AST.

Grammar (the coNCePTuaL subset the paper's workloads need)::

    program     := header* stmt_seq
    header      := "require language version" STRING "."
                 | IDENT "is" STRING "and comes from" STRING ("or" STRING)*
                   "with default" expr "."
                 | "assert that" STRING "with" expr "."
    stmt_seq    := stmt ("then" stmt)*
    stmt        := block | for_stmt | while_stmt | if_stmt | let_stmt | simple
    block       := "{" stmt_seq "}"
    for_stmt    := "for" expr ("repetitions"|"repetition"|"times") block
                 | "for each" IDENT "in" "{" range "}" block
    range       := expr ("," expr)* ("," "..." "," expr)?
    while_stmt  := "while" expr block
    if_stmt     := "if" expr "then" block ("otherwise" block)?
    let_stmt    := "let" IDENT "be" expr ("and" IDENT "be" expr)* "while" block
    simple      := task_expr ["asynchronously"] verb ...
    task_expr   := "all tasks" IDENT? | "all other tasks"
                 | "task" primary | "tasks" IDENT "such that" expr
    verb        := sends | receives | multicasts | reduces | synchronizes
                 | computes | sleeps | resets counters | awaits completion
                 | logs | outputs | touches

Verbs accept both singular and plural forms.  Message phrases follow the
paper's Figure 1 style: ``sends a <expr> <unit> [nonblocking] message to
<task_expr>``.
"""

from __future__ import annotations

from repro.conceptual import ast_nodes as A
from repro.conceptual.errors import ParseError
from repro.conceptual.lexer import tokenize
from repro.conceptual.tokens import (
    COMMA,
    ELLIPSIS,
    EOF,
    IDENT,
    KEYWORD,
    LBRACE,
    LPAREN,
    NUMBER,
    OP,
    PERIOD,
    RBRACE,
    RPAREN,
    SIZE_UNITS,
    STRING,
    TIME_UNITS,
    Token,
)

_AGGREGATES = {"mean", "median", "minimum", "maximum", "sum", "variance"}


class _Parser:
    def __init__(self, tokens: list[Token], source_name: str) -> None:
        self.toks = tokens
        self.pos = 0
        self.source_name = source_name

    # -- token helpers -----------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        idx = min(self.pos + ahead, len(self.toks) - 1)
        return self.toks[idx]

    def at(self, type_: str, value=None, ahead: int = 0) -> bool:
        t = self.peek(ahead)
        return t.type == type_ and (value is None or t.value == value)

    def at_kw(self, *values: str, ahead: int = 0) -> bool:
        t = self.peek(ahead)
        return t.type == KEYWORD and t.value in values

    def advance(self) -> Token:
        t = self.toks[self.pos]
        if t.type != EOF:
            self.pos += 1
        return t

    def expect(self, type_: str, value=None) -> Token:
        t = self.peek()
        if t.type != type_ or (value is not None and t.value != value):
            want = value if value is not None else type_
            raise ParseError(f"expected {want!r}, found {t.value!r}", t.line, t.column)
        return self.advance()

    def expect_kw(self, *values: str) -> Token:
        t = self.peek()
        if t.type != KEYWORD or t.value not in values:
            raise ParseError(
                f"expected {' or '.join(repr(v) for v in values)}, found {t.value!r}",
                t.line,
                t.column,
            )
        return self.advance()

    def accept_kw(self, *values: str) -> bool:
        if self.at_kw(*values):
            self.advance()
            return True
        return False

    # -- program ----------------------------------------------------------------
    def parse_program(self) -> A.Program:
        requires: list[A.Require] = []
        params: list[A.ParamDecl] = []
        asserts: list[A.AssertDecl] = []
        while True:
            if self.at_kw("require"):
                requires.append(self._parse_require())
            elif self.at(IDENT) and self.at_kw("is", ahead=1) and self.peek(2).type == STRING:
                params.append(self._parse_param())
            elif self.at_kw("assert"):
                asserts.append(self._parse_assert())
            else:
                break
        body = self.parse_stmt_seq()
        if self.at(PERIOD):
            self.advance()
        t = self.peek()
        if t.type != EOF:
            raise ParseError(f"unexpected trailing input {t.value!r}", t.line, t.column)
        return A.Program(requires, params, asserts, body, self.source_name)

    def _parse_require(self) -> A.Require:
        t = self.expect_kw("require")
        self.expect_kw("language")
        self.expect_kw("version")
        version = self.expect(STRING).value
        self.expect(PERIOD)
        return A.Require(version, line=t.line)

    def _parse_param(self) -> A.ParamDecl:
        name_tok = self.expect(IDENT)
        self.expect_kw("is")
        desc = self.expect(STRING).value
        self.expect_kw("and")
        self.expect_kw("comes")
        self.expect_kw("from")
        flags = [self.expect(STRING).value]
        while self.accept_kw("or"):
            flags.append(self.expect(STRING).value)
        self.expect_kw("with")
        self.expect_kw("default")
        default = self.parse_expr()
        self.expect(PERIOD)
        return A.ParamDecl(name_tok.value, desc, flags, default, line=name_tok.line)

    def _parse_assert(self) -> A.AssertDecl:
        t = self.expect_kw("assert")
        self.expect_kw("that")
        text = self.expect(STRING).value
        self.expect_kw("with")
        cond = self.parse_expr()
        self.expect(PERIOD)
        return A.AssertDecl(text, cond, line=t.line)

    # -- statements --------------------------------------------------------------
    def parse_stmt_seq(self) -> A.StmtSeq:
        first = self.parse_stmt()
        stmts = [first]
        while self.accept_kw("then"):
            stmts.append(self.parse_stmt())
        return A.StmtSeq(stmts, line=first.line)

    def parse_block(self) -> A.StmtSeq:
        self.expect(LBRACE)
        seq = self.parse_stmt_seq()
        self.expect(RBRACE)
        return seq

    def parse_stmt(self) -> A.Stmt:
        t = self.peek()
        if t.type == LBRACE:
            return self.parse_block()
        if self.at_kw("for"):
            return self._parse_for()
        if self.at_kw("while"):
            self.advance()
            cond = self.parse_expr()
            body = self.parse_block()
            return A.While(cond, body, line=t.line)
        if self.at_kw("if"):
            self.advance()
            cond = self.parse_expr()
            self.expect_kw("then")
            then = self.parse_block()
            otherwise = self.parse_block() if self.accept_kw("otherwise") else None
            return A.If(cond, then, otherwise, line=t.line)
        if self.at_kw("let"):
            return self._parse_let()
        return self._parse_simple()

    def _parse_for(self) -> A.Stmt:
        t = self.expect_kw("for")
        if self.accept_kw("each"):
            var = self.expect(IDENT).value
            self.expect_kw("in")
            self.expect(LBRACE)
            ranges = [self._parse_range_spec()]
            self.expect(RBRACE)
            body = self.parse_block()
            return A.ForEach(var, ranges, body, line=t.line)
        count = self.parse_expr()
        self.expect_kw("repetitions", "repetition", "times")
        body = self.parse_block()
        return A.ForReps(count, body, line=t.line)

    def _parse_range_spec(self) -> A.RangeSpec:
        exprs = [self.parse_expr()]
        ellipsis_to = None
        while self.at(COMMA):
            self.advance()
            if self.at(ELLIPSIS):
                self.advance()
                self.expect(COMMA)
                ellipsis_to = self.parse_expr()
                break
            exprs.append(self.parse_expr())
        return A.RangeSpec(exprs, ellipsis_to)

    def _parse_let(self) -> A.Let:
        t = self.expect_kw("let")
        bindings = []
        while True:
            name = self.expect(IDENT).value
            self.expect_kw("be")
            # Arithmetic only: 'and' separates bindings, not booleans.
            bindings.append((name, self.parse_arith()))
            if not self.accept_kw("and"):
                break
        self.expect_kw("while")
        body = self.parse_block()
        return A.Let(bindings, body, line=t.line)

    # -- simple statements ----------------------------------------------------------
    def _parse_simple(self) -> A.Stmt:
        t = self.peek()
        tasks = self.parse_task_expr()
        asynchronously = self.accept_kw("asynchronously")
        v = self.peek()
        if v.type != KEYWORD:
            raise ParseError(f"expected a verb, found {v.value!r}", v.line, v.column)
        verb = v.value
        if verb in ("sends", "send"):
            self.advance()
            return self._parse_send(tasks, not asynchronously, t.line)
        if verb in ("receives", "receive"):
            self.advance()
            return self._parse_receive(tasks, not asynchronously, t.line)
        if verb in ("multicasts", "multicast"):
            self.advance()
            return self._parse_multicast(tasks, t.line)
        if verb in ("reduces", "reduce"):
            self.advance()
            return self._parse_reduce(tasks, t.line)
        if verb in ("synchronizes", "synchronize"):
            self.advance()
            return A.Synchronize(tasks, line=t.line)
        if verb in ("computes", "compute"):
            self.advance()
            if self.accept_kw("aggregates"):
                return A.ComputeAggregates(tasks, line=t.line)
            self.expect_kw("for")
            amount = self.parse_expr()
            unit = self._parse_time_unit()
            return A.ComputeStmt(tasks, amount, unit, line=t.line)
        if verb in ("sleeps", "sleep"):
            self.advance()
            self.expect_kw("for")
            amount = self.parse_expr()
            unit = self._parse_time_unit()
            return A.SleepStmt(tasks, amount, unit, line=t.line)
        if verb in ("resets", "reset"):
            self.advance()
            self.expect_kw("its", "their")
            self.expect_kw("counters")
            return A.ResetCounters(tasks, line=t.line)
        if verb in ("awaits", "await"):
            self.advance()
            self.expect_kw("completion", "completions")
            return A.AwaitCompletion(tasks, line=t.line)
        if verb in ("logs", "log"):
            self.advance()
            return self._parse_log(tasks, t.line)
        if verb in ("outputs", "output"):
            self.advance()
            if self.at(STRING):
                return A.OutputStmt(tasks, text=self.advance().value, line=t.line)
            return A.OutputStmt(tasks, expr=self.parse_arith(), line=t.line)
        if verb in ("touches", "touch"):
            self.advance()
            size = self.parse_expr()
            unit = self._parse_size_unit()
            self.accept_kw("of")
            self.expect_kw("memory")
            return A.TouchStmt(tasks, size, unit, line=t.line)
        if verb in ("writes", "write", "reads", "read"):
            self.advance()
            return self._parse_io(tasks, verb.startswith("write"), t.line)
        raise ParseError(f"unknown verb {verb!r}", v.line, v.column)

    def _parse_io(self, tasks: A.TaskExpr, write: bool, line: int) -> A.IOStmt:
        """``writes a <size> <unit> file [to server <expr>]`` /
        ``reads a <size> <unit> file [from server <expr>]``."""
        self.expect_kw("a", "an")
        size = self.parse_expr()
        unit = self._parse_size_unit()
        self.expect_kw("file", "files")
        server = None
        if self.accept_kw("to" if write else "from"):
            self.expect_kw("server")
            server = self.parse_arith()
        return A.IOStmt(tasks, write, size, unit, server, line=line)

    def parse_task_expr(self) -> A.TaskExpr:
        t = self.peek()
        if self.accept_kw("all"):
            if self.accept_kw("other"):
                self.expect_kw("tasks")
                return A.AllOtherTasks(line=t.line)
            self.expect_kw("tasks")
            var = None
            if self.at(IDENT) and self.at_kw("such", ahead=1):
                var_name = self.advance().value
                self.expect_kw("such")
                self.expect_kw("that")
                cond = self.parse_expr()
                return A.SuchThat(var_name, cond, line=t.line)
            if self.at(IDENT):
                var = self.advance().value
            return A.AllTasks(var, line=t.line)
        if self.accept_kw("task"):
            # Full arithmetic expression: "task (t+1) mod num_tasks".
            # Keywords (verbs, 'then', units) terminate it naturally.
            return A.TaskN(self.parse_arith(), line=t.line)
        if self.accept_kw("tasks"):
            var = self.expect(IDENT).value
            self.expect_kw("such")
            self.expect_kw("that")
            cond = self.parse_expr()
            return A.SuchThat(var, cond, line=t.line)
        raise ParseError(f"expected a task expression, found {t.value!r}", t.line, t.column)

    def _parse_message_phrase(self) -> tuple[A.Expr | None, A.Expr, float, bool]:
        """Parse ``(a|an|<count>) <size-expr> <unit> [nonblocking] message(s)``."""
        count: A.Expr | None = None
        if not self.accept_kw("a", "an"):
            count = self.parse_primary()
        size = self.parse_expr()
        unit = self._parse_size_unit()
        nonblocking = self.accept_kw("nonblocking")
        self.expect_kw("message", "messages")
        return count, size, unit, nonblocking

    def _parse_send(self, sender: A.TaskExpr, blocking: bool, line: int) -> A.Send:
        count, size, unit, nonblocking = self._parse_message_phrase()
        self.expect_kw("to")
        target = self.parse_task_expr()
        return A.Send(sender, count, size, unit, blocking and not nonblocking, target, line=line)

    def _parse_receive(self, receiver: A.TaskExpr, blocking: bool, line: int) -> A.Receive:
        count, size, unit, nonblocking = self._parse_message_phrase()
        self.expect_kw("from")
        source = self.parse_task_expr()
        return A.Receive(receiver, count, size, unit, blocking and not nonblocking, source, line=line)

    def _parse_multicast(self, sender: A.TaskExpr, line: int) -> A.Multicast:
        self.expect_kw("a", "an")
        size = self.parse_expr()
        unit = self._parse_size_unit()
        self.expect_kw("message", "messages")
        self.expect_kw("to")
        target = self.parse_task_expr()
        return A.Multicast(sender, size, unit, target, line=line)

    def _parse_reduce(self, senders: A.TaskExpr, line: int) -> A.ReduceStmt:
        self.expect_kw("a", "an")
        size = self.parse_expr()
        unit = self._parse_size_unit()
        self.expect_kw("message", "messages", "value", "values")
        self.expect_kw("to")
        target = self.parse_task_expr()
        return A.ReduceStmt(senders, size, unit, target, line=line)

    def _parse_log(self, tasks: A.TaskExpr, line: int) -> A.LogStmt:
        items = [self._parse_log_item()]
        while self.accept_kw("and"):
            items.append(self._parse_log_item())
        return A.LogStmt(tasks, items, line=line)

    def _parse_log_item(self) -> A.LogItem:
        aggregate = None
        if self.at_kw("the"):
            if self.peek(1).type == KEYWORD and self.peek(1).value in _AGGREGATES:
                self.advance()
                aggregate = self.advance().value
                self.expect_kw("of")
            else:
                self.advance()  # plain article: "logs the msgsize as ..."
        expr = self.parse_arith()
        self.expect_kw("as")
        label = self.expect(STRING).value
        return A.LogItem(aggregate, expr, label)

    def _parse_size_unit(self) -> float:
        t = self.peek()
        if t.type == KEYWORD and t.value in SIZE_UNITS:
            self.advance()
            return float(SIZE_UNITS[t.value])
        raise ParseError(f"expected a size unit, found {t.value!r}", t.line, t.column)

    def _parse_time_unit(self) -> float:
        t = self.peek()
        if t.type == KEYWORD and t.value in TIME_UNITS:
            self.advance()
            return TIME_UNITS[t.value]
        raise ParseError(f"expected a time unit, found {t.value!r}", t.line, t.column)

    # -- expressions -------------------------------------------------------------
    def parse_expr(self) -> A.Expr:
        return self._parse_or()

    def _parse_or(self) -> A.Expr:
        left = self._parse_and()
        while self.at_kw("or", "xor"):
            op = self.advance().value
            right = self._parse_and()
            left = A.BoolOp(op, left, right, line=left.line)
        return left

    def _parse_and(self) -> A.Expr:
        left = self._parse_not()
        while self.at_kw("and"):
            self.advance()
            right = self._parse_not()
            left = A.BoolOp("and", left, right, line=left.line)
        return left

    def _parse_not(self) -> A.Expr:
        if self.at_kw("not"):
            t = self.advance()
            return A.Not(self._parse_not(), line=t.line)
        return self._parse_comparison()

    def _parse_comparison(self) -> A.Expr:
        left = self.parse_arith()
        t = self.peek()
        if t.type == OP and t.value in ("=", "<>", "<", ">", "<=", ">="):
            self.advance()
            right = self.parse_arith()
            return A.Compare(t.value, left, right, line=left.line)
        if self.at_kw("is") and self.at_kw("even", "odd", ahead=1):
            self.advance()
            parity = self.advance().value
            return A.Parity(left, parity == "even", line=left.line)
        if self.at_kw("divides"):
            self.advance()
            right = self.parse_arith()
            return A.Compare("divides", left, right, line=left.line)
        return left

    def parse_arith(self) -> A.Expr:
        left = self._parse_term()
        while self.at(OP, "+") or self.at(OP, "-"):
            op = self.advance().value
            right = self._parse_term()
            left = A.BinOp(op, left, right, line=left.line)
        return left

    def _parse_term(self) -> A.Expr:
        left = self._parse_factor()
        while True:
            t = self.peek()
            if t.type == OP and t.value in ("*", "/", ">>", "<<", "&", "|", "^"):
                self.advance()
                right = self._parse_factor()
                left = A.BinOp(t.value, left, right, line=left.line)
            elif self.at_kw("mod"):
                self.advance()
                right = self._parse_factor()
                left = A.BinOp("mod", left, right, line=left.line)
            else:
                return left

    def _parse_factor(self) -> A.Expr:
        t = self.peek()
        if t.type == OP and t.value in ("-", "+"):
            self.advance()
            return A.UnOp(t.value, self._parse_factor(), line=t.line)
        return self._parse_power()

    def _parse_power(self) -> A.Expr:
        base = self.parse_primary()
        if self.at(OP, "**"):
            self.advance()
            exponent = self._parse_factor()  # right-associative
            return A.BinOp("**", base, exponent, line=base.line)
        return base

    def parse_primary(self) -> A.Expr:
        t = self.peek()
        if t.type == NUMBER:
            self.advance()
            return A.Num(t.value, line=t.line)
        if t.type == IDENT:
            self.advance()
            if self.at(LPAREN):
                self.advance()
                args: list[A.Expr] = []
                if not self.at(RPAREN):
                    args.append(self.parse_expr())
                    while self.at(COMMA):
                        self.advance()
                        args.append(self.parse_expr())
                self.expect(RPAREN)
                return A.Call(t.value, args, line=t.line)
            return A.Var(t.value, line=t.line)
        if t.type == LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(RPAREN)
            return expr
        raise ParseError(f"expected an expression, found {t.value!r}", t.line, t.column)


def parse(source: str, source_name: str = "<string>") -> A.Program:
    """Parse coNCePTuaL source text into a :class:`Program`."""
    return _Parser(tokenize(source), source_name).parse_program()
