"""coNCePTuaL built-in functions.

The language's salient feature (Section II-A) is its library of virtual
topology helpers -- n-ary trees, k-nomial trees, meshes and tori -- that
turn complex communication patterns into one-line statements.  These are
plain module-level functions so the Union translator can reference them
directly from generated skeleton code.

All functions return integers; topology neighbour lookups return ``-1``
for "no such task", and send statements skip ``-1`` targets.
"""

from __future__ import annotations

import math

from repro.conceptual.errors import EvalError


def _int(x, what: str) -> int:
    xi = int(x)
    if xi != x:
        raise EvalError(f"{what} must be an integer, got {x!r}")
    return xi


# -- arithmetic ---------------------------------------------------------------

def c_abs(x):
    return abs(x)


def c_min(*args):
    if not args:
        raise EvalError("min() needs at least one argument")
    return min(args)


def c_max(*args):
    if not args:
        raise EvalError("max() needs at least one argument")
    return max(args)


def c_sqrt(x):
    """Integer square root for ints, float sqrt otherwise."""
    if x < 0:
        raise EvalError(f"sqrt of negative value {x}")
    return math.isqrt(x) if isinstance(x, int) else math.sqrt(x)


def c_cbrt(x):
    """Integer cube root (floor) for ints."""
    if x < 0:
        raise EvalError(f"cbrt of negative value {x}")
    if isinstance(x, int):
        r = round(x ** (1 / 3))
        while r * r * r > x:
            r -= 1
        while (r + 1) ** 3 <= x:
            r += 1
        return r
    return x ** (1 / 3)


def c_floor(x):
    return math.floor(x)


def c_ceiling(x):
    return math.ceil(x)


def c_round(x):
    return math.floor(x + 0.5)


def c_log2(x):
    if x <= 0:
        raise EvalError(f"log2 of non-positive value {x}")
    if isinstance(x, int):
        return x.bit_length() - 1
    return math.log2(x)


def c_log10(x):
    if x <= 0:
        raise EvalError(f"log10 of non-positive value {x}")
    return math.log10(x)


def c_bits(x):
    """Number of bits needed to represent x (coNCePTuaL BITS)."""
    return _int(x, "bits() argument").bit_length()


def c_div(a, b):
    """coNCePTuaL '/': integer division on integers, true division otherwise."""
    if b == 0:
        raise EvalError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q  # truncate towards zero
    return a / b


def c_mod(a, b):
    if b == 0:
        raise EvalError("modulo by zero")
    return a % b


# -- n-ary trees ----------------------------------------------------------------

def tree_parent(task, arity=2):
    """Parent of ``task`` in an ``arity``-ary tree rooted at 0 (-1 for root)."""
    task = _int(task, "task")
    arity = _int(arity, "arity")
    if arity < 1:
        raise EvalError(f"tree arity must be >= 1, got {arity}")
    return (task - 1) // arity if task > 0 else -1


def tree_child(task, child, arity=2):
    """``child``-th child of ``task`` in an ``arity``-ary tree (may exceed n)."""
    task = _int(task, "task")
    child = _int(child, "child")
    arity = _int(arity, "arity")
    if not 0 <= child < arity:
        raise EvalError(f"child index {child} outside arity {arity}")
    return arity * task + child + 1


# -- k-nomial trees ---------------------------------------------------------------

def _knomial_low_power(task: int, k: int, n: int) -> int:
    """k^(index of the lowest non-zero base-k digit of task)."""
    if task == 0:
        p = 1
        while p < n:
            p *= k
        return p
    p = 1
    while task % (p * k) == 0:
        p *= k
    return p


def knomial_parent(task, k=2, n=None):
    """Parent of ``task`` in a k-nomial tree of ``n`` nodes (-1 for root)."""
    task = _int(task, "task")
    k = _int(k, "k")
    if k < 2:
        raise EvalError(f"k-nomial arity must be >= 2, got {k}")
    if task == 0:
        return -1
    low = _knomial_low_power(task, k, n or (task + 1))
    digit = (task // low) % k
    return task - digit * low


def knomial_children(task, k=2, n=None):
    """Number of children of ``task`` in a k-nomial tree of ``n`` nodes."""
    task = _int(task, "task")
    k = _int(k, "k")
    if n is None:
        raise EvalError("knomial_children requires the tree size n")
    n = _int(n, "n")
    count = 0
    p = 1
    low = _knomial_low_power(task, k, n)
    while p < low:
        for j in range(1, k):
            if task + j * p < n:
                count += 1
        p *= k
    return count


def knomial_child(task, child, k=2, n=None):
    """``child``-th child of ``task`` in a k-nomial tree of ``n`` nodes (-1 if none)."""
    task = _int(task, "task")
    child = _int(child, "child")
    k = _int(k, "k")
    if n is None:
        raise EvalError("knomial_child requires the tree size n")
    n = _int(n, "n")
    idx = 0
    p = 1
    low = _knomial_low_power(task, k, n)
    while p < low:
        for j in range(1, k):
            c = task + j * p
            if c < n:
                if idx == child:
                    return c
                idx += 1
        p *= k
    return -1


# -- meshes and tori -----------------------------------------------------------------

def _mesh_coords(width: int, height: int, depth: int, task: int) -> tuple[int, int, int]:
    if task < 0 or task >= width * height * depth:
        raise EvalError(f"task {task} outside {width}x{height}x{depth} mesh")
    return task % width, (task // width) % height, task // (width * height)


def mesh_neighbor(width, height, depth, task, dx, dy, dz):
    """Neighbour of ``task`` on a WxHxD mesh; -1 when off the edge."""
    width, height, depth = _int(width, "width"), _int(height, "height"), _int(depth, "depth")
    task = _int(task, "task")
    dx, dy, dz = _int(dx, "dx"), _int(dy, "dy"), _int(dz, "dz")
    x, y, z = _mesh_coords(width, height, depth, task)
    nx, ny, nz = x + dx, y + dy, z + dz
    if not (0 <= nx < width and 0 <= ny < height and 0 <= nz < depth):
        return -1
    return nx + ny * width + nz * width * height


def torus_neighbor(width, height, depth, task, dx, dy, dz):
    """Neighbour of ``task`` on a WxHxD torus (wraps around)."""
    width, height, depth = _int(width, "width"), _int(height, "height"), _int(depth, "depth")
    task = _int(task, "task")
    x, y, z = _mesh_coords(width, height, depth, task)
    nx = (x + _int(dx, "dx")) % width
    ny = (y + _int(dy, "dy")) % height
    nz = (z + _int(dz, "dz")) % depth
    return nx + ny * width + nz * width * height


def mesh_coordinate(width, height, depth, task, axis):
    """Coordinate of ``task`` along ``axis`` (0=x, 1=y, 2=z)."""
    coords = _mesh_coords(_int(width, "width"), _int(height, "height"), _int(depth, "depth"), _int(task, "task"))
    axis = _int(axis, "axis")
    if not 0 <= axis <= 2:
        raise EvalError(f"mesh axis must be 0, 1 or 2, got {axis}")
    return coords[axis]


def range_seq(values: list, stop) -> list[int]:
    """Expand a ``{a, b, ..., z}`` range list (used by generated skeletons).

    ``values`` holds the explicit prefix; the step is the difference of
    its last two entries (or +/-1 with a single entry); the progression
    continues through ``stop`` inclusive.
    """
    values = [int(v) for v in values]
    stop = int(stop)
    if not values:
        raise EvalError("range list needs at least one explicit value")
    if len(values) == 1:
        prefix: list[int] = []
        start = values[0]
        step = 1 if stop >= start else -1
    else:
        step = values[-1] - values[-2]
        if step == 0:
            raise EvalError("range step of 0")
        prefix = values[:-1]
        start = values[-1]
    seq = list(prefix)
    v = start
    if step > 0:
        while v <= stop:
            seq.append(v)
            v += step
    else:
        while v >= stop:
            seq.append(v)
            v += step
    return seq


#: Callable built-ins: name -> (function, min_arity, max_arity).
FUNCTIONS: dict[str, tuple] = {
    "abs": (c_abs, 1, 1),
    "min": (c_min, 1, 8),
    "max": (c_max, 1, 8),
    "sqrt": (c_sqrt, 1, 1),
    "cbrt": (c_cbrt, 1, 1),
    "floor": (c_floor, 1, 1),
    "ceiling": (c_ceiling, 1, 1),
    "round": (c_round, 1, 1),
    "log2": (c_log2, 1, 1),
    "log10": (c_log10, 1, 1),
    "bits": (c_bits, 1, 1),
    "tree_parent": (tree_parent, 1, 2),
    "tree_child": (tree_child, 2, 3),
    "knomial_parent": (knomial_parent, 1, 3),
    "knomial_children": (knomial_children, 3, 3),
    "knomial_child": (knomial_child, 4, 4),
    "mesh_neighbor": (mesh_neighbor, 7, 7),
    "torus_neighbor": (torus_neighbor, 7, 7),
    "mesh_coordinate": (mesh_coordinate, 5, 5),
}

#: Functions resolved by the runtime environment rather than this table
#: (they need per-rank deterministic random state).
RUNTIME_FUNCTIONS = frozenset({"random_task", "random_uniform"})
